//! Stream a real on-disk pcap capture through the sharded engine — the
//! workflow for users whose traffic lives in capture files, not generators.
//!
//! Writes one Mirai realisation to a temporary `.pcap`, then replays it
//! lazily from disk ([`PcapSource`] decodes one record at a time) behind a
//! bounded channel ([`BoundedSource`]), scoring with Kitsune at a fixed
//! deployment threshold.
//!
//! ```text
//! cargo run --release --example pcap_stream
//! ```

use idsbench::core::{Dataset, EventDetector, Label};
use idsbench::datasets::{scenarios, split_at_fraction, ScenarioScale};
use idsbench::kitsune::Kitsune;
use idsbench::net::pcap::PcapWriter;
use idsbench::stream::{run_stream, BoundedSource, PcapSource, StreamConfig, ThresholdMode};
use std::collections::HashMap;
use std::io::BufWriter;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Produce a capture file plus out-of-band labels (pcaps carry none —
    //    half the paper's point about dataset formats).
    let dataset = scenarios::mirai(ScenarioScale::Tiny);
    let (warmup, eval) = split_at_fraction(dataset.generate(42), 0.3);
    let path = std::env::temp_dir().join("idsbench_stream_demo.pcap");
    let mut writer = PcapWriter::new(BufWriter::new(std::fs::File::create(&path)?))?;
    let mut labels: HashMap<u64, Label> = HashMap::new();
    for lp in &eval {
        writer.write_packet(&lp.packet)?;
        // Key by timestamp: unique in generated traces, survives the pcap.
        labels.insert(lp.packet.ts.as_micros(), lp.label);
    }
    writer.flush()?;
    drop(writer);
    println!("wrote {} packets to {}", eval.len(), path.display());

    // 2. Replay lazily from disk: PcapSource decodes records on demand, the
    //    bounded channel caps how far the reader runs ahead of the scorers.
    let source = PcapSource::open(
        &path,
        Box::new(move |p| labels.get(&p.ts.as_micros()).copied().unwrap_or(Label::Benign)),
    )?;
    let source = BoundedSource::spawn(source, 512);

    let run = run_stream(
        &|| Box::new(Kitsune::default()) as Box<dyn EventDetector>,
        &warmup,
        source,
        &StreamConfig {
            shards: 2,
            // A deployment-style fixed threshold, set where a prior
            // calibrated run on this scenario landed (~0.23).
            threshold: ThresholdMode::Fixed(0.2),
            ..Default::default()
        },
    )?;

    println!(
        "replayed {} packets from disk: recall {:.3}, fpr {:.3}, {:.0} packets/sec",
        run.report.eval_packets,
        run.report.metrics.recall,
        run.report.false_positive_rate,
        run.report.throughput.packets_per_sec,
    );
    std::fs::remove_file(&path)?;
    Ok(())
}
