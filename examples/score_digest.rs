//! Prints a bit-level digest of every batch score for all four systems.
use idsbench::core::preprocess::Pipeline;
use idsbench::core::runner::{replay, EvalConfig};
use idsbench::core::{Dataset, EventDetector};
use idsbench::datasets::{scenarios, ScenarioScale};
use idsbench::dnn::Dnn;
use idsbench::helad::Helad;
use idsbench::kitsune::Kitsune;
use idsbench::slips::Slips;

fn main() {
    let scenario = scenarios::stratosphere_iot(ScenarioScale::Tiny);
    let config = EvalConfig::default();
    let pipeline = Pipeline::new(config.pipeline).expect("pipeline");
    let input = pipeline
        .prepare_events(&scenario.info().name, scenario.generate(config.dataset_seed))
        .expect("preprocess");
    let detectors: Vec<Box<dyn EventDetector>> = vec![
        Box::new(Kitsune::default()),
        Box::new(Helad::default()),
        Box::new(Dnn::default()),
        Box::new(Slips::default()),
    ];
    for mut d in detectors {
        let scores = replay(d.as_mut(), &input).expect("replay").scores;
        let mut digest = 0u64;
        for s in &scores {
            digest = digest.rotate_left(7) ^ s.to_bits();
        }
        println!("{} {} {:016x}", d.name(), scores.len(), digest);
    }
}
