//! Streaming evaluation: replay a scenario through the sharded online
//! engine and compare what batch evaluation reports against what a
//! deployment would actually observe — live windowed metrics, per-packet
//! latency, throughput.
//!
//! ```text
//! cargo run --release --example streaming
//! ```

use idsbench::core::runner::{evaluate, EvalConfig};
use idsbench::core::{CoreError, EventDetector};
use idsbench::datasets::{scenarios, ScenarioScale};
use idsbench::kitsune::Kitsune;
use idsbench::stream::{run_stream, ScenarioSource, StreamConfig};

fn main() -> Result<(), CoreError> {
    let dataset = scenarios::stratosphere_iot(ScenarioScale::Small);
    let seed = 42;

    // 1. The paper's batch pipeline: one offline pass, one aggregate row.
    let config = EvalConfig { dataset_seed: seed, ..Default::default() };
    let batch = evaluate(&mut Kitsune::default(), &dataset, &config)?;
    println!("batch     F1 {:.4}  (threshold {:.4})", batch.metrics.f1, batch.threshold);

    // 2. The same traffic as an online stream: two shard workers, packets
    //    hashed by flow key, scored one at a time with backpressure.
    let (warmup, source) = ScenarioSource::new(&dataset, seed).split_warmup(0.3);
    let run = run_stream(
        &|| Box::new(Kitsune::default()) as Box<dyn EventDetector>,
        &warmup,
        source,
        &StreamConfig { shards: 2, window_secs: 60.0, ..Default::default() },
    )?;
    let t = &run.report.throughput;
    println!(
        "streaming F1 {:.4}  ({} packets over {} shards)",
        run.report.metrics.f1, run.report.eval_packets, run.report.shards
    );
    println!(
        "          {:.0} packets/sec, latency p50 {:.1} µs / p99 {:.1} µs, training {:.2} s",
        t.packets_per_sec, t.p50_latency_us, t.p99_latency_us, t.train_seconds
    );

    // 3. What batch evaluation cannot show: how detection quality moves
    //    across the traffic timeline (the infection starts at t = 600 s).
    println!("\n  window  packets  attacks  recall   fpr");
    for w in &run.report.windows {
        println!(
            "  {:>5.0}s  {:>7}  {:>7}  {:>6.3}  {:>5.3}",
            w.start_secs, w.packets, w.attacks, w.recall, w.false_positive_rate
        );
    }

    // 4. Per-shard load: flow hashing keeps conversations local.
    for s in &run.report.shard_stats {
        println!(
            "\n  shard {}: {} packets across {} flows ({:.2} s busy)",
            s.shard, s.packets, s.flows, s.score_seconds
        );
    }
    Ok(())
}
