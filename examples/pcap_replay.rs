//! Round-trip a scenario through a real pcap file and evaluate from the
//! replay — the workflow for users who have actual capture files.
//!
//! Labels obviously don't survive a pcap (that is half the paper's point
//! about dataset formats); this example carries them out-of-band the way
//! the real datasets ship label CSVs next to their pcaps.
//!
//! ```text
//! cargo run --release --example pcap_replay
//! ```

use idsbench::core::preprocess::Pipeline;
use idsbench::core::runner::replay;
use idsbench::core::{Dataset, LabeledPacket};
use idsbench::datasets::{scenarios, ScenarioScale};
use idsbench::helad::Helad;
use idsbench::net::pcap::{PcapReader, PcapWriter};
use std::io::Cursor;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Generate a scenario and write it to an in-memory pcap image (swap the
    // Vec for a File to produce a real capture on disk).
    let dataset = scenarios::mirai(ScenarioScale::Small);
    let labeled = dataset.generate(42);
    let labels: Vec<_> = labeled.iter().map(|lp| lp.label).collect();

    let mut image = Vec::new();
    let mut writer = PcapWriter::new(&mut image)?;
    for lp in &labeled {
        writer.write_packet(&lp.packet)?;
    }
    writer.flush()?;
    println!("wrote {} packets ({} bytes of pcap)", writer.packets_written(), image.len());

    // Read the capture back and re-attach the out-of-band labels.
    let reader = PcapReader::new(Cursor::new(&image[..]))?;
    let replayed: Vec<LabeledPacket> = reader
        .map(|packet| packet.map_err(Into::into))
        .collect::<Result<Vec<_>, Box<dyn std::error::Error>>>()?
        .into_iter()
        .zip(labels)
        .map(|(packet, label)| LabeledPacket::new(packet, label))
        .collect();
    println!("replayed {} packets from the capture", replayed.len());

    // The replayed stream is byte-identical to the generated one, so the
    // event replay below matches an in-memory run exactly: parse once,
    // fit on the training slice, score each packet event.
    let pipeline = Pipeline::new(Default::default())?;
    let input = pipeline.prepare_events("mirai-replay", replayed)?;
    let mut detector = Helad::default();
    let scored = replay(&mut detector, &input)?;
    let auc = idsbench::core::metrics::auc(&idsbench::core::metrics::roc_curve(
        &scored.scores,
        &scored.labels,
    ));
    println!("HELAD on the replay: {} scores, AUC {:.3}", scored.scores.len(), auc);
    Ok(())
}
