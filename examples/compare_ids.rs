//! Run the full IDS × dataset grid (a scaled-down Table IV) and print the
//! comparison table.
//!
//! ```text
//! cargo run --release --example compare_ids
//! ```

use idsbench::core::report;
use idsbench::core::runner::{run_grid, DetectorFactory, EvalConfig};
use idsbench::core::{CoreError, Dataset, EventDetector};
use idsbench::datasets::{scenarios, ScenarioScale};
use idsbench::dnn::Dnn;
use idsbench::helad::Helad;
use idsbench::kitsune::Kitsune;
use idsbench::slips::Slips;

fn main() -> Result<(), CoreError> {
    let scenarios = scenarios::table4_scenarios(ScenarioScale::Small);
    let datasets: Vec<&dyn Dataset> = scenarios.iter().map(|s| s as &dyn Dataset).collect();

    let detectors: Vec<(String, DetectorFactory)> = vec![
        ("Kitsune".into(), Box::new(|| Box::new(Kitsune::default()) as Box<dyn EventDetector>)),
        ("HELAD".into(), Box::new(|| Box::new(Helad::default()) as Box<dyn EventDetector>)),
        ("DNN".into(), Box::new(|| Box::new(Dnn::default()) as Box<dyn EventDetector>)),
        ("Slips".into(), Box::new(|| Box::new(Slips::default()) as Box<dyn EventDetector>)),
    ];

    eprintln!(
        "running {} cells — this takes a minute in release mode…",
        detectors.len() * datasets.len()
    );
    let experiments = run_grid(&detectors, &datasets, &EvalConfig::default())?;

    println!("{}", report::render_console(&experiments));
    println!("(run the idsbench-bench `table4` binary at --scale full for the paper-scale grid)");
    Ok(())
}
