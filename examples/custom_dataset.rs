//! Build a custom traffic scenario with the generator API and evaluate an
//! IDS on it — the workflow a user follows to test an IDS against *their*
//! environment rather than a canned dataset.
//!
//! The scenario models a small office: web browsing and DNS as benign
//! traffic, plus an SSH brute-force attack and a data-exfiltration channel.
//!
//! ```text
//! cargo run --release --example custom_dataset
//! ```

use idsbench::core::runner::{evaluate, EvalConfig};
use idsbench::core::{CoreError, DatasetInfo};
use idsbench::datasets::attack::{BruteForce, Exfiltration};
use idsbench::datasets::benign::{DnsTraffic, WebBrowsing};
use idsbench::datasets::{Host, HostPool, Scenario};
use idsbench::slips::Slips;

fn main() -> Result<(), CoreError> {
    let clients = HostPool::subnet(7, 12);
    let servers = HostPool::external(0, 16);
    let window = (0.0, 400.0);

    let scenario = Scenario::builder(DatasetInfo::new(
        "small-office",
        "12 clients browsing; SSH brute force and exfiltration in the background.",
        "Custom scenario assembled from the generator API.",
        2026,
    ))
    .with(WebBrowsing { clients: clients.clone(), servers, window, sessions: 400 })
    .with(DnsTraffic {
        clients: clients.clone(),
        resolver: Host::new(7, 250),
        window,
        queries: 600,
    })
    .with(BruteForce {
        attacker: Host::external(800),
        server: Host::new(7, 22),
        dport: 22,
        window: (150.0, 250.0),
        attempts: 60,
    })
    .with(Exfiltration {
        source: Host::new(7, 5),
        sink: Host::external(801),
        window: (200.0, 380.0),
        sessions: 6,
        bytes_per_session: 200_000,
    })
    .build();

    let stats = scenario.stats(7);
    println!(
        "scenario: {} packets, {:.1}% attack, {:.0}s of traffic",
        stats.packets,
        stats.attack_share() * 100.0,
        stats.duration
    );
    for (kind, count) in &stats.by_kind {
        println!("  {kind}: {count} packets");
    }

    // Evaluate the behavioural IDS — brute force is exactly what its
    // per-profile modules look for.
    let mut detector = Slips::default();
    let experiment = evaluate(&mut detector, &scenario, &EvalConfig::default())?;
    println!(
        "\n{} on {}: precision {:.3}, recall {:.3}, f1 {:.3}",
        experiment.detector,
        experiment.dataset,
        experiment.metrics.precision,
        experiment.metrics.recall,
        experiment.metrics.f1
    );
    Ok(())
}
