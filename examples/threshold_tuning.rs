//! Show how the calibration rule (Section IV-A step 4) changes reported
//! metrics for the same detector on the same traffic — the paper's
//! "tolerable level of false positives" is a judgment call, and this
//! example quantifies how much it matters.
//!
//! ```text
//! cargo run --release --example threshold_tuning
//! ```

use idsbench::core::metrics::{auc, roc_curve, ConfusionMatrix};
use idsbench::core::preprocess::Pipeline;
use idsbench::core::runner::replay;
use idsbench::core::threshold::ThresholdPolicy;
use idsbench::core::{CoreError, Dataset};
use idsbench::datasets::{scenarios, ScenarioScale};
use idsbench::kitsune::Kitsune;

fn main() -> Result<(), CoreError> {
    let dataset = scenarios::cicids2017(ScenarioScale::Small);
    let packets = dataset.generate(42);
    let pipeline = Pipeline::new(Default::default())?;
    let input = pipeline.prepare_events(&dataset.info().name, packets)?;

    let mut detector = Kitsune::default();
    let scored = replay(&mut detector, &input)?;
    let (scores, labels) = (scored.scores, scored.labels);
    println!(
        "Kitsune on {}: {} eval packets, AUC {:.3}\n",
        dataset.info().name,
        scores.len(),
        auc(&roc_curve(&scores, &labels))
    );

    let policies: [(&str, ThresholdPolicy); 6] = [
        ("detection-first, 25% FPR cap (paper)", ThresholdPolicy::DetectionFirst { max_fpr: 0.25 }),
        ("detection-first, 10% FPR cap", ThresholdPolicy::DetectionFirst { max_fpr: 0.10 }),
        ("detection-first, 1% FPR cap", ThresholdPolicy::DetectionFirst { max_fpr: 0.01 }),
        ("max F1", ThresholdPolicy::MaxF1),
        (
            "99.9th train-quantile (Kitsune's own rule)",
            ThresholdPolicy::TrainQuantile { quantile: 0.999 },
        ),
        ("fixed 0.5", ThresholdPolicy::Fixed(0.5)),
    ];

    println!(
        "{:<44} {:>10} {:>8} {:>8} {:>8} {:>8}",
        "policy", "threshold", "acc", "prec", "rec", "f1"
    );
    for (name, policy) in policies {
        let threshold = policy.calibrate(&scores, &labels);
        let cm = ConfusionMatrix::from_scores(&scores, &labels, threshold);
        let m = cm.metrics();
        println!(
            "{:<44} {:>10.4} {:>8.4} {:>8.4} {:>8.4} {:>8.4}",
            name, threshold, m.accuracy, m.precision, m.recall, m.f1
        );
    }
    println!("\nSame scores, very different tables — the paper's Section VI point in one screen.");
    Ok(())
}
