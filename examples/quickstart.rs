//! Quickstart: evaluate one IDS on one dataset scenario and print its
//! metrics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use idsbench::core::runner::{evaluate, EvalConfig};
use idsbench::core::CoreError;
use idsbench::datasets::{scenarios, ScenarioScale};
use idsbench::kitsune::Kitsune;

fn main() -> Result<(), CoreError> {
    // 1. Pick a dataset scenario — a seeded synthetic stand-in for the
    //    Stratosphere IoT CTU captures (clean benign prefix, then a botnet
    //    infection).
    let dataset = scenarios::stratosphere_iot(ScenarioScale::Small);

    // 2. Pick an IDS with its out-of-the-box configuration.
    let mut detector = Kitsune::default();

    // 3. Run the paper's pipeline: generate → preprocess → train → score →
    //    calibrate threshold → confusion metrics.
    let experiment = evaluate(&mut detector, &dataset, &EvalConfig::default())?;

    println!("IDS:       {}", experiment.detector);
    println!("dataset:   {}", experiment.dataset);
    println!(
        "items:     {} ({}% attack)",
        experiment.eval_items,
        (experiment.attack_share * 100.0).round()
    );
    println!("accuracy:  {:.4}", experiment.metrics.accuracy);
    println!("precision: {:.4}", experiment.metrics.precision);
    println!("recall:    {:.4}", experiment.metrics.recall);
    println!("f1:        {:.4}", experiment.metrics.f1);
    println!("auc:       {:.4}", experiment.auc);
    Ok(())
}
