//! End-to-end integration tests: every evaluated IDS runs through the full
//! pipeline on every scenario at Tiny scale, and the pipeline invariants
//! hold across crate boundaries.

use idsbench::core::runner::{evaluate, EvalConfig};
use idsbench::core::{Dataset, EventDetector};
use idsbench::datasets::{scenarios, ScenarioScale};
use idsbench::dnn::Dnn;
use idsbench::helad::Helad;
use idsbench::kitsune::Kitsune;
use idsbench::slips::Slips;

fn all_detectors() -> Vec<Box<dyn EventDetector>> {
    vec![
        Box::new(Kitsune::default()),
        Box::new(Helad::default()),
        Box::new(Dnn::default()),
        Box::new(Slips::default()),
    ]
}

#[test]
fn every_detector_runs_on_every_scenario() {
    for scenario in scenarios::table4_scenarios(ScenarioScale::Tiny) {
        for mut detector in all_detectors() {
            let experiment = evaluate(detector.as_mut(), &scenario, &EvalConfig::default())
                .unwrap_or_else(|e| panic!("{} on {}: {e}", detector.name(), scenario.info().name));
            let m = experiment.metrics;
            for (name, v) in [
                ("accuracy", m.accuracy),
                ("precision", m.precision),
                ("recall", m.recall),
                ("f1", m.f1),
                ("auc", experiment.auc),
                ("fpr", experiment.false_positive_rate),
            ] {
                assert!(
                    (0.0..=1.0).contains(&v),
                    "{}/{}: {name} = {v} out of range",
                    experiment.detector,
                    experiment.dataset
                );
            }
            assert!(experiment.eval_items > 0);
        }
    }
}

#[test]
fn evaluation_is_deterministic() {
    let scenario = scenarios::bot_iot(ScenarioScale::Tiny);
    let config = EvalConfig { dataset_seed: 9, ..Default::default() };
    let run = |mut d: Box<dyn EventDetector>| evaluate(d.as_mut(), &scenario, &config).unwrap();
    for factory in [0usize, 1, 2, 3] {
        let a = run(all_detectors().remove(factory));
        let b = run(all_detectors().remove(factory));
        assert_eq!(a.metrics, b.metrics, "{} must be deterministic", a.detector);
        assert_eq!(a.threshold, b.threshold);
    }
}

#[test]
fn dataset_seed_changes_the_realisation() {
    let scenario = scenarios::unsw_nb15(ScenarioScale::Tiny);
    let a = scenario.generate(1);
    let b = scenario.generate(2);
    assert_ne!(a.len(), 0);
    assert!(a != b, "different seeds must give different traffic");
}

#[test]
fn supervised_detector_beats_chance_on_separable_data() {
    // BoT-IoT at Tiny scale: floods are trivially separable at flow level.
    let scenario = scenarios::bot_iot(ScenarioScale::Tiny);
    let mut dnn = Dnn::default();
    let experiment = evaluate(&mut dnn, &scenario, &EvalConfig::default()).unwrap();
    assert!(experiment.auc > 0.9, "DNN AUC on BoT-IoT = {}", experiment.auc);
    assert!(experiment.metrics.f1 > 0.8, "DNN F1 on BoT-IoT = {}", experiment.metrics.f1);
}

#[test]
fn slips_stays_silent_on_unsw_and_bot_iot() {
    // The paper's most cited negative result: Slips produces no (correct)
    // alerts on UNSW-NB15 and BoT-IoT.
    for scenario in
        [scenarios::unsw_nb15(ScenarioScale::Tiny), scenarios::bot_iot(ScenarioScale::Tiny)]
    {
        let mut slips = Slips::default();
        let experiment = evaluate(&mut slips, &scenario, &EvalConfig::default()).unwrap();
        assert_eq!(
            experiment.metrics.recall,
            0.0,
            "Slips on {} should detect nothing",
            scenario.info().name
        );
        assert_eq!(experiment.false_positive_rate, 0.0);
    }
}

#[test]
fn anomaly_detectors_exploit_the_clean_stratosphere_prefix() {
    // Small scale: Tiny is too sparse for the damped statistics to settle.
    let scenario = scenarios::stratosphere_iot(ScenarioScale::Small);
    let mut kitsune = Kitsune::default();
    let experiment = evaluate(&mut kitsune, &scenario, &EvalConfig::default()).unwrap();
    assert!(
        experiment.auc > 0.55,
        "Kitsune must rank attacks above benign on a clean baseline: auc = {}",
        experiment.auc
    );
}
