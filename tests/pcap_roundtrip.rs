//! Integration test: scenarios survive the pcap container byte-exactly, so
//! evaluating from a replayed capture equals evaluating in memory.

use idsbench::core::preprocess::Pipeline;
use idsbench::core::runner::replay;
use idsbench::core::{Dataset, LabeledPacket};
use idsbench::datasets::{scenarios, ScenarioScale};
use idsbench::net::pcap;
use idsbench::slips::Slips;

#[test]
fn every_scenario_round_trips_through_pcap() {
    for scenario in scenarios::table4_scenarios(ScenarioScale::Tiny) {
        let labeled = scenario.generate(5);
        let packets: Vec<_> = labeled.iter().map(|lp| lp.packet.clone()).collect();
        let image = pcap::write_all(&packets).unwrap();
        let replayed = pcap::read_all(&image).unwrap();
        assert_eq!(replayed, packets, "{} must survive the container", scenario.info().name);
    }
}

#[test]
fn replayed_capture_yields_identical_scores() {
    let scenario = scenarios::unsw_nb15(ScenarioScale::Tiny);
    let labeled = scenario.generate(3);

    // In-memory path.
    let pipeline = Pipeline::new(Default::default()).unwrap();
    let input_memory = pipeline.prepare_events("mem", labeled.clone()).unwrap();
    let scores_memory = replay(&mut Slips::default(), &input_memory).unwrap().scores;

    // Pcap replay path.
    let packets: Vec<_> = labeled.iter().map(|lp| lp.packet.clone()).collect();
    let labels: Vec<_> = labeled.iter().map(|lp| lp.label).collect();
    let image = pcap::write_all(&packets).unwrap();
    let recovered: Vec<LabeledPacket> = pcap::read_all(&image)
        .unwrap()
        .into_iter()
        .zip(labels)
        .map(|(packet, label)| LabeledPacket::new(packet, label))
        .collect();
    let input_replay = pipeline.prepare_events("replay", recovered).unwrap();
    let scores_replay = replay(&mut Slips::default(), &input_replay).unwrap().scores;

    assert_eq!(scores_memory, scores_replay);
}

#[test]
fn all_generated_packets_parse() {
    use idsbench::net::ParsedPacket;
    for scenario in scenarios::table4_scenarios(ScenarioScale::Tiny) {
        for lp in scenario.generate(11) {
            ParsedPacket::parse(&lp.packet).unwrap_or_else(|e| {
                panic!("{}: generated packet failed to parse: {e}", scenario.info().name)
            });
        }
    }
}
