//! Failure-injection and pipeline-integrity tests: detectors must behave
//! sanely on pathological inputs and must not peek at evaluation labels.

use idsbench::core::preprocess::{EventInput, Pipeline, PipelineConfig};
use idsbench::core::runner::replay;
use idsbench::core::{AttackKind, Dataset, EventDetector, Label, ParsedView};
use idsbench::datasets::{scenarios, ScenarioScale};
use idsbench::dnn::Dnn;
use idsbench::helad::Helad;
use idsbench::kitsune::Kitsune;
use idsbench::slips::Slips;

fn prepared_input() -> EventInput {
    let scenario = scenarios::bot_iot(ScenarioScale::Tiny);
    let packets = scenario.generate(3);
    Pipeline::new(PipelineConfig::default()).unwrap().prepare_events("toy", packets).unwrap()
}

fn all_detectors() -> Vec<Box<dyn EventDetector>> {
    vec![
        Box::new(Kitsune::default()),
        Box::new(Helad::default()),
        Box::new(Dnn::default()),
        Box::new(Slips::default()),
    ]
}

fn fresh(name: &str) -> Box<dyn EventDetector> {
    match name {
        "Kitsune" => Box::new(Kitsune::default()),
        "HELAD" => Box::new(Helad::default()),
        "DNN" => Box::new(Dnn::default()),
        _ => Box::new(Slips::default()),
    }
}

fn flip(label: Label) -> Label {
    match label {
        Label::Benign => Label::Attack(AttackKind::Stealth),
        Label::Attack(_) => Label::Benign,
    }
}

fn flip_eval_labels(input: &EventInput) -> EventInput {
    let mut flipped = input.clone();
    for view in &mut flipped.eval {
        view.packet.label = flip(view.packet.label);
    }
    flipped
}

/// Deterministically permutes the evaluation labels among the evaluation
/// packets (the label *multiset* is unchanged — only the assignment moves).
fn shuffle_eval_labels(input: &EventInput, seed: u64) -> EventInput {
    let mut shuffled = input.clone();
    let mut labels: Vec<Label> = shuffled.eval.iter().map(|v| v.packet.label).collect();
    // Fisher–Yates with a splitmix-style generator, no rand dependency.
    let mut state = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut next = || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    for i in (1..labels.len()).rev() {
        let j = (next() % (i as u64 + 1)) as usize;
        labels.swap(i, j);
    }
    for (view, label) in shuffled.eval.iter_mut().zip(labels) {
        view.packet.label = label;
    }
    shuffled
}

/// The core integrity rule: scores must be a function of traffic only —
/// flipping every *evaluation* label must not change a single score.
#[test]
fn no_detector_reads_evaluation_labels() {
    let input = prepared_input();
    let flipped = flip_eval_labels(&input);
    for mut detector in all_detectors() {
        let name = detector.name().to_string();
        let scores_original = replay(detector.as_mut(), &input).unwrap().scores;
        let scores_flipped = replay(fresh(&name).as_mut(), &flipped).unwrap().scores;
        assert_eq!(scores_original, scores_flipped, "{name} peeked at evaluation labels");
    }
}

/// The permutation variant of the same rule (what `detector.rs` promises):
/// shuffling the evaluation labels among the evaluation items — preserving
/// the label multiset, which flipping does not — must leave every
/// detector's score stream untouched. This catches subtler leaks, e.g. a
/// detector keying on the eval attack *rate* would survive a flip check on
/// a balanced trace but not a permutation check.
#[test]
fn no_detector_reacts_to_permuted_evaluation_labels() {
    let input = prepared_input();
    let shuffled = shuffle_eval_labels(&input, 7);
    // The permutation must actually move labels around...
    assert!(
        input.eval.iter().zip(&shuffled.eval).any(|(a, b)| a.packet.label != b.packet.label),
        "shuffle must change some assignments"
    );
    // ...while preserving the label multiset.
    assert_eq!(
        input.eval.iter().filter(|v| v.is_attack()).count(),
        shuffled.eval.iter().filter(|v| v.is_attack()).count(),
    );
    for mut detector in all_detectors() {
        let name = detector.name().to_string();
        let scores_original = replay(detector.as_mut(), &input).unwrap().scores;
        let scores_shuffled = replay(fresh(&name).as_mut(), &shuffled).unwrap().scores;
        assert_eq!(scores_original, scores_shuffled, "{name} reacted to permuted eval labels");
    }
}

/// The supervised DNN must, by contrast, depend on its *training* labels.
#[test]
fn dnn_depends_on_training_labels() {
    let input = prepared_input();
    let mut corrupted = input.clone();
    for flow in &mut corrupted.train.flows {
        flow.label = flip(flow.label);
    }
    let a = replay(&mut Dnn::default(), &input).unwrap().scores;
    let b = replay(&mut Dnn::default(), &corrupted).unwrap().scores;
    assert_ne!(a, b, "supervised training must react to label changes");
}

/// Detectors must handle an empty training slice without panicking.
#[test]
fn detectors_survive_empty_training() {
    let mut input = prepared_input();
    input.train.packets.clear();
    input.train.flows.clear();
    for mut detector in all_detectors() {
        let name = detector.name().to_string();
        let replayed = replay(detector.as_mut(), &input).unwrap();
        assert!(!replayed.scores.is_empty(), "{name}");
        assert!(replayed.scores.iter().all(|s| s.is_finite()), "{name}");
    }
}

/// Detectors must handle a single-item evaluation slice.
#[test]
fn detectors_survive_minimal_eval() {
    let mut input = prepared_input();
    input.eval.truncate(1);
    for mut detector in all_detectors() {
        let name = detector.name().to_string();
        let format = detector.input_format();
        let replayed = replay(detector.as_mut(), &input).unwrap();
        match format {
            idsbench::core::InputFormat::Packets => assert_eq!(replayed.scores.len(), 1, "{name}"),
            idsbench::core::InputFormat::Flows => {
                assert_eq!(replayed.scores.len(), replayed.eval_flows, "{name}")
            }
        }
    }
}

/// A truncated/corrupted packet in the eval stream must not break packet
/// detectors (they score it neutrally and stay aligned).
#[test]
fn corrupt_packets_do_not_derail_packet_detectors() {
    use idsbench::core::LabeledPacket;
    use idsbench::net::{Packet, Timestamp};

    let mut input = prepared_input();
    // Inject garbage frames into the eval stream.
    for i in 0..5u64 {
        input.eval.push(ParsedView::from_packet(LabeledPacket::new(
            Packet::new(Timestamp::from_secs(10_000 + i), vec![0xff; 7]),
            Label::Benign,
        )));
    }
    for mut detector in
        [Box::new(Kitsune::default()) as Box<dyn EventDetector>, Box::new(Helad::default())]
    {
        let name = detector.name().to_string();
        let replayed = replay(detector.as_mut(), &input).unwrap();
        assert_eq!(replayed.scores.len(), input.eval.len(), "{name}");
        assert!(replayed.scores.iter().all(|s| s.is_finite()));
    }
}

/// The pipeline rejects empty datasets instead of producing empty grids.
#[test]
fn pipeline_rejects_empty_input() {
    let pipeline = Pipeline::new(PipelineConfig::default()).unwrap();
    assert!(pipeline.prepare_events("nothing", Vec::new()).is_err());
}

/// Sampling at very low rates still yields a coherent, label-aligned input.
#[test]
fn aggressive_sampling_keeps_alignment() {
    let scenario = scenarios::cicids2017(ScenarioScale::Tiny);
    let packets = scenario.generate(4);
    let config = PipelineConfig { sampling_rate: 0.05, ..Default::default() };
    let input = Pipeline::new(config).unwrap().prepare_events("sampled", packets).unwrap();
    assert!(!input.eval.is_empty());
    let replayed = replay(&mut Kitsune::default(), &input).unwrap();
    assert_eq!(replayed.scores.len(), replayed.labels.len());
    assert_eq!(replayed.scores.len(), input.eval.len());
}
