//! Failure-injection and pipeline-integrity tests: detectors must behave
//! sanely on pathological inputs and must not peek at evaluation labels.

use idsbench::core::preprocess::{Pipeline, PipelineConfig};
use idsbench::core::{AttackKind, Dataset, Detector, DetectorInput, Label};
use idsbench::datasets::{scenarios, ScenarioScale};
use idsbench::dnn::Dnn;
use idsbench::helad::Helad;
use idsbench::kitsune::Kitsune;
use idsbench::slips::Slips;

fn prepared_input() -> DetectorInput {
    let scenario = scenarios::bot_iot(ScenarioScale::Tiny);
    let packets = scenario.generate(3);
    Pipeline::new(PipelineConfig::default()).unwrap().prepare("toy", packets).unwrap()
}

fn flip_eval_labels(input: &DetectorInput) -> DetectorInput {
    let mut flipped = input.clone();
    for packet in &mut flipped.eval_packets {
        packet.label = match packet.label {
            Label::Benign => Label::Attack(AttackKind::Stealth),
            Label::Attack(_) => Label::Benign,
        };
    }
    for flow in &mut flipped.eval_flows {
        flow.label = match flow.label {
            Label::Benign => Label::Attack(AttackKind::Stealth),
            Label::Attack(_) => Label::Benign,
        };
    }
    flipped
}

/// The core integrity rule: scores must be a function of traffic only —
/// flipping every *evaluation* label must not change a single score.
#[test]
fn no_detector_reads_evaluation_labels() {
    let input = prepared_input();
    let flipped = flip_eval_labels(&input);
    let detectors: Vec<Box<dyn Detector>> = vec![
        Box::new(Kitsune::default()),
        Box::new(Helad::default()),
        Box::new(Dnn::default()),
        Box::new(Slips::default()),
    ];
    for mut detector in detectors {
        let name = detector.name().to_string();
        let scores_original = detector.score(&input);
        let mut fresh: Box<dyn Detector> = match name.as_str() {
            "Kitsune" => Box::new(Kitsune::default()),
            "HELAD" => Box::new(Helad::default()),
            "DNN" => Box::new(Dnn::default()),
            _ => Box::new(Slips::default()),
        };
        let scores_flipped = fresh.score(&flipped);
        assert_eq!(scores_original, scores_flipped, "{name} peeked at evaluation labels");
    }
}

/// The supervised DNN must, by contrast, depend on its *training* labels.
#[test]
fn dnn_depends_on_training_labels() {
    let input = prepared_input();
    let mut corrupted = input.clone();
    for flow in &mut corrupted.train_flows {
        flow.label = match flow.label {
            Label::Benign => Label::Attack(AttackKind::Stealth),
            Label::Attack(_) => Label::Benign,
        };
    }
    let a = Dnn::default().score(&input);
    let b = Dnn::default().score(&corrupted);
    assert_ne!(a, b, "supervised training must react to label changes");
}

/// Detectors must handle an empty training slice without panicking.
#[test]
fn detectors_survive_empty_training() {
    let mut input = prepared_input();
    input.train_packets.clear();
    input.train_flows.clear();
    let detectors: Vec<Box<dyn Detector>> = vec![
        Box::new(Kitsune::default()),
        Box::new(Helad::default()),
        Box::new(Dnn::default()),
        Box::new(Slips::default()),
    ];
    for mut detector in detectors {
        let format = detector.input_format();
        let scores = detector.score(&input);
        assert_eq!(scores.len(), input.eval_len(format), "{}", detector.name());
        assert!(scores.iter().all(|s| s.is_finite()), "{}", detector.name());
    }
}

/// Detectors must handle a single-item evaluation slice.
#[test]
fn detectors_survive_minimal_eval() {
    let mut input = prepared_input();
    input.eval_packets.truncate(1);
    input.eval_flows.truncate(1);
    let detectors: Vec<Box<dyn Detector>> = vec![
        Box::new(Kitsune::default()),
        Box::new(Helad::default()),
        Box::new(Dnn::default()),
        Box::new(Slips::default()),
    ];
    for mut detector in detectors {
        let format = detector.input_format();
        let scores = detector.score(&input);
        assert_eq!(scores.len(), input.eval_len(format), "{}", detector.name());
    }
}

/// A truncated/corrupted packet in the eval stream must not break packet
/// detectors (they score it neutrally and stay aligned).
#[test]
fn corrupt_packets_do_not_derail_packet_detectors() {
    use idsbench::core::LabeledPacket;
    use idsbench::net::{Packet, Timestamp};

    let mut input = prepared_input();
    // Inject garbage frames into the eval stream.
    for i in 0..5u64 {
        input.eval_packets.push(LabeledPacket::new(
            Packet::new(Timestamp::from_secs(10_000 + i), vec![0xff; 7]),
            Label::Benign,
        ));
    }
    for mut detector in
        [Box::new(Kitsune::default()) as Box<dyn Detector>, Box::new(Helad::default())]
    {
        let scores = detector.score(&input);
        assert_eq!(scores.len(), input.eval_packets.len(), "{}", detector.name());
        assert!(scores.iter().all(|s| s.is_finite()));
    }
}

/// The pipeline rejects empty datasets instead of producing empty grids.
#[test]
fn pipeline_rejects_empty_input() {
    let pipeline = Pipeline::new(PipelineConfig::default()).unwrap();
    assert!(pipeline.prepare("nothing", Vec::new()).is_err());
}

/// Sampling at very low rates still yields a coherent, label-aligned input.
#[test]
fn aggressive_sampling_keeps_alignment() {
    let scenario = scenarios::cicids2017(ScenarioScale::Tiny);
    let packets = scenario.generate(4);
    let config = PipelineConfig { sampling_rate: 0.05, ..Default::default() };
    let input = Pipeline::new(config).unwrap().prepare("sampled", packets).unwrap();
    assert!(!input.eval_packets.is_empty());
    let labels = input.eval_labels(idsbench::core::InputFormat::Packets);
    assert_eq!(labels.len(), input.eval_packets.len());
}
