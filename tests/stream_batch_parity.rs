//! Streaming ↔ batch parity: the invariant that makes streaming results
//! citable next to batch results.
//!
//! Batch `evaluate()` and the sharded streaming executor are two drivers of
//! the same `EventDetector` contract over the same parse-once event stream,
//! so a single-shard streaming run must reproduce the batch pipeline
//! *exactly* — same per-event scores (bitwise), hence the same calibrated
//! threshold, alert decisions, and metrics. That now includes the
//! flow-event systems (Slips, DNN): their flow-eviction events fire at the
//! same flow-table moments in both drivers. Multi-shard runs repartition
//! detector and flow-table state, so their scores may legitimately differ —
//! but flow→shard routing must be deterministic and keep every flow whole
//! on one shard, so decisions are reproducible and per-flow consistent.

use std::collections::HashSet;

use idsbench::core::preprocess::Pipeline;
use idsbench::core::runner::{evaluate, replay, EvalConfig};
use idsbench::core::{Dataset, EventDetector, LabeledPacket};
use idsbench::datasets::{scenarios, ScenarioScale};
use idsbench::dnn::{Dnn, DnnConfig};
use idsbench::flow::FlowKey;
use idsbench::helad::Helad;
use idsbench::kitsune::Kitsune;
use idsbench::net::{ParsedPacket, Timestamp};
use idsbench::slips::Slips;
use idsbench::stream::{
    run_stream, AutoscalePolicy, BoundedSource, PacketSource, ScenarioSource, StreamConfig,
    StreamRun, VecSource,
};

fn kitsune() -> Box<dyn EventDetector> {
    Box::new(Kitsune::default())
}

/// A shareable detector factory, as `run_stream` consumes them.
type Factory = Box<dyn Fn() -> Box<dyn EventDetector> + Sync>;

/// The batch driver's raw score stream for this detector on Stratosphere
/// Tiny under the default config.
fn batch_scores(detector: &mut dyn EventDetector) -> Vec<f64> {
    let scenario = scenarios::stratosphere_iot(ScenarioScale::Tiny);
    let config = EvalConfig::default();
    let pipeline = Pipeline::new(config.pipeline).expect("valid default pipeline");
    let input = pipeline
        .prepare_events(&scenario.info().name, scenario.generate(config.dataset_seed))
        .expect("preprocess");
    replay(detector, &input).expect("batch replay").scores
}

/// A streaming run over the identical warmup/eval split.
fn stream_run(
    factory: &(dyn Fn() -> Box<dyn EventDetector> + Sync),
    seed: u64,
    shards: usize,
) -> StreamRun {
    let scenario = scenarios::stratosphere_iot(ScenarioScale::Tiny);
    let (warmup, source) = ScenarioSource::new(&scenario, seed).split_warmup(0.3);
    run_stream(factory, &warmup, source, &StreamConfig { shards, ..Default::default() })
        .expect("streaming run")
}

fn assert_bitwise(name: &str, stream: &[f64], batch: &[f64]) {
    assert_eq!(stream.len(), batch.len(), "{name}: event counts diverged");
    for (i, (s, b)) in stream.iter().zip(batch).enumerate() {
        assert_eq!(
            s.to_bits(),
            b.to_bits(),
            "{name} score {i} diverged: streaming {s} vs batch {b}"
        );
    }
}

/// The acceptance invariant, for every evaluated system: packet-event
/// detectors and flow-event detectors alike reproduce batch evaluation
/// bitwise through a single-shard stream.
#[test]
fn single_shard_scores_match_batch_bitwise_for_all_four_systems() {
    let factories: Vec<(&str, Factory)> = vec![
        ("Kitsune", Box::new(|| Box::new(Kitsune::default()) as Box<dyn EventDetector>)),
        ("HELAD", Box::new(|| Box::new(Helad::default()) as Box<dyn EventDetector>)),
        ("DNN", Box::new(|| Box::new(Dnn::default()) as Box<dyn EventDetector>)),
        ("Slips", Box::new(|| Box::new(Slips::default()) as Box<dyn EventDetector>)),
    ];
    for (name, factory) in &factories {
        let batch = batch_scores(factory().as_mut());
        assert!(!batch.is_empty(), "{name}: batch produced no scores");
        let run = stream_run(factory.as_ref(), EvalConfig::default().dataset_seed, 1);
        assert_bitwise(name, &run.scores, &batch);
    }
}

#[test]
fn flow_event_detectors_score_flows_not_packets() {
    let run = stream_run(
        &|| Box::new(Slips::default()) as Box<dyn EventDetector>,
        EvalConfig::default().dataset_seed,
        1,
    );
    assert!(run.report.eval_items > 0, "Slips must score flow events");
    assert!(
        run.report.eval_items < run.report.eval_packets,
        "flow events must be fewer than packets ({} vs {})",
        run.report.eval_items,
        run.report.eval_packets
    );
}

#[test]
fn single_shard_report_matches_batch_experiment_within_1e9() {
    let scenario = scenarios::stratosphere_iot(ScenarioScale::Tiny);
    let config = EvalConfig::default();
    let batch = evaluate(&mut Kitsune::default(), &scenario, &config).expect("batch evaluate");

    let run = stream_run(&kitsune, config.dataset_seed, 1);
    let streamed = run.report.to_experiment();

    assert_eq!(streamed.eval_items, batch.eval_items);
    let close = |a: f64, b: f64, what: &str| {
        assert!((a - b).abs() <= 1e-9, "{what}: streaming {a} vs batch {b}");
    };
    close(streamed.threshold, batch.threshold, "threshold");
    close(streamed.metrics.accuracy, batch.metrics.accuracy, "accuracy");
    close(streamed.metrics.precision, batch.metrics.precision, "precision");
    close(streamed.metrics.recall, batch.metrics.recall, "recall");
    close(streamed.metrics.f1, batch.metrics.f1, "f1");
    close(streamed.auc, batch.auc, "auc");
    close(streamed.false_positive_rate, batch.false_positive_rate, "fpr");
    close(streamed.attack_share, batch.attack_share, "attack share");
    assert_eq!(streamed.family_recall, batch.family_recall, "per-family recall");
}

#[test]
fn slips_report_matches_batch_experiment_within_1e9() {
    let scenario = scenarios::stratosphere_iot(ScenarioScale::Tiny);
    let config = EvalConfig::default();
    let batch = evaluate(&mut Slips::default(), &scenario, &config).expect("batch evaluate");

    let run = stream_run(
        &|| Box::new(Slips::default()) as Box<dyn EventDetector>,
        config.dataset_seed,
        1,
    );
    let streamed = run.report.to_experiment();
    assert_eq!(streamed.eval_items, batch.eval_items, "flow-event counts");
    let close = |a: f64, b: f64, what: &str| {
        assert!((a - b).abs() <= 1e-9, "{what}: streaming {a} vs batch {b}");
    };
    close(streamed.threshold, batch.threshold, "threshold");
    close(streamed.metrics.f1, batch.metrics.f1, "f1");
    close(streamed.auc, batch.auc, "auc");
    assert_eq!(streamed.family_recall, batch.family_recall, "per-family recall");
}

#[test]
fn multi_shard_runs_are_deterministic_and_flow_consistent() {
    let first = stream_run(&kitsune, 0, 4);
    let second = stream_run(&kitsune, 0, 4);

    // Determinism: identical routing and per-shard state ⇒ identical scores.
    assert_eq!(first.scores, second.scores);
    assert_eq!(first.report.metrics, second.report.metrics);

    // Flow consistency: every canonical flow lives whole on one shard, so
    // the per-shard distinct-flow counts add up to the global flow count.
    let scenario = scenarios::stratosphere_iot(ScenarioScale::Tiny);
    let (_, mut source) = ScenarioSource::new(&scenario, 0).split_warmup(0.3);
    let mut global_flows: HashSet<FlowKey> = HashSet::new();
    while let Some(lp) = source.next_packet().expect("source") {
        if let Ok(parsed) = ParsedPacket::parse(&lp.packet) {
            if let Some(key) = FlowKey::from_packet(&parsed) {
                global_flows.insert(key.canonical().0);
            }
        }
    }
    let sharded_flows: usize = first.report.shard_stats.iter().map(|s| s.flows).sum();
    assert_eq!(sharded_flows, global_flows.len(), "a flow was split across shards");
    assert!(
        first.report.shard_stats.iter().filter(|s| s.packets > 0).count() > 1,
        "the Tiny trace must spread across more than one shard"
    );
}

/// Bursty operational traffic, StealthCup-style: quiet benign phases
/// alternate with attack bursts, one traffic-second per phase — the same
/// generator the `fig_autoscale` CI bench replays, so the pinned invariant
/// and the bench figure exercise identical traffic.
fn bursty_sessions(phases: u64) -> Vec<LabeledPacket> {
    idsbench_bench::workload::bursty_trace(phases, 8, 120, 0, |phase| phase % 2 == 1)
}

/// A cheap DNN and a policy the bursty trace trips in both directions.
fn autoscale_fixture() -> (impl Fn() -> Box<dyn EventDetector> + Sync, StreamConfig) {
    let factory = || {
        Box::new(Dnn::new(DnnConfig {
            hidden_layers: vec![8],
            epochs: 4,
            batch_size: 32,
            ..Default::default()
        })) as Box<dyn EventDetector>
    };
    let config = StreamConfig {
        shards: 1,
        window_secs: 1.0,
        autoscale: Some(AutoscalePolicy {
            min_shards: 1,
            max_shards: 3,
            scale_up_pps: 400.0,
            scale_down_pps: 150.0,
            cooldown_windows: 0,
            vnodes: 16,
            ..Default::default()
        }),
        ..Default::default()
    };
    (factory, config)
}

/// The elastic-sharding acceptance invariant, on a real flow-format system:
/// a bursty replay with autoscaling enabled — scale-ups mid-burst,
/// scale-downs in the quiet phases, flow state migrating every time — emits
/// the bitwise-identical sorted per-flow score multiset of the single-shard
/// run, with the pool verifiably moving in both directions.
#[test]
fn autoscaled_bursty_replay_is_score_parity_with_single_shard() {
    let packets = bursty_sessions(10);
    let split = packets.partition_point(|lp| lp.packet.ts < Timestamp::from_micros(2_000_000));
    let (warmup, eval) = packets.split_at(split);
    let (factory, auto_config) = autoscale_fixture();

    let single = run_stream(
        &factory,
        warmup,
        VecSource::new("bursty", eval.to_vec()),
        &StreamConfig { window_secs: 1.0, ..Default::default() },
    )
    .expect("single-shard run");
    assert!(single.report.eval_items > 0, "flow events must be scored");
    assert!(single.report.scale_events.is_empty());

    // The autoscaled run pulls through a BoundedSource, as a live deployment
    // would decouple capture from scoring.
    let auto = run_stream(
        &factory,
        warmup,
        BoundedSource::spawn(VecSource::new("bursty", eval.to_vec()), 256),
        &auto_config,
    )
    .expect("autoscaled run");

    let ups = auto.report.scale_events.iter().filter(|e| e.is_scale_up()).count();
    let downs = auto.report.scale_events.iter().filter(|e| e.is_scale_down()).count();
    assert!(ups >= 1, "attack bursts must scale the pool up: {:?}", auto.report.scale_events);
    assert!(downs >= 1, "quiet phases must scale the pool down");
    assert!(
        auto.report.scale_events.iter().any(|e| e.migrated_flows > 0),
        "rebalances must migrate flow state"
    );

    let mut expected = single.scores.clone();
    let mut got = auto.scores.clone();
    expected.sort_by(f64::total_cmp);
    got.sort_by(f64::total_cmp);
    assert_eq!(expected.len(), got.len(), "autoscaling changed the flow-event count");
    for (i, (e, g)) in expected.iter().zip(&got).enumerate() {
        assert_eq!(
            e.to_bits(),
            g.to_bits(),
            "sorted flow score {i} diverged: single-shard {e} vs autoscaled {g}"
        );
    }
}

/// Scale decisions key off the traffic timeline, so the whole elastic run —
/// scores, metrics, and the scale trajectory itself — replays identically.
#[test]
fn autoscaled_runs_replay_deterministically() {
    let packets = bursty_sessions(8);
    let split = packets.partition_point(|lp| lp.packet.ts < Timestamp::from_micros(2_000_000));
    let (warmup, eval) = packets.split_at(split);
    let (factory, config) = autoscale_fixture();

    let run = |packets: Vec<LabeledPacket>| {
        run_stream(&factory, warmup, VecSource::new("bursty", packets), &config)
            .expect("autoscaled run")
    };
    let first = run(eval.to_vec());
    let second = run(eval.to_vec());
    assert_eq!(first.scores, second.scores);
    assert_eq!(first.report.metrics, second.report.metrics);
    let shape = |r: &StreamRun| {
        r.report
            .scale_events
            .iter()
            .map(|e| (e.seq, e.window, e.from_shards, e.to_shards, e.migrated_flows))
            .collect::<Vec<_>>()
    };
    assert_eq!(shape(&first), shape(&second), "scale trajectory must be deterministic");
    assert!(!first.report.scale_events.is_empty(), "the fixture policy must fire");
}

#[test]
fn use_packet_source_trait_directly() {
    let scenario = scenarios::stratosphere_iot(ScenarioScale::Tiny);
    let mut source = ScenarioSource::new(&scenario, 1);
    assert_eq!(source.name(), "Stratosphere");
    let first = source.next_packet().expect("pull").expect("non-empty");
    let second = source.next_packet().expect("pull").expect("non-empty");
    assert!(first.packet.ts <= second.packet.ts);
}
