//! Streaming ↔ batch parity: the invariant that makes streaming results
//! citable next to batch results.
//!
//! A single-shard streaming run of Kitsune must reproduce the batch
//! `evaluate()` pipeline *exactly* — same per-packet scores (bitwise; both
//! paths share one `fit`/`score_packet` code path), hence the same
//! calibrated threshold, alert decisions, and metrics. Multi-shard runs
//! repartition detector state, so their scores may legitimately differ —
//! but flow→shard routing must be deterministic and keep every flow whole
//! on one shard, so decisions are reproducible and per-flow consistent.

use std::collections::HashSet;

use idsbench::core::preprocess::Pipeline;
use idsbench::core::runner::{evaluate, EvalConfig};
use idsbench::core::{Dataset, Detector, StreamingDetector};
use idsbench::datasets::{scenarios, ScenarioScale};
use idsbench::flow::FlowKey;
use idsbench::kitsune::Kitsune;
use idsbench::net::ParsedPacket;
use idsbench::stream::{run_stream, PacketSource, ScenarioSource, StreamConfig, StreamRun};

fn kitsune() -> Box<dyn StreamingDetector> {
    Box::new(Kitsune::default())
}

fn stream_kitsune(seed: u64, shards: usize) -> StreamRun {
    let scenario = scenarios::stratosphere_iot(ScenarioScale::Tiny);
    let (warmup, source) = ScenarioSource::new(&scenario, seed).split_warmup(0.3);
    run_stream(&kitsune, &warmup, source, &StreamConfig { shards, ..Default::default() })
        .expect("streaming run")
}

#[test]
fn single_shard_scores_match_batch_bitwise() {
    let scenario = scenarios::stratosphere_iot(ScenarioScale::Tiny);
    let config = EvalConfig::default();

    // The batch pipeline's own preprocessing, then a direct score call.
    let pipeline = Pipeline::new(config.pipeline).expect("valid default pipeline");
    let input = pipeline
        .prepare(&scenario.info().name, scenario.generate(config.dataset_seed))
        .expect("preprocess");
    let batch_scores = Detector::score(&mut Kitsune::default(), &input);

    let run = stream_kitsune(config.dataset_seed, 1);
    assert_eq!(run.scores.len(), batch_scores.len());
    for (i, (stream, batch)) in run.scores.iter().zip(&batch_scores).enumerate() {
        assert_eq!(
            stream.to_bits(),
            batch.to_bits(),
            "score {i} diverged: streaming {stream} vs batch {batch}"
        );
    }
    // Identical scores + identical calibration rule ⇒ identical decisions.
    let labels: Vec<bool> = input.eval_packets.iter().map(|p| p.is_attack()).collect();
    assert_eq!(run.labels, labels);
}

#[test]
fn single_shard_report_matches_batch_experiment_within_1e9() {
    let scenario = scenarios::stratosphere_iot(ScenarioScale::Tiny);
    let config = EvalConfig::default();
    let batch = evaluate(&mut Kitsune::default(), &scenario, &config).expect("batch evaluate");

    let run = stream_kitsune(config.dataset_seed, 1);
    let streamed = run.report.to_experiment();

    assert_eq!(streamed.eval_items, batch.eval_items);
    let close = |a: f64, b: f64, what: &str| {
        assert!((a - b).abs() <= 1e-9, "{what}: streaming {a} vs batch {b}");
    };
    close(streamed.threshold, batch.threshold, "threshold");
    close(streamed.metrics.accuracy, batch.metrics.accuracy, "accuracy");
    close(streamed.metrics.precision, batch.metrics.precision, "precision");
    close(streamed.metrics.recall, batch.metrics.recall, "recall");
    close(streamed.metrics.f1, batch.metrics.f1, "f1");
    close(streamed.auc, batch.auc, "auc");
    close(streamed.false_positive_rate, batch.false_positive_rate, "fpr");
    close(streamed.attack_share, batch.attack_share, "attack share");
    assert_eq!(streamed.family_recall, batch.family_recall, "per-family recall");
}

#[test]
fn helad_single_shard_scores_match_batch_bitwise() {
    use idsbench::helad::Helad;
    let scenario = scenarios::stratosphere_iot(ScenarioScale::Tiny);
    let config = EvalConfig::default();
    let pipeline = Pipeline::new(config.pipeline).expect("valid default pipeline");
    let input = pipeline
        .prepare(&scenario.info().name, scenario.generate(config.dataset_seed))
        .expect("preprocess");
    let batch_scores = Detector::score(&mut Helad::default(), &input);

    let (warmup, source) = ScenarioSource::new(&scenario, config.dataset_seed).split_warmup(0.3);
    let run = run_stream(
        &|| Box::new(Helad::default()) as Box<dyn StreamingDetector>,
        &warmup,
        source,
        &StreamConfig::default(),
    )
    .expect("streaming run");
    assert_eq!(run.scores.len(), batch_scores.len());
    for (i, (stream, batch)) in run.scores.iter().zip(&batch_scores).enumerate() {
        assert_eq!(
            stream.to_bits(),
            batch.to_bits(),
            "HELAD score {i} diverged: streaming {stream} vs batch {batch}"
        );
    }
}

#[test]
fn multi_shard_runs_are_deterministic_and_flow_consistent() {
    let first = stream_kitsune(0, 4);
    let second = stream_kitsune(0, 4);

    // Determinism: identical routing and per-shard state ⇒ identical scores.
    assert_eq!(first.scores, second.scores);
    assert_eq!(first.report.metrics, second.report.metrics);

    // Flow consistency: every canonical flow lives whole on one shard, so
    // the per-shard distinct-flow counts add up to the global flow count.
    let scenario = scenarios::stratosphere_iot(ScenarioScale::Tiny);
    let (_, mut source) = ScenarioSource::new(&scenario, 0).split_warmup(0.3);
    let mut global_flows: HashSet<FlowKey> = HashSet::new();
    while let Some(lp) = source.next_packet().expect("source") {
        if let Ok(parsed) = ParsedPacket::parse(&lp.packet) {
            if let Some(key) = FlowKey::from_packet(&parsed) {
                global_flows.insert(key.canonical().0);
            }
        }
    }
    let sharded_flows: usize = first.report.shard_stats.iter().map(|s| s.flows).sum();
    assert_eq!(sharded_flows, global_flows.len(), "a flow was split across shards");
    assert!(
        first.report.shard_stats.iter().filter(|s| s.packets > 0).count() > 1,
        "the Tiny trace must spread across more than one shard"
    );
}

#[test]
fn use_packet_source_trait_directly() {
    let scenario = scenarios::stratosphere_iot(ScenarioScale::Tiny);
    let mut source = ScenarioSource::new(&scenario, 1);
    assert_eq!(source.name(), "Stratosphere");
    let first = source.next_packet().expect("pull").expect("non-empty");
    let second = source.next_packet().expect("pull").expect("non-empty");
    assert!(first.packet.ts <= second.packet.ts);
}
