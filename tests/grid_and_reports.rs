//! Integration tests for the parallel grid runner and the table renderers,
//! exercising the same code path as the Table IV regeneration binary.

use idsbench::core::report;
use idsbench::core::runner::{run_grid, DetectorFactory, EvalConfig};
use idsbench::core::{registry, Dataset, EventDetector};
use idsbench::datasets::{scenarios, ScenarioScale};
use idsbench::dnn::baselines::DecisionTree;
use idsbench::slips::Slips;

#[test]
fn grid_produces_detector_major_table() {
    let a = scenarios::bot_iot(ScenarioScale::Tiny);
    let b = scenarios::stratosphere_iot(ScenarioScale::Tiny);
    let datasets: Vec<&dyn Dataset> = vec![&a, &b];
    let detectors: Vec<(String, DetectorFactory)> = vec![
        ("Slips".into(), Box::new(|| Box::new(Slips::default()) as Box<dyn EventDetector>)),
        (
            "DecisionTree".into(),
            Box::new(|| Box::new(DecisionTree::default()) as Box<dyn EventDetector>),
        ),
    ];
    let experiments = run_grid(&detectors, &datasets, &EvalConfig::default()).unwrap();
    assert_eq!(experiments.len(), 4);
    let cells: Vec<(&str, &str)> =
        experiments.iter().map(|e| (e.detector.as_str(), e.dataset.as_str())).collect();
    assert_eq!(
        cells,
        vec![
            ("Slips", "BoT IoT"),
            ("Slips", "Stratosphere"),
            ("DecisionTree", "BoT IoT"),
            ("DecisionTree", "Stratosphere"),
        ]
    );

    // The renderers accept the grid output directly.
    let table = report::render_table4(&experiments);
    assert!(table.contains("**IDS: Slips**"));
    assert!(table.contains("**IDS: DecisionTree**"));
    let csv = report::render_csv(&experiments);
    assert_eq!(csv.lines().count(), 5); // header + 4 cells
}

#[test]
fn registry_tables_render() {
    let t1 = registry::render_table1();
    assert_eq!(t1.lines().count(), 2 + 15, "15 investigated systems");
    assert!(t1.contains("Kitsune"));
    assert!(t1.contains("Used in Paper"));
    let t2 = registry::render_table2();
    assert_eq!(t2.lines().count(), 2 + 5, "5 selected datasets");
    let t3 = registry::render_table3();
    assert_eq!(t3.lines().count(), 2 + 11, "11 excluded dataset rows");
}

#[test]
fn scenario_names_align_with_registry_naming() {
    // Table IV rows must be producible for each scenario name used by the
    // bench harness.
    let names: Vec<String> = scenarios::table4_scenarios(ScenarioScale::Tiny)
        .iter()
        .map(|s| s.info().name.clone())
        .collect();
    assert_eq!(names, vec!["UNSW-NB15", "BoT IoT", "CICIDS2017", "Stratosphere", "Mirai"]);
}
