//! Pins a bit-level digest of every batch score for all four systems.
//!
//! The scoring hot path is under continuous optimisation — blocked matmul
//! kernels, packed weight layouts, fused activation passes, fast-hash state
//! maps — and every one of those rewrites promises *bitwise identical*
//! scores. This test makes that promise enforceable: the digests below were
//! produced by the straightforward pre-optimisation implementations, and
//! any kernel change that silently perturbs a single bit of a single score
//! fails here.
//!
//! If a change is *supposed* to alter scores (a detector fix, a scenario
//! change, a different default), re-pin by running
//! `cargo run --release --example score_digest` and updating the constants
//! — deliberately, in the same commit, with the reason in its message.
//!
//! The pinned bits are a function of the platform's libm (`tanh`/`exp`
//! resolve to the system math library, and implementations differ by
//! ULPs) *and* of the optimisation level (pre-existing opt-sensitive ops
//! like `powi` fold differently under `-O`), so the pinning test only runs
//! in release mode on `linux-gnu` — the environment the constants were
//! produced under; CI runs it explicitly via
//! `cargo test --release --test score_digest`. Every other configuration
//! still verifies self-consistency (two replays agree bit-for-bit).

use idsbench::core::preprocess::Pipeline;
use idsbench::core::runner::{replay, EvalConfig};
use idsbench::core::{Dataset, EventDetector};
use idsbench::datasets::{scenarios, ScenarioScale};
use idsbench::dnn::Dnn;
use idsbench::helad::Helad;
use idsbench::kitsune::Kitsune;
use idsbench::slips::Slips;
use idsbench::telemetry::{Stage, Telemetry, TelemetryConfig};

/// `(detector, scored events, digest)` for the Tiny Stratosphere scenario
/// with default `EvalConfig` on `linux-gnu`, release profile — the same
/// run `examples/score_digest.rs` prints under `--release`.
#[cfg(all(target_os = "linux", target_env = "gnu", not(debug_assertions)))]
const PINNED: [(&str, usize, u64); 4] = [
    ("Kitsune", 3843, 0xbee0_d72c_99be_4018),
    ("HELAD", 3843, 0x5316_207f_2b23_b7b4),
    ("DNN", 240, 0x7368_c0ba_5647_599b),
    ("Slips", 240, 0x1f30_458e_5d0a_79fa),
];

/// The digest fold: rotate-xor over the raw bits of each score in replay
/// order (must match `examples/score_digest.rs`).
fn digest_of(scores: &[f64]) -> u64 {
    let mut digest = 0u64;
    for s in scores {
        digest = digest.rotate_left(7) ^ s.to_bits();
    }
    digest
}

/// Runs the canonical replay and returns `(name, events, digest)` per
/// system. With `telemetry` supplied, every detector carries a sampled
/// inference probe during the replay — the digests must not notice.
fn replay_digests(telemetry: Option<&Telemetry>) -> Vec<(String, usize, u64)> {
    let scenario = scenarios::stratosphere_iot(ScenarioScale::Tiny);
    let config = EvalConfig::default();
    let pipeline = Pipeline::new(config.pipeline).expect("pipeline");
    let input = pipeline
        .prepare_events(&scenario.info().name, scenario.generate(config.dataset_seed))
        .expect("preprocess");
    let mut kitsune = Kitsune::default();
    let mut helad = Helad::default();
    let mut dnn = Dnn::default();
    let mut slips = Slips::default();
    if let Some(telemetry) = telemetry {
        kitsune.attach_inference_probe(telemetry.span(Stage::Infer, Some(0)));
        helad.attach_inference_probe(telemetry.span(Stage::Infer, Some(1)));
        dnn.attach_inference_probe(telemetry.span(Stage::Infer, Some(2)));
        slips.attach_inference_probe(telemetry.span(Stage::Infer, Some(3)));
    }
    let detectors: Vec<Box<dyn EventDetector>> =
        vec![Box::new(kitsune), Box::new(helad), Box::new(dnn), Box::new(slips)];
    detectors
        .into_iter()
        .map(|mut detector| {
            let scores = replay(detector.as_mut(), &input).expect("replay").scores;
            (detector.name().to_string(), scores.len(), digest_of(&scores))
        })
        .collect()
}

#[cfg(all(target_os = "linux", target_env = "gnu", not(debug_assertions)))]
#[test]
fn batch_scores_are_bitwise_pinned() {
    let digests = replay_digests(None);
    assert_eq!(digests.len(), PINNED.len());
    for ((name, events, digest), &(want_name, want_events, pinned)) in
        digests.into_iter().zip(PINNED.iter())
    {
        assert_eq!(name, want_name, "roster order changed");
        assert_eq!(events, want_events, "{name}: scored-event count changed");
        assert_eq!(
            digest, pinned,
            "{name}: score digest {digest:016x} != pinned {pinned:016x} — a kernel change \
             altered scores bit-for-bit (see module docs for how to re-pin deliberately)"
        );
    }
}

/// Platform-independent half of the invariant: the replay is a pure
/// function — two runs agree bit-for-bit regardless of which libm the
/// platform links.
#[test]
fn batch_scores_are_self_consistent() {
    assert_eq!(replay_digests(None), replay_digests(None));
}

/// Telemetry half of the invariant: attaching sampled inference probes to
/// every detector changes no score bit — telemetry observes the replay, it
/// never steers it.
#[test]
fn telemetry_probes_do_not_perturb_scores() {
    let telemetry = Telemetry::new(TelemetryConfig { sample_every: 4, ..Default::default() });
    let instrumented = replay_digests(Some(&telemetry));
    assert_eq!(instrumented, replay_digests(None), "probes perturbed a score digest");
    for probe in 0..4 {
        assert!(
            !telemetry.stage(Stage::Infer, Some(probe)).histogram().is_empty(),
            "probe {probe} sampled no inference spans"
        );
    }
}
