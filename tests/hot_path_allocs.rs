//! Pins the tentpole invariant of the allocation-free scoring hot path:
//! once Kitsune and HELAD are fitted and warmed up, scoring a packet
//! performs **zero** heap allocations.
//!
//! The test binary installs [`CountingAllocator`] as its global allocator,
//! fits each system, replays a warmup slice so every per-entity map entry
//! and every scratch buffer reaches its steady-state capacity, and then
//! counts allocator traffic across a measured scoring pass over traffic on
//! the *same* flows (fresh timestamps, so damped statistics keep evolving
//! forward in time, exactly like a long-running deployment).
//!
//! Everything runs inside a single `#[test]` because the counters are
//! process-global: parallel test threads would bleed allocations into each
//! other's measurement windows.
//!
//! The invariant is pinned **with telemetry enabled** too: a live counter,
//! sampled inference probes, and per-stage histograms join the measured
//! window, and the budget stays zero — observability must be free on the
//! hot path.

use idsbench::core::allocwatch::{allocation_snapshot, CountingAllocator};
use idsbench::core::{
    Event, EventDetector, FlowEventAssembler, Label, LabeledFlow, LabeledPacket, ParsedView,
    TrainView,
};
use idsbench::dnn::Dnn;
use idsbench::flow::FlowTableConfig;
use idsbench::helad::Helad;
use idsbench::kitsune::Kitsune;
use idsbench::net::{MacAddr, PacketBuilder, TcpFlags, Timestamp};
use idsbench::slips::Slips;
use idsbench::telemetry::{Counter, Stage, Telemetry, TelemetryConfig};
use std::net::Ipv4Addr;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// Periodic traffic over a fixed set of flows: four devices talking to one
/// server on stable 5-tuples. Replaying later index ranges reuses the same
/// channels/sockets with later timestamps, so a warmed detector sees no new
/// entities — the steady state of a deployment.
fn packet_at(i: u64) -> ParsedView {
    let device = (i % 4) as u8 + 1;
    let p = PacketBuilder::new()
        .ethernet(MacAddr::from_host_id(u32::from(device)), MacAddr::from_host_id(100))
        .ipv4(Ipv4Addr::new(10, 0, 0, device), Ipv4Addr::new(10, 0, 0, 100))
        .tcp(40_000 + u16::from(device), 1883, TcpFlags::PSH | TcpFlags::ACK)
        .payload_len(64 + (i % 32) as usize)
        .build(Timestamp::from_micros(i * 10_000));
    ParsedView::from_packet(LabeledPacket::new(p, Label::Benign))
}

/// Scores `measure` after `warmup` and returns the allocator traffic of the
/// measured pass.
fn measured_allocations(
    detector: &mut dyn EventDetector,
    warmup: &[ParsedView],
    measure: &[ParsedView],
) -> (u64, u64) {
    for view in warmup {
        let score = detector.on_event(&Event::Packet(view)).expect("packet event scored");
        assert!(score.is_finite(), "{}: warmup score must be finite", detector.name());
    }
    let before = allocation_snapshot();
    let mut checksum = 0.0;
    for view in measure {
        checksum += detector.on_event(&Event::Packet(view)).expect("packet event scored");
    }
    let after = allocation_snapshot();
    assert!(checksum.is_finite(), "{}: scores must stay finite", detector.name());
    (after.allocations_since(&before), after.bytes_since(&before))
}

/// Like [`measured_allocations`], but with live telemetry on the budget:
/// bumps `packets` once per scored packet (exactly what the stream feeder
/// does) while the detector's attached inference probe samples spans.
fn measured_allocations_instrumented(
    detector: &mut dyn EventDetector,
    warmup: &[ParsedView],
    measure: &[ParsedView],
    packets: &Counter,
) -> (u64, u64) {
    for view in warmup {
        let score = detector.on_event(&Event::Packet(view)).expect("packet event scored");
        assert!(score.is_finite(), "{}: warmup score must be finite", detector.name());
    }
    let before = allocation_snapshot();
    let mut checksum = 0.0;
    for view in measure {
        packets.inc();
        checksum += detector.on_event(&Event::Packet(view)).expect("packet event scored");
    }
    let after = allocation_snapshot();
    assert!(checksum.is_finite(), "{}: scores must stay finite", detector.name());
    (after.allocations_since(&before), after.bytes_since(&before))
}

#[test]
fn steady_state_scoring_allocates_nothing() {
    // Sanity: the counting allocator must actually be live in this binary,
    // otherwise the zero assertions below would be vacuous.
    let before = allocation_snapshot();
    let probe: Vec<u8> = Vec::with_capacity(4096);
    std::hint::black_box(&probe);
    let after = allocation_snapshot();
    assert!(after.allocations_since(&before) >= 1, "counting allocator is not installed");
    assert!(after.bytes_since(&before) >= 4096);
    drop(probe);

    let views: Vec<ParsedView> = (0..2_000).map(packet_at).collect();
    let (train, rest) = views.split_at(600);
    let (warm, measure) = rest.split_at(700);
    let train = TrainView { packets: train.to_vec(), flows: Vec::new() };

    let mut kitsune = Kitsune::default();
    kitsune.fit(&train);
    let (allocs, bytes) = measured_allocations(&mut kitsune, warm, measure);
    assert_eq!(
        allocs,
        0,
        "Kitsune steady-state scoring must not allocate ({allocs} allocations, {bytes} bytes \
         over {} packets)",
        measure.len()
    );

    let mut helad = Helad::default();
    helad.fit(&train);
    let (allocs, bytes) = measured_allocations(&mut helad, warm, measure);
    assert_eq!(
        allocs,
        0,
        "HELAD steady-state scoring must not allocate ({allocs} allocations, {bytes} bytes \
         over {} packets)",
        measure.len()
    );

    // ---- Same pass with telemetry attached: observability must be free ----
    let telemetry = Telemetry::new(TelemetryConfig { sample_every: 8, ..Default::default() });
    let packets = telemetry.counter("packets_total");

    let mut kitsune = Kitsune::default();
    kitsune.fit(&train);
    kitsune.attach_inference_probe(telemetry.span(Stage::Infer, Some(0)));
    let (allocs, bytes) = measured_allocations_instrumented(&mut kitsune, warm, measure, &packets);
    assert_eq!(
        allocs, 0,
        "Kitsune with telemetry probes must not allocate ({allocs} allocations, {bytes} bytes)"
    );

    let mut helad = Helad::default();
    helad.fit(&train);
    helad.attach_inference_probe(telemetry.span(Stage::Infer, Some(1)));
    let (allocs, bytes) = measured_allocations_instrumented(&mut helad, warm, measure, &packets);
    assert_eq!(
        allocs, 0,
        "HELAD with telemetry probes must not allocate ({allocs} allocations, {bytes} bytes)"
    );

    assert_eq!(packets.get(), 2 * measure.len() as u64, "counter must see every measured packet");
    assert!(
        !telemetry.stage(Stage::Infer, Some(0)).histogram().is_empty(),
        "Kitsune's sampled inference spans must have recorded"
    );
    assert!(
        !telemetry.stage(Stage::Infer, Some(1)).histogram().is_empty(),
        "HELAD's sampled inference spans must have recorded"
    );

    // ---- Flow-format detectors: the eviction path must be clean too ----
    flow_detectors_evict_without_allocating();
}

/// One complete TCP session (handshake, data, orderly close) on a stable
/// per-device 5-tuple to an external service. Each later session on the
/// same tuple ends the previous one's TIME_WAIT, so the flow table emits
/// exactly one eviction per session — recurring evictions over a fixed
/// entity set, the steady state of the flow-input hot path. The whole
/// trace spans well under one Slips profile window, so no per-window
/// counter state is minted mid-measurement.
fn session_at(s: u64) -> Vec<ParsedView> {
    let device = (s % 2) as u8 + 1;
    let src = Ipv4Addr::new(10, 0, 0, device);
    let dst = Ipv4Addr::new(198, 51, 100, 7);
    let sport = 40_000 + u16::from(device);
    let base_micros = s * 5_000;
    let mut views = Vec::new();
    let mut push = |flags: TcpFlags, forward: bool, payload: usize, offset: u64| {
        let (s_ip, d_ip, s_mac, d_mac, sp, dp) = if forward {
            (src, dst, u32::from(device), 99, sport, 8080)
        } else {
            (dst, src, 99, u32::from(device), 8080, sport)
        };
        let p = PacketBuilder::new()
            .ethernet(MacAddr::from_host_id(s_mac), MacAddr::from_host_id(d_mac))
            .ipv4(s_ip, d_ip)
            .tcp(sp, dp, flags)
            .payload_len(payload)
            .build(Timestamp::from_micros(base_micros + offset));
        views.push(ParsedView::from_packet(LabeledPacket::new(p, Label::Benign)));
    };
    push(TcpFlags::SYN, true, 0, 0);
    push(TcpFlags::SYN | TcpFlags::ACK, false, 0, 400);
    push(TcpFlags::PSH | TcpFlags::ACK, true, 120, 800);
    push(TcpFlags::FIN | TcpFlags::ACK, true, 0, 1_200);
    push(TcpFlags::FIN | TcpFlags::ACK, false, 0, 1_600);
    views
}

/// Replays `views` through detector + per-driver flow assembler (the exact
/// event order both drivers produce), returning `(allocations, bytes,
/// evictions)` of the pass.
fn replay_flow_events(
    detector: &mut dyn EventDetector,
    assembler: &mut FlowEventAssembler,
    evicted: &mut Vec<LabeledFlow>,
    views: &[ParsedView],
) -> (u64, u64, usize) {
    let before = allocation_snapshot();
    let mut evictions = 0usize;
    let mut checksum = 0.0;
    for view in views {
        assert_eq!(detector.on_event(&Event::Packet(view)), None, "flow detectors skip packets");
        assembler.observe(view, |flow| evicted.push(flow));
        for flow in evicted.drain(..) {
            evictions += 1;
            checksum += detector.on_event(&Event::FlowEvicted(&flow)).expect("flow event scored");
        }
    }
    let after = allocation_snapshot();
    assert!(checksum.is_finite());
    (after.allocations_since(&before), after.bytes_since(&before), evictions)
}

/// Warmed DNN and Slips must score recurring flow evictions without heap
/// allocations — per eviction, not just per packet: the eviction machinery
/// (flow table, label fold, feature vector, evidence accumulation) is on
/// the budget alongside the model inference. Both run with sampled
/// telemetry inference probes attached, so the instrumented eviction path
/// is what gets pinned.
fn flow_detectors_evict_without_allocating() {
    let sessions: Vec<Vec<ParsedView>> = (0..1_000).map(session_at).collect();
    // 100 sessions to fit on, 600 to reach steady state (group histories
    // hit their 256-entry caps), 300 measured.
    let train_views: Vec<ParsedView> = sessions[..100].iter().flatten().cloned().collect();
    let train = TrainView::assemble(train_views, FlowTableConfig::default());

    let telemetry = Telemetry::new(TelemetryConfig { sample_every: 8, ..Default::default() });
    let mut dnn = Dnn::default();
    dnn.attach_inference_probe(telemetry.span(Stage::Infer, Some(0)));
    let mut slips = Slips::default();
    slips.attach_inference_probe(telemetry.span(Stage::Infer, Some(1)));

    for mut detector in
        [Box::new(dnn) as Box<dyn EventDetector>, Box::new(slips) as Box<dyn EventDetector>]
    {
        let name = detector.name().to_string();
        detector.fit(&train);
        let mut assembler = FlowEventAssembler::new(FlowTableConfig::default());
        let mut evicted = Vec::new();
        for session in &sessions[100..700] {
            replay_flow_events(detector.as_mut(), &mut assembler, &mut evicted, session);
        }
        let (mut allocs, mut bytes, mut evictions) = (0, 0, 0);
        for session in &sessions[700..] {
            let (a, b, e) =
                replay_flow_events(detector.as_mut(), &mut assembler, &mut evicted, session);
            allocs += a;
            bytes += b;
            evictions += e;
        }
        assert!(evictions >= 299, "{name}: expected ~one eviction per session, got {evictions}");
        assert_eq!(
            allocs, 0,
            "{name}: warmed eviction path must not allocate ({allocs} allocations, {bytes} \
             bytes over {evictions} evictions)"
        );
    }

    for shard in [0, 1] {
        assert!(
            !telemetry.stage(Stage::Infer, Some(shard)).histogram().is_empty(),
            "sampled inference spans must have recorded for probe {shard}"
        );
    }
}
