//! Pins the tentpole invariant of the allocation-free scoring hot path:
//! once Kitsune and HELAD are fitted and warmed up, scoring a packet
//! performs **zero** heap allocations.
//!
//! The test binary installs [`CountingAllocator`] as its global allocator,
//! fits each system, replays a warmup slice so every per-entity map entry
//! and every scratch buffer reaches its steady-state capacity, and then
//! counts allocator traffic across a measured scoring pass over traffic on
//! the *same* flows (fresh timestamps, so damped statistics keep evolving
//! forward in time, exactly like a long-running deployment).
//!
//! Everything runs inside a single `#[test]` because the counters are
//! process-global: parallel test threads would bleed allocations into each
//! other's measurement windows.

use idsbench::core::allocwatch::{allocation_snapshot, CountingAllocator};
use idsbench::core::{Event, EventDetector, Label, LabeledPacket, ParsedView, TrainView};
use idsbench::helad::Helad;
use idsbench::kitsune::Kitsune;
use idsbench::net::{MacAddr, PacketBuilder, TcpFlags, Timestamp};
use std::net::Ipv4Addr;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// Periodic traffic over a fixed set of flows: four devices talking to one
/// server on stable 5-tuples. Replaying later index ranges reuses the same
/// channels/sockets with later timestamps, so a warmed detector sees no new
/// entities — the steady state of a deployment.
fn packet_at(i: u64) -> ParsedView {
    let device = (i % 4) as u8 + 1;
    let p = PacketBuilder::new()
        .ethernet(MacAddr::from_host_id(u32::from(device)), MacAddr::from_host_id(100))
        .ipv4(Ipv4Addr::new(10, 0, 0, device), Ipv4Addr::new(10, 0, 0, 100))
        .tcp(40_000 + u16::from(device), 1883, TcpFlags::PSH | TcpFlags::ACK)
        .payload_len(64 + (i % 32) as usize)
        .build(Timestamp::from_micros(i * 10_000));
    ParsedView::from_packet(LabeledPacket::new(p, Label::Benign))
}

/// Scores `measure` after `warmup` and returns the allocator traffic of the
/// measured pass.
fn measured_allocations(
    detector: &mut dyn EventDetector,
    warmup: &[ParsedView],
    measure: &[ParsedView],
) -> (u64, u64) {
    for view in warmup {
        let score = detector.on_event(&Event::Packet(view)).expect("packet event scored");
        assert!(score.is_finite(), "{}: warmup score must be finite", detector.name());
    }
    let before = allocation_snapshot();
    let mut checksum = 0.0;
    for view in measure {
        checksum += detector.on_event(&Event::Packet(view)).expect("packet event scored");
    }
    let after = allocation_snapshot();
    assert!(checksum.is_finite(), "{}: scores must stay finite", detector.name());
    (after.allocations_since(&before), after.bytes_since(&before))
}

#[test]
fn steady_state_scoring_allocates_nothing() {
    // Sanity: the counting allocator must actually be live in this binary,
    // otherwise the zero assertions below would be vacuous.
    let before = allocation_snapshot();
    let probe: Vec<u8> = Vec::with_capacity(4096);
    std::hint::black_box(&probe);
    let after = allocation_snapshot();
    assert!(after.allocations_since(&before) >= 1, "counting allocator is not installed");
    assert!(after.bytes_since(&before) >= 4096);
    drop(probe);

    let views: Vec<ParsedView> = (0..2_000).map(packet_at).collect();
    let (train, rest) = views.split_at(600);
    let (warm, measure) = rest.split_at(700);
    let train = TrainView { packets: train.to_vec(), flows: Vec::new() };

    let mut kitsune = Kitsune::default();
    kitsune.fit(&train);
    let (allocs, bytes) = measured_allocations(&mut kitsune, warm, measure);
    assert_eq!(
        allocs,
        0,
        "Kitsune steady-state scoring must not allocate ({allocs} allocations, {bytes} bytes \
         over {} packets)",
        measure.len()
    );

    let mut helad = Helad::default();
    helad.fit(&train);
    let (allocs, bytes) = measured_allocations(&mut helad, warm, measure);
    assert_eq!(
        allocs,
        0,
        "HELAD steady-state scoring must not allocate ({allocs} allocations, {bytes} bytes \
         over {} packets)",
        measure.len()
    );
}
