//! Pins the epsilon-parity contract of the wide-lane f32 inference mode.
//!
//! The default `Precision::F64Bitwise` mode is covered by
//! `tests/score_digest.rs` — every score bit is pinned. The opt-in
//! `Precision::F32Wide` mode trades that bitwise guarantee for speed, and
//! this test pins exactly what it trades: for the canonical replay
//! (Tiny Stratosphere, default `EvalConfig`), every f32-mode score must
//! stay within a per-detector relative-error bound of its f64 twin, and
//! the *decisions* — which events cross each mode's own calibrated
//! quantile threshold — must be identical. Slips has no neural network,
//! so its f32-mode scores must be bit-for-bit unchanged.
//!
//! The bounds are deliberately loose relative to observed error (several
//! times headroom) but tight enough that a broken kernel — wrong lane
//! reduction, stale packed weights, an activation diverging — fails
//! immediately rather than drifting.

use idsbench::core::preprocess::Pipeline;
use idsbench::core::runner::{replay, EvalConfig};
use idsbench::core::{Dataset, EventDetector};
use idsbench::datasets::{scenarios, ScenarioScale};
use idsbench::dnn::{Dnn, DnnConfig};
use idsbench::helad::{Helad, HeladConfig};
use idsbench::kitsune::{Kitsune, KitsuneConfig};
use idsbench::nn::Precision;
use idsbench::slips::Slips;

/// Per-detector ceiling on the max relative error of f32-mode scores
/// against f64-mode scores over the canonical replay. Slips runs no f32
/// code at all, so its ceiling is exactly zero.
const ERROR_CEILINGS: [(&str, f64); 4] =
    [("Kitsune", 1e-3), ("HELAD", 1e-3), ("DNN", 1e-4), ("Slips", 0.0)];

/// Calibration quantile for the decision-parity half of the contract —
/// the default threshold policy's percentile.
const QUANTILE: f64 = 0.99;

fn canonical_scores(precision: Precision) -> Vec<(String, Vec<f64>)> {
    let scenario = scenarios::stratosphere_iot(ScenarioScale::Tiny);
    let config = EvalConfig::default();
    let pipeline = Pipeline::new(config.pipeline).expect("pipeline");
    let input = pipeline
        .prepare_events(&scenario.info().name, scenario.generate(config.dataset_seed))
        .expect("preprocess");
    let detectors: Vec<Box<dyn EventDetector>> = vec![
        Box::new(Kitsune::new(KitsuneConfig { precision, ..Default::default() })),
        Box::new(Helad::new(HeladConfig { precision, ..Default::default() })),
        Box::new(Dnn::new(DnnConfig { precision, ..Default::default() })),
        Box::new(Slips::default()),
    ];
    detectors
        .into_iter()
        .map(|mut detector| {
            let scores = replay(detector.as_mut(), &input).expect("replay").scores;
            (detector.name().to_string(), scores)
        })
        .collect()
}

/// Relative error with a small absolute floor in the denominator, so
/// near-zero scores compare on absolute terms instead of exploding.
fn rel_err(f64_score: f64, f32_score: f64) -> f64 {
    (f64_score - f32_score).abs() / f64_score.abs().max(1e-6)
}

/// The threshold the default calibration policy would pick from a score
/// stream: the empirical quantile by sorted rank.
fn quantile_threshold(scores: &[f64]) -> f64 {
    let mut sorted: Vec<f64> = scores.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite scores"));
    let rank = ((sorted.len() as f64 - 1.0) * QUANTILE).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

#[test]
fn wide_mode_scores_stay_within_pinned_epsilon() {
    let baseline = canonical_scores(Precision::F64Bitwise);
    let wide = canonical_scores(Precision::F32Wide);
    assert_eq!(baseline.len(), wide.len());

    for ((name, f64_scores), (wide_name, f32_scores)) in baseline.iter().zip(wide.iter()) {
        assert_eq!(name, wide_name, "roster order diverged between modes");
        assert_eq!(
            f64_scores.len(),
            f32_scores.len(),
            "{name}: wide mode scored a different event count"
        );
        let (_, ceiling) = ERROR_CEILINGS
            .iter()
            .find(|(who, _)| who == name)
            .expect("every detector has a pinned ceiling");

        if *ceiling == 0.0 {
            // No NN — the wide knob must be a no-op, bit for bit.
            for (i, (a, b)) in f64_scores.iter().zip(f32_scores).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "{name}: score {i} changed in wide mode");
            }
            continue;
        }

        let mut worst = 0.0f64;
        for (a, b) in f64_scores.iter().zip(f32_scores) {
            worst = worst.max(rel_err(*a, *b));
        }
        assert!(
            worst <= *ceiling,
            "{name}: max relative error {worst:.3e} exceeds pinned ceiling {ceiling:.0e}"
        );
    }
}

#[test]
fn wide_mode_threshold_decisions_are_identical() {
    let baseline = canonical_scores(Precision::F64Bitwise);
    let wide = canonical_scores(Precision::F32Wide);

    for ((name, f64_scores), (_, f32_scores)) in baseline.iter().zip(wide.iter()) {
        // Each mode calibrates on its own scores — the deployment story —
        // and the resulting alert vectors must agree on every event.
        let t64 = quantile_threshold(f64_scores);
        let t32 = quantile_threshold(f32_scores);
        let disagreements: Vec<usize> = f64_scores
            .iter()
            .zip(f32_scores)
            .enumerate()
            .filter(|(_, (a, b))| (**a >= t64) != (**b >= t32))
            .map(|(i, _)| i)
            .collect();
        assert!(
            disagreements.is_empty(),
            "{name}: {} of {} alert decisions flipped in wide mode (first at event {}); \
             thresholds f64={t64:.6e} f32={t32:.6e}",
            disagreements.len(),
            f64_scores.len(),
            disagreements[0],
        );
    }
}
