//! Pins the Event API's headline guarantee: **exactly one
//! `ParsedPacket::parse` per packet across the whole pipeline** — the
//! feeder routes, the flow table assembles, and every detector extracts
//! features from the same parsed view, with no re-parse anywhere.
//!
//! The check reads the process-wide parse counter
//! (`ParsedPacket::parse_calls`), so everything lives in one `#[test]`
//! function: a second concurrent test in this binary would race the
//! counter. (Other test binaries are separate processes and cannot
//! interfere.)

use idsbench::core::preprocess::Pipeline;
use idsbench::core::runner::{replay, EvalConfig};
use idsbench::core::{Dataset, EventDetector};
use idsbench::datasets::{scenarios, ScenarioScale};
use idsbench::kitsune::Kitsune;
use idsbench::net::ParsedPacket;
use idsbench::slips::Slips;
use idsbench::stream::{run_stream, ScenarioSource, StreamConfig};

#[test]
fn exactly_one_parse_per_packet_across_the_pipeline() {
    let scenario = scenarios::stratosphere_iot(ScenarioScale::Tiny);
    let config = EvalConfig::default();

    // Dataset generation synthesizes frames; it must not decode them.
    let before = ParsedPacket::parse_calls();
    let packets = scenario.generate(config.dataset_seed);
    let total = packets.len() as u64;
    assert!(total > 0);
    assert_eq!(
        ParsedPacket::parse_calls() - before,
        0,
        "generators must build packets without parsing them"
    );

    // Batch preprocessing parses each packet exactly once...
    let pipeline = Pipeline::new(config.pipeline).expect("valid default pipeline");
    let before = ParsedPacket::parse_calls();
    let input = pipeline.prepare_events("strat", packets).expect("preprocess");
    assert_eq!(
        ParsedPacket::parse_calls() - before,
        total,
        "prepare_events must parse each packet exactly once"
    );

    // ...and no detector re-parses during replay — neither the flow-event
    // path (Slips: flow table + eviction events) nor the packet path
    // (Kitsune: AfterImage features).
    let before = ParsedPacket::parse_calls();
    replay(&mut Slips::default(), &input).expect("slips replay");
    assert_eq!(
        ParsedPacket::parse_calls() - before,
        0,
        "flow-event replay must reuse the parsed views"
    );
    let before = ParsedPacket::parse_calls();
    replay(&mut Kitsune::default(), &input).expect("kitsune replay");
    assert_eq!(
        ParsedPacket::parse_calls() - before,
        0,
        "packet-event replay must reuse the parsed views"
    );

    // The sharded streaming executor holds the same invariant: the warmup
    // slice is parsed once (shared across shards, not per shard) and each
    // fed packet once in the feeder, regardless of shard count.
    for (factory, shards) in [
        (
            &(|| Box::new(Kitsune::default()) as Box<dyn EventDetector>)
                as &(dyn Fn() -> Box<dyn EventDetector> + Sync),
            2usize,
        ),
        (&(|| Box::new(Slips::default()) as Box<dyn EventDetector>), 1usize),
    ] {
        let (warmup, source) =
            ScenarioSource::new(&scenario, config.dataset_seed).split_warmup(0.3);
        // Generation is seeded: the lazy source carries `total - warmup`
        // packets, so warmup + eval together equal the realisation above.
        let expected = total;
        let before = ParsedPacket::parse_calls();
        run_stream(factory, &warmup, source, &StreamConfig { shards, ..Default::default() })
            .expect("streaming run");
        assert_eq!(
            ParsedPacket::parse_calls() - before,
            expected,
            "streaming must parse warmup + eval packets exactly once ({shards} shards)"
        );
    }
}
