//! Telemetry sinks: rendering a [`Telemetry`] hub to Prometheus text or a
//! JSON snapshot, periodically (to a file or stderr) or on demand over a
//! tiny `std::net::TcpListener` exposition endpoint.
//!
//! The exposition server is deliberately minimal — one nonblocking accept
//! loop on a background thread, HTTP/1.0, two routes: `GET /metrics`
//! returns Prometheus text exposition, anything else returns the JSON
//! snapshot. It exists so a live run can be scraped (by `curl`, a
//! Prometheus agent, or the CI smoke test) without pulling in an HTTP
//! stack.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::{StageHistogram, Telemetry};

/// Renders an `f64` the way every report does — delegated to the shared
/// [`idsbench_core::json`] helpers so the conventions can't drift apart.
pub(crate) fn json_f64(value: f64) -> String {
    idsbench_core::json::fmt_num(value)
}

fn stage_labels(stage: &StageHistogram) -> String {
    match stage.shard() {
        Some(shard) => format!("stage=\"{}\",shard=\"{shard}\"", stage.stage().name()),
        None => format!("stage=\"{}\",shard=\"feeder\"", stage.stage().name()),
    }
}

impl Telemetry {
    /// Prometheus text exposition (format 0.0.4) of every registered
    /// metric: counters, gauges, per-stage latency quantiles, and journal
    /// occupancy.
    pub fn prometheus_text(&self) -> String {
        let mut out = String::with_capacity(1024);
        for counter in self.registry().counters() {
            out.push_str(&format!("# TYPE idsbench_{} counter\n", counter.name()));
            out.push_str(&format!("idsbench_{} {}\n", counter.name(), counter.get()));
        }
        for gauge in self.registry().gauges() {
            out.push_str(&format!("# TYPE idsbench_{} gauge\n", gauge.name()));
            out.push_str(&format!("idsbench_{} {}\n", gauge.name(), gauge.get()));
        }
        let stages = self.stages();
        if !stages.is_empty() {
            out.push_str("# TYPE idsbench_stage_latency_nanos summary\n");
            for stage in &stages {
                let hist = stage.histogram().snapshot();
                let labels = stage_labels(stage);
                for (q, tag) in [(0.5, "0.5"), (0.99, "0.99")] {
                    out.push_str(&format!(
                        "idsbench_stage_latency_nanos{{{labels},quantile=\"{tag}\"}} {}\n",
                        hist.percentile(q)
                    ));
                }
                out.push_str(&format!(
                    "idsbench_stage_latency_nanos_count{{{labels}}} {}\n",
                    hist.len()
                ));
            }
        }
        let journal = self.journal().snapshot();
        out.push_str("# TYPE idsbench_journal_events gauge\n");
        out.push_str(&format!("idsbench_journal_events {}\n", journal.events.len()));
        out.push_str("# TYPE idsbench_journal_events_dropped gauge\n");
        out.push_str(&format!("idsbench_journal_events_dropped {}\n", journal.dropped));
        out
    }

    /// One JSON object capturing the whole hub: counters, gauges, stage
    /// percentiles, and the journal snapshot. Hand-rolled, `report.rs`
    /// conventions.
    pub fn json_snapshot(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\"counters\":{");
        for (i, counter) in self.registry().counters().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", counter.name(), counter.get()));
        }
        out.push_str("},\"gauges\":{");
        for (i, gauge) in self.registry().gauges().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", gauge.name(), gauge.get()));
        }
        out.push_str("},\"stages\":[");
        for (i, stage) in self.stages().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let hist = stage.histogram().snapshot();
            let shard = match stage.shard() {
                Some(shard) => format!("{shard}"),
                None => "\"feeder\"".to_string(),
            };
            out.push_str(&format!(
                "{{\"stage\":\"{}\",\"shard\":{shard},\"count\":{},\"p50_nanos\":{},\
                 \"p99_nanos\":{}}}",
                stage.stage().name(),
                hist.len(),
                hist.percentile(0.5),
                hist.percentile(0.99)
            ));
        }
        out.push_str("],\"journal\":");
        out.push_str(&self.journal().snapshot().to_json());
        out.push('}');
        out
    }
}

/// Where a periodic snapshot sink writes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotTarget {
    /// One JSON snapshot line to stderr per period.
    Stderr,
    /// Overwrite this file with the latest JSON snapshot each period.
    File(PathBuf),
}

/// A running telemetry sink — either a periodic snapshot writer or the
/// exposition server. Stops (and joins its thread) on drop.
#[derive(Debug)]
pub struct TelemetrySink {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
    addr: Option<SocketAddr>,
}

impl TelemetrySink {
    /// Spawns a thread writing a JSON snapshot to `target` every
    /// `interval`, plus once on shutdown. Write errors are swallowed —
    /// telemetry must never take the pipeline down.
    pub fn periodic(
        telemetry: Arc<Telemetry>,
        interval: Duration,
        target: SnapshotTarget,
    ) -> TelemetrySink {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            let write = |snapshot: &str| match &target {
                SnapshotTarget::Stderr => eprintln!("TELEMETRY {snapshot}"),
                SnapshotTarget::File(path) => {
                    let _ = std::fs::write(path, snapshot);
                }
            };
            let tick = Duration::from_millis(25).min(interval);
            let mut elapsed = Duration::ZERO;
            while !stop_flag.load(Ordering::Relaxed) {
                std::thread::sleep(tick);
                elapsed += tick;
                if elapsed >= interval {
                    elapsed = Duration::ZERO;
                    write(&telemetry.json_snapshot());
                }
            }
            write(&telemetry.json_snapshot());
        });
        TelemetrySink { stop, handle: Some(handle), addr: None }
    }

    /// Binds `addr` (e.g. `"127.0.0.1:0"`) and serves the exposition
    /// endpoint on a background thread: `GET /metrics` → Prometheus text,
    /// any other path → JSON snapshot.
    pub fn serve<A: ToSocketAddrs>(
        telemetry: Arc<Telemetry>,
        addr: A,
    ) -> std::io::Result<TelemetrySink> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            while !stop_flag.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        // One request per connection, best-effort: a
                        // malformed or slow client is dropped, never waited
                        // on.
                        let _ = serve_one(stream, &telemetry);
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(10)),
                }
            }
        });
        Ok(TelemetrySink { stop, handle: Some(handle), addr: Some(local) })
    }

    /// The bound address of the exposition server (`None` for periodic
    /// sinks). With port 0, this is where the OS actually put it.
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.addr
    }

    /// Stops the sink and joins its thread (also happens on drop).
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for TelemetrySink {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve_one(mut stream: TcpStream, telemetry: &Telemetry) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(250)))?;
    stream.set_write_timeout(Some(Duration::from_millis(250)))?;
    stream.set_nonblocking(false)?;
    let mut request = [0u8; 1024];
    let mut used = 0;
    // Read until the end of the request head (or the buffer/timeout gives
    // out) — enough for any GET line a scraper sends.
    while used < request.len() {
        match stream.read(&mut request[used..]) {
            Ok(0) => break,
            Ok(n) => {
                used += n;
                if request[..used].windows(4).any(|w| w == b"\r\n\r\n") {
                    break;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => break,
            Err(e) => return Err(e),
        }
    }
    let head = String::from_utf8_lossy(&request[..used]);
    let path = head.split_whitespace().nth(1).unwrap_or("/");
    let (body, content_type) = if path == "/metrics" {
        (telemetry.prometheus_text(), "text/plain; version=0.0.4")
    } else {
        (telemetry.json_snapshot(), "application/json")
    };
    let response = format!(
        "HTTP/1.0 200 OK\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n\
         Connection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{JournalEvent, Stage, TelemetryConfig};

    fn hub() -> Arc<Telemetry> {
        let telemetry = Arc::new(Telemetry::new(TelemetryConfig::default()));
        telemetry.counter("packets_total").add(42);
        telemetry.gauge("live_shards").set(3);
        telemetry.stage(Stage::Score, Some(0)).record(1_000);
        telemetry.journal().push(JournalEvent::PacketDrops { dropped: 7 });
        telemetry
    }

    #[test]
    fn prometheus_text_lists_everything() {
        let text = hub().prometheus_text();
        assert!(text.contains("idsbench_packets_total 42"), "{text}");
        assert!(text.contains("idsbench_live_shards 3"), "{text}");
        assert!(
            text.contains(
                "idsbench_stage_latency_nanos{stage=\"score\",shard=\"0\",quantile=\"0.99\"}"
            ),
            "{text}"
        );
        assert!(
            text.contains("idsbench_stage_latency_nanos_count{stage=\"score\",shard=\"0\"} 1"),
            "{text}"
        );
        assert!(text.contains("idsbench_journal_events 1"), "{text}");
    }

    #[test]
    fn json_snapshot_is_one_object() {
        let json = hub().json_snapshot();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"packets_total\":42"), "{json}");
        assert!(json.contains("\"stage\":\"score\",\"shard\":0"), "{json}");
        assert!(json.contains("\"type\":\"packet_drops\",\"dropped\":7"), "{json}");
        let depth: i32 = json
            .chars()
            .map(|c| match c {
                '{' | '[' => 1,
                '}' | ']' => -1,
                _ => 0,
            })
            .sum();
        assert_eq!(depth, 0, "balanced braces: {json}");
    }

    #[test]
    fn exposition_server_serves_both_routes() {
        let telemetry = hub();
        let sink = TelemetrySink::serve(telemetry, "127.0.0.1:0").expect("bind loopback");
        let addr = sink.local_addr().expect("server sink has an address");

        let scrape = |path: &str| {
            let mut stream = TcpStream::connect(addr).expect("connect");
            stream
                .write_all(format!("GET {path} HTTP/1.0\r\nHost: x\r\n\r\n").as_bytes())
                .expect("send request");
            let mut response = String::new();
            stream.read_to_string(&mut response).expect("read response");
            response
        };

        let metrics = scrape("/metrics");
        assert!(metrics.starts_with("HTTP/1.0 200 OK"), "{metrics}");
        assert!(metrics.contains("idsbench_packets_total 42"), "{metrics}");
        let snapshot = scrape("/snapshot");
        assert!(snapshot.contains("application/json"), "{snapshot}");
        assert!(snapshot.contains("\"packets_total\":42"), "{snapshot}");
        sink.stop();
    }

    #[test]
    fn periodic_sink_writes_snapshots() {
        let telemetry = hub();
        let path = std::env::temp_dir()
            .join(format!("idsbench_telemetry_test_{}.json", std::process::id()));
        let sink = TelemetrySink::periodic(
            Arc::clone(&telemetry),
            Duration::from_millis(10),
            SnapshotTarget::File(path.clone()),
        );
        std::thread::sleep(Duration::from_millis(60));
        sink.stop();
        let written = std::fs::read_to_string(&path).expect("snapshot file written");
        assert!(written.contains("\"packets_total\":42"), "{written}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn json_f64_matches_report_conventions() {
        assert_eq!(json_f64(3.0), "3");
        assert_eq!(json_f64(3.25), "3.25");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(f64::NAN), "null");
    }
}
