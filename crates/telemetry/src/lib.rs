//! # idsbench-telemetry — zero-alloc runtime telemetry for the stream engine
//!
//! Observability for the sharded streaming runtime with a hot-path budget
//! of **zero allocations and zero contention**: everything a shard or the
//! feeder touches per packet is a relaxed atomic it already holds an `Arc`
//! to. The crate has four pieces:
//!
//! * [`Registry`] — named [`Counter`]s/[`Gauge`]s, cache-line padded,
//!   registered once at startup and updated lock-free thereafter;
//! * [`SpanTimer`]/[`StageHistogram`] — sampled stage spans (parse, route,
//!   score, evict, migrate, rebalance, infer) feeding per-shard
//!   [`AtomicHistogram`]s, with a `spans` cargo feature that compiles the
//!   sampling out;
//! * [`Journal`] — a bounded ring of structured [`JournalEvent`]s (scale
//!   decisions, feeder stalls, packet drops, migrations, threshold
//!   crossings) that keeps the newest events on overflow and counts what it
//!   dropped;
//! * [`TelemetrySink`] — a periodic snapshot thread (file or stderr) and a
//!   tiny `std::net::TcpListener` exposition server speaking Prometheus
//!   text (`/metrics`) and a JSON snapshot (any other path).
//!
//! The [`Telemetry`] hub ties them together; the stream engine takes an
//! optional `Arc<Telemetry>` (see `run_stream_with_telemetry`) and the
//! `fig_*` binaries expose it behind `--telemetry`.
//!
//! ```
//! use idsbench_telemetry::{Stage, Telemetry, TelemetryConfig};
//! use std::sync::Arc;
//!
//! let telemetry = Arc::new(Telemetry::new(TelemetryConfig::default()));
//! let packets = telemetry.counter("packets_total");
//! let span = telemetry.span(Stage::Score, Some(0));
//! for _ in 0..1000 {
//!     let started = span.begin(); // Some() on sampled ticks only
//!     packets.inc();              // relaxed fetch_add — the whole hot path
//!     if let Some(started) = started {
//!         span.end(started);
//!     }
//! }
//! assert_eq!(packets.get(), 1000);
//! assert!(telemetry.prometheus_text().contains("idsbench_packets_total 1000"));
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod hist;
pub mod journal;
pub mod registry;
pub mod sink;
pub mod spans;

pub use hist::{AtomicHistogram, LatencyHistogram};
pub use journal::{Journal, JournalEvent, JournalSnapshot};
pub use registry::{Counter, Gauge, Registry};
pub use sink::{SnapshotTarget, TelemetrySink};
pub use spans::{SpanTimer, Stage, StageHistogram};

use std::sync::Arc;

use parking_lot::Mutex;

/// Tuning knobs for a [`Telemetry`] hub.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Trace-journal capacity in events (oldest overwritten beyond this).
    pub journal_capacity: usize,
    /// Stage-span sampling period: each [`SpanTimer`] times 1-in-this-many
    /// calls. 1 means every call.
    pub sample_every: u32,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig { journal_capacity: 1024, sample_every: 64 }
    }
}

/// The telemetry hub: one registry, one span table, one journal.
///
/// Registration methods (`counter`, `gauge`, `stage`, `span`) take short
/// locks and may allocate — call them at startup or at scale events, then
/// hold the returned handles on the hot path, where every update is a
/// relaxed atomic.
pub struct Telemetry {
    config: TelemetryConfig,
    registry: Registry,
    stages: Mutex<Vec<Arc<StageHistogram>>>,
    journal: Journal,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("config", &self.config)
            .field("registry", &self.registry)
            .field("stages", &self.stages.lock().len())
            .field("journal", &self.journal)
            .finish()
    }
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new(TelemetryConfig::default())
    }
}

impl Telemetry {
    /// Builds a hub with the given knobs.
    pub fn new(config: TelemetryConfig) -> Self {
        Telemetry {
            config,
            registry: Registry::default(),
            stages: Mutex::new(Vec::new()),
            journal: Journal::new(config.journal_capacity),
        }
    }

    /// The knobs this hub was built with.
    pub fn config(&self) -> TelemetryConfig {
        self.config
    }

    /// Get-or-register the counter named `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.registry.counter(name)
    }

    /// Get-or-register the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.registry.gauge(name)
    }

    /// The metric registry (for sink-style enumeration).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Get-or-register the histogram for `(stage, shard)`; `shard: None`
    /// labels the feeder.
    pub fn stage(&self, stage: Stage, shard: Option<usize>) -> Arc<StageHistogram> {
        let mut stages = self.stages.lock();
        if let Some(found) = stages.iter().find(|s| s.stage() == stage && s.shard() == shard) {
            return Arc::clone(found);
        }
        let made = Arc::new(StageHistogram::new(stage, shard));
        stages.push(Arc::clone(&made));
        made
    }

    /// A point-in-time copy of the registered stage histograms.
    pub fn stages(&self) -> Vec<Arc<StageHistogram>> {
        self.stages.lock().clone()
    }

    /// A [`SpanTimer`] over the `(stage, shard)` histogram, sampling at the
    /// hub's configured period.
    pub fn span(&self, stage: Stage, shard: Option<usize>) -> SpanTimer {
        SpanTimer::new(self.stage(stage, shard), self.config.sample_every)
    }

    /// The trace journal.
    pub fn journal(&self) -> &Journal {
        &self.journal
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_registration_is_idempotent_per_shard() {
        let telemetry = Telemetry::default();
        let a = telemetry.stage(Stage::Score, Some(0));
        let b = telemetry.stage(Stage::Score, Some(0));
        let c = telemetry.stage(Stage::Score, Some(1));
        let d = telemetry.stage(Stage::Evict, Some(0));
        assert!(Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
        assert!(!Arc::ptr_eq(&a, &d));
        assert_eq!(telemetry.stages().len(), 3);
    }

    #[test]
    fn span_uses_configured_sampling() {
        let telemetry =
            Telemetry::new(TelemetryConfig { sample_every: 2, ..TelemetryConfig::default() });
        let span = telemetry.span(Stage::Parse, None);
        let sampled = (0..10).filter(|_| span.begin().is_some()).count();
        if cfg!(feature = "spans") {
            assert_eq!(sampled, 5);
        } else {
            assert_eq!(sampled, 0);
        }
    }
}
