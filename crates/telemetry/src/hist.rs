//! Fixed-size logarithmic latency histograms — the single bucketing scheme
//! shared by the stream engine's per-shard latency accounting and the
//! telemetry stage spans.
//!
//! Values bucket by their top three significand bits (8 linear sub-buckets
//! per power of two), so any percentile read back is within 12.5% of the
//! true value — plenty for deployment-mode monitoring, with no per-value
//! allocation. Two variants share the scheme:
//!
//! * [`LatencyHistogram`] — single-owner, `&mut self` recording; the unit
//!   the stream engine merges across shards and the multi-node roadmap item
//!   would put on the wire (its merge is associative and order-insensitive,
//!   property-tested in `crates/stream/tests/proptest_merge.rs`).
//! * [`AtomicHistogram`] — shared-reader recording with relaxed atomics, so
//!   a live exposition endpoint can read percentiles while shard threads
//!   keep recording.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of linear sub-buckets per power of two.
pub(crate) const SUBBUCKETS: usize = 8;
/// Bucket count: 61 octaves above the exact small-value range, 8 sub-buckets
/// each, plus the 8 exact buckets for 0–7 ns.
pub(crate) const BUCKETS: usize = SUBBUCKETS + 61 * SUBBUCKETS;

pub(crate) fn bucket_of(nanos: u64) -> usize {
    if nanos < SUBBUCKETS as u64 {
        return nanos as usize;
    }
    let log = 63 - nanos.leading_zeros() as usize; // floor(log2), >= 3 here
    let sub = ((nanos >> (log - 3)) & 0x7) as usize;
    SUBBUCKETS + (log - 3) * SUBBUCKETS + sub
}

pub(crate) fn bucket_value(bucket: usize) -> u64 {
    if bucket < SUBBUCKETS {
        return bucket as u64;
    }
    let log = (bucket - SUBBUCKETS) / SUBBUCKETS + 3;
    let sub = ((bucket - SUBBUCKETS) % SUBBUCKETS) as u64;
    // Midpoint of the bucket's value range.
    ((8 + sub) << (log - 3)) + (1u64 << (log - 3)) / 2
}

fn percentile_of(buckets: &[u64; BUCKETS], count: u64, q: f64) -> u64 {
    if count == 0 {
        return 0;
    }
    let rank = ((count - 1) as f64 * q.clamp(0.0, 1.0)).round() as u64;
    let mut seen = 0u64;
    for (bucket, &n) in buckets.iter().enumerate() {
        seen += n;
        if n > 0 && seen > rank {
            return bucket_value(bucket);
        }
    }
    bucket_value(BUCKETS - 1)
}

/// A fixed-size logarithmic histogram of per-event scoring latencies.
///
/// See the [module docs](self) for the bucketing scheme and accuracy bound.
#[derive(Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: Box<[u64; BUCKETS]>,
    count: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram { buckets: Box::new([0; BUCKETS]), count: 0 }
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram").field("count", &self.count).finish_non_exhaustive()
    }
}

impl LatencyHistogram {
    /// Records one latency value.
    pub fn record(&mut self, nanos: u64) {
        self.buckets[bucket_of(nanos)] += 1;
        self.count += 1;
    }

    /// Values recorded.
    pub fn len(&self) -> u64 {
        self.count
    }

    /// Whether the histogram is empty.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Resets every bucket — the histogram is reusable for windowed
    /// signals (e.g. the autoscaler's per-batch p99) without reallocating.
    pub fn clear(&mut self) {
        self.buckets.fill(0);
        self.count = 0;
    }

    /// Adds another histogram's counts into this one. Merging is
    /// associative and order-insensitive: any merge tree over the same
    /// multiset of recorded values yields an identical histogram.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
    }

    /// Approximate percentile (`q` in `[0, 1]`) in nanoseconds; 0 when
    /// empty. Accurate to within one bucket (≤ 12.5% relative error).
    pub fn percentile(&self, q: f64) -> u64 {
        percentile_of(&self.buckets, self.count, q)
    }

    /// Iterates the non-empty buckets as `(bucket_index, count)` — the
    /// sparse wire representation a report fragment ships.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets.iter().copied().enumerate().filter(|&(_, n)| n > 0)
    }

    /// Total bucket slots in the fixed scheme; any `(index, count)` pair
    /// with `index >= bucket_slots()` is not a valid wire bucket.
    pub fn bucket_slots() -> usize {
        BUCKETS
    }

    /// Adds `count` observations directly into bucket `index` — the inverse
    /// of [`LatencyHistogram::nonzero_buckets`] for wire decoding. Returns
    /// `false` (and records nothing) when the index is out of range.
    pub fn add_bucket(&mut self, index: usize, count: u64) -> bool {
        match self.buckets.get_mut(index) {
            Some(slot) => {
                *slot += count;
                self.count += count;
                true
            }
            None => false,
        }
    }
}

/// A shared-reader variant of [`LatencyHistogram`]: recording uses relaxed
/// atomic increments, so shard threads record through an `Arc` while a sink
/// thread reads percentiles live.
///
/// All operations are relaxed — a concurrent read may observe a value whose
/// bucket increment landed but whose count increment has not (or vice
/// versa), skewing a percentile by at most the in-flight values. That is
/// monitoring-grade accuracy by design; nothing here is on a correctness
/// path.
pub struct AtomicHistogram {
    buckets: Box<[AtomicU64; BUCKETS]>,
    count: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        let buckets: Box<[AtomicU64]> =
            (0..BUCKETS).map(|_| AtomicU64::new(0)).collect::<Vec<_>>().into_boxed_slice();
        let buckets: Box<[AtomicU64; BUCKETS]> =
            buckets.try_into().unwrap_or_else(|_| unreachable!("exact length"));
        AtomicHistogram { buckets, count: AtomicU64::new(0) }
    }
}

impl std::fmt::Debug for AtomicHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AtomicHistogram")
            .field("count", &self.count.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl AtomicHistogram {
    /// Records one latency value (relaxed; shared-reference safe).
    pub fn record(&self, nanos: u64) {
        self.buckets[bucket_of(nanos)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Values recorded so far.
    pub fn len(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Resets every bucket (relaxed; concurrent records may survive).
    pub fn clear(&self) {
        for bucket in self.buckets.iter() {
            bucket.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
    }

    /// Approximate percentile over a relaxed point-in-time read; same
    /// accuracy bound as [`LatencyHistogram::percentile`].
    pub fn percentile(&self, q: f64) -> u64 {
        self.snapshot().percentile(q)
    }

    /// Copies the current counts into an owned [`LatencyHistogram`] (one
    /// relaxed load per bucket — not a consistent cut, see type docs).
    pub fn snapshot(&self) -> LatencyHistogram {
        let mut out = LatencyHistogram::default();
        let mut count = 0u64;
        for (mine, theirs) in out.buckets.iter_mut().zip(self.buckets.iter()) {
            *mine = theirs.load(Ordering::Relaxed);
            count += *mine;
        }
        // Derive the count from the buckets so the snapshot is internally
        // consistent even if `self.count` lags an in-flight record.
        out.count = count;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_percentiles_are_close() {
        let mut hist = LatencyHistogram::default();
        for n in 1..=10_000u64 {
            hist.record(n);
        }
        assert_eq!(hist.len(), 10_000);
        let p50 = hist.percentile(0.50) as f64;
        let p99 = hist.percentile(0.99) as f64;
        assert!((p50 - 5_000.0).abs() / 5_000.0 < 0.13, "p50 ≈ {p50}");
        assert!((p99 - 9_900.0).abs() / 9_900.0 < 0.13, "p99 ≈ {p99}");
        assert_eq!(LatencyHistogram::default().percentile(0.5), 0);
    }

    #[test]
    fn histogram_merge_adds_counts() {
        let mut a = LatencyHistogram::default();
        let mut b = LatencyHistogram::default();
        for n in 0..100u64 {
            a.record(n);
            b.record(n * 1000);
        }
        a.merge(&b);
        assert_eq!(a.len(), 200);
    }

    #[test]
    fn small_latencies_bucket_exactly() {
        for n in 0..8u64 {
            assert_eq!(bucket_value(bucket_of(n)), n);
        }
    }

    #[test]
    fn atomic_histogram_matches_single_owner() {
        let atomic = AtomicHistogram::default();
        let mut plain = LatencyHistogram::default();
        for n in [0u64, 7, 8, 100, 1_000, 123_456, 9_999_999] {
            atomic.record(n);
            plain.record(n);
        }
        assert_eq!(atomic.snapshot(), plain);
        assert_eq!(atomic.percentile(0.5), plain.percentile(0.5));
        assert_eq!(atomic.len(), plain.len());
        atomic.clear();
        assert!(atomic.is_empty());
    }
}
