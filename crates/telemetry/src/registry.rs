//! The lock-free metrics registry: named counters and gauges, registered
//! once at startup (or at a scale event) and updated with relaxed atomic
//! operations from then on.
//!
//! The registration lists live behind a mutex, but nothing on the
//! per-packet path ever touches it: callers hold an `Arc` to the metric
//! itself and update it with a single relaxed `fetch_add`/`store`. Each
//! metric's cell is padded to its own cache line so two hot counters
//! updated from different threads never false-share.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// One atomic `u64` on its own cache line, so adjacent metrics updated from
/// different threads do not false-share.
#[repr(align(64))]
#[derive(Debug, Default)]
struct PaddedCell(AtomicU64);

/// A monotonically increasing named counter (relaxed atomics).
#[derive(Debug)]
pub struct Counter {
    name: String,
    value: PaddedCell,
}

impl Counter {
    /// The registered name (snake_case, no `idsbench_` prefix — the
    /// exposition sink adds it).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.0.load(Ordering::Relaxed)
    }
}

/// A named gauge: a value that can move both ways (relaxed atomics).
#[derive(Debug)]
pub struct Gauge {
    name: String,
    value: PaddedCell,
}

impl Gauge {
    /// The registered name (snake_case, no `idsbench_` prefix).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Overwrites the value.
    pub fn set(&self, value: u64) {
        self.value.0.store(value, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.0.load(Ordering::Relaxed)
    }
}

/// The metric registry: get-or-register access to counters and gauges by
/// name, plus list snapshots for the sinks.
#[derive(Default)]
pub struct Registry {
    counters: Mutex<Vec<Arc<Counter>>>,
    gauges: Mutex<Vec<Arc<Gauge>>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("counters", &self.counters.lock().len())
            .field("gauges", &self.gauges.lock().len())
            .finish()
    }
}

impl Registry {
    /// Returns the counter named `name`, registering it on first use.
    /// Registration takes the list lock — call at startup (or at a scale
    /// event), hold the returned `Arc` on the hot path.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut counters = self.counters.lock();
        if let Some(found) = counters.iter().find(|c| c.name == name) {
            return Arc::clone(found);
        }
        let made = Arc::new(Counter { name: name.to_string(), value: PaddedCell::default() });
        counters.push(Arc::clone(&made));
        made
    }

    /// Returns the gauge named `name`, registering it on first use. Same
    /// locking discipline as [`Registry::counter`].
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut gauges = self.gauges.lock();
        if let Some(found) = gauges.iter().find(|g| g.name == name) {
            return Arc::clone(found);
        }
        let made = Arc::new(Gauge { name: name.to_string(), value: PaddedCell::default() });
        gauges.push(Arc::clone(&made));
        made
    }

    /// A point-in-time copy of the registered counters (registration
    /// order).
    pub fn counters(&self) -> Vec<Arc<Counter>> {
        self.counters.lock().clone()
    }

    /// A point-in-time copy of the registered gauges (registration order).
    pub fn gauges(&self) -> Vec<Arc<Gauge>> {
        self.gauges.lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_by_name() {
        let registry = Registry::default();
        let a = registry.counter("packets_total");
        let b = registry.counter("packets_total");
        a.inc();
        b.add(2);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(registry.counters().len(), 1);
        assert_eq!(registry.counters()[0].get(), 3);

        let g = registry.gauge("live_shards");
        g.set(4);
        assert_eq!(registry.gauge("live_shards").get(), 4);
        assert_eq!(registry.gauges().len(), 1);
    }

    #[test]
    fn cells_are_cache_line_padded() {
        assert_eq!(std::mem::align_of::<PaddedCell>(), 64);
    }
}
