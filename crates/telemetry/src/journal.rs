//! The bounded trace journal: a fixed-capacity ring of structured runtime
//! events (scale decisions, backpressure stalls, packet drops, flow
//! migrations, suppressed threshold crossings).
//!
//! The ring overwrites oldest-first when full, so a long run keeps the
//! *newest* events and an honest count of how many were dropped. Pushing
//! takes a short mutex (a copy into a preallocated slot — no allocation
//! once the ring has filled); journal events are emitted at control-plane
//! rate (scale events, stalls), never per packet.

use idsbench_core::ScaleEvent;
use parking_lot::Mutex;

/// One structured runtime event. Variants are scalar-only (plus the `Copy`
/// fields of [`ScaleEvent`]) so pushing never chases pointers.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalEvent {
    /// The autoscaler changed the shard count (the full decision record).
    Scale(ScaleEvent),
    /// The feeder blocked on a full shard channel (backpressure).
    FeederStall {
        /// Arrival index of the packet the feeder was holding.
        seq: u64,
        /// The shard whose channel was full.
        shard: usize,
        /// The channel's capacity (its depth at the stall).
        depth: usize,
    },
    /// A lossy source dropped packets (live-capture mode).
    PacketDrops {
        /// Packets dropped since the previous `PacketDrops` event.
        dropped: u64,
    },
    /// Flow state moved to a new owner during a rebalance.
    Migration {
        /// The shard that received the flows.
        to_shard: usize,
        /// How many flows moved.
        flows: usize,
    },
    /// A fabric worker was classified dead (socket error or timeout); its
    /// shards are about to be re-homed.
    PeerDeath {
        /// Accept-order index of the dead peer.
        peer: usize,
        /// Shards the peer was hosting when it died.
        shards: usize,
    },
    /// A peer-death recovery finished: every orphaned shard was re-homed
    /// from its last checkpoint and its buffered frames replayed.
    RecoveryComplete {
        /// Accept-order index of the dead peer.
        peer: usize,
        /// Shards re-homed.
        shards: usize,
        /// Flow-state entries restored from checkpoints.
        flows: usize,
        /// Batch frames replayed from the coordinator's replay buffers.
        replayed_batches: u64,
        /// Wall-clock recovery latency, detect-to-resume.
        latency_micros: u64,
    },
    /// A scale threshold was crossed but no decision fired (cooldown, or
    /// the pool was already at its bound).
    ThresholdCrossing {
        /// Tumbling window index of the crossing.
        window: u64,
        /// Events per second observed in that window.
        pps: f64,
        /// `true` for an up-crossing, `false` for a down-crossing.
        up: bool,
    },
}

impl JournalEvent {
    /// Stable lowercase tag used by the JSON export.
    pub fn kind(&self) -> &'static str {
        match self {
            JournalEvent::Scale(_) => "scale",
            JournalEvent::FeederStall { .. } => "feeder_stall",
            JournalEvent::PacketDrops { .. } => "packet_drops",
            JournalEvent::Migration { .. } => "migration",
            JournalEvent::PeerDeath { .. } => "peer_death",
            JournalEvent::RecoveryComplete { .. } => "recovery_complete",
            JournalEvent::ThresholdCrossing { .. } => "threshold_crossing",
        }
    }

    /// Hand-rolled JSON object for this event (same conventions as
    /// `report.rs`: no trailing zeros on integral floats, non-finite → `null`).
    pub fn to_json(&self) -> String {
        match self {
            JournalEvent::Scale(event) => {
                format!("{{\"type\":\"scale\",\"event\":{}}}", event.to_json())
            }
            JournalEvent::FeederStall { seq, shard, depth } => format!(
                "{{\"type\":\"feeder_stall\",\"seq\":{seq},\"shard\":{shard},\"depth\":{depth}}}"
            ),
            JournalEvent::PacketDrops { dropped } => {
                format!("{{\"type\":\"packet_drops\",\"dropped\":{dropped}}}")
            }
            JournalEvent::Migration { to_shard, flows } => {
                format!("{{\"type\":\"migration\",\"to_shard\":{to_shard},\"flows\":{flows}}}")
            }
            JournalEvent::PeerDeath { peer, shards } => {
                format!("{{\"type\":\"peer_death\",\"peer\":{peer},\"shards\":{shards}}}")
            }
            JournalEvent::RecoveryComplete {
                peer,
                shards,
                flows,
                replayed_batches,
                latency_micros,
            } => {
                format!(
                    "{{\"type\":\"recovery_complete\",\"peer\":{peer},\"shards\":{shards},\"flows\":{flows},\"replayed_batches\":{replayed_batches},\"latency_micros\":{latency_micros}}}"
                )
            }
            JournalEvent::ThresholdCrossing { window, pps, up } => format!(
                "{{\"type\":\"threshold_crossing\",\"window\":{window},\"pps\":{},\"up\":{up}}}",
                crate::sink::json_f64(*pps)
            ),
        }
    }
}

struct JournalInner {
    ring: Vec<JournalEvent>,
    /// Next slot to overwrite once the ring is full.
    head: usize,
    pushed: u64,
}

/// The bounded ring of [`JournalEvent`]s. See the [module docs](self).
pub struct Journal {
    inner: Mutex<JournalInner>,
    capacity: usize,
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("Journal")
            .field("capacity", &self.capacity)
            .field("pushed", &inner.pushed)
            .finish()
    }
}

impl Journal {
    /// Builds a journal holding at most `capacity` events (clamped to at
    /// least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Journal {
            inner: Mutex::new(JournalInner {
                ring: Vec::with_capacity(capacity),
                head: 0,
                pushed: 0,
            }),
            capacity,
        }
    }

    /// Appends an event, overwriting the oldest once the ring is full.
    pub fn push(&self, event: JournalEvent) {
        let mut inner = self.inner.lock();
        inner.pushed += 1;
        if inner.ring.len() < self.capacity {
            inner.ring.push(event);
        } else {
            let head = inner.head;
            inner.ring[head] = event;
            inner.head = (head + 1) % self.capacity;
        }
    }

    /// Maximum events retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// A point-in-time copy: retained events oldest-first, plus push/drop
    /// accounting.
    pub fn snapshot(&self) -> JournalSnapshot {
        let inner = self.inner.lock();
        let mut events = Vec::with_capacity(inner.ring.len());
        events.extend_from_slice(&inner.ring[inner.head..]);
        events.extend_from_slice(&inner.ring[..inner.head]);
        let dropped = inner.pushed - events.len() as u64;
        JournalSnapshot { events, pushed: inner.pushed, dropped }
    }
}

/// A point-in-time copy of the journal contents.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalSnapshot {
    /// Retained events, oldest first (newest events always survive a wrap).
    pub events: Vec<JournalEvent>,
    /// Total events ever pushed.
    pub pushed: u64,
    /// Events lost to ring overwrites (`pushed - events.len()`).
    pub dropped: u64,
}

impl JournalSnapshot {
    /// Hand-rolled JSON: `{"pushed":…,"dropped":…,"events":[…]}`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.events.len() * 64);
        out.push_str(&format!(
            "{{\"pushed\":{},\"dropped\":{},\"events\":[",
            self.pushed, self.dropped
        ));
        for (i, event) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&event.to_json());
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrap_keeps_newest_and_counts_dropped() {
        let journal = Journal::new(4);
        for seq in 0..10u64 {
            journal.push(JournalEvent::FeederStall { seq, shard: 0, depth: 8 });
        }
        let snap = journal.snapshot();
        assert_eq!(snap.pushed, 10);
        assert_eq!(snap.dropped, 6, "capacity 4, 10 pushed");
        let seqs: Vec<u64> = snap
            .events
            .iter()
            .map(|e| match e {
                JournalEvent::FeederStall { seq, .. } => *seq,
                other => panic!("unexpected event {other:?}"),
            })
            .collect();
        assert_eq!(seqs, vec![6, 7, 8, 9], "newest events, oldest-first order");
    }

    #[test]
    fn recovery_events_export_scalar_json() {
        let journal = Journal::new(4);
        journal.push(JournalEvent::PeerDeath { peer: 1, shards: 2 });
        journal.push(JournalEvent::RecoveryComplete {
            peer: 1,
            shards: 2,
            flows: 37,
            replayed_batches: 5,
            latency_micros: 1200,
        });
        let snap = journal.snapshot();
        assert_eq!(snap.events[0].kind(), "peer_death");
        assert_eq!(snap.events[1].kind(), "recovery_complete");
        let json = snap.to_json();
        assert!(json.contains("{\"type\":\"peer_death\",\"peer\":1,\"shards\":2}"), "{json}");
        assert!(json.contains("\"replayed_batches\":5,\"latency_micros\":1200}"), "{json}");
    }

    #[test]
    fn under_capacity_drops_nothing() {
        let journal = Journal::new(8);
        journal.push(JournalEvent::PacketDrops { dropped: 3 });
        journal.push(JournalEvent::Migration { to_shard: 1, flows: 12 });
        let snap = journal.snapshot();
        assert_eq!(snap.pushed, 2);
        assert_eq!(snap.dropped, 0);
        assert_eq!(snap.events.len(), 2);
        assert_eq!(snap.events[0].kind(), "packet_drops");
        let json = snap.to_json();
        assert!(json.starts_with("{\"pushed\":2,\"dropped\":0,\"events\":["), "{json}");
        assert!(json.contains("{\"type\":\"migration\",\"to_shard\":1,\"flows\":12}"), "{json}");
    }
}
