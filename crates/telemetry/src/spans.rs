//! Sampled stage spans: cheap wall-clock timing of pipeline stages (parse,
//! route, score, evict, migrate, rebalance, model inference) feeding
//! per-shard [`AtomicHistogram`]s, so per-stage p50/p99 is visible live.
//!
//! A [`SpanTimer`] samples 1-in-`every` calls: `begin()` returns
//! `Some(Instant)` only on sampled ticks, so the common case costs one
//! `Cell` increment and compare — no clock read, no atomic. Building with
//! `--no-default-features` (dropping the `spans` feature) compiles the
//! sampling out entirely: `begin()` becomes a constant `None`.

use std::cell::Cell;
use std::sync::Arc;
use std::time::Instant;

use crate::hist::AtomicHistogram;

/// A pipeline stage a span can time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Packet parsing in the feeder (`ParsedView::from_packet`).
    Parse,
    /// Flow-key routing in the feeder (ring lookup + shard dispatch).
    Route,
    /// Detector scoring of a packet event in a shard.
    Score,
    /// Detector scoring of a flow-eviction event in a shard.
    Evict,
    /// Applying inbound flow-state migrations in a shard.
    Migrate,
    /// The feeder-side drain-and-rebalance barrier during a scale event.
    Rebalance,
    /// The model-inference portion of a detector's scoring path (attached
    /// inside the detector via its `attach_inference_probe`).
    Infer,
    /// A fabric peer-death recovery: re-homing a dead worker's shards onto
    /// survivors and replaying their buffered frames (coordinator side).
    Recover,
}

impl Stage {
    /// Stable lowercase label used by the exposition formats.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Parse => "parse",
            Stage::Route => "route",
            Stage::Score => "score",
            Stage::Evict => "evict",
            Stage::Migrate => "migrate",
            Stage::Rebalance => "rebalance",
            Stage::Infer => "infer",
            Stage::Recover => "recover",
        }
    }
}

/// A per-stage, per-shard latency histogram registered with the telemetry
/// hub. `shard: None` means the feeder (exposed with a `shard="feeder"`
/// label).
#[derive(Debug)]
pub struct StageHistogram {
    stage: Stage,
    shard: Option<usize>,
    hist: AtomicHistogram,
}

impl StageHistogram {
    /// Builds an unregistered histogram (the telemetry hub's `stage()` is
    /// the usual constructor).
    pub fn new(stage: Stage, shard: Option<usize>) -> Self {
        StageHistogram { stage, shard, hist: AtomicHistogram::default() }
    }

    /// The timed stage.
    pub fn stage(&self) -> Stage {
        self.stage
    }

    /// The owning shard, or `None` for the feeder.
    pub fn shard(&self) -> Option<usize> {
        self.shard
    }

    /// Records one duration (relaxed; shared-reference safe).
    pub fn record(&self, nanos: u64) {
        self.hist.record(nanos);
    }

    /// The underlying histogram, for percentile reads.
    pub fn histogram(&self) -> &AtomicHistogram {
        &self.hist
    }
}

/// A sampling timer over one [`StageHistogram`].
///
/// Clone one per thread: clones share the target histogram but keep their
/// own sampling tick (`Cell`), so a `SpanTimer` is `Send` but deliberately
/// not `Sync`.
#[derive(Debug, Clone)]
pub struct SpanTimer {
    hist: Arc<StageHistogram>,
    every: u32,
    tick: Cell<u32>,
}

impl SpanTimer {
    /// Builds a timer sampling 1-in-`every` calls (`every` is clamped to at
    /// least 1; the first sampled call is the `every`-th).
    pub fn new(hist: Arc<StageHistogram>, every: u32) -> Self {
        SpanTimer { hist, every: every.max(1), tick: Cell::new(0) }
    }

    /// Starts a span on sampled ticks. Returns `None` (and reads no clock)
    /// on unsampled ticks or when the crate's `spans` feature is disabled.
    #[inline]
    pub fn begin(&self) -> Option<Instant> {
        if !cfg!(feature = "spans") {
            return None;
        }
        let tick = self.tick.get() + 1;
        if tick >= self.every {
            self.tick.set(0);
            Some(Instant::now())
        } else {
            self.tick.set(tick);
            None
        }
    }

    /// Finishes a span started by [`SpanTimer::begin`], recording its
    /// elapsed nanoseconds.
    #[inline]
    pub fn end(&self, started: Instant) {
        let nanos = started.elapsed().as_nanos();
        self.hist.record(u64::try_from(nanos).unwrap_or(u64::MAX));
    }

    /// Records an externally measured duration, bypassing sampling — for
    /// stages the caller already times (e.g. the shard's per-event scoring
    /// clock), where re-reading the clock would double the cost.
    #[inline]
    pub fn record_nanos(&self, nanos: u64) {
        self.hist.record(nanos);
    }

    /// The histogram this timer feeds.
    pub fn target(&self) -> &StageHistogram {
        &self.hist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_fires_once_per_period() {
        let hist = Arc::new(StageHistogram::new(Stage::Score, Some(0)));
        let timer = SpanTimer::new(Arc::clone(&hist), 4);
        let mut sampled = 0;
        for _ in 0..16 {
            if let Some(started) = timer.begin() {
                timer.end(started);
                sampled += 1;
            }
        }
        if cfg!(feature = "spans") {
            assert_eq!(sampled, 4, "1-in-4 sampling over 16 calls");
            assert_eq!(hist.histogram().len(), 4);
        } else {
            assert_eq!(sampled, 0, "spans compiled out");
        }
    }

    #[test]
    fn clones_share_the_histogram_but_not_the_tick() {
        let hist = Arc::new(StageHistogram::new(Stage::Infer, None));
        let a = SpanTimer::new(Arc::clone(&hist), 2);
        let b = a.clone();
        a.record_nanos(10);
        b.record_nanos(20);
        assert_eq!(hist.histogram().len(), 2);
        if cfg!(feature = "spans") {
            assert!(a.begin().is_none(), "first tick unsampled");
            assert!(b.begin().is_none(), "clone keeps its own tick");
        }
    }

    #[test]
    fn stage_names_are_stable() {
        for (stage, name) in [
            (Stage::Parse, "parse"),
            (Stage::Route, "route"),
            (Stage::Score, "score"),
            (Stage::Evict, "evict"),
            (Stage::Migrate, "migrate"),
            (Stage::Rebalance, "rebalance"),
            (Stage::Infer, "infer"),
            (Stage::Recover, "recover"),
        ] {
            assert_eq!(stage.name(), name);
        }
    }
}
