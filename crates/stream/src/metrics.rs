//! Live stream metrics: windowed detection quality and latency/throughput
//! accounting, merged across shards.
//!
//! Two recording modes exist, matching the executor's
//! [`ThresholdMode`](crate::executor::ThresholdMode):
//!
//! * **Replay mode** (calibrated threshold): each shard records one
//!   lightweight [`ScoredEvent`] per scored event; at finalisation the
//!   executor merges the per-shard streams, resolves the threshold, and
//!   folds the records into overall and per-window confusion metrics.
//!   Latency percentiles are exact.
//! * **Zero-buffer mode** (fixed threshold): decisions are final the moment
//!   an event is scored, so each shard folds them straight into an
//!   [`OnlineStats`] — confusion counts, per-window counts, per-family
//!   counts, and a logarithmic [`LatencyHistogram`] — and no per-event
//!   record is ever stored. Memory stays O(windows + families), not
//!   O(events); percentiles are approximate to within one histogram bucket
//!   (≤ 12.5% relative error).

use std::collections::BTreeMap;

use idsbench_core::metrics::{family_outcomes, ConfusionMatrix, FamilyCounts, FamilyOutcome};
use idsbench_core::AttackKind;

/// Tumbling-window index of a traffic timestamp — the one boundary rule
/// shared by the metrics windows, the executor's event windowing, and the
/// autoscaler's control loop, so `ScaleEvent::window` and
/// [`WindowMetrics::index`] always join on the same axis.
pub fn window_index(ts_micros: u64, window_secs: f64) -> u64 {
    let window_micros = (window_secs * 1e6) as u64;
    ts_micros / window_micros.max(1)
}

/// One scored evaluation event, as recorded inside a shard in replay mode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredEvent {
    /// Arrival index of the packet that triggered this event (assigned by
    /// the feeder); `u64::MAX` for end-of-stream flush evictions.
    pub seq: u64,
    /// Orders multiple events triggered by one packet: `0` for the packet
    /// event itself, `1..` for the flow evictions it caused (and the flush
    /// index at end of stream).
    pub sub: u32,
    /// Tumbling window index (`ts / window`).
    pub window: u64,
    /// Anomaly score emitted by the shard's detector.
    pub score: f64,
    /// Nanoseconds spent inside the detector for this event.
    pub latency_nanos: u64,
    /// Ground truth.
    pub label: bool,
    /// Attack family for per-family recall (`None` for benign).
    pub kind: Option<AttackKind>,
}

/// Detection quality over one tumbling time window of the traffic timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowMetrics {
    /// Window index (`start_secs / window length`).
    pub index: u64,
    /// Window start on the traffic timeline, in seconds.
    pub start_secs: f64,
    /// Scored events in the window.
    pub packets: usize,
    /// Attack events in the window.
    pub attacks: usize,
    /// Alerts raised in the window.
    pub alerts: usize,
    /// Precision within the window.
    pub precision: f64,
    /// Recall within the window.
    pub recall: f64,
    /// False-positive rate within the window.
    pub false_positive_rate: f64,
}

fn windows_from_parts(
    by_window: BTreeMap<u64, (ConfusionMatrix, usize)>,
    window_secs: f64,
) -> Vec<WindowMetrics> {
    by_window
        .into_iter()
        .map(|(index, (cm, packets))| WindowMetrics {
            index,
            start_secs: index as f64 * window_secs,
            packets,
            attacks: (cm.true_positives + cm.false_negatives) as usize,
            alerts: (cm.true_positives + cm.false_positives) as usize,
            precision: cm.precision(),
            recall: cm.recall(),
            false_positive_rate: cm.false_positive_rate(),
        })
        .collect()
}

/// Whether a scored event was a flow eviction rather than a packet event.
/// Packet events carry `sub == 0` and a real feeder sequence; evictions are
/// either triggered by a later packet (`sub > 0`) or the end-of-stream flush
/// (`seq == u64::MAX`).
fn is_flow_event(r: &ScoredEvent) -> bool {
    r.sub > 0 || r.seq == u64::MAX
}

/// Folds scored events into per-window metrics at a resolved threshold.
/// Windows with no events are omitted (sparse traffic timelines).
pub fn window_metrics(
    records: &[ScoredEvent],
    window_secs: f64,
    threshold: f64,
) -> Vec<WindowMetrics> {
    let mut by_window: BTreeMap<u64, (ConfusionMatrix, usize)> = BTreeMap::new();
    for r in records {
        let (cm, packets) = by_window.entry(r.window).or_default();
        cm.record(r.score >= threshold, r.label);
        *packets += 1;
    }
    windows_from_parts(by_window, window_secs)
}

/// Per-family detection outcomes at a resolved threshold, sorted by family
/// name — the same [`FamilyOutcome`] shape the batch runner reports. Packet
/// events count toward `packets`, flow evictions toward `flows`.
pub fn family_recall(records: &[ScoredEvent], threshold: f64) -> Vec<FamilyOutcome> {
    let mut per_family: BTreeMap<&'static str, FamilyCounts> = BTreeMap::new();
    for r in records {
        if let Some(kind) = r.kind {
            per_family
                .entry(kind.name())
                .or_default()
                .record(r.score >= threshold, is_flow_event(r));
        }
    }
    family_outcomes(&per_family)
}

/// Pure online aggregation of scored events against a fixed threshold —
/// the zero-buffer recording mode. Everything the final [`StreamReport`]
/// (except AUC, which fundamentally needs the score set) is folded in as
/// events arrive; nothing is replayed afterwards.
///
/// [`StreamReport`]: crate::report::StreamReport
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OnlineStats {
    /// Overall confusion counts at the fixed threshold.
    pub cm: ConfusionMatrix,
    /// Per-window confusion counts and event totals.
    pub windows: BTreeMap<u64, (ConfusionMatrix, usize)>,
    /// Per-family alert/packet/flow counts.
    pub families: BTreeMap<&'static str, FamilyCounts>,
    /// Scoring-latency histogram (log-bucketed).
    pub latency: LatencyHistogram,
    /// Scored events folded in.
    pub events: usize,
    /// Attack events folded in.
    pub attacks: usize,
}

impl OnlineStats {
    /// Folds one scored event in. `is_flow` distinguishes flow-eviction
    /// events from packet events for the per-family item breakdown.
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &mut self,
        window: u64,
        score: f64,
        threshold: f64,
        label: bool,
        kind: Option<AttackKind>,
        is_flow: bool,
        latency_nanos: u64,
    ) {
        let alert = score >= threshold;
        self.cm.record(alert, label);
        let (cm, packets) = self.windows.entry(window).or_default();
        cm.record(alert, label);
        *packets += 1;
        if let Some(kind) = kind {
            self.families.entry(kind.name()).or_default().record(alert, is_flow);
        }
        self.latency.record(latency_nanos);
        self.events += 1;
        self.attacks += usize::from(label);
    }

    /// Merges another shard's aggregation into this one.
    pub fn merge(&mut self, other: &OnlineStats) {
        self.cm.merge(&other.cm);
        for (&window, &(cm, packets)) in &other.windows {
            let entry = self.windows.entry(window).or_default();
            entry.0.merge(&cm);
            entry.1 += packets;
        }
        for (&family, counts) in &other.families {
            self.families.entry(family).or_default().merge(counts);
        }
        self.latency.merge(&other.latency);
        self.events += other.events;
        self.attacks += other.attacks;
    }

    /// Renders the per-window metrics (same shape as replay mode).
    pub fn window_metrics(&self, window_secs: f64) -> Vec<WindowMetrics> {
        windows_from_parts(self.windows.clone(), window_secs)
    }

    /// Renders the per-family outcomes (same shape as replay mode).
    pub fn family_recall(&self) -> Vec<FamilyOutcome> {
        family_outcomes(&self.families)
    }
}

/// The log-bucketed latency histogram, re-exported from
/// `idsbench-telemetry` — the stream engine's per-shard latency unit and
/// the telemetry stage-span unit are one type, so merges and percentile
/// semantics cannot drift apart.
pub use idsbench_telemetry::LatencyHistogram;

/// Exact percentile over per-event scoring latencies (nanoseconds).
/// `q` in `[0, 1]`; returns 0 for an empty set.
pub fn latency_percentile(sorted_nanos: &[u64], q: f64) -> u64 {
    if sorted_nanos.is_empty() {
        return 0;
    }
    let rank = ((sorted_nanos.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
    sorted_nanos[rank]
}

/// Wall-clock throughput and latency summary of one streaming run.
#[derive(Debug, Clone, PartialEq)]
pub struct Throughput {
    /// Wall-clock seconds from first fed packet to last scored event
    /// (training excluded).
    pub wall_seconds: f64,
    /// Evaluation packets fed per wall-clock second.
    pub packets_per_sec: f64,
    /// Median per-event scoring latency, microseconds.
    pub p50_latency_us: f64,
    /// 99th-percentile per-event scoring latency, microseconds.
    pub p99_latency_us: f64,
    /// Summed busy time inside `on_event` across all shards, seconds — the
    /// recurring per-event cost of the detector.
    pub score_seconds: f64,
    /// One-time training cost: shared train-view assembly plus the slowest
    /// shard's `fit`, seconds.
    pub train_seconds: f64,
}

impl Throughput {
    /// Builds the summary from run totals and the merged latency set.
    pub fn from_run(
        packets: usize,
        wall_seconds: f64,
        mut latencies_nanos: Vec<u64>,
        score_seconds: f64,
        train_seconds: f64,
    ) -> Self {
        latencies_nanos.sort_unstable();
        Throughput {
            wall_seconds,
            packets_per_sec: if wall_seconds > 0.0 { packets as f64 / wall_seconds } else { 0.0 },
            p50_latency_us: latency_percentile(&latencies_nanos, 0.50) as f64 / 1_000.0,
            p99_latency_us: latency_percentile(&latencies_nanos, 0.99) as f64 / 1_000.0,
            score_seconds,
            train_seconds,
        }
    }

    /// Builds the summary from a zero-buffer histogram instead of a full
    /// latency set (percentiles approximate, see [`LatencyHistogram`]).
    pub fn from_histogram(
        packets: usize,
        wall_seconds: f64,
        latency: &LatencyHistogram,
        score_seconds: f64,
        train_seconds: f64,
    ) -> Self {
        Throughput {
            wall_seconds,
            packets_per_sec: if wall_seconds > 0.0 { packets as f64 / wall_seconds } else { 0.0 },
            p50_latency_us: latency.percentile(0.50) as f64 / 1_000.0,
            p99_latency_us: latency.percentile(0.99) as f64 / 1_000.0,
            score_seconds,
            train_seconds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(seq: u64, window: u64, score: f64, label: bool) -> ScoredEvent {
        ScoredEvent { seq, sub: 0, window, score, latency_nanos: 100, label, kind: None }
    }

    #[test]
    fn windows_partition_the_stream() {
        let records = vec![
            record(0, 0, 0.9, true),
            record(1, 0, 0.1, false),
            record(2, 1, 0.8, false),
            record(3, 3, 0.2, true),
        ];
        let windows = window_metrics(&records, 10.0, 0.5);
        assert_eq!(windows.len(), 3, "empty window 2 omitted");
        assert_eq!(windows[0].packets, 2);
        assert_eq!(windows[0].recall, 1.0);
        assert_eq!(windows[0].precision, 1.0);
        assert_eq!(windows[1].start_secs, 10.0);
        assert_eq!(windows[1].false_positive_rate, 1.0);
        assert_eq!(windows[2].recall, 0.0);
        assert_eq!(windows[2].alerts, 0);
    }

    #[test]
    fn family_recall_counts_hits() {
        let mut records = vec![record(0, 0, 0.9, true), record(1, 0, 0.2, true)];
        records[0].kind = Some(AttackKind::SynFlood);
        records[1].kind = Some(AttackKind::SynFlood);
        let families = family_recall(&records, 0.5);
        assert_eq!(families.len(), 1);
        assert_eq!(families[0].family, "syn-flood");
        assert_eq!(families[0].recall, 0.5);
        assert_eq!(families[0].alerts, 1);
        assert_eq!(families[0].packets, 2);
        assert_eq!(families[0].flows, 0);
    }

    #[test]
    fn family_recall_splits_packets_from_flows() {
        let mut packet_event = record(4, 0, 0.9, true);
        packet_event.kind = Some(AttackKind::PortScan);
        let mut eviction = record(5, 0, 0.9, true);
        eviction.sub = 1;
        eviction.kind = Some(AttackKind::PortScan);
        let mut flush = record(u64::MAX, 0, 0.1, true);
        flush.kind = Some(AttackKind::PortScan);
        let families = family_recall(&[packet_event, eviction, flush], 0.5);
        assert_eq!(families[0].packets, 1);
        assert_eq!(families[0].flows, 2);
        assert_eq!(families[0].alerts, 2);
        assert_eq!(families[0].items(), 3);
    }

    #[test]
    fn online_stats_match_replayed_records() {
        let records = vec![
            record(0, 0, 0.9, true),
            record(1, 0, 0.1, false),
            record(2, 1, 0.8, false),
            record(3, 3, 0.2, true),
        ];
        let threshold = 0.5;
        let mut online = OnlineStats::default();
        for r in &records {
            online.record(r.window, r.score, threshold, r.label, r.kind, false, r.latency_nanos);
        }
        assert_eq!(online.events, 4);
        assert_eq!(online.attacks, 2);
        assert_eq!(online.window_metrics(10.0), window_metrics(&records, 10.0, threshold));
        assert_eq!(online.family_recall(), family_recall(&records, threshold));
    }

    #[test]
    fn online_stats_merge_is_additive() {
        let threshold = 0.5;
        let mut a = OnlineStats::default();
        let mut b = OnlineStats::default();
        let mut whole = OnlineStats::default();
        for (i, r) in (0..10).map(|i| record(i, i / 3, i as f64 / 10.0, i % 2 == 0)).enumerate() {
            let half = if i % 2 == 0 { &mut a } else { &mut b };
            half.record(r.window, r.score, threshold, r.label, r.kind, false, r.latency_nanos);
            whole.record(r.window, r.score, threshold, r.label, r.kind, false, r.latency_nanos);
        }
        a.merge(&b);
        assert_eq!(a.events, whole.events);
        assert_eq!(a.cm, whole.cm);
        assert_eq!(a.window_metrics(10.0), whole.window_metrics(10.0));
    }

    #[test]
    fn percentiles_are_exact() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(latency_percentile(&sorted, 0.0), 1);
        assert_eq!(latency_percentile(&sorted, 0.50), 51);
        assert_eq!(latency_percentile(&sorted, 0.99), 99);
        assert_eq!(latency_percentile(&sorted, 1.0), 100);
        assert_eq!(latency_percentile(&[], 0.5), 0);
    }

    #[test]
    fn throughput_divides_by_wall_time() {
        let t = Throughput::from_run(1000, 2.0, vec![1_000, 2_000, 3_000], 1.5, 0.25);
        assert_eq!(t.packets_per_sec, 500.0);
        assert_eq!(t.p50_latency_us, 2.0);
        assert_eq!(t.train_seconds, 0.25);
    }
}
