//! Live stream metrics: windowed detection quality and latency/throughput
//! accounting, merged across shards.
//!
//! Each shard records one lightweight [`ScoredPacket`] per evaluation packet
//! while it runs; at finalisation the executor merges the per-shard streams,
//! resolves the alert threshold, and folds the records into overall and
//! per-window confusion metrics. Latency percentiles are exact (computed
//! over all recorded per-packet scoring times, not a sketch).

use idsbench_core::metrics::ConfusionMatrix;
use idsbench_core::AttackKind;

/// One scored evaluation packet, as recorded inside a shard.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredPacket {
    /// Arrival index in the merged input stream (assigned by the feeder).
    pub seq: u64,
    /// Tumbling window index (`ts / window`).
    pub window: u64,
    /// Anomaly score emitted by the shard's detector.
    pub score: f64,
    /// Nanoseconds spent inside the detector for this packet.
    pub latency_nanos: u64,
    /// Ground truth.
    pub label: bool,
    /// Attack family for per-family recall (`None` for benign).
    pub kind: Option<AttackKind>,
}

/// Detection quality over one tumbling time window of the traffic timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowMetrics {
    /// Window index (`start_secs / window length`).
    pub index: u64,
    /// Window start on the traffic timeline, in seconds.
    pub start_secs: f64,
    /// Evaluation packets in the window.
    pub packets: usize,
    /// Attack packets in the window.
    pub attacks: usize,
    /// Alerts raised in the window.
    pub alerts: usize,
    /// Precision within the window.
    pub precision: f64,
    /// Recall within the window.
    pub recall: f64,
    /// False-positive rate within the window.
    pub false_positive_rate: f64,
}

/// Folds scored packets into per-window metrics at a resolved threshold.
/// Windows with no packets are omitted (sparse traffic timelines).
pub fn window_metrics(
    records: &[ScoredPacket],
    window_secs: f64,
    threshold: f64,
) -> Vec<WindowMetrics> {
    let mut by_window: std::collections::BTreeMap<u64, (ConfusionMatrix, usize)> =
        std::collections::BTreeMap::new();
    for r in records {
        let (cm, packets) = by_window.entry(r.window).or_default();
        cm.record(r.score >= threshold, r.label);
        *packets += 1;
    }
    by_window
        .into_iter()
        .map(|(index, (cm, packets))| WindowMetrics {
            index,
            start_secs: index as f64 * window_secs,
            packets,
            attacks: (cm.true_positives + cm.false_negatives) as usize,
            alerts: (cm.true_positives + cm.false_positives) as usize,
            precision: cm.precision(),
            recall: cm.recall(),
            false_positive_rate: cm.false_positive_rate(),
        })
        .collect()
}

/// Per-family recall at a resolved threshold:
/// `(family name, recall, packets of that family)`, sorted by family name —
/// the same shape the batch runner reports.
pub fn family_recall(records: &[ScoredPacket], threshold: f64) -> Vec<(String, f64, usize)> {
    let mut per_family: std::collections::BTreeMap<&'static str, (usize, usize)> =
        std::collections::BTreeMap::new();
    for r in records {
        if let Some(kind) = r.kind {
            let entry = per_family.entry(kind.name()).or_default();
            entry.1 += 1;
            if r.score >= threshold {
                entry.0 += 1;
            }
        }
    }
    per_family
        .into_iter()
        .map(|(name, (hit, total))| (name.to_string(), hit as f64 / total.max(1) as f64, total))
        .collect()
}

/// Exact percentile over per-packet scoring latencies (nanoseconds).
/// `q` in `[0, 1]`; returns 0 for an empty set.
pub fn latency_percentile(sorted_nanos: &[u64], q: f64) -> u64 {
    if sorted_nanos.is_empty() {
        return 0;
    }
    let rank = ((sorted_nanos.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
    sorted_nanos[rank]
}

/// Wall-clock throughput and latency summary of one streaming run.
#[derive(Debug, Clone, PartialEq)]
pub struct Throughput {
    /// Wall-clock seconds from first fed packet to last scored packet
    /// (warmup excluded).
    pub wall_seconds: f64,
    /// Evaluation packets scored per wall-clock second.
    pub packets_per_sec: f64,
    /// Median per-packet scoring latency, microseconds.
    pub p50_latency_us: f64,
    /// 99th-percentile per-packet scoring latency, microseconds.
    pub p99_latency_us: f64,
    /// Summed busy time inside detectors across all shards, seconds.
    pub detector_seconds: f64,
    /// Slowest shard's warmup (training) time, seconds.
    pub warmup_seconds: f64,
}

impl Throughput {
    /// Builds the summary from run totals and the merged latency set.
    pub fn from_run(
        packets: usize,
        wall_seconds: f64,
        mut latencies_nanos: Vec<u64>,
        detector_seconds: f64,
        warmup_seconds: f64,
    ) -> Self {
        latencies_nanos.sort_unstable();
        Throughput {
            wall_seconds,
            packets_per_sec: if wall_seconds > 0.0 { packets as f64 / wall_seconds } else { 0.0 },
            p50_latency_us: latency_percentile(&latencies_nanos, 0.50) as f64 / 1_000.0,
            p99_latency_us: latency_percentile(&latencies_nanos, 0.99) as f64 / 1_000.0,
            detector_seconds,
            warmup_seconds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(seq: u64, window: u64, score: f64, label: bool) -> ScoredPacket {
        ScoredPacket { seq, window, score, latency_nanos: 100, label, kind: None }
    }

    #[test]
    fn windows_partition_the_stream() {
        let records = vec![
            record(0, 0, 0.9, true),
            record(1, 0, 0.1, false),
            record(2, 1, 0.8, false),
            record(3, 3, 0.2, true),
        ];
        let windows = window_metrics(&records, 10.0, 0.5);
        assert_eq!(windows.len(), 3, "empty window 2 omitted");
        assert_eq!(windows[0].packets, 2);
        assert_eq!(windows[0].recall, 1.0);
        assert_eq!(windows[0].precision, 1.0);
        assert_eq!(windows[1].start_secs, 10.0);
        assert_eq!(windows[1].false_positive_rate, 1.0);
        assert_eq!(windows[2].recall, 0.0);
        assert_eq!(windows[2].alerts, 0);
    }

    #[test]
    fn family_recall_counts_hits() {
        let mut records = vec![record(0, 0, 0.9, true), record(1, 0, 0.2, true)];
        records[0].kind = Some(AttackKind::SynFlood);
        records[1].kind = Some(AttackKind::SynFlood);
        let families = family_recall(&records, 0.5);
        assert_eq!(families, vec![("syn-flood".to_string(), 0.5, 2)]);
    }

    #[test]
    fn percentiles_are_exact() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(latency_percentile(&sorted, 0.0), 1);
        assert_eq!(latency_percentile(&sorted, 0.50), 51);
        assert_eq!(latency_percentile(&sorted, 0.99), 99);
        assert_eq!(latency_percentile(&sorted, 1.0), 100);
        assert_eq!(latency_percentile(&[], 0.5), 0);
    }

    #[test]
    fn throughput_divides_by_wall_time() {
        let t = Throughput::from_run(1000, 2.0, vec![1_000, 2_000, 3_000], 1.5, 0.25);
        assert_eq!(t.packets_per_sec, 500.0);
        assert_eq!(t.p50_latency_us, 2.0);
        assert_eq!(t.warmup_seconds, 0.25);
    }
}
