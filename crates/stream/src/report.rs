//! The streaming run report and its reconciliation with the batch
//! [`Experiment`] shape.

use idsbench_core::metrics::{FamilyOutcome, Metrics};
use idsbench_core::runner::Experiment;
use idsbench_core::ScaleEvent;

use crate::metrics::{Throughput, WindowMetrics};

/// Per-shard accounting of one streaming run.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardStats {
    /// Shard index.
    pub shard: usize,
    /// Packet events routed to this shard.
    pub packets: usize,
    /// Events this shard's detector scored (packets or flow evictions,
    /// per the detector's input format).
    pub items: usize,
    /// Distinct canonical flows this shard owned.
    pub flows: usize,
    /// Busy seconds inside this shard's `on_event` calls.
    pub score_seconds: f64,
    /// Times the feeder found this shard's channel full and had to block —
    /// the backpressure count. Zero means the shard kept up.
    pub stalls: usize,
}

/// The merged outcome of one streaming run — the streaming counterpart of a
/// batch [`Experiment`] cell, extended with the live dimensions batch
/// evaluation cannot observe (windowed quality, latency, throughput,
/// per-shard load).
#[derive(Debug, Clone, PartialEq)]
pub struct StreamReport {
    /// Detector name.
    pub detector: String,
    /// Packet-source (dataset/capture) name.
    pub source: String,
    /// Shard count the run started with (the pool may move between
    /// `scale_events`; see `final_shards`).
    pub shards: usize,
    /// Per-shard feeder batch size.
    pub batch_size: usize,
    /// Packets in the shared warmup slice.
    pub warmup_packets: usize,
    /// Evaluation packets fed through the shards.
    pub eval_packets: usize,
    /// Evaluation events scored — equals `eval_packets` for packet-format
    /// detectors, the flow-eviction count for flow-format detectors.
    pub eval_items: usize,
    /// Packets the source dropped before the feeder saw them (lossy
    /// live-capture sources; always 0 for replay sources, which block).
    pub dropped_packets: u64,
    /// Fraction of scored evaluation events that are attacks.
    pub attack_share: f64,
    /// Resolved alert threshold.
    pub threshold: f64,
    /// Overall headline metrics at the resolved threshold.
    pub metrics: Metrics,
    /// Overall false-positive rate at the resolved threshold.
    pub false_positive_rate: f64,
    /// Area under the ROC curve of the raw score stream. `NaN` in
    /// zero-buffer mode (fixed threshold), where no scores are recorded to
    /// rank.
    pub auc: f64,
    /// Per-attack-family detection outcomes, sorted by family name.
    pub family_recall: Vec<FamilyOutcome>,
    /// Detection quality per tumbling traffic-time window.
    pub windows: Vec<WindowMetrics>,
    /// Wall-clock throughput and latency summary.
    pub throughput: Throughput,
    /// Per-shard load breakdown. Under autoscaling this includes retired
    /// shards; a migrated flow counts only for its final owner.
    pub shard_stats: Vec<ShardStats>,
    /// Every elastic-sharding action the run took, in order. Empty for
    /// fixed-pool runs.
    pub scale_events: Vec<ScaleEvent>,
    /// Shard count when the stream ended (equals `shards` without
    /// autoscaling).
    pub final_shards: usize,
}

impl StreamReport {
    /// Projects this report onto the batch [`Experiment`] shape, so
    /// streaming and batch results of the same detector/dataset pair can sit
    /// in the same tables.
    ///
    /// `score_seconds` maps to the summed busy time across shards and
    /// `train_seconds` to the shared assembly plus the slowest shard's fit
    /// (the batch fields measure one detector's calls).
    pub fn to_experiment(&self) -> Experiment {
        Experiment {
            detector: self.detector.clone(),
            dataset: self.source.clone(),
            metrics: self.metrics,
            threshold: self.threshold,
            eval_items: self.eval_items,
            attack_share: self.attack_share,
            auc: self.auc,
            false_positive_rate: self.false_positive_rate,
            train_seconds: self.throughput.train_seconds,
            score_seconds: self.throughput.score_seconds,
            family_recall: self.family_recall.clone(),
        }
    }

    /// Serializes the report as a self-contained JSON object.
    ///
    /// Hand-rolled (the offline `serde` stand-in carries no data model);
    /// the layout is stable and consumed by the `fig_streaming` bench.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push('{');
        json_str(&mut out, "detector", &self.detector);
        out.push(',');
        json_str(&mut out, "source", &self.source);
        out.push(',');
        json_num(&mut out, "shards", self.shards as f64);
        out.push(',');
        json_num(&mut out, "batch_size", self.batch_size as f64);
        out.push(',');
        json_num(&mut out, "warmup_packets", self.warmup_packets as f64);
        out.push(',');
        json_num(&mut out, "eval_packets", self.eval_packets as f64);
        out.push(',');
        json_num(&mut out, "eval_items", self.eval_items as f64);
        out.push(',');
        json_num(&mut out, "dropped_packets", self.dropped_packets as f64);
        out.push(',');
        json_num(&mut out, "attack_share", self.attack_share);
        out.push(',');
        json_num(&mut out, "threshold", self.threshold);
        out.push(',');
        json_num(&mut out, "accuracy", self.metrics.accuracy);
        out.push(',');
        json_num(&mut out, "precision", self.metrics.precision);
        out.push(',');
        json_num(&mut out, "recall", self.metrics.recall);
        out.push(',');
        json_num(&mut out, "f1", self.metrics.f1);
        out.push(',');
        json_num(&mut out, "false_positive_rate", self.false_positive_rate);
        out.push(',');
        json_num(&mut out, "auc", self.auc);
        out.push(',');
        json_num(&mut out, "wall_seconds", self.throughput.wall_seconds);
        out.push(',');
        json_num(&mut out, "packets_per_sec", self.throughput.packets_per_sec);
        out.push(',');
        json_num(&mut out, "p50_latency_us", self.throughput.p50_latency_us);
        out.push(',');
        json_num(&mut out, "p99_latency_us", self.throughput.p99_latency_us);
        out.push(',');
        json_num(&mut out, "score_seconds", self.throughput.score_seconds);
        out.push(',');
        json_num(&mut out, "train_seconds", self.throughput.train_seconds);
        out.push(',');
        out.push_str("\"family_recall\":[");
        for (i, outcome) in self.family_recall.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&outcome.to_json());
        }
        out.push_str("],\"windows\":[");
        for (i, w) in self.windows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            json_num(&mut out, "start_secs", w.start_secs);
            out.push(',');
            json_num(&mut out, "packets", w.packets as f64);
            out.push(',');
            json_num(&mut out, "attacks", w.attacks as f64);
            out.push(',');
            json_num(&mut out, "alerts", w.alerts as f64);
            out.push(',');
            json_num(&mut out, "precision", w.precision);
            out.push(',');
            json_num(&mut out, "recall", w.recall);
            out.push(',');
            json_num(&mut out, "false_positive_rate", w.false_positive_rate);
            out.push('}');
        }
        out.push_str("],\"shard_stats\":[");
        for (i, s) in self.shard_stats.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            json_num(&mut out, "shard", s.shard as f64);
            out.push(',');
            json_num(&mut out, "packets", s.packets as f64);
            out.push(',');
            json_num(&mut out, "items", s.items as f64);
            out.push(',');
            json_num(&mut out, "flows", s.flows as f64);
            out.push(',');
            json_num(&mut out, "score_seconds", s.score_seconds);
            out.push(',');
            json_num(&mut out, "stalls", s.stalls as f64);
            out.push('}');
        }
        out.push_str("],");
        json_num(&mut out, "final_shards", self.final_shards as f64);
        out.push_str(",\"scale_events\":[");
        for (i, e) in self.scale_events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            // One encoding for scale events everywhere: the report array and
            // the telemetry journal both delegate to `ScaleEvent::to_json`.
            out.push_str(&e.to_json());
        }
        out.push_str("]}");
        out
    }
}

// The escaping and number conventions live in `idsbench_core::json` (shared
// with the batch report, the telemetry sink, and the fig binaries).
use idsbench_core::json::{num_field as json_num, str_field as json_str};

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> StreamReport {
        StreamReport {
            detector: "length \"v2\"".to_string(),
            source: "toy".to_string(),
            shards: 2,
            batch_size: 32,
            warmup_packets: 10,
            eval_packets: 90,
            eval_items: 90,
            dropped_packets: 4,
            attack_share: 0.1,
            threshold: f64::INFINITY,
            metrics: Metrics { accuracy: 0.9, precision: 1.0, recall: 0.5, f1: 2.0 / 3.0 },
            false_positive_rate: 0.0,
            auc: 0.95,
            family_recall: vec![FamilyOutcome {
                family: "syn-flood".to_string(),
                recall: 0.5,
                alerts: 4,
                packets: 9,
                flows: 0,
            }],
            windows: vec![WindowMetrics {
                index: 0,
                start_secs: 0.0,
                packets: 90,
                attacks: 9,
                alerts: 5,
                precision: 1.0,
                recall: 0.5,
                false_positive_rate: 0.0,
            }],
            throughput: Throughput {
                wall_seconds: 0.5,
                packets_per_sec: 180.0,
                p50_latency_us: 2.0,
                p99_latency_us: 9.0,
                score_seconds: 0.4,
                train_seconds: 0.1,
            },
            shard_stats: vec![
                ShardStats {
                    shard: 0,
                    packets: 50,
                    items: 50,
                    flows: 3,
                    score_seconds: 0.2,
                    stalls: 1,
                },
                ShardStats {
                    shard: 1,
                    packets: 40,
                    items: 40,
                    flows: 2,
                    score_seconds: 0.2,
                    stalls: 0,
                },
            ],
            scale_events: vec![ScaleEvent {
                seq: 30,
                at_secs: 1.5,
                window: 2,
                from_shards: 1,
                to_shards: 2,
                trigger_pps: 4000.0,
                migrated_flows: 3,
                rebalance_micros: 250,
            }],
            final_shards: 2,
        }
    }

    #[test]
    fn json_is_well_formed_and_escaped() {
        let json = report().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"detector\":\"length \\\"v2\\\"\""));
        assert!(json.contains("\"threshold\":null"), "infinity must encode as null");
        assert!(json.contains("\"packets_per_sec\":180"));
        assert!(json.contains("\"windows\":[{"));
        assert!(json.contains("\"shard_stats\":[{\"shard\":0"));
        assert!(json.contains("\"stalls\":1"));
        assert!(json.contains("\"dropped_packets\":4"));
        assert!(json.contains("\"final_shards\":2"));
        assert!(json.contains("\"scale_events\":[{\"seq\":30"));
        assert!(json.contains("\"rebalance_micros\":250"));
        // Balanced braces/brackets (cheap structural sanity).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn experiment_projection_keeps_headline_numbers() {
        let r = report();
        let e = r.to_experiment();
        assert_eq!(e.detector, r.detector);
        assert_eq!(e.dataset, r.source);
        assert_eq!(e.metrics, r.metrics);
        assert_eq!(e.eval_items, 90);
        assert_eq!(e.score_seconds, 0.4);
        assert_eq!(e.train_seconds, 0.1);
    }
}
