//! The shard event loop as a reusable unit: one detector instance plus its
//! flow table, label fold, and recorder, driven by routed packets and the
//! drain-then-migrate rebalance protocol.
//!
//! [`ShardLoop`] is the *same* code path whether the shard lives on a
//! thread inside [`run_stream`](crate::executor::run_stream) or inside a
//! remote `idsbench-fabric` worker process fed over a socket — that shared
//! body is what makes single-process and multi-node runs score-identical
//! by construction rather than by parallel maintenance. The executor owns
//! the threads and channels; this module owns the event semantics.

use std::collections::HashSet;
use std::time::Instant;

use idsbench_core::metrics::{auc, roc_curve, ConfusionMatrix};
use idsbench_core::{
    Event, EventDetector, FlowEventAssembler, FlowMigration, ParsedView, ScaleEvent,
};
use idsbench_flow::FlowKey;
use idsbench_telemetry::{Stage, StageHistogram, Telemetry};

use crate::executor::{StreamConfig, StreamRun, ThresholdMode};
use crate::metrics::window_index as window_of_micros;
use crate::metrics::{
    family_recall, window_metrics, LatencyHistogram, OnlineStats, ScoredEvent, Throughput,
};
use crate::report::{ShardStats, StreamReport};
use crate::ring::HashRing;

use std::sync::Arc;

/// One packet in flight from a feeder to a shard: the parsed view rides
/// along, so the shard never touches raw bytes.
#[derive(Debug)]
pub struct StreamItem {
    /// Global feed order of the packet (assigned by the feeder).
    pub seq: u64,
    /// The packet's single parse, shared by routing and scoring.
    pub view: ParsedView,
}

/// Per-shard recording state, chosen by threshold mode.
#[derive(Debug, Clone, PartialEq)]
pub enum Recorder {
    /// Replay mode: keep every scored event for post-hoc calibration.
    Full(Vec<ScoredEvent>),
    /// Zero-buffer mode: fold into online aggregates at a fixed threshold.
    Online(Box<OnlineStats>, f64),
}

impl Recorder {
    /// The recorder a shard needs under `mode`: full score recording for
    /// calibrated runs, online aggregation at the fixed threshold
    /// otherwise.
    pub fn for_mode(mode: ThresholdMode) -> Self {
        match mode {
            ThresholdMode::Fixed(threshold) => Recorder::Online(Box::default(), threshold),
            ThresholdMode::Calibrated(_) => Recorder::Full(Vec::new()),
        }
    }

    /// Number of events this recorder has absorbed.
    pub fn items(&self) -> usize {
        match self {
            Recorder::Full(records) => records.len(),
            Recorder::Online(stats, _) => stats.events,
        }
    }

    /// Records one scored event.
    #[allow(clippy::too_many_arguments)]
    pub fn push(
        &mut self,
        seq: u64,
        sub: u32,
        window: u64,
        score: f64,
        latency_nanos: u64,
        label: idsbench_core::Label,
    ) {
        match self {
            Recorder::Full(records) => records.push(ScoredEvent {
                seq,
                sub,
                window,
                score,
                latency_nanos,
                label: label.is_attack(),
                kind: label.attack_kind(),
            }),
            Recorder::Online(stats, threshold) => stats.record(
                window,
                score,
                *threshold,
                label.is_attack(),
                label.attack_kind(),
                // Flow evictions carry `sub > 0` (triggered by a later
                // packet) or the flush sentinel; packet events carry
                // neither. Same rule the replay path applies to records.
                sub > 0 || seq == u64::MAX,
                latency_nanos,
            ),
        }
    }
}

/// What a shard hands back when its stream drains — the associatively
/// mergeable fragment [`merge_outcomes`] folds into the final report. The
/// fabric worker ships exactly this (the recorder wholesale) back over the
/// wire, so remote shards merge the same way local ones do.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardOutcome {
    /// Stable shard id.
    pub shard: usize,
    /// Everything the shard scored.
    pub recorder: Recorder,
    /// Busy seconds inside `on_event` calls.
    pub score_seconds: f64,
    /// Seconds this shard's detector instance spent in `fit`.
    pub fit_seconds: f64,
    /// Packets routed to this shard.
    pub packets: usize,
    /// Distinct canonical flows the shard owned at the end.
    pub flows: usize,
}

/// A consistent point-in-time image of a live shard, taken by
/// [`ShardLoop::on_checkpoint`]: the cloned per-flow state plus traffic
/// clock a fresh replica needs to resume scoring deterministically, and the
/// score fragment accumulated since the previous checkpoint (the recorder
/// is drained into the fragment, so fragments concatenate to exactly the
/// crash-free outcome).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardCheckpoint {
    /// Every live flow (open record, label fold, detector per-flow state),
    /// cloned — the shard keeps scoring untouched.
    pub flows: Vec<FlowMigration>,
    /// Latest packet timestamp the shard observed (assembler clock).
    pub last_ts: idsbench_net::Timestamp,
    /// The flow table's idle-sweep phase, so a replica sweeps at exactly
    /// the packets the original would have.
    pub sweep: idsbench_net::Timestamp,
    /// Scores, packet counts, and busy time since the previous checkpoint.
    pub fragment: ShardOutcome,
}

/// Per-shard stage histograms; present only when the run carries telemetry.
/// Score and evict reuse the latencies the recorder already measures, so
/// attaching them adds no clock reads to the scoring path.
#[derive(Debug)]
pub struct ShardSpans {
    score: Arc<StageHistogram>,
    evict: Arc<StageHistogram>,
    migrate: Arc<StageHistogram>,
}

impl ShardSpans {
    /// Resolves the score/evict/migrate stage histograms for `shard` once,
    /// so the event loop never touches the registry.
    pub fn new(telemetry: &Telemetry, shard: usize) -> Self {
        ShardSpans {
            score: telemetry.stage(Stage::Score, Some(shard)),
            evict: telemetry.stage(Stage::Evict, Some(shard)),
            migrate: telemetry.stage(Stage::Migrate, Some(shard)),
        }
    }
}

/// The per-shard event loop: scores the packet event, feeds the shard's
/// flow table (flow-format detectors only), and scores the evictions — the
/// exact event order the batch driver replays.
pub struct ShardLoop {
    /// Stable shard id — the identity the ring routes to.
    id: usize,
    detector: Box<dyn EventDetector>,
    recorder: Recorder,
    assembler: Option<FlowEventAssembler>,
    evicted: Vec<idsbench_core::LabeledFlow>,
    flows: HashSet<FlowKey>,
    window_secs: f64,
    score_nanos: u128,
    packets: usize,
    /// Live latency histogram feeding the autoscaler's p99 signal; absent
    /// (zero overhead) when the run is not autoscaling.
    live_latency: Option<LatencyHistogram>,
    /// Per-stage telemetry histograms; absent without telemetry.
    spans: Option<ShardSpans>,
    /// Reused score buffer for the batch scoring path.
    batch_scores: Vec<f64>,
}

impl std::fmt::Debug for ShardLoop {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardLoop")
            .field("id", &self.id)
            .field("detector", &self.detector.name())
            .field("packets", &self.packets)
            .field("flows", &self.flows.len())
            .finish_non_exhaustive()
    }
}

impl ShardLoop {
    /// Builds one shard's event loop around an already-fitted detector.
    ///
    /// `assembler` is `Some` for flow-format detectors (the shard then owns
    /// a flow table and emits eviction events); `live_latency` attaches the
    /// per-batch p99 histogram the autoscaler samples ([`ShardLoop::batch_p99`]).
    pub fn new(
        id: usize,
        detector: Box<dyn EventDetector>,
        recorder: Recorder,
        assembler: Option<FlowEventAssembler>,
        window_secs: f64,
        live_latency: bool,
        spans: Option<ShardSpans>,
    ) -> Self {
        ShardLoop {
            id,
            detector,
            recorder,
            assembler,
            evicted: Vec::new(),
            flows: HashSet::new(),
            window_secs,
            score_nanos: 0,
            packets: 0,
            live_latency: live_latency.then(LatencyHistogram::default),
            spans,
            batch_scores: Vec::new(),
        }
    }

    /// Scores a routed burst of packets. Packet-format shards (no flow
    /// table) deliver the whole burst through the detector's
    /// [`EventDetector::on_packet_batch`] entry point, letting NN-backed
    /// detectors amortize weight traffic across the burst — with scores
    /// bitwise identical to per-packet delivery in the default f64
    /// precision (the batch contract). Flow-format shards fall back to
    /// per-packet delivery, which interleaves eviction events correctly.
    ///
    /// Per-event latency is the batch wall time divided by the burst
    /// length: the whole burst occupies the shard for that span, so each
    /// packet's share of it is the honest per-event cost (scores, not
    /// latencies, are digest-pinned).
    pub fn on_batch(&mut self, items: &[StreamItem]) {
        if self.assembler.is_some() || items.len() <= 1 {
            for item in items {
                self.on_packet(item);
            }
            return;
        }
        self.packets += items.len();
        for item in items {
            if let Some(key) = item.view.flow_key {
                self.flows.insert(key);
            }
        }
        self.batch_scores.clear();
        let started = Instant::now();
        self.detector
            .on_packet_batch(&mut items.iter().map(|item| &item.view), &mut self.batch_scores);
        let total = started.elapsed().as_nanos();
        self.score_nanos += total;
        let per_event = (total / items.len() as u128).min(u128::from(u64::MAX)) as u64;
        debug_assert_eq!(self.batch_scores.len(), items.len(), "one score per packet view");
        let scores = std::mem::take(&mut self.batch_scores);
        for (item, &score) in items.iter().zip(&scores) {
            if let Some(spans) = &self.spans {
                spans.score.record(per_event);
            }
            let window = window_of_micros(item.view.packet.packet.ts.as_micros(), self.window_secs);
            if let Some(hist) = &mut self.live_latency {
                hist.record(per_event);
            }
            self.recorder.push(item.seq, 0, window, score, per_event, item.view.label());
        }
        self.batch_scores = scores;
    }

    /// Scores one routed packet and any flow evictions it triggers.
    pub fn on_packet(&mut self, item: &StreamItem) {
        self.packets += 1;
        if let Some(key) = item.view.flow_key {
            self.flows.insert(key);
        }
        let started = Instant::now();
        let score = self.detector.on_event(&Event::Packet(&item.view));
        let latency = started.elapsed();
        self.score_nanos += latency.as_nanos();
        if let Some(spans) = &self.spans {
            spans.score.record(latency.as_nanos().min(u128::from(u64::MAX)) as u64);
        }
        if let Some(score) = score {
            let window = window_of_micros(item.view.packet.packet.ts.as_micros(), self.window_secs);
            let latency_nanos = latency.as_nanos().min(u128::from(u64::MAX)) as u64;
            if let Some(hist) = &mut self.live_latency {
                hist.record(latency_nanos);
            }
            self.recorder.push(item.seq, 0, window, score, latency_nanos, item.view.label());
        }
        if let Some(assembler) = &mut self.assembler {
            let evicted = &mut self.evicted;
            assembler.observe(&item.view, |flow| evicted.push(flow));
            // Take/restore so the buffer's capacity survives eviction
            // bursts (on_flow needs &mut self, so draining in place would
            // alias the borrow).
            let mut evicted = std::mem::take(&mut self.evicted);
            for (index, flow) in evicted.drain(..).enumerate() {
                self.on_flow(item.seq, index as u32 + 1, flow);
            }
            self.evicted = evicted;
        }
    }

    fn on_flow(&mut self, seq: u64, sub: u32, flow: idsbench_core::LabeledFlow) {
        let started = Instant::now();
        let score = self.detector.on_event(&Event::FlowEvicted(&flow));
        let latency = started.elapsed();
        self.score_nanos += latency.as_nanos();
        if let Some(spans) = &self.spans {
            spans.evict.record(latency.as_nanos().min(u128::from(u64::MAX)) as u64);
        }
        if let Some(score) = score {
            let window = window_of_micros(flow.record.last_seen.as_micros(), self.window_secs);
            let latency_nanos = latency.as_nanos().min(u128::from(u64::MAX)) as u64;
            if let Some(hist) = &mut self.live_latency {
                hist.record(latency_nanos);
            }
            self.recorder.push(seq, sub, window, score, latency_nanos, flow.label);
        }
    }

    /// Ring membership changed: extract every flow this shard no longer
    /// owns — open records and label folds from the assembler (flow-format
    /// detectors), the owned-key inventory otherwise — plus whatever
    /// per-flow state the detector keeps, as the migration payload.
    pub fn on_rebalance(&mut self, ring: &HashRing) -> Vec<FlowMigration> {
        let mut migrations = match &mut self.assembler {
            Some(assembler) => assembler.extract_departing(|key| ring.owner_of(key) == self.id),
            None => {
                let mut departing: Vec<FlowKey> = self
                    .flows
                    .iter()
                    .filter(|key| ring.owner_of(key) != self.id)
                    .copied()
                    .collect();
                departing.sort_unstable();
                departing
                    .into_iter()
                    .map(|key| FlowMigration {
                        key,
                        record: None,
                        label: idsbench_core::Label::Benign,
                        label_seen: idsbench_net::Timestamp::ZERO,
                        detector: None,
                    })
                    .collect()
            }
        };
        for migration in &mut migrations {
            migration.detector = self.detector.extract_flow_state(&migration.key);
            self.flows.remove(&migration.key);
        }
        migrations
    }

    /// Flows whose ownership moved here: adopt them before any packet
    /// routed under the new ring (message order — on the channel or on the
    /// fabric socket — guarantees the "before").
    pub fn on_migrate(&mut self, migrations: Vec<FlowMigration>) {
        let started = self.spans.as_ref().map(|_| Instant::now());
        for mut migration in migrations {
            self.flows.insert(migration.key);
            if let Some(state) = migration.detector.take() {
                self.detector.absorb_flow_state(&migration.key, state);
            }
            if let Some(assembler) = &mut self.assembler {
                assembler.absorb(migration);
            }
        }
        if let (Some(spans), Some(started)) = (&self.spans, started) {
            let nanos = started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
            spans.migrate.record(nanos);
        }
    }

    /// Takes a consistent checkpoint without disturbing the live loop:
    /// clones every flow's state (open record, label fold, detector
    /// per-flow bytes), captures the traffic clock, and *drains* the
    /// recorder into an incremental [`ShardOutcome`] fragment — packet and
    /// busy-time counters reset with it, so fragments from successive
    /// checkpoints sum to exactly the crash-free totals. `fit_seconds` is
    /// repeated on every fragment (a combiner takes the max).
    pub fn on_checkpoint(&mut self, fit_seconds: f64) -> ShardCheckpoint {
        let mut flows = match &self.assembler {
            Some(assembler) => assembler.snapshot_all(),
            None => {
                let mut keys: Vec<FlowKey> = self.flows.iter().copied().collect();
                keys.sort_unstable();
                keys.into_iter()
                    .map(|key| FlowMigration {
                        key,
                        record: None,
                        label: idsbench_core::Label::Benign,
                        label_seen: idsbench_net::Timestamp::ZERO,
                        detector: None,
                    })
                    .collect()
            }
        };
        for migration in &mut flows {
            migration.detector = self.detector.snapshot_flow_state(&migration.key);
        }
        let (last_ts, sweep) = self
            .assembler
            .as_ref()
            .map(|a| a.clock())
            .unwrap_or((idsbench_net::Timestamp::ZERO, idsbench_net::Timestamp::ZERO));
        let recorder = match &mut self.recorder {
            Recorder::Full(records) => Recorder::Full(std::mem::take(records)),
            Recorder::Online(stats, threshold) => {
                Recorder::Online(Box::new(std::mem::take(stats.as_mut())), *threshold)
            }
        };
        let fragment = ShardOutcome {
            shard: self.id,
            recorder,
            score_seconds: self.score_nanos as f64 / 1e9,
            fit_seconds,
            packets: self.packets,
            flows: self.flows.len(),
        };
        self.score_nanos = 0;
        self.packets = 0;
        ShardCheckpoint { flows, last_ts, sweep, fragment }
    }

    /// Restores a donor's traffic clock onto a freshly spawned replica
    /// (no-op for packet-format shards, which keep no flow table). Must run
    /// before any replayed traffic.
    pub fn restore_clock(
        &mut self,
        last_ts: idsbench_net::Timestamp,
        sweep: idsbench_net::Timestamp,
    ) {
        if let Some(assembler) = &mut self.assembler {
            assembler.restore_clock(last_ts, sweep);
        }
    }

    /// End of stream: flush the flow table (same as the batch driver).
    pub fn finish(&mut self) {
        if let Some(mut assembler) = self.assembler.take() {
            for (index, flow) in assembler.flush().into_iter().enumerate() {
                self.on_flow(u64::MAX, index as u32, flow);
            }
        }
    }

    /// The scoring p99 of the batch just processed, in nanoseconds,
    /// resetting the live histogram — the signal must track *current*
    /// latency, not a cumulative distribution. `None` when the live
    /// latency histogram is not attached.
    pub fn batch_p99(&mut self) -> Option<u64> {
        self.live_latency.as_mut().map(|hist| {
            let p99 = hist.percentile(0.99);
            hist.clear();
            p99
        })
    }

    /// Consumes the loop into its mergeable outcome fragment. Call
    /// [`ShardLoop::finish`] first; `fit_seconds` is supplied by the
    /// spawner, which timed the detector's `fit`.
    pub fn into_outcome(self, fit_seconds: f64) -> ShardOutcome {
        ShardOutcome {
            shard: self.id,
            recorder: self.recorder,
            score_seconds: self.score_nanos as f64 / 1e9,
            fit_seconds,
            packets: self.packets,
            flows: self.flows.len(),
        }
    }
}

/// Merges shard outcomes, resolves the threshold, and assembles the final
/// [`StreamRun`] — the single merge point shared by the in-process executor
/// and the fabric coordinator (whose outcomes arrived over sockets).
///
/// `fed` is the total packets the feeder routed, `shard_stalls` the
/// per-shard backpressure counts (including retired shards), and
/// `assembly_seconds` the shared train-view assembly time that joins the
/// slowest shard's fit in `train_seconds`.
#[allow(clippy::too_many_arguments)]
pub fn merge_outcomes(
    detector: String,
    source: String,
    warmup_packets: usize,
    fed: u64,
    wall_seconds: f64,
    assembly_seconds: f64,
    outcomes: Vec<ShardOutcome>,
    scale_events: Vec<ScaleEvent>,
    final_shards: usize,
    shard_stalls: Vec<(usize, usize)>,
    dropped_packets: u64,
    config: &StreamConfig,
) -> StreamRun {
    let mut shard_stats = Vec::with_capacity(outcomes.len());
    let mut score_seconds = 0.0;
    let mut fit_seconds: f64 = 0.0;
    let mut full: Vec<(usize, ScoredEvent)> = Vec::new();
    let mut online: Option<OnlineStats> = None;
    let mut fixed_threshold = None;
    for outcome in outcomes {
        shard_stats.push(ShardStats {
            shard: outcome.shard,
            packets: outcome.packets,
            items: outcome.recorder.items(),
            flows: outcome.flows,
            score_seconds: outcome.score_seconds,
            stalls: shard_stalls
                .iter()
                .find(|(id, _)| *id == outcome.shard)
                .map_or(0, |(_, stalls)| *stalls),
        });
        score_seconds += outcome.score_seconds;
        fit_seconds = fit_seconds.max(outcome.fit_seconds);
        match outcome.recorder {
            Recorder::Full(records) => {
                full.extend(records.into_iter().map(|r| (outcome.shard, r)));
            }
            Recorder::Online(stats, threshold) => {
                fixed_threshold = Some(threshold);
                match &mut online {
                    Some(merged) => merged.merge(&stats),
                    None => online = Some(*stats),
                }
            }
        }
    }
    let train_seconds = assembly_seconds + fit_seconds;

    if let Some(stats) = online {
        // Zero-buffer path: everything was aggregated online; no scores
        // exist to calibrate or rank, so AUC is undefined.
        let threshold = fixed_threshold.unwrap_or(f64::INFINITY);
        let report = StreamReport {
            detector,
            source,
            shards: config.shards,
            batch_size: config.batch_size,
            warmup_packets,
            eval_packets: fed as usize,
            eval_items: stats.events,
            dropped_packets,
            attack_share: if stats.events == 0 {
                0.0
            } else {
                stats.attacks as f64 / stats.events as f64
            },
            threshold,
            metrics: stats.cm.metrics(),
            false_positive_rate: stats.cm.false_positive_rate(),
            auc: f64::NAN,
            family_recall: stats.family_recall(),
            windows: stats.window_metrics(config.window_secs),
            throughput: Throughput::from_histogram(
                fed as usize,
                wall_seconds,
                &stats.latency,
                score_seconds,
                train_seconds,
            ),
            shard_stats,
            scale_events,
            final_shards,
        };
        return StreamRun { report, scores: Vec::new(), labels: Vec::new() };
    }

    // Replay path: restore the batch driver's event order — packet seq,
    // then the evictions it triggered; flush events (seq = MAX) ordered by
    // shard then flush index.
    full.sort_by_key(|(shard, r)| (r.seq, *shard, r.sub));
    let records: Vec<ScoredEvent> = full.into_iter().map(|(_, r)| r).collect();

    let scores: Vec<f64> = records.iter().map(|r| r.score).collect();
    let labels: Vec<bool> = records.iter().map(|r| r.label).collect();
    let threshold = match config.threshold {
        ThresholdMode::Fixed(t) => t,
        ThresholdMode::Calibrated(policy) => policy.calibrate(&scores, &labels),
    };

    let cm = ConfusionMatrix::from_scores(&scores, &labels, threshold);
    let attacks = labels.iter().filter(|&&l| l).count();
    let report = StreamReport {
        detector,
        source,
        shards: config.shards,
        batch_size: config.batch_size,
        warmup_packets,
        eval_packets: fed as usize,
        eval_items: records.len(),
        dropped_packets,
        attack_share: if labels.is_empty() { 0.0 } else { attacks as f64 / labels.len() as f64 },
        threshold,
        metrics: cm.metrics(),
        false_positive_rate: cm.false_positive_rate(),
        auc: auc(&roc_curve(&scores, &labels)),
        family_recall: family_recall(&records, threshold),
        windows: window_metrics(&records, config.window_secs, threshold),
        throughput: Throughput::from_run(
            fed as usize,
            wall_seconds,
            records.iter().map(|r| r.latency_nanos).collect(),
            score_seconds,
            train_seconds,
        ),
        shard_stats,
        scale_events,
        final_shards,
    };
    StreamRun { report, scores, labels }
}
