//! Packet sources: the pull side of the streaming engine.
//!
//! A [`PacketSource`] unifies everything that can produce labeled packets —
//! scenario generators, pcap captures, in-memory vectors — behind one pull
//! iterator the sharded executor drains. [`BoundedSource`] decouples a slow
//! producer onto its own thread with a bounded channel, giving real
//! backpressure between I/O and scoring.

use std::collections::VecDeque;
use std::fs::File;
use std::io::{BufReader, Read};
use std::path::Path;

use crossbeam::channel;
use idsbench_core::{
    CoreError, Label, LabeledPacket, PacketStream, PayloadArena, Result, TrafficModel,
};
use idsbench_net::pcap::PcapReader;
use idsbench_net::Packet;

/// A pull source of labeled packets, in arrival (timestamp) order.
///
/// `next_packet` returns `Ok(None)` at a clean end of stream and an error
/// when the underlying producer fails (e.g. a truncated capture file).
pub trait PacketSource {
    /// Short name used in reports (dataset or capture name).
    fn name(&self) -> &str;

    /// Pulls the next packet.
    ///
    /// # Errors
    ///
    /// Propagates producer failures; a source that has returned an error is
    /// not required to be pollable again.
    fn next_packet(&mut self) -> Result<Option<LabeledPacket>>;

    /// Hands a consumed packet back so the source may reuse its payload
    /// buffer (the stream executor routes drained batches here through its
    /// return lane). Purely an optimisation: the default drops the packet,
    /// and sources whose packets are pre-materialised ([`VecSource`],
    /// [`ScenarioSource`]) keep that default. [`PcapSource`] returns the
    /// buffer to its [`PayloadArena`].
    fn recycle_packet(&mut self, packet: Packet) {
        drop(packet);
    }

    /// Packets this source dropped before the consumer saw them. Replay
    /// sources never drop (backpressure blocks instead), so the default is
    /// 0; lossy live-capture-style sources
    /// ([`BoundedSource::spawn_lossy`]) override it. The executor surfaces
    /// the final value as `StreamReport::dropped_packets`.
    fn dropped_packets(&self) -> u64 {
        0
    }
}

/// An in-memory source: replays a vector of labeled packets.
#[derive(Debug)]
pub struct VecSource {
    name: String,
    packets: VecDeque<LabeledPacket>,
}

impl VecSource {
    /// Creates a source replaying `packets` in the given order.
    pub fn new(name: impl Into<String>, packets: Vec<LabeledPacket>) -> Self {
        VecSource { name: name.into(), packets: packets.into() }
    }

    /// Packets remaining.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// Whether the source is exhausted.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }
}

impl PacketSource for VecSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn next_packet(&mut self) -> Result<Option<LabeledPacket>> {
        Ok(self.packets.pop_front())
    }
}

/// A source backed by a [`TrafficModel`]: one seeded realisation, pulled
/// lazily in timestamp order.
///
/// Construction opens the model's stream but generates nothing; packets
/// materialise one at a time as the executor pulls. Natively streaming
/// models (the `idsbench-trafficgen` campaigns) therefore never hold a full
/// realisation in memory; the legacy `Scenario` models realise eagerly
/// inside their own `stream` and only the iteration is deferred.
pub struct ScenarioSource {
    name: String,
    stream: PacketStream,
    /// One-packet lookahead: [`ScenarioSource::split_warmup_secs`] pulls
    /// until it sees the first eval-side packet, which must not be lost.
    pending: Option<LabeledPacket>,
}

impl std::fmt::Debug for ScenarioSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScenarioSource").field("name", &self.name).finish_non_exhaustive()
    }
}

impl ScenarioSource {
    /// Opens one realisation of `model` with `seed`.
    pub fn new(model: &dyn TrafficModel, seed: u64) -> Self {
        ScenarioSource {
            name: model.info().name.clone(),
            stream: model.stream(seed),
            pending: None,
        }
    }

    /// Splits off the leading `fraction` of packets as a warmup slice,
    /// leaving this source holding the remainder.
    ///
    /// Delegates to [`idsbench_datasets::split_at_fraction`], the batch
    /// pipeline's train/eval split rule, so a streaming run over the
    /// remainder scores exactly the packets the batch runner scores. The
    /// fraction rule needs the total count, so this call drains the stream —
    /// use [`ScenarioSource::split_warmup_secs`] to keep a long-running
    /// model streaming.
    pub fn split_warmup(self, fraction: f64) -> (Vec<LabeledPacket>, Self) {
        let name = self.name.clone();
        let packets: Vec<LabeledPacket> = self.pending.into_iter().chain(self.stream).collect();
        let (warmup, rest) = idsbench_datasets::split_at_fraction(packets, fraction);
        (warmup, ScenarioSource { name, stream: Box::new(rest.into_iter()), pending: None })
    }

    /// Splits off every packet with a timestamp before `secs` as a warmup
    /// slice, leaving this source streaming the remainder.
    ///
    /// Unlike [`ScenarioSource::split_warmup`] this never materialises the
    /// eval side: only the warmup prefix is collected, and the stream is
    /// consumed exactly one packet past the boundary (held in a lookahead
    /// slot). This is the split the scenario registry's `warmup_secs`
    /// drives.
    pub fn split_warmup_secs(mut self, secs: f64) -> (Vec<LabeledPacket>, Self) {
        let mut warmup = Vec::new();
        debug_assert!(self.pending.is_none(), "split before first pull");
        for packet in self.stream.by_ref() {
            if packet.packet.ts.as_secs_f64() < secs {
                warmup.push(packet);
            } else {
                self.pending = Some(packet);
                break;
            }
        }
        (warmup, self)
    }
}

impl PacketSource for ScenarioSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn next_packet(&mut self) -> Result<Option<LabeledPacket>> {
        Ok(self.pending.take().or_else(|| self.stream.next()))
    }
}

/// Ground-truth labeler applied to pcap packets (captures carry no labels).
pub type PcapLabeler = Box<dyn FnMut(&Packet) -> Label + Send>;

/// A lazy pcap source: packets are decoded from the capture one record at a
/// time as the executor pulls — the file is never materialised in memory.
pub struct PcapSource<R> {
    name: String,
    reader: PcapReader<R>,
    labeler: PcapLabeler,
    /// Pool of payload buffers: one capture buffer is reused per in-flight
    /// packet instead of minting a `Vec<u8>` each record.
    arena: PayloadArena,
}

impl<R> std::fmt::Debug for PcapSource<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PcapSource").field("name", &self.name).finish_non_exhaustive()
    }
}

impl PcapSource<BufReader<File>> {
    /// Opens a capture file, labeling every packet with `labeler`.
    ///
    /// # Errors
    ///
    /// Propagates open and pcap-header errors.
    pub fn open(path: impl AsRef<Path>, labeler: PcapLabeler) -> Result<Self> {
        let path = path.as_ref();
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| path.display().to_string());
        let reader = PcapReader::open(path)
            .map_err(|e| CoreError::stream(format!("open {}: {e}", path.display())))?;
        Ok(PcapSource { name, reader, labeler, arena: PayloadArena::new() })
    }
}

impl<R: Read> PcapSource<R> {
    /// Wraps an already-open pcap reader.
    pub fn new(name: impl Into<String>, reader: PcapReader<R>, labeler: PcapLabeler) -> Self {
        PcapSource { name: name.into(), reader, labeler, arena: PayloadArena::new() }
    }

    /// Payload buffers reused so far (pool hits of the transport arena).
    pub fn payloads_recycled(&self) -> u64 {
        self.arena.recycled()
    }

    /// Payload buffers minted so far (pool misses of the transport arena).
    pub fn payloads_minted(&self) -> u64 {
        self.arena.minted()
    }

    /// Wraps a reader, labeling every packet benign (the common case for
    /// live-capture smoke tests without ground truth).
    pub fn benign(name: impl Into<String>, reader: PcapReader<R>) -> Self {
        PcapSource::new(name, reader, Box::new(|_| Label::Benign))
    }
}

impl<R: Read> PacketSource for PcapSource<R> {
    fn name(&self) -> &str {
        &self.name
    }

    fn next_packet(&mut self) -> Result<Option<LabeledPacket>> {
        // Disjoint field borrows: the reader fills an arena buffer in
        // place — the transport path's only per-packet byte copy.
        let reader = &mut self.reader;
        let (ts, data) = self
            .arena
            .take_fill(|buf| reader.read_record_into(buf))
            .map_err(|e| CoreError::stream(format!("pcap {}: {e}", self.name)))?;
        match ts {
            Some(ts) => {
                let packet = Packet { ts, data };
                let label = (self.labeler)(&packet);
                Ok(Some(LabeledPacket::new(packet, label)))
            }
            None => {
                self.arena.recycle(data);
                Ok(None)
            }
        }
    }

    fn recycle_packet(&mut self, packet: Packet) {
        self.arena.recycle(packet.data);
    }
}

/// Decouples a producer onto its own thread behind a bounded channel.
///
/// The producer thread pulls from the wrapped source and blocks whenever
/// `capacity` packets are already in flight — backpressure, so a fast reader
/// cannot balloon memory ahead of slow detectors. Dropping the
/// `BoundedSource` disconnects the channel and lets the producer exit.
///
/// Recycling crosses the thread hop too: [`PacketSource::recycle_packet`]
/// ships consumed packets back over a second bounded channel, and the
/// producer drains it before each read and hands them to the inner source —
/// so an arena-backed source (e.g. [`PcapSource`]) keeps its buffer pool
/// even when rate-decoupled. Both ends treat the lane as best-effort: a
/// full lane drops the packet (recycling is an optimisation, never a
/// stall).
#[derive(Debug)]
pub struct BoundedSource {
    name: String,
    receiver: channel::Receiver<Result<LabeledPacket>>,
    recycle: channel::Sender<Packet>,
    producer: Option<std::thread::JoinHandle<()>>,
    dropped: std::sync::Arc<std::sync::atomic::AtomicU64>,
}

impl BoundedSource {
    /// Spawns the producer thread for `source` with room for `capacity`
    /// in-flight packets. The producer blocks when the channel is full
    /// (lossless backpressure — replay semantics).
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn spawn(source: impl PacketSource + Send + 'static, capacity: usize) -> Self {
        BoundedSource::spawn_inner(source, capacity, false)
    }

    /// Like [`BoundedSource::spawn`], but the producer *drops* packets when
    /// the channel is full instead of blocking — the behaviour of a live
    /// capture whose kernel buffer overruns when the consumer falls behind.
    /// Dropped packets are counted and surfaced through
    /// [`PacketSource::dropped_packets`] (and from there into
    /// `StreamReport::dropped_packets`).
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn spawn_lossy(source: impl PacketSource + Send + 'static, capacity: usize) -> Self {
        BoundedSource::spawn_inner(source, capacity, true)
    }

    fn spawn_inner(
        mut source: impl PacketSource + Send + 'static,
        capacity: usize,
        lossy: bool,
    ) -> Self {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;

        let name = source.name().to_string();
        let (tx, rx) = channel::bounded(capacity);
        // Consumed packets flow back on this lane so the inner source's
        // arena (if any) gets its payload buffers returned.
        let (recycle_tx, recycle_rx) = channel::bounded::<Packet>(capacity);
        let dropped = Arc::new(AtomicU64::new(0));
        let drop_count = Arc::clone(&dropped);
        let producer = std::thread::spawn(move || loop {
            while let Ok(packet) = recycle_rx.try_recv() {
                source.recycle_packet(packet);
            }
            match source.next_packet() {
                Ok(Some(packet)) => {
                    if lossy {
                        match tx.try_send(Ok(packet)) {
                            Ok(()) => {}
                            Err(channel::TrySendError::Full(overflow)) => {
                                // Consumer behind: count the loss and hand
                                // the payload straight back to the source.
                                drop_count.fetch_add(1, Ordering::Relaxed);
                                if let Ok(packet) = overflow {
                                    source.recycle_packet(packet.packet);
                                }
                            }
                            Err(channel::TrySendError::Disconnected(_)) => return,
                        }
                    } else if tx.send(Ok(packet)).is_err() {
                        return; // consumer gone
                    }
                }
                Ok(None) => return,
                Err(e) => {
                    let _ = tx.send(Err(e));
                    return;
                }
            }
        });
        BoundedSource { name, receiver: rx, recycle: recycle_tx, producer: Some(producer), dropped }
    }
}

impl PacketSource for BoundedSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn next_packet(&mut self) -> Result<Option<LabeledPacket>> {
        match self.receiver.recv() {
            Ok(Ok(packet)) => Ok(Some(packet)),
            Ok(Err(e)) => Err(e),
            Err(_) => Ok(None), // producer finished and disconnected
        }
    }

    fn recycle_packet(&mut self, packet: Packet) {
        // Non-blocking: a full lane (or a finished producer) just drops it.
        let _ = self.recycle.try_send(packet);
    }

    fn dropped_packets(&self) -> u64 {
        self.dropped.load(std::sync::atomic::Ordering::Relaxed)
    }
}

impl Drop for BoundedSource {
    fn drop(&mut self) {
        // Disconnect first so a blocked producer wakes, then reap it.
        self.receiver = channel::bounded(1).1;
        if let Some(handle) = self.producer.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idsbench_net::pcap::PcapWriter;
    use idsbench_net::Timestamp;

    fn packets(n: usize) -> Vec<LabeledPacket> {
        (0..n)
            .map(|i| {
                LabeledPacket::new(
                    Packet::new(Timestamp::from_micros(i as u64), vec![0u8; 60]),
                    Label::Benign,
                )
            })
            .collect()
    }

    fn drain(mut source: impl PacketSource) -> Vec<LabeledPacket> {
        let mut out = Vec::new();
        while let Some(p) = source.next_packet().unwrap() {
            out.push(p);
        }
        out
    }

    /// One packet per second, benign — enough to exercise the lazy source.
    #[derive(Debug)]
    struct Ticks {
        info: idsbench_core::DatasetInfo,
        count: usize,
    }

    impl TrafficModel for Ticks {
        fn info(&self) -> &idsbench_core::DatasetInfo {
            &self.info
        }

        fn stream(&self, _seed: u64) -> PacketStream {
            let count = self.count;
            Box::new((0..count).map(|i| {
                LabeledPacket::new(
                    Packet::new(Timestamp::from_micros(i as u64 * 1_000_000), vec![0u8; 60]),
                    Label::Benign,
                )
            }))
        }
    }

    fn ticks(count: usize) -> Ticks {
        Ticks { info: idsbench_core::DatasetInfo::new("ticks", "", "", 2026), count }
    }

    #[test]
    fn scenario_source_pulls_lazily_from_the_model() {
        let model = ticks(5);
        let source = ScenarioSource::new(&model, 7);
        assert_eq!(source.name(), "ticks");
        assert_eq!(drain(source).len(), 5);
    }

    #[test]
    fn split_warmup_secs_streams_the_eval_side() {
        let model = ticks(10);
        let (warmup, rest) = ScenarioSource::new(&model, 0).split_warmup_secs(3.0);
        assert_eq!(warmup.len(), 3, "ticks at 0,1,2s are warmup");
        let rest = drain(rest);
        assert_eq!(rest.len(), 7, "lookahead packet at 3s must not be lost");
        assert_eq!(rest[0].packet.ts.as_micros(), 3_000_000);
    }

    #[test]
    fn vec_source_replays_in_order() {
        let original = packets(5);
        let source = VecSource::new("v", original.clone());
        assert_eq!(source.len(), 5);
        assert_eq!(drain(source), original);
    }

    #[test]
    fn pcap_source_is_lazy_and_labeled() {
        let mut image = Vec::new();
        let mut writer = PcapWriter::new(&mut image).unwrap();
        for lp in packets(4) {
            writer.write_packet(&lp.packet).unwrap();
        }
        writer.flush().unwrap();

        let reader = PcapReader::new(std::io::Cursor::new(image)).unwrap();
        let source = PcapSource::benign("cap", reader);
        let got = drain(source);
        assert_eq!(got.len(), 4);
        assert!(got.iter().all(|p| !p.is_attack()));
    }

    #[test]
    fn pcap_source_surfaces_truncation() {
        let mut image = Vec::new();
        let mut writer = PcapWriter::new(&mut image).unwrap();
        for lp in packets(2) {
            writer.write_packet(&lp.packet).unwrap();
        }
        writer.flush().unwrap();
        image.truncate(image.len() - 5);

        let reader = PcapReader::new(std::io::Cursor::new(image)).unwrap();
        let mut source = PcapSource::benign("cut", reader);
        assert!(source.next_packet().unwrap().is_some());
        assert!(source.next_packet().is_err());
    }

    #[test]
    fn bounded_source_preserves_stream() {
        let original = packets(100);
        let bounded = BoundedSource::spawn(VecSource::new("v", original.clone()), 8);
        assert_eq!(bounded.name(), "v");
        assert_eq!(drain(bounded), original);
    }

    #[test]
    fn bounded_source_drop_does_not_hang() {
        let bounded = BoundedSource::spawn(VecSource::new("v", packets(10_000)), 2);
        drop(bounded); // producer blocked on a full channel must still exit
    }

    #[test]
    fn lossy_source_counts_drops_instead_of_blocking() {
        // A tiny channel and a slow consumer: the producer must race ahead,
        // fail try_send, and count drops rather than stall.
        let total = 2_000;
        let mut bounded = BoundedSource::spawn_lossy(VecSource::new("live", packets(total)), 2);
        std::thread::sleep(std::time::Duration::from_millis(50));
        let mut seen = 0;
        while bounded.next_packet().unwrap().is_some() {
            seen += 1;
        }
        let dropped = bounded.dropped_packets();
        assert_eq!(seen as u64 + dropped, total as u64, "every packet seen or counted dropped");
        assert!(dropped > 0, "a 2-slot channel over {total} packets must overflow");

        // Lossless spawn never drops.
        let mut lossless = BoundedSource::spawn(VecSource::new("replay", packets(100)), 2);
        let mut seen = 0;
        while lossless.next_packet().unwrap().is_some() {
            seen += 1;
        }
        assert_eq!(seen, 100);
        assert_eq!(lossless.dropped_packets(), 0);
    }

    #[test]
    fn bounded_source_forwards_recycling_to_the_producer() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;

        /// Counts how many packets come back through `recycle_packet`.
        #[derive(Debug)]
        struct CountingSource {
            inner: VecSource,
            recycled: Arc<AtomicUsize>,
        }

        impl PacketSource for CountingSource {
            fn name(&self) -> &str {
                self.inner.name()
            }
            fn next_packet(&mut self) -> Result<Option<LabeledPacket>> {
                self.inner.next_packet()
            }
            fn recycle_packet(&mut self, _packet: Packet) {
                self.recycled.fetch_add(1, Ordering::Relaxed);
            }
        }

        let recycled = Arc::new(AtomicUsize::new(0));
        let source = CountingSource {
            inner: VecSource::new("counting", packets(500)),
            recycled: recycled.clone(),
        };
        let mut bounded = BoundedSource::spawn(source, 4);
        let mut seen = 0;
        while let Some(packet) = bounded.next_packet().unwrap() {
            seen += 1;
            bounded.recycle_packet(packet.packet);
        }
        assert_eq!(seen, 500);
        // The lane is best-effort, but with backpressured hand-offs the
        // producer must have drained a substantial share of it.
        assert!(
            recycled.load(Ordering::Relaxed) > 100,
            "recycling did not cross the producer hop: {}",
            recycled.load(Ordering::Relaxed)
        );
    }
}
