//! The sharded streaming executor: flow-hashed fan-out of an online packet
//! stream onto N scoring workers with bounded-channel backpressure.
//!
//! ```text
//!                    ┌─ shard 0: detector₀ + flow set ─┐
//!  source ─ feeder ──┼─ shard 1: detector₁ + flow set ─┼── merge ─ report
//!   (pull)  (hash by └─ shard N: detectorN + flow set ─┘
//!            flow key, bounded channels, per-shard batches)
//! ```
//!
//! Invariants the design pins down:
//!
//! * **Per-flow locality.** Packets are routed by the *canonical* 5-tuple
//!   hash, so both directions of a conversation always reach the same shard
//!   and each shard's detector sees every flow it owns in arrival order.
//!   Decisions for a given flow are therefore identical regardless of how
//!   many other shards exist.
//! * **Backpressure, not buffering.** Feeder→shard channels are bounded; a
//!   slow shard stalls the feeder (and, through [`BoundedSource`], the
//!   producer) instead of ballooning memory.
//! * **Batch-amortised handoff.** The feeder hands packets over in
//!   configurable per-shard batches so channel synchronisation cost is
//!   amortised; scoring itself remains strictly per-packet.
//! * **Warmup off the clock.** Every shard trains its own detector instance
//!   on the shared warmup slice before the feeder starts the throughput
//!   clock, so reported packets/sec measures scoring, not training.
//!
//! [`BoundedSource`]: crate::source::BoundedSource

use std::collections::HashSet;
use std::hash::{Hash, Hasher};
use std::sync::Barrier;
use std::time::Instant;

use crossbeam::channel;
use idsbench_core::metrics::{auc, roc_curve, ConfusionMatrix};
use idsbench_core::threshold::ThresholdPolicy;
use idsbench_core::{CoreError, LabeledPacket, Result, StreamingDetector};
use idsbench_flow::FlowKey;
use idsbench_net::ParsedPacket;

use crate::metrics::{family_recall, window_metrics, ScoredPacket, Throughput};
use crate::report::{ShardStats, StreamReport};
use crate::source::PacketSource;

/// How the alert threshold is resolved at the end of a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ThresholdMode {
    /// Replay-evaluation mode: collect all scores, then apply the same
    /// standardized calibration rule the batch pipeline uses — streaming and
    /// batch results stay directly comparable.
    Calibrated(ThresholdPolicy),
    /// Deployment mode: a fixed threshold known up front; decisions are
    /// final the moment a packet is scored.
    Fixed(f64),
}

impl Default for ThresholdMode {
    fn default() -> Self {
        ThresholdMode::Calibrated(ThresholdPolicy::default())
    }
}

/// Configuration of one streaming run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamConfig {
    /// Number of scoring shards (worker threads), each owning an independent
    /// detector instance and flow set.
    pub shards: usize,
    /// Packets per feeder→shard batch (channel-synchronisation amortisation).
    pub batch_size: usize,
    /// Channel capacity per shard, in batches (the backpressure bound).
    pub channel_capacity: usize,
    /// Tumbling metrics-window length on the traffic timeline, seconds.
    pub window_secs: f64,
    /// Threshold resolution mode.
    pub threshold: ThresholdMode,
}

impl Default for StreamConfig {
    /// One shard, 32-packet batches, 64 batches of backpressure headroom,
    /// 10-second metric windows, batch-compatible calibration.
    fn default() -> Self {
        StreamConfig {
            shards: 1,
            batch_size: 32,
            channel_capacity: 64,
            window_secs: 10.0,
            threshold: ThresholdMode::default(),
        }
    }
}

impl StreamConfig {
    fn validate(&self) -> Result<()> {
        if self.shards == 0 {
            return Err(CoreError::stream("shards must be >= 1"));
        }
        if self.batch_size == 0 {
            return Err(CoreError::stream("batch_size must be >= 1"));
        }
        if self.channel_capacity == 0 {
            return Err(CoreError::stream("channel_capacity must be >= 1"));
        }
        // NaN must be rejected too, hence the negated comparison shape.
        if self.window_secs.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err(CoreError::stream("window_secs must be positive"));
        }
        if let ThresholdMode::Fixed(threshold) = self.threshold {
            if threshold.is_nan() {
                // `score >= NaN` is always false: the run would complete but
                // silently never alert.
                return Err(CoreError::stream("fixed threshold must not be NaN"));
            }
        }
        Ok(())
    }
}

/// The outcome of a streaming run: the report plus the raw per-packet score
/// stream in arrival order (what parity tests and calibration sweeps need).
#[derive(Debug, Clone, PartialEq)]
pub struct StreamRun {
    /// The merged, threshold-resolved report.
    pub report: StreamReport,
    /// Score of packet `seq`, for every fed packet.
    pub scores: Vec<f64>,
    /// Ground truth of packet `seq`, aligned with `scores`.
    pub labels: Vec<bool>,
}

/// One packet in flight from the feeder to a shard.
struct StreamItem {
    seq: u64,
    packet: LabeledPacket,
    key: Option<FlowKey>,
}

/// What a shard hands back when its channel drains.
struct ShardOutcome {
    shard: usize,
    records: Vec<ScoredPacket>,
    detector_seconds: f64,
    warmup_seconds: f64,
    flows: usize,
}

/// Deterministic shard routing: canonical flow-key hash, stable across runs
/// (`DefaultHasher` with default keys). Non-IP packets ride on shard 0.
fn shard_of(key: &Option<FlowKey>, shards: usize) -> usize {
    match key {
        None => 0,
        Some(key) => {
            let mut hasher = std::collections::hash_map::DefaultHasher::new();
            key.hash(&mut hasher);
            (hasher.finish() % shards as u64) as usize
        }
    }
}

fn window_of(packet: &LabeledPacket, window_secs: f64) -> u64 {
    let window_micros = (window_secs * 1e6) as u64;
    packet.packet.ts.as_micros() / window_micros.max(1)
}

/// Runs one streaming evaluation: warms a detector per shard on `warmup`,
/// then drains `source` through the sharded scoring pipeline and merges the
/// result into a [`StreamReport`].
///
/// The factory is invoked once per shard; each instance must be independent
/// (the paper's out-of-the-box rule, per shard instead of per grid cell).
///
/// # Errors
///
/// Returns [`CoreError::Stream`] for invalid configuration, a failing packet
/// source, or a panicked shard worker.
pub fn run_stream(
    factory: &(dyn Fn() -> Box<dyn StreamingDetector> + Sync),
    warmup: &[LabeledPacket],
    mut source: impl PacketSource,
    config: &StreamConfig,
) -> Result<StreamRun> {
    config.validate()?;
    let shards = config.shards;
    let source_name = source.name().to_string();
    let detector_name = factory().name().to_string();

    // Everyone (shards + feeder) meets here after warmup, so the throughput
    // clock starts only when scoring can actually proceed.
    let start_line = Barrier::new(shards + 1);

    let mut channels: Vec<channel::Sender<Vec<StreamItem>>> = Vec::new();
    let mut receivers: Vec<channel::Receiver<Vec<StreamItem>>> = Vec::new();
    for _ in 0..shards {
        let (tx, rx) = channel::bounded(config.channel_capacity);
        channels.push(tx);
        receivers.push(rx);
    }

    let window_secs = config.window_secs;
    let run = std::thread::scope(|scope| -> Result<(Vec<ShardOutcome>, u64, f64)> {
        let mut workers = Vec::new();
        for (shard, rx) in receivers.into_iter().enumerate() {
            let start_line = &start_line;
            workers.push(scope.spawn(move || -> Option<ShardOutcome> {
                // A warmup panic must not strand the barrier (the feeder
                // would deadlock behind it): catch it, pass the start line,
                // and disconnect so the feeder sees the shard as dead.
                let warmup_started = Instant::now();
                let warmed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let mut detector = factory();
                    detector.warmup(warmup);
                    detector
                }));
                let warmup_seconds = warmup_started.elapsed().as_secs_f64();
                start_line.wait();
                let mut detector = match warmed {
                    Ok(detector) => detector,
                    Err(_) => {
                        drop(rx);
                        return None;
                    }
                };

                let mut records = Vec::new();
                let mut flows: HashSet<FlowKey> = HashSet::new();
                let mut detector_nanos = 0u128;
                for batch in rx.iter() {
                    for item in batch {
                        let scored_at = Instant::now();
                        let score = detector.score_packet(&item.packet);
                        let latency = scored_at.elapsed();
                        detector_nanos += latency.as_nanos();
                        let latency_nanos = latency.as_nanos().min(u128::from(u64::MAX)) as u64;
                        if let Some(key) = item.key {
                            flows.insert(key);
                        }
                        records.push(ScoredPacket {
                            seq: item.seq,
                            window: window_of(&item.packet, window_secs),
                            score,
                            latency_nanos,
                            label: item.packet.is_attack(),
                            kind: item.packet.label.attack_kind(),
                        });
                    }
                }
                Some(ShardOutcome {
                    shard,
                    records,
                    detector_seconds: detector_nanos as f64 / 1e9,
                    warmup_seconds,
                    flows: flows.len(),
                })
            }));
        }

        // ---- Feeder (this thread): route, batch, apply backpressure. ----
        start_line.wait();
        let clock = Instant::now();
        let mut batches: Vec<Vec<StreamItem>> = (0..shards).map(|_| Vec::new()).collect();
        let mut seq = 0u64;
        let mut source_error: Option<CoreError> = None;
        loop {
            match source.next_packet() {
                Ok(Some(packet)) => {
                    let key = ParsedPacket::parse(&packet.packet)
                        .ok()
                        .and_then(|parsed| FlowKey::from_packet(&parsed))
                        .map(|key| key.canonical().0);
                    let shard = shard_of(&key, shards);
                    batches[shard].push(StreamItem { seq, packet, key });
                    seq += 1;
                    if batches[shard].len() >= config.batch_size {
                        let batch = std::mem::take(&mut batches[shard]);
                        if channels[shard].send(batch).is_err() {
                            source_error = Some(CoreError::stream(format!("shard {shard} died")));
                            break;
                        }
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    source_error = Some(e);
                    break;
                }
            }
        }
        // Flush partial batches and close the channels so shards drain out.
        for (shard, batch) in batches.into_iter().enumerate() {
            if !batch.is_empty() {
                let _ = channels[shard].send(batch);
            }
        }
        channels.clear(); // drops every sender

        let mut outcomes = Vec::new();
        let mut worker_failure = None;
        for worker in workers {
            match worker.join() {
                Ok(Some(outcome)) => outcomes.push(outcome),
                Ok(None) => {
                    worker_failure = Some(CoreError::stream("shard worker panicked in warmup"))
                }
                Err(_) => worker_failure = Some(CoreError::stream("shard worker panicked")),
            }
        }
        let wall_seconds = clock.elapsed().as_secs_f64();
        // A dead worker is the root cause when both fired (the feeder sees
        // it only as a closed channel), so report it first.
        if let Some(e) = worker_failure {
            return Err(e);
        }
        if let Some(e) = source_error {
            return Err(e);
        }
        Ok((outcomes, seq, wall_seconds))
    });
    let (mut outcomes, fed, wall_seconds) = run?;
    outcomes.sort_by_key(|o| o.shard);

    Ok(finalise(detector_name, source_name, warmup.len(), fed, wall_seconds, outcomes, config))
}

/// Merges shard outcomes, resolves the threshold, and assembles the report.
fn finalise(
    detector: String,
    source: String,
    warmup_packets: usize,
    fed: u64,
    wall_seconds: f64,
    outcomes: Vec<ShardOutcome>,
    config: &StreamConfig,
) -> StreamRun {
    let mut records: Vec<ScoredPacket> = Vec::with_capacity(fed as usize);
    let mut shard_stats = Vec::with_capacity(outcomes.len());
    let mut detector_seconds = 0.0;
    let mut warmup_seconds: f64 = 0.0;
    for outcome in outcomes {
        shard_stats.push(ShardStats {
            shard: outcome.shard,
            packets: outcome.records.len(),
            flows: outcome.flows,
            detector_seconds: outcome.detector_seconds,
        });
        detector_seconds += outcome.detector_seconds;
        warmup_seconds = warmup_seconds.max(outcome.warmup_seconds);
        records.extend(outcome.records);
    }
    records.sort_by_key(|r| r.seq);

    let scores: Vec<f64> = records.iter().map(|r| r.score).collect();
    let labels: Vec<bool> = records.iter().map(|r| r.label).collect();
    let threshold = match config.threshold {
        ThresholdMode::Fixed(t) => t,
        ThresholdMode::Calibrated(policy) => policy.calibrate(&scores, &labels),
    };

    let cm = ConfusionMatrix::from_scores(&scores, &labels, threshold);
    let attacks = labels.iter().filter(|&&l| l).count();
    let report = StreamReport {
        detector,
        source,
        shards: config.shards,
        batch_size: config.batch_size,
        warmup_packets,
        eval_packets: records.len(),
        attack_share: if labels.is_empty() { 0.0 } else { attacks as f64 / labels.len() as f64 },
        threshold,
        metrics: cm.metrics(),
        false_positive_rate: cm.false_positive_rate(),
        auc: auc(&roc_curve(&scores, &labels)),
        family_recall: family_recall(&records, threshold),
        windows: window_metrics(&records, config.window_secs, threshold),
        throughput: Throughput::from_run(
            records.len(),
            wall_seconds,
            records.iter().map(|r| r.latency_nanos).collect(),
            detector_seconds,
            warmup_seconds,
        ),
        shard_stats,
    };
    StreamRun { report, scores, labels }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::VecSource;
    use idsbench_core::{AttackKind, Label};
    use idsbench_net::{MacAddr, PacketBuilder, TcpFlags, Timestamp};
    use std::net::Ipv4Addr;

    /// Scores by wire length after counting warmup packets; tracks call
    /// order so tests can assert per-shard arrival order.
    #[derive(Debug, Default)]
    struct LengthDetector {
        warmed: usize,
    }

    impl StreamingDetector for LengthDetector {
        fn name(&self) -> &str {
            "length"
        }

        fn warmup(&mut self, train: &[LabeledPacket]) {
            self.warmed = train.len();
        }

        fn score_packet(&mut self, packet: &LabeledPacket) -> f64 {
            packet.packet.wire_len() as f64
        }
    }

    fn flow_packet(host: u8, port: u16, t_micros: u64, attack: bool) -> LabeledPacket {
        let payload = if attack { 900 } else { 40 };
        let p = PacketBuilder::new()
            .ethernet(MacAddr::from_host_id(host as u32), MacAddr::from_host_id(200))
            .ipv4(Ipv4Addr::new(10, 0, 0, host), Ipv4Addr::new(10, 0, 0, 200))
            .tcp(port, 80, TcpFlags::ACK)
            .payload_len(payload)
            .build(Timestamp::from_micros(t_micros));
        let label = if attack { Label::Attack(AttackKind::SynFlood) } else { Label::Benign };
        LabeledPacket::new(p, label)
    }

    fn workload(n: usize) -> Vec<LabeledPacket> {
        (0..n)
            .map(|i| {
                flow_packet((i % 7) as u8 + 1, 1000 + (i % 13) as u16, i as u64 * 1000, i % 10 == 0)
            })
            .collect()
    }

    fn factory() -> Box<dyn StreamingDetector> {
        Box::new(LengthDetector::default())
    }

    #[test]
    fn single_shard_scores_every_packet_in_order() {
        let packets = workload(200);
        let run = run_stream(
            &factory,
            &packets[..50],
            VecSource::new("toy", packets[50..].to_vec()),
            &StreamConfig::default(),
        )
        .unwrap();
        assert_eq!(run.scores.len(), 150);
        assert_eq!(run.report.eval_packets, 150);
        assert_eq!(run.report.warmup_packets, 50);
        // Length oracle: attacks are the large packets.
        assert_eq!(run.report.metrics.recall, 1.0);
        assert_eq!(run.report.metrics.precision, 1.0);
        assert_eq!(run.report.detector, "length");
        assert_eq!(run.report.source, "toy");
    }

    #[test]
    fn sharded_run_matches_single_shard_scores() {
        let packets = workload(400);
        let single = run_stream(
            &factory,
            &packets[..100],
            VecSource::new("toy", packets[100..].to_vec()),
            &StreamConfig::default(),
        )
        .unwrap();
        let sharded = run_stream(
            &factory,
            &packets[..100],
            VecSource::new("toy", packets[100..].to_vec()),
            &StreamConfig { shards: 4, batch_size: 7, ..Default::default() },
        )
        .unwrap();
        // A stateless per-packet scorer must agree exactly across shardings;
        // seq-indexed merge restores arrival order.
        assert_eq!(single.scores, sharded.scores);
        assert_eq!(single.labels, sharded.labels);
        assert_eq!(single.report.metrics, sharded.report.metrics);
        assert_eq!(sharded.report.shard_stats.len(), 4);
        let spread: usize = sharded.report.shard_stats.iter().map(|s| s.packets).sum();
        assert_eq!(spread, 300);
        assert!(
            sharded.report.shard_stats.iter().filter(|s| s.packets > 0).count() > 1,
            "flow hashing must actually spread load"
        );
    }

    #[test]
    fn flows_stay_on_one_shard() {
        // All packets share one flow: every one must land on a single shard.
        let packets: Vec<LabeledPacket> =
            (0..100).map(|i| flow_packet(1, 1000, i * 1000, false)).collect();
        let run = run_stream(
            &factory,
            &[],
            VecSource::new("one-flow", packets),
            &StreamConfig { shards: 4, ..Default::default() },
        )
        .unwrap();
        let active: Vec<_> = run.report.shard_stats.iter().filter(|s| s.packets > 0).collect();
        assert_eq!(active.len(), 1);
        assert_eq!(active[0].packets, 100);
        assert_eq!(active[0].flows, 1);
    }

    #[test]
    fn windows_split_the_traffic_timeline() {
        // 100 packets at 1ms spacing → 0.1s of traffic; 0.02s windows → 5.
        let packets = workload(100);
        let run = run_stream(
            &factory,
            &[],
            VecSource::new("toy", packets),
            &StreamConfig { window_secs: 0.02, ..Default::default() },
        )
        .unwrap();
        assert_eq!(run.report.windows.len(), 5);
        assert_eq!(run.report.windows.iter().map(|w| w.packets).sum::<usize>(), 100);
    }

    #[test]
    fn fixed_threshold_mode_applies_verbatim() {
        let packets = workload(100);
        let run = run_stream(
            &factory,
            &[],
            VecSource::new("toy", packets),
            &StreamConfig { threshold: ThresholdMode::Fixed(500.0), ..Default::default() },
        )
        .unwrap();
        assert_eq!(run.report.threshold, 500.0);
        assert_eq!(run.report.metrics.recall, 1.0);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let bad = |c: StreamConfig| {
            run_stream(&factory, &[], VecSource::new("x", Vec::new()), &c).unwrap_err()
        };
        assert!(matches!(
            bad(StreamConfig { shards: 0, ..Default::default() }),
            CoreError::Stream { .. }
        ));
        assert!(matches!(
            bad(StreamConfig { batch_size: 0, ..Default::default() }),
            CoreError::Stream { .. }
        ));
        assert!(matches!(
            bad(StreamConfig { window_secs: 0.0, ..Default::default() }),
            CoreError::Stream { .. }
        ));
        assert!(matches!(
            bad(StreamConfig { window_secs: f64::NAN, ..Default::default() }),
            CoreError::Stream { .. }
        ));
        assert!(matches!(
            bad(StreamConfig { threshold: ThresholdMode::Fixed(f64::NAN), ..Default::default() }),
            CoreError::Stream { .. }
        ));
    }

    #[test]
    fn warmup_panic_fails_the_run_instead_of_deadlocking() {
        /// Panics during training, as a buggy detector would.
        #[derive(Debug)]
        struct Exploding;

        impl StreamingDetector for Exploding {
            fn name(&self) -> &str {
                "exploding"
            }
            fn warmup(&mut self, _train: &[LabeledPacket]) {
                panic!("train-time bug");
            }
            fn score_packet(&mut self, _packet: &LabeledPacket) -> f64 {
                0.0
            }
        }

        let err = run_stream(
            &|| Box::new(Exploding) as Box<dyn StreamingDetector>,
            &workload(10),
            VecSource::new("toy", workload(100)),
            &StreamConfig { shards: 2, ..Default::default() },
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::Stream { .. }), "{err}");
        assert!(err.to_string().contains("warmup"), "{err}");
    }

    #[test]
    fn empty_source_yields_empty_report() {
        let run = run_stream(
            &factory,
            &[],
            VecSource::new("empty", Vec::new()),
            &StreamConfig::default(),
        )
        .unwrap();
        assert_eq!(run.report.eval_packets, 0);
        assert_eq!(run.report.threshold, f64::INFINITY);
        assert!(run.report.windows.is_empty());
    }

    #[test]
    fn report_reconciles_with_batch_experiment_shape() {
        let packets = workload(200);
        let run = run_stream(
            &factory,
            &packets[..60],
            VecSource::new("toy", packets[60..].to_vec()),
            &StreamConfig::default(),
        )
        .unwrap();
        let experiment = run.report.to_experiment();
        assert_eq!(experiment.detector, "length");
        assert_eq!(experiment.dataset, "toy");
        assert_eq!(experiment.eval_items, 140);
        assert_eq!(experiment.metrics, run.report.metrics);
        assert_eq!(experiment.threshold, run.report.threshold);
        assert_eq!(experiment.family_recall, run.report.family_recall);
    }
}
