//! The sharded streaming executor: flow-hashed fan-out of an online packet
//! stream onto N scoring workers with bounded-channel backpressure — the
//! *streaming driver* of the Event contract.
//!
//! ```text
//!                    ┌─ shard 0: detector₀ + flow table ─┐
//!  source ─ feeder ──┼─ shard 1: detector₁ + flow table ─┼── merge ─ report
//!   (pull)  (parse   └─ shard N: detectorN + flow table ─┘
//!            once, hash by flow key, bounded channels, batches)
//! ```
//!
//! Invariants the design pins down:
//!
//! * **Parse once.** The feeder decodes each packet into a
//!   [`ParsedView`] — the pipeline's single `ParsedPacket::parse` site —
//!   routes on the view's precomputed canonical flow key, and ships the
//!   view to the shard. Detectors and per-shard flow tables all consume
//!   that same view; nothing downstream re-parses.
//! * **Per-flow locality.** Packets are routed by the canonical 5-tuple
//!   over a consistent-hash ring ([`HashRing`]), so both directions of a
//!   conversation always reach the flow's owning shard and each shard's
//!   detector (and flow table) sees every flow it owns in arrival order.
//!   Flow-eviction events therefore fire on the shard that owns the flow.
//! * **Elastic sharding.** With an [`AutoscalePolicy`] configured, the
//!   feeder runs an [`Autoscaler`] control loop over the live windowed
//!   event rate (plus optional channel-depth / p99 signals) and grows or
//!   shrinks the pool mid-stream. Ownership moves are a drain-then-migrate
//!   barrier: every packet routed under the old ring is flushed, departing
//!   shards extract the affected flow-table entries, label folds, and
//!   detector per-flow state as [`FlowMigration`]s, and the new owner
//!   absorbs them *before* the first packet routed under the new ring — so
//!   per-flow event order survives every scale action, and a flow-format
//!   detector's per-flow score multiset is invariant to when (or whether)
//!   scaling happens. Each action is recorded as a [`ScaleEvent`] in the
//!   report.
//! * **One contract, two drivers.** Shards deliver the same event stream
//!   the batch runner replays — packet events in order, flow evictions at
//!   flow-table eviction time, flush at end of stream — to the same
//!   [`EventDetector`] contract. A single-shard run reproduces batch
//!   `evaluate()` bitwise, for packet *and* flow detectors.
//! * **Backpressure, not buffering.** Feeder→shard channels are bounded; a
//!   slow shard stalls the feeder (and, through [`BoundedSource`], the
//!   producer) instead of ballooning memory.
//! * **Zero-buffer deployment mode.** With a fixed threshold
//!   ([`ThresholdMode::Fixed`]) decisions are final at scoring time, so
//!   shards fold them straight into online aggregates and no per-event
//!   score is ever recorded — memory grows with windows and distinct
//!   flows (shard accounting and flow labels), never with event count.
//! * **Warmup off the clock.** Every shard fits its own detector instance
//!   on the shared [`TrainView`] before the feeder starts the throughput
//!   clock, so reported packets/sec measures scoring, not training.
//!
//! [`BoundedSource`]: crate::source::BoundedSource

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Instant;

use crossbeam::channel;
use idsbench_core::threshold::ThresholdPolicy;
use idsbench_core::{
    CoreError, EventDetector, FlowEventAssembler, FlowMigration, InputFormat, LabeledPacket,
    ParsedView, Result, ScaleEvent, TrainView,
};
use idsbench_flow::FlowTableConfig;
use idsbench_telemetry::{
    Counter, Gauge, JournalEvent, SpanTimer, Stage, StageHistogram, Telemetry,
};

use crate::autoscale::{AutoscalePolicy, Autoscaler, LiveSignals, ScaleDirection};
use crate::report::StreamReport;
use crate::ring::{HashRing, DEFAULT_VNODES};
use crate::shard::{merge_outcomes, Recorder, ShardLoop, ShardOutcome, ShardSpans, StreamItem};
use crate::source::PacketSource;

/// How the alert threshold is resolved at the end of a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ThresholdMode {
    /// Replay-evaluation mode: collect all scores, then apply the same
    /// standardized calibration rule the batch pipeline uses — streaming and
    /// batch results stay directly comparable.
    Calibrated(ThresholdPolicy),
    /// Deployment mode: a fixed threshold known up front; decisions are
    /// final the moment an event is scored, so the run aggregates online
    /// and records no per-event scores at all (zero-buffer mode — see
    /// module docs; AUC is unavailable and reported as NaN).
    Fixed(f64),
}

impl Default for ThresholdMode {
    fn default() -> Self {
        ThresholdMode::Calibrated(ThresholdPolicy::default())
    }
}

/// Configuration of one streaming run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamConfig {
    /// Number of scoring shards (worker threads), each owning an independent
    /// detector instance and flow table.
    pub shards: usize,
    /// Packets per feeder→shard batch (channel-synchronisation amortisation).
    pub batch_size: usize,
    /// Channel capacity per shard, in batches (the backpressure bound).
    pub channel_capacity: usize,
    /// Tumbling metrics-window length on the traffic timeline, seconds.
    pub window_secs: f64,
    /// Threshold resolution mode.
    pub threshold: ThresholdMode,
    /// Flow-table parameters for the per-shard eviction path (flow-format
    /// detectors only). Must match the batch pipeline's
    /// `PipelineConfig::flow_config` for parity.
    pub flow: FlowTableConfig,
    /// Elastic-sharding policy. `None` (the default) keeps the pool fixed
    /// at [`StreamConfig::shards`]; `Some` lets the run grow/shrink the
    /// pool between `min_shards` and `max_shards`, starting from
    /// [`StreamConfig::shards`].
    pub autoscale: Option<AutoscalePolicy>,
}

impl Default for StreamConfig {
    /// One shard, 32-packet batches, 64 batches of backpressure headroom,
    /// 10-second metric windows, batch-compatible calibration, default
    /// flow table.
    fn default() -> Self {
        StreamConfig {
            shards: 1,
            batch_size: 32,
            channel_capacity: 64,
            window_secs: 10.0,
            threshold: ThresholdMode::default(),
            flow: FlowTableConfig::default(),
            autoscale: None,
        }
    }
}

impl StreamConfig {
    fn validate(&self) -> Result<()> {
        if self.shards == 0 {
            return Err(CoreError::stream("shards must be >= 1"));
        }
        if self.batch_size == 0 {
            return Err(CoreError::stream("batch_size must be >= 1"));
        }
        if self.channel_capacity == 0 {
            return Err(CoreError::stream("channel_capacity must be >= 1"));
        }
        // NaN must be rejected too, hence the negated comparison shape.
        if self.window_secs.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err(CoreError::stream("window_secs must be positive"));
        }
        if let ThresholdMode::Fixed(threshold) = self.threshold {
            if threshold.is_nan() {
                // `score >= NaN` is always false: the run would complete but
                // silently never alert.
                return Err(CoreError::stream("fixed threshold must not be NaN"));
            }
        }
        if let Some(policy) = &self.autoscale {
            policy.validate(self.shards)?;
        }
        Ok(())
    }
}

/// The outcome of a streaming run: the report plus the raw per-event score
/// stream in event order (what parity tests and calibration sweeps need).
///
/// In zero-buffer mode ([`ThresholdMode::Fixed`]) `scores` and `labels` are
/// empty — nothing was recorded, by design.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamRun {
    /// The merged, threshold-resolved report.
    pub report: StreamReport,
    /// Score per scored event, in batch-replay event order.
    pub scores: Vec<f64>,
    /// Ground truth aligned with `scores`.
    pub labels: Vec<bool>,
}

/// Everything that travels the feeder→shard channel. Control messages ride
/// the same ordered channel as the data, which is what makes the rebalance
/// protocol correct: a `Rebalance` is provably behind every packet routed
/// under the old ring, and a `Migrate` provably ahead of every packet
/// routed under the new one.
enum ShardMsg {
    /// A batch of routed packets.
    Batch(Vec<StreamItem>),
    /// The ring changed: extract every flow you no longer own and reply
    /// with the migrations. Receipt doubles as the drain barrier — by the
    /// time a shard answers, it has processed its entire old-ring backlog.
    Rebalance { ring: Arc<HashRing>, reply: channel::Sender<Vec<FlowMigration>> },
    /// Flows whose ownership moved here: absorb their records, label
    /// folds, and detector per-flow state before scoring anything newer.
    Migrate(Vec<FlowMigration>),
}

/// Everything a shard worker needs from the run environment; cloned per
/// spawn so mid-stream scale-ups reuse the exact setup of the initial pool.
struct ShardContext<'scope> {
    factory: &'scope (dyn Fn() -> Box<dyn EventDetector> + Sync),
    train: &'scope TrainView,
    start_line: &'scope Barrier,
    recycle: channel::Sender<Vec<StreamItem>>,
    threshold: ThresholdMode,
    flow: FlowTableConfig,
    window_secs: f64,
    format: InputFormat,
    /// Whether shards publish a live per-batch scoring p99 — only when the
    /// policy's `scale_up_p99_us` trigger is finite, so runs that don't
    /// use the signal don't pay for it.
    live_p99: bool,
    /// Runtime telemetry shared by every thread of the run; `None` (the
    /// [`run_stream`] default) keeps the hot path exactly as before.
    telemetry: Option<&'scope Telemetry>,
}

impl Clone for ShardContext<'_> {
    fn clone(&self) -> Self {
        ShardContext { recycle: self.recycle.clone(), ..*self }
    }
}

/// Feeder-side handle to one live shard.
struct ShardSlot {
    id: usize,
    tx: channel::Sender<ShardMsg>,
    /// The partial batch accumulating for this shard.
    batch: Vec<StreamItem>,
    /// Latest scoring p99 (nanoseconds) published by the worker — the
    /// autoscaler's live latency signal. Absent without autoscaling.
    p99_nanos: Option<Arc<AtomicU64>>,
    /// How often a full channel forced the feeder to block behind this
    /// shard (the backpressure design working as intended, but visible).
    stalls: usize,
}

/// Feeder-side telemetry handles, resolved once before the stream starts so
/// the per-packet path touches only relaxed atomics and sampled clocks.
struct FeederTelemetry<'run> {
    telemetry: &'run Telemetry,
    parse: SpanTimer,
    route: SpanTimer,
    rebalance: Arc<StageHistogram>,
    packets: Arc<Counter>,
    batches: Arc<Counter>,
    stalls: Arc<Counter>,
    live_shards: Arc<Gauge>,
}

impl<'run> FeederTelemetry<'run> {
    fn new(telemetry: &'run Telemetry) -> Self {
        FeederTelemetry {
            telemetry,
            parse: telemetry.span(Stage::Parse, None),
            route: telemetry.span(Stage::Route, None),
            rebalance: telemetry.stage(Stage::Rebalance, None),
            packets: telemetry.counter("packets_total"),
            batches: telemetry.counter("batches_total"),
            stalls: telemetry.counter("feeder_stalls_total"),
            live_shards: telemetry.gauge("live_shards"),
        }
    }
}

/// Runs `body` under a sampled stage span when one is attached.
#[inline]
fn with_span<T>(span: Option<&SpanTimer>, body: impl FnOnce() -> T) -> T {
    match span {
        Some(span) => match span.begin() {
            Some(started) => {
                let out = body();
                span.end(started);
                out
            }
            None => body(),
        },
        None => body(),
    }
}

/// Ships one full batch to its shard, accounting the stall when the channel
/// is full: a non-blocking attempt first, then the blocking send the
/// backpressure design requires. Returns `Err` when the shard is gone.
fn dispatch_batch(
    slot: &mut ShardSlot,
    batch: Vec<StreamItem>,
    seq: u64,
    feeder: Option<&FeederTelemetry<'_>>,
) -> std::result::Result<(), ()> {
    if let Some(feeder) = feeder {
        feeder.batches.inc();
    }
    match slot.tx.try_send(ShardMsg::Batch(batch)) {
        Ok(()) => Ok(()),
        Err(channel::TrySendError::Disconnected(_)) => Err(()),
        Err(channel::TrySendError::Full(msg)) => {
            slot.stalls += 1;
            if let Some(feeder) = feeder {
                feeder.stalls.inc();
                feeder.telemetry.journal().push(JournalEvent::FeederStall {
                    seq,
                    shard: slot.id,
                    depth: slot.tx.len(),
                });
            }
            slot.tx.send(msg).map_err(|_| ())
        }
    }
}

/// Spawns one scoring worker. Initial-pool shards pass the start barrier
/// after fitting so the throughput clock excludes training; shards added
/// mid-stream (`use_barrier = false`) fit on the clock — elastic capacity
/// is not free, and the run measures that honestly.
fn spawn_shard<'scope>(
    scope: &'scope std::thread::Scope<'scope, '_>,
    ctx: ShardContext<'scope>,
    id: usize,
    rx: channel::Receiver<ShardMsg>,
    use_barrier: bool,
    p99_nanos: Option<Arc<AtomicU64>>,
) -> std::thread::ScopedJoinHandle<'scope, Option<ShardOutcome>> {
    scope.spawn(move || -> Option<ShardOutcome> {
        // A fit panic must not strand the barrier (the feeder would
        // deadlock behind it): catch it, pass the start line, and
        // disconnect so the feeder sees the shard as dead.
        let fit_started = Instant::now();
        let fitted = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut detector = (ctx.factory)();
            detector.fit(ctx.train);
            detector
        }));
        let fit_seconds = fit_started.elapsed().as_secs_f64();
        if use_barrier {
            ctx.start_line.wait();
        }
        let detector = match fitted {
            Ok(detector) => detector,
            Err(_) => {
                drop(rx);
                return None;
            }
        };

        let mut state = ShardLoop::new(
            id,
            detector,
            Recorder::for_mode(ctx.threshold),
            matches!(ctx.format, InputFormat::Flows).then(|| FlowEventAssembler::new(ctx.flow)),
            ctx.window_secs,
            p99_nanos.is_some(),
            ctx.telemetry.map(|telemetry| ShardSpans::new(telemetry, id)),
        );
        for msg in rx.iter() {
            match msg {
                ShardMsg::Batch(batch) => {
                    state.on_batch(&batch);
                    // Publish this batch's p99, then reset: the signal must
                    // track *current* latency — a cumulative histogram would
                    // let one early slow burst pin `overloaded` for the rest
                    // of the run.
                    if let Some(out) = &p99_nanos {
                        if let Some(p99) = state.batch_p99() {
                            out.store(p99, Ordering::Relaxed);
                        }
                    }
                    // The batch goes back *full*: the feeder recycles each
                    // view's payload buffer into its source's arena before
                    // reusing the vector.
                    let _ = ctx.recycle.try_send(batch);
                }
                ShardMsg::Rebalance { ring, reply } => {
                    let _ = reply.send(state.on_rebalance(&ring));
                }
                ShardMsg::Migrate(migrations) => state.on_migrate(migrations),
            }
        }
        state.finish();
        Some(state.into_outcome(fit_seconds))
    })
}

/// Enacts one scale decision: flushes every old-ring batch, reshapes the
/// pool, runs the drain + migrate barrier, and returns how many flow-state
/// entries moved.
///
/// # Errors
///
/// Returns [`CoreError::Stream`] when a shard dies mid-protocol (the join
/// path surfaces the underlying panic as the root cause).
#[allow(clippy::too_many_arguments)]
fn apply_scale<'scope>(
    scope: &'scope std::thread::Scope<'scope, '_>,
    ctx: &ShardContext<'scope>,
    direction: ScaleDirection,
    channel_capacity: usize,
    ring: &mut HashRing,
    slots: &mut Vec<ShardSlot>,
    workers: &mut Vec<std::thread::ScopedJoinHandle<'scope, Option<ShardOutcome>>>,
    next_id: &mut usize,
    retired_stalls: &mut Vec<(usize, usize)>,
) -> Result<usize> {
    // Every packet routed under the old ring must be in its shard's channel
    // before any control message follows it: flush the partial batches.
    for slot in slots.iter_mut() {
        if !slot.batch.is_empty() {
            let batch = std::mem::take(&mut slot.batch);
            if slot.tx.send(ShardMsg::Batch(batch)).is_err() {
                return Err(CoreError::stream(format!("shard {} died", slot.id)));
            }
        }
    }
    let migrations = match direction {
        ScaleDirection::Up => {
            let id = *next_id;
            *next_id += 1;
            let (tx, rx) = channel::bounded(channel_capacity);
            let p99 = ctx.live_p99.then(|| Arc::new(AtomicU64::new(0)));
            workers.push(spawn_shard(scope, ctx.clone(), id, rx, false, p99.clone()));
            ring.add_shard(id);
            let snapshot = Arc::new(ring.clone());
            // Ask every pre-existing shard for the flows it just lost; the
            // replies double as the drain barrier.
            let (reply_tx, reply_rx) = channel::bounded(slots.len().max(1));
            for slot in slots.iter() {
                let message =
                    ShardMsg::Rebalance { ring: snapshot.clone(), reply: reply_tx.clone() };
                if slot.tx.send(message).is_err() {
                    return Err(CoreError::stream(format!("shard {} died", slot.id)));
                }
            }
            drop(reply_tx);
            let mut moved = Vec::new();
            for _ in 0..slots.len() {
                match reply_rx.recv() {
                    Ok(mut flows) => moved.append(&mut flows),
                    Err(_) => return Err(CoreError::stream("a shard died during rebalance")),
                }
            }
            slots.push(ShardSlot { id, tx, batch: Vec::new(), p99_nanos: p99, stalls: 0 });
            moved
        }
        ScaleDirection::Down => {
            // Retire the youngest shard: consistent hashing moves only its
            // own key ranges, and ids stay a compact history.
            let victim_at = slots
                .iter()
                .enumerate()
                .max_by_key(|(_, slot)| slot.id)
                .map(|(at, _)| at)
                .expect("scale-down on an empty pool");
            let victim = slots.remove(victim_at);
            ring.remove_shard(victim.id);
            let snapshot = Arc::new(ring.clone());
            let (reply_tx, reply_rx) = channel::bounded(1);
            if victim.tx.send(ShardMsg::Rebalance { ring: snapshot, reply: reply_tx }).is_err() {
                return Err(CoreError::stream(format!("shard {} died", victim.id)));
            }
            let moved = reply_rx
                .recv()
                .map_err(|_| CoreError::stream("departing shard died during rebalance"))?;
            // Dropping the sender ends the victim's message stream; it
            // flushes its now-empty state and reports at join time. Its
            // stall count survives retirement so the report stays complete.
            retired_stalls.push((victim.id, victim.stalls));
            drop(victim);
            moved
        }
    };
    let count = migrations.len();
    // Deliver each migration to its new owner ahead of any packet routed
    // under the new ring.
    let mut groups: Vec<(usize, Vec<FlowMigration>)> = Vec::new();
    for migration in migrations {
        let owner = ring.owner_of(&migration.key);
        match groups.iter_mut().find(|(id, _)| *id == owner) {
            Some((_, flows)) => flows.push(migration),
            None => groups.push((owner, vec![migration])),
        }
    }
    for (owner, flows) in groups {
        if let Some(telemetry) = ctx.telemetry {
            telemetry
                .journal()
                .push(JournalEvent::Migration { to_shard: owner, flows: flows.len() });
        }
        let slot = slots.iter().find(|slot| slot.id == owner).expect("ring owner is live");
        if slot.tx.send(ShardMsg::Migrate(flows)).is_err() {
            return Err(CoreError::stream(format!("shard {owner} died")));
        }
    }
    Ok(count)
}

/// Runs one streaming evaluation: assembles the shared [`TrainView`] from
/// `warmup` (parsing each packet once), fits a detector per shard, then
/// drains `source` through the sharded scoring pipeline and merges the
/// result into a [`StreamReport`].
///
/// The factory is invoked once per shard; each instance must be independent
/// (the paper's out-of-the-box rule, per shard instead of per grid cell).
///
/// # Errors
///
/// Returns [`CoreError::Stream`] for invalid configuration, a failing packet
/// source, or a panicked shard worker.
pub fn run_stream(
    factory: &(dyn Fn() -> Box<dyn EventDetector> + Sync),
    warmup: &[LabeledPacket],
    source: impl PacketSource,
    config: &StreamConfig,
) -> Result<StreamRun> {
    run_stream_with_telemetry(factory, warmup, source, config, None)
}

/// [`run_stream`] with runtime telemetry attached.
///
/// When `telemetry` is `Some`, the run additionally:
///
/// * counts packets, batches, feeder stalls, and source-side drops into the
///   registry's [`Counter`]s and tracks the live pool size in a
///   [`Gauge`] named `live_shards`;
/// * records sampled `parse`/`route` spans on the feeder and full-coverage
///   `score`/`evict`/`migrate`/`rebalance` stage latencies (the scoring
///   stages reuse latencies the recorder already measures, so no clock
///   reads are added to the per-event path);
/// * journals structured [`JournalEvent`]s — scale actions, flow
///   migrations, feeder stalls, dropped packets, and the autoscaler's
///   suppressed threshold crossings.
///
/// `None` is byte-for-byte the plain [`run_stream`] behaviour: scores,
/// thresholds, and reports are unaffected either way — telemetry observes
/// the run, it never steers it.
///
/// # Errors
///
/// Same contract as [`run_stream`].
pub fn run_stream_with_telemetry(
    factory: &(dyn Fn() -> Box<dyn EventDetector> + Sync),
    warmup: &[LabeledPacket],
    mut source: impl PacketSource,
    config: &StreamConfig,
    telemetry: Option<&Telemetry>,
) -> Result<StreamRun> {
    config.validate()?;
    let shards = config.shards;
    let vnodes = config.autoscale.map_or(DEFAULT_VNODES, |policy| policy.vnodes);
    let max_pool = config.autoscale.map_or(shards, |policy| policy.max_shards.max(shards));
    let source_name = source.name().to_string();
    let (detector_name, format) = {
        let probe = factory();
        (probe.name().to_string(), probe.input_format())
    };

    // One shared train view for every shard: the warmup slice is parsed
    // once and its flows assembled once, here (not per shard).
    let assembly_started = Instant::now();
    let train = TrainView::assemble(
        warmup.iter().cloned().map(ParsedView::from_packet).collect(),
        config.flow,
    );
    let assembly_seconds = assembly_started.elapsed().as_secs_f64();
    let train = &train;

    // Everyone (initial shards + feeder) meets here after fit, so the
    // throughput clock starts only when scoring can actually proceed.
    let start_line = Barrier::new(shards + 1);

    // Consumed batches flow back to the feeder through this channel: the
    // feeder hands each view's payload buffer to the source's arena
    // (`PacketSource::recycle_packet`) and reuses the vector, so the
    // steady-state fan-out allocates neither a `Vec` per batch nor a
    // payload per packet. Both ends use the non-blocking ops: recycling is
    // an optimisation, never a stall (a full return lane just drops the
    // buffer). Sized for the autoscaler's ceiling, not the initial pool.
    let (recycle_tx, recycle_rx) =
        channel::bounded::<Vec<StreamItem>>(max_pool * config.channel_capacity + max_pool);

    let feeder_telemetry = telemetry.map(FeederTelemetry::new);
    if let Some(feeder) = &feeder_telemetry {
        feeder.live_shards.set(shards as u64);
    }

    type RunOutput = (Vec<ShardOutcome>, u64, f64, Vec<ScaleEvent>, usize, Vec<(usize, usize)>);
    let run = std::thread::scope(|scope| -> Result<RunOutput> {
        let feeder = feeder_telemetry.as_ref();
        let ctx = ShardContext {
            factory,
            train,
            start_line: &start_line,
            recycle: recycle_tx.clone(),
            threshold: config.threshold,
            flow: config.flow,
            window_secs: config.window_secs,
            format,
            live_p99: config.autoscale.is_some_and(|policy| policy.scale_up_p99_us.is_finite()),
            telemetry,
        };
        let mut ring = HashRing::with_shards(vnodes, shards);
        let mut workers = Vec::new();
        let mut slots: Vec<ShardSlot> = Vec::with_capacity(shards);
        for id in 0..shards {
            let (tx, rx) = channel::bounded(config.channel_capacity);
            let p99 = ctx.live_p99.then(|| Arc::new(AtomicU64::new(0)));
            workers.push(spawn_shard(scope, ctx.clone(), id, rx, true, p99.clone()));
            slots.push(ShardSlot { id, tx, batch: Vec::new(), p99_nanos: p99, stalls: 0 });
        }
        let mut next_id = shards;
        let mut scaler = config.autoscale.map(|policy| Autoscaler::new(policy, config.window_secs));
        if telemetry.is_some() {
            if let Some(scaler) = &mut scaler {
                // The journal wants the near-misses too: windows that
                // crossed a threshold but produced no decision.
                scaler.log_crossings(true);
            }
        }
        let mut scale_events: Vec<ScaleEvent> = Vec::new();
        let mut retired_stalls: Vec<(usize, usize)> = Vec::new();

        // ---- Feeder (this thread): parse once, autoscale at window
        // boundaries, route over the ring, batch, apply backpressure. ----
        start_line.wait();
        let clock = Instant::now();
        let mut seq = 0u64;
        let mut source_error: Option<CoreError> = None;
        'feed: loop {
            match source.next_packet() {
                Ok(Some(packet)) => {
                    // The eval stream's single parse per packet.
                    let view =
                        with_span(feeder.map(|f| &f.parse), || ParsedView::from_packet(packet));
                    if let Some(feeder) = feeder {
                        feeder.packets.inc();
                    }
                    let ts_micros = view.packet.packet.ts.as_micros();
                    if let Some(scaler) = &mut scaler {
                        scaler.observe_packet(ts_micros);
                        // Drain every due decision before routing, so this
                        // packet already travels under the rebalanced ring.
                        // The `has_pending` pre-check keeps the per-packet
                        // fast path free of signal sampling (channel-depth
                        // reads take the channel lock).
                        while scaler.has_pending() {
                            let live = LiveSignals {
                                max_channel_depth: slots
                                    .iter()
                                    .map(|slot| slot.tx.len())
                                    .max()
                                    .unwrap_or(0),
                                max_p99_us: slots
                                    .iter()
                                    .filter_map(|slot| slot.p99_nanos.as_ref())
                                    .map(|p99| p99.load(Ordering::Relaxed) as f64 / 1_000.0)
                                    .fold(0.0, f64::max),
                            };
                            let Some(decision) = scaler.poll(slots.len(), live) else {
                                break;
                            };
                            let rebalance_clock = Instant::now();
                            let from_shards = slots.len();
                            match apply_scale(
                                scope,
                                &ctx,
                                decision.direction,
                                config.channel_capacity,
                                &mut ring,
                                &mut slots,
                                &mut workers,
                                &mut next_id,
                                &mut retired_stalls,
                            ) {
                                Ok(migrated_flows) => {
                                    let rebalance_elapsed = rebalance_clock.elapsed();
                                    let event = ScaleEvent {
                                        seq,
                                        at_secs: ts_micros as f64 / 1e6,
                                        window: decision.window,
                                        from_shards,
                                        to_shards: slots.len(),
                                        trigger_pps: decision.trigger_pps,
                                        migrated_flows,
                                        rebalance_micros: rebalance_elapsed.as_micros() as u64,
                                    };
                                    if let Some(feeder) = feeder {
                                        let nanos =
                                            rebalance_elapsed.as_nanos().min(u128::from(u64::MAX))
                                                as u64;
                                        feeder.rebalance.record(nanos);
                                        feeder.live_shards.set(slots.len() as u64);
                                        feeder
                                            .telemetry
                                            .journal()
                                            .push(JournalEvent::Scale(event.clone()));
                                    }
                                    scale_events.push(event);
                                }
                                Err(e) => {
                                    source_error = Some(e);
                                    break 'feed;
                                }
                            }
                        }
                        if let Some(feeder) = feeder {
                            if scaler.has_crossings() {
                                for crossing in scaler.take_crossings() {
                                    feeder.telemetry.journal().push(
                                        JournalEvent::ThresholdCrossing {
                                            window: crossing.window,
                                            pps: crossing.pps,
                                            up: crossing.up,
                                        },
                                    );
                                }
                            }
                        }
                    }
                    let (owner, at) = with_span(feeder.map(|f| &f.route), || {
                        let owner = match &view.flow_key {
                            // Keyless (non-IP/malformed) packets carry no
                            // flow state; they ride on the lowest live shard.
                            None => ring.first_shard(),
                            Some(key) => ring.owner_of(key),
                        };
                        // Slots stay sorted by id (scale-up appends the next
                        // fresh id, scale-down removes one), so the
                        // per-packet lookup is a binary search, not a scan.
                        let at = slots
                            .binary_search_by_key(&owner, |slot| slot.id)
                            .expect("ring owner is live");
                        (owner, at)
                    });
                    let slot = &mut slots[at];
                    slot.batch.push(StreamItem { seq, view });
                    seq += 1;
                    if slot.batch.len() >= config.batch_size {
                        // Swap in a recycled buffer (or an empty placeholder
                        // that first pushes grow) before shipping the full
                        // one; consumed views give their payload buffers
                        // back to the source on the way.
                        let mut replacement = recycle_rx.try_recv().unwrap_or_default();
                        for item in replacement.drain(..) {
                            source.recycle_packet(item.view.packet.packet);
                        }
                        let batch = std::mem::replace(&mut slot.batch, replacement);
                        if dispatch_batch(slot, batch, seq, feeder).is_err() {
                            source_error = Some(CoreError::stream(format!("shard {owner} died")));
                            break;
                        }
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    source_error = Some(e);
                    break;
                }
            }
        }
        // Flush partial batches and close the channels so shards drain out.
        for slot in &mut slots {
            let batch = std::mem::take(&mut slot.batch);
            if !batch.is_empty() {
                let _ = slot.tx.send(ShardMsg::Batch(batch));
            }
        }
        let final_shards = slots.len();
        let mut shard_stalls = retired_stalls;
        shard_stalls.extend(slots.iter().map(|slot| (slot.id, slot.stalls)));
        slots.clear(); // drops every sender

        let mut outcomes = Vec::new();
        let mut worker_failure = None;
        for worker in workers {
            match worker.join() {
                Ok(Some(outcome)) => outcomes.push(outcome),
                Ok(None) => {
                    worker_failure = Some(CoreError::stream("shard worker panicked in fit"))
                }
                Err(_) => worker_failure = Some(CoreError::stream("shard worker panicked")),
            }
        }
        let wall_seconds = clock.elapsed().as_secs_f64();
        // A dead worker is the root cause when both fired (the feeder sees
        // it only as a closed channel), so report it first.
        if let Some(e) = worker_failure {
            return Err(e);
        }
        if let Some(e) = source_error {
            return Err(e);
        }
        Ok((outcomes, seq, wall_seconds, scale_events, final_shards, shard_stalls))
    });
    let (mut outcomes, fed, wall_seconds, scale_events, final_shards, shard_stalls) = run?;
    outcomes.sort_by_key(|o| o.shard);

    let dropped_packets = source.dropped_packets();
    if let Some(telemetry) = telemetry {
        if dropped_packets > 0 {
            telemetry.counter("dropped_packets_total").add(dropped_packets);
            telemetry.journal().push(JournalEvent::PacketDrops { dropped: dropped_packets });
        }
    }

    Ok(merge_outcomes(
        detector_name,
        source_name,
        warmup.len(),
        fed,
        wall_seconds,
        assembly_seconds,
        outcomes,
        scale_events,
        final_shards,
        shard_stalls,
        dropped_packets,
        config,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::VecSource;
    use idsbench_core::metrics::ConfusionMatrix;
    use idsbench_core::{AttackKind, Event, Label};
    use idsbench_flow::FlowKey;
    use idsbench_net::{MacAddr, PacketBuilder, TcpFlags, Timestamp};
    use std::collections::HashSet;
    use std::net::Ipv4Addr;

    /// Scores by wire length after counting warmup packets.
    #[derive(Debug, Default)]
    struct LengthDetector {
        warmed: usize,
    }

    impl EventDetector for LengthDetector {
        fn name(&self) -> &str {
            "length"
        }

        fn input_format(&self) -> InputFormat {
            InputFormat::Packets
        }

        fn fit(&mut self, train: &TrainView) {
            self.warmed = train.packets.len();
        }

        fn on_event(&mut self, event: &Event<'_>) -> Option<f64> {
            match event {
                Event::Packet(view) => Some(view.packet.packet.wire_len() as f64),
                Event::FlowEvicted(_) => None,
            }
        }
    }

    /// Scores each evicted flow by its packet count — exercises the
    /// per-shard eviction path.
    #[derive(Debug, Default)]
    struct FlowCounter;

    impl EventDetector for FlowCounter {
        fn name(&self) -> &str {
            "flow-counter"
        }

        fn input_format(&self) -> InputFormat {
            InputFormat::Flows
        }

        fn fit(&mut self, _train: &TrainView) {}

        fn on_event(&mut self, event: &Event<'_>) -> Option<f64> {
            match event {
                Event::Packet(_) => None,
                Event::FlowEvicted(flow) => Some(flow.record.total_packets() as f64),
            }
        }
    }

    fn flow_packet(host: u8, port: u16, t_micros: u64, attack: bool) -> LabeledPacket {
        let payload = if attack { 900 } else { 40 };
        let p = PacketBuilder::new()
            .ethernet(MacAddr::from_host_id(host as u32), MacAddr::from_host_id(200))
            .ipv4(Ipv4Addr::new(10, 0, 0, host), Ipv4Addr::new(10, 0, 0, 200))
            .tcp(port, 80, TcpFlags::ACK)
            .payload_len(payload)
            .build(Timestamp::from_micros(t_micros));
        let label = if attack { Label::Attack(AttackKind::SynFlood) } else { Label::Benign };
        LabeledPacket::new(p, label)
    }

    fn workload(n: usize) -> Vec<LabeledPacket> {
        (0..n)
            .map(|i| {
                flow_packet((i % 7) as u8 + 1, 1000 + (i % 13) as u16, i as u64 * 1000, i % 10 == 0)
            })
            .collect()
    }

    fn factory() -> Box<dyn EventDetector> {
        Box::new(LengthDetector::default())
    }

    fn flow_factory() -> Box<dyn EventDetector> {
        Box::new(FlowCounter)
    }

    #[test]
    fn single_shard_scores_every_packet_in_order() {
        let packets = workload(200);
        let run = run_stream(
            &factory,
            &packets[..50],
            VecSource::new("toy", packets[50..].to_vec()),
            &StreamConfig::default(),
        )
        .unwrap();
        assert_eq!(run.scores.len(), 150);
        assert_eq!(run.report.eval_items, 150);
        assert_eq!(run.report.eval_packets, 150);
        assert_eq!(run.report.warmup_packets, 50);
        // Length oracle: attacks are the large packets.
        assert_eq!(run.report.metrics.recall, 1.0);
        assert_eq!(run.report.metrics.precision, 1.0);
        assert_eq!(run.report.detector, "length");
        assert_eq!(run.report.source, "toy");
    }

    #[test]
    fn sharded_run_matches_single_shard_scores() {
        let packets = workload(400);
        let single = run_stream(
            &factory,
            &packets[..100],
            VecSource::new("toy", packets[100..].to_vec()),
            &StreamConfig::default(),
        )
        .unwrap();
        let sharded = run_stream(
            &factory,
            &packets[..100],
            VecSource::new("toy", packets[100..].to_vec()),
            &StreamConfig { shards: 4, batch_size: 7, ..Default::default() },
        )
        .unwrap();
        // A stateless per-packet scorer must agree exactly across shardings;
        // seq-indexed merge restores arrival order.
        assert_eq!(single.scores, sharded.scores);
        assert_eq!(single.labels, sharded.labels);
        assert_eq!(single.report.metrics, sharded.report.metrics);
        assert_eq!(sharded.report.shard_stats.len(), 4);
        let spread: usize = sharded.report.shard_stats.iter().map(|s| s.packets).sum();
        assert_eq!(spread, 300);
        assert!(
            sharded.report.shard_stats.iter().filter(|s| s.packets > 0).count() > 1,
            "flow hashing must actually spread load"
        );
    }

    #[test]
    fn flow_detector_scores_evictions_on_owning_shards() {
        let packets = workload(300);
        let single = run_stream(
            &flow_factory,
            &packets[..60],
            VecSource::new("toy", packets[60..].to_vec()),
            &StreamConfig::default(),
        )
        .unwrap();
        assert!(single.report.eval_items > 0, "flow events must be scored");
        assert_eq!(single.report.eval_packets, 240);
        // Flow events ≠ packet events: the report keeps both.
        assert!(single.report.eval_items < single.report.eval_packets);

        let sharded = run_stream(
            &flow_factory,
            &packets[..60],
            VecSource::new("toy", packets[60..].to_vec()),
            &StreamConfig { shards: 4, batch_size: 5, ..Default::default() },
        )
        .unwrap();
        // Per-flow locality: the same flows are assembled whole on their
        // owning shards, so the multiset of flow scores is identical.
        let mut a = single.scores.clone();
        let mut b = sharded.scores.clone();
        a.sort_by(f64::total_cmp);
        b.sort_by(f64::total_cmp);
        assert_eq!(a, b, "sharding must not split or merge flows");
    }

    #[test]
    fn flows_stay_on_one_shard() {
        // All packets share one flow: every one must land on a single shard.
        let packets: Vec<LabeledPacket> =
            (0..100).map(|i| flow_packet(1, 1000, i * 1000, false)).collect();
        let run = run_stream(
            &factory,
            &[],
            VecSource::new("one-flow", packets),
            &StreamConfig { shards: 4, ..Default::default() },
        )
        .unwrap();
        let active: Vec<_> = run.report.shard_stats.iter().filter(|s| s.packets > 0).collect();
        assert_eq!(active.len(), 1);
        assert_eq!(active[0].packets, 100);
        assert_eq!(active[0].flows, 1);
    }

    #[test]
    fn windows_split_the_traffic_timeline() {
        // 100 packets at 1ms spacing → 0.1s of traffic; 0.02s windows → 5.
        let packets = workload(100);
        let run = run_stream(
            &factory,
            &[],
            VecSource::new("toy", packets),
            &StreamConfig { window_secs: 0.02, ..Default::default() },
        )
        .unwrap();
        assert_eq!(run.report.windows.len(), 5);
        assert_eq!(run.report.windows.iter().map(|w| w.packets).sum::<usize>(), 100);
    }

    #[test]
    fn fixed_threshold_mode_is_zero_buffer() {
        let packets = workload(100);
        let run = run_stream(
            &factory,
            &[],
            VecSource::new("toy", packets.clone()),
            &StreamConfig { threshold: ThresholdMode::Fixed(500.0), ..Default::default() },
        )
        .unwrap();
        assert_eq!(run.report.threshold, 500.0);
        assert_eq!(run.report.metrics.recall, 1.0);
        // Zero-buffer: no per-event scores were recorded; AUC undefined.
        assert!(run.scores.is_empty());
        assert!(run.labels.is_empty());
        assert!(run.report.auc.is_nan());
        assert_eq!(run.report.eval_items, 100);

        // The online aggregation must agree with a calibrated replay run
        // resolved at the same threshold.
        let replayed =
            run_stream(&factory, &[], VecSource::new("toy", packets), &StreamConfig::default())
                .unwrap();
        let cm = ConfusionMatrix::from_scores(&replayed.scores, &replayed.labels, 500.0);
        assert_eq!(run.report.metrics, cm.metrics());
        assert_eq!(run.report.false_positive_rate, cm.false_positive_rate());
        assert_eq!(
            run.report.windows.iter().map(|w| w.packets).sum::<usize>(),
            replayed.report.eval_items
        );
    }

    #[test]
    fn zero_buffer_mode_covers_flow_detectors() {
        let packets = workload(300);
        let fixed = run_stream(
            &flow_factory,
            &packets[..60],
            VecSource::new("toy", packets[60..].to_vec()),
            &StreamConfig { shards: 2, threshold: ThresholdMode::Fixed(3.0), ..Default::default() },
        )
        .unwrap();
        assert!(fixed.scores.is_empty());
        assert!(fixed.report.eval_items > 0);
        let replayed = run_stream(
            &flow_factory,
            &packets[..60],
            VecSource::new("toy", packets[60..].to_vec()),
            &StreamConfig { shards: 2, ..Default::default() },
        )
        .unwrap();
        let cm = ConfusionMatrix::from_scores(&replayed.scores, &replayed.labels, 3.0);
        assert_eq!(fixed.report.metrics, cm.metrics());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let bad = |c: StreamConfig| {
            run_stream(&factory, &[], VecSource::new("x", Vec::new()), &c).unwrap_err()
        };
        assert!(matches!(
            bad(StreamConfig { shards: 0, ..Default::default() }),
            CoreError::Stream { .. }
        ));
        assert!(matches!(
            bad(StreamConfig { batch_size: 0, ..Default::default() }),
            CoreError::Stream { .. }
        ));
        assert!(matches!(
            bad(StreamConfig { window_secs: 0.0, ..Default::default() }),
            CoreError::Stream { .. }
        ));
        assert!(matches!(
            bad(StreamConfig { window_secs: f64::NAN, ..Default::default() }),
            CoreError::Stream { .. }
        ));
        assert!(matches!(
            bad(StreamConfig { threshold: ThresholdMode::Fixed(f64::NAN), ..Default::default() }),
            CoreError::Stream { .. }
        ));
    }

    /// Alternating quiet/burst phases on a fixed flow population, one
    /// traffic-second per phase: quiet phases run ~20 events/sec, bursts
    /// ~600 — enough contrast to drive any sane autoscale policy.
    fn bursty_workload(phases: u64) -> Vec<LabeledPacket> {
        let mut packets = Vec::new();
        for phase in 0..phases {
            let (count, attack) = if phase % 2 == 1 { (600u64, true) } else { (20u64, false) };
            let spacing = (1_000_000 / count).max(1);
            for i in 0..count {
                let host = (i % 7) as u8 + 1;
                let port = 1000 + (i % 23) as u16;
                let t = phase * 1_000_000 + i * spacing;
                packets.push(flow_packet(host, port, t, attack && i % 3 == 0));
            }
        }
        packets
    }

    /// A policy the bursty workload reliably trips in both directions.
    fn bursty_policy() -> crate::autoscale::AutoscalePolicy {
        crate::autoscale::AutoscalePolicy {
            min_shards: 1,
            max_shards: 3,
            scale_up_pps: 300.0,
            scale_down_pps: 100.0,
            cooldown_windows: 0,
            vnodes: 16,
            ..Default::default()
        }
    }

    fn autoscaled_config() -> StreamConfig {
        StreamConfig {
            shards: 1,
            batch_size: 16,
            window_secs: 1.0,
            autoscale: Some(bursty_policy()),
            ..Default::default()
        }
    }

    #[test]
    fn autoscaled_flow_scores_match_single_shard_multiset() {
        let packets = bursty_workload(6);
        let single = run_stream(
            &flow_factory,
            &[],
            VecSource::new("bursty", packets.clone()),
            &StreamConfig { window_secs: 1.0, ..Default::default() },
        )
        .unwrap();
        let auto = run_stream(
            &flow_factory,
            &[],
            VecSource::new("bursty", packets.clone()),
            &autoscaled_config(),
        )
        .unwrap();

        // The pool must actually move, both ways.
        let ups = auto.report.scale_events.iter().filter(|e| e.is_scale_up()).count();
        let downs = auto.report.scale_events.iter().filter(|e| e.is_scale_down()).count();
        assert!(ups >= 1, "bursts must trigger a scale-up: {:?}", auto.report.scale_events);
        assert!(downs >= 1, "quiet phases must trigger a scale-down");
        assert!(
            auto.report.scale_events.iter().any(|e| e.migrated_flows > 0),
            "rebalancing must migrate live flow state"
        );
        assert_eq!(auto.report.shards, 1);
        assert!(auto.report.final_shards >= 1);

        // The acceptance invariant: per-flow scores are indifferent to when
        // (or whether) the pool scaled — the sorted multiset is bitwise
        // identical to the single-shard run.
        let mut a = single.scores.clone();
        let mut b = auto.scores.clone();
        a.sort_by(f64::total_cmp);
        b.sort_by(f64::total_cmp);
        assert_eq!(a, b, "autoscaling changed the per-flow score multiset");

        // Migration accounting: each flow counts once, for its final owner,
        // so per-shard distinct-flow counts still sum to the global count.
        let global: HashSet<FlowKey> = packets
            .iter()
            .filter_map(|lp| idsbench_net::ParsedPacket::parse(&lp.packet).ok())
            .filter_map(|p| FlowKey::from_packet(&p))
            .map(|k| k.canonical().0)
            .collect();
        let sharded: usize = auto.report.shard_stats.iter().map(|s| s.flows).sum();
        assert_eq!(sharded, global.len(), "a migrated flow was double- or zero-counted");
    }

    #[test]
    fn autoscaled_runs_are_deterministic() {
        let packets = bursty_workload(6);
        let first = run_stream(
            &flow_factory,
            &[],
            VecSource::new("bursty", packets.clone()),
            &autoscaled_config(),
        )
        .unwrap();
        let second =
            run_stream(&flow_factory, &[], VecSource::new("bursty", packets), &autoscaled_config())
                .unwrap();
        assert_eq!(first.scores, second.scores);
        assert_eq!(first.report.metrics, second.report.metrics);
        // Same decisions at the same packets, shard for shard (wall-clock
        // fields excluded: the default policy uses only traffic-time rates).
        let shape = |run: &StreamRun| {
            run.report
                .scale_events
                .iter()
                .map(|e| (e.seq, e.window, e.from_shards, e.to_shards, e.migrated_flows))
                .collect::<Vec<_>>()
        };
        assert_eq!(shape(&first), shape(&second));
        assert!(!first.report.scale_events.is_empty());
    }

    #[test]
    fn telemetry_observes_the_run_without_changing_it() {
        use idsbench_telemetry::TelemetryConfig;

        let packets = bursty_workload(6);
        let plain = run_stream(
            &flow_factory,
            &[],
            VecSource::new("bursty", packets.clone()),
            &autoscaled_config(),
        )
        .unwrap();
        let telemetry = Telemetry::new(TelemetryConfig { sample_every: 4, ..Default::default() });
        let observed = run_stream_with_telemetry(
            &flow_factory,
            &[],
            VecSource::new("bursty", packets),
            &autoscaled_config(),
            Some(&telemetry),
        )
        .unwrap();
        // The acceptance invariant: identical scores and identical scale
        // history with telemetry attached.
        assert_eq!(plain.scores, observed.scores, "telemetry must not steer the run");
        assert_eq!(
            plain.report.scale_events.len(),
            observed.report.scale_events.len(),
            "telemetry must not change scaling decisions"
        );

        // And the observers actually observed.
        assert_eq!(telemetry.counter("packets_total").get(), observed.report.eval_packets as u64);
        assert_eq!(telemetry.gauge("live_shards").get(), observed.report.final_shards as u64);
        let journal = telemetry.journal().snapshot();
        assert_eq!(journal.dropped, 0);
        let scales = journal.events.iter().filter(|e| matches!(e, JournalEvent::Scale(_))).count();
        assert_eq!(scales, observed.report.scale_events.len());
        let evictions: u64 = telemetry
            .stages()
            .iter()
            .filter(|s| s.stage() == Stage::Evict)
            .map(|s| s.histogram().len())
            .sum();
        assert!(evictions > 0, "per-shard stage histograms must record");
    }

    #[test]
    fn detector_per_flow_state_migrates_with_ownership() {
        use std::collections::HashMap;

        /// Packet detector whose score is the packet's 1-based position
        /// within its flow — pure per-flow state, so a dropped migration
        /// resets a counter mid-flow and the scores give it away.
        #[derive(Debug, Default)]
        struct FlowSeq {
            counts: HashMap<FlowKey, u64>,
        }

        impl EventDetector for FlowSeq {
            fn name(&self) -> &str {
                "flow-seq"
            }
            fn input_format(&self) -> InputFormat {
                InputFormat::Packets
            }
            fn fit(&mut self, _train: &TrainView) {}
            fn on_event(&mut self, event: &Event<'_>) -> Option<f64> {
                match event {
                    Event::Packet(view) => match view.flow_key {
                        Some(key) => {
                            let count = self.counts.entry(key).or_insert(0);
                            *count += 1;
                            Some(*count as f64)
                        }
                        None => Some(0.0),
                    },
                    Event::FlowEvicted(_) => None,
                }
            }
            fn extract_flow_state(&mut self, key: &FlowKey) -> Option<Vec<u8>> {
                self.counts.remove(key).map(|count| count.to_le_bytes().to_vec())
            }
            fn absorb_flow_state(&mut self, key: &FlowKey, state: Vec<u8>) {
                if let Ok(bytes) = <[u8; 8]>::try_from(state.as_slice()) {
                    self.counts.insert(*key, u64::from_le_bytes(bytes));
                }
            }
        }

        let factory = || Box::new(FlowSeq::default()) as Box<dyn EventDetector>;
        let packets = bursty_workload(6);
        let single = run_stream(
            &factory,
            &[],
            VecSource::new("bursty", packets.clone()),
            &StreamConfig { window_secs: 1.0, ..Default::default() },
        )
        .unwrap();
        let auto =
            run_stream(&factory, &[], VecSource::new("bursty", packets), &autoscaled_config())
                .unwrap();
        assert!(auto.report.scale_events.iter().any(|e| e.is_scale_up()));
        // Per-flow order is preserved and the counters moved with their
        // flows, so even the seq-ordered score stream is identical.
        assert_eq!(single.scores, auto.scores, "a per-flow counter reset across a rebalance");
    }

    #[test]
    fn autoscale_rejects_invalid_policies() {
        let bad = |config: StreamConfig| {
            run_stream(&factory, &[], VecSource::new("x", Vec::new()), &config).unwrap_err()
        };
        let policy = crate::autoscale::AutoscalePolicy { min_shards: 2, ..Default::default() };
        assert!(matches!(
            bad(StreamConfig { shards: 1, autoscale: Some(policy), ..Default::default() }),
            CoreError::Stream { .. }
        ));
        let flappy = crate::autoscale::AutoscalePolicy {
            scale_up_pps: 10.0,
            scale_down_pps: 20.0,
            ..Default::default()
        };
        assert!(matches!(
            bad(StreamConfig { autoscale: Some(flappy), ..Default::default() }),
            CoreError::Stream { .. }
        ));
    }

    #[test]
    fn fit_panic_fails_the_run_instead_of_deadlocking() {
        /// Panics during training, as a buggy detector would.
        #[derive(Debug)]
        struct Exploding;

        impl EventDetector for Exploding {
            fn name(&self) -> &str {
                "exploding"
            }
            fn input_format(&self) -> InputFormat {
                InputFormat::Packets
            }
            fn fit(&mut self, _train: &TrainView) {
                panic!("train-time bug");
            }
            fn on_event(&mut self, _event: &Event<'_>) -> Option<f64> {
                Some(0.0)
            }
        }

        let err = run_stream(
            &|| Box::new(Exploding) as Box<dyn EventDetector>,
            &workload(10),
            VecSource::new("toy", workload(100)),
            &StreamConfig { shards: 2, ..Default::default() },
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::Stream { .. }), "{err}");
        assert!(err.to_string().contains("fit"), "{err}");
    }

    #[test]
    fn empty_source_yields_empty_report() {
        let run = run_stream(
            &factory,
            &[],
            VecSource::new("empty", Vec::new()),
            &StreamConfig::default(),
        )
        .unwrap();
        assert_eq!(run.report.eval_items, 0);
        assert_eq!(run.report.threshold, f64::INFINITY);
        assert!(run.report.windows.is_empty());
    }

    #[test]
    fn report_reconciles_with_batch_experiment_shape() {
        let packets = workload(200);
        let run = run_stream(
            &factory,
            &packets[..60],
            VecSource::new("toy", packets[60..].to_vec()),
            &StreamConfig::default(),
        )
        .unwrap();
        let experiment = run.report.to_experiment();
        assert_eq!(experiment.detector, "length");
        assert_eq!(experiment.dataset, "toy");
        assert_eq!(experiment.eval_items, 140);
        assert_eq!(experiment.metrics, run.report.metrics);
        assert_eq!(experiment.threshold, run.report.threshold);
        assert_eq!(experiment.family_recall, run.report.family_recall);
        assert_eq!(experiment.score_seconds, run.report.throughput.score_seconds);
        assert_eq!(experiment.train_seconds, run.report.throughput.train_seconds);
    }
}
