//! The sharded streaming executor: flow-hashed fan-out of an online packet
//! stream onto N scoring workers with bounded-channel backpressure — the
//! *streaming driver* of the Event contract.
//!
//! ```text
//!                    ┌─ shard 0: detector₀ + flow table ─┐
//!  source ─ feeder ──┼─ shard 1: detector₁ + flow table ─┼── merge ─ report
//!   (pull)  (parse   └─ shard N: detectorN + flow table ─┘
//!            once, hash by flow key, bounded channels, batches)
//! ```
//!
//! Invariants the design pins down:
//!
//! * **Parse once.** The feeder decodes each packet into a
//!   [`ParsedView`] — the pipeline's single `ParsedPacket::parse` site —
//!   routes on the view's precomputed canonical flow key, and ships the
//!   view to the shard. Detectors and per-shard flow tables all consume
//!   that same view; nothing downstream re-parses.
//! * **Per-flow locality.** Packets are routed by the canonical 5-tuple
//!   hash, so both directions of a conversation always reach the same shard
//!   and each shard's detector (and flow table) sees every flow it owns in
//!   arrival order. Flow-eviction events therefore fire on the shard that
//!   owns the flow.
//! * **One contract, two drivers.** Shards deliver the same event stream
//!   the batch runner replays — packet events in order, flow evictions at
//!   flow-table eviction time, flush at end of stream — to the same
//!   [`EventDetector`] contract. A single-shard run reproduces batch
//!   `evaluate()` bitwise, for packet *and* flow detectors.
//! * **Backpressure, not buffering.** Feeder→shard channels are bounded; a
//!   slow shard stalls the feeder (and, through [`BoundedSource`], the
//!   producer) instead of ballooning memory.
//! * **Zero-buffer deployment mode.** With a fixed threshold
//!   ([`ThresholdMode::Fixed`]) decisions are final at scoring time, so
//!   shards fold them straight into online aggregates and no per-event
//!   score is ever recorded — memory grows with windows and distinct
//!   flows (shard accounting and flow labels), never with event count.
//! * **Warmup off the clock.** Every shard fits its own detector instance
//!   on the shared [`TrainView`] before the feeder starts the throughput
//!   clock, so reported packets/sec measures scoring, not training.
//!
//! [`BoundedSource`]: crate::source::BoundedSource

use std::collections::HashSet;
use std::hash::{Hash, Hasher};
use std::sync::Barrier;
use std::time::Instant;

use crossbeam::channel;
use idsbench_core::metrics::{auc, roc_curve, ConfusionMatrix};
use idsbench_core::threshold::ThresholdPolicy;
use idsbench_core::{
    CoreError, Event, EventDetector, FlowEventAssembler, InputFormat, LabeledPacket, ParsedView,
    Result, TrainView,
};
use idsbench_flow::{FlowKey, FlowTableConfig};

use crate::metrics::{family_recall, window_metrics, OnlineStats, ScoredEvent, Throughput};
use crate::report::{ShardStats, StreamReport};
use crate::source::PacketSource;

/// How the alert threshold is resolved at the end of a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ThresholdMode {
    /// Replay-evaluation mode: collect all scores, then apply the same
    /// standardized calibration rule the batch pipeline uses — streaming and
    /// batch results stay directly comparable.
    Calibrated(ThresholdPolicy),
    /// Deployment mode: a fixed threshold known up front; decisions are
    /// final the moment an event is scored, so the run aggregates online
    /// and records no per-event scores at all (zero-buffer mode — see
    /// module docs; AUC is unavailable and reported as NaN).
    Fixed(f64),
}

impl Default for ThresholdMode {
    fn default() -> Self {
        ThresholdMode::Calibrated(ThresholdPolicy::default())
    }
}

/// Configuration of one streaming run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamConfig {
    /// Number of scoring shards (worker threads), each owning an independent
    /// detector instance and flow table.
    pub shards: usize,
    /// Packets per feeder→shard batch (channel-synchronisation amortisation).
    pub batch_size: usize,
    /// Channel capacity per shard, in batches (the backpressure bound).
    pub channel_capacity: usize,
    /// Tumbling metrics-window length on the traffic timeline, seconds.
    pub window_secs: f64,
    /// Threshold resolution mode.
    pub threshold: ThresholdMode,
    /// Flow-table parameters for the per-shard eviction path (flow-format
    /// detectors only). Must match the batch pipeline's
    /// `PipelineConfig::flow_config` for parity.
    pub flow: FlowTableConfig,
}

impl Default for StreamConfig {
    /// One shard, 32-packet batches, 64 batches of backpressure headroom,
    /// 10-second metric windows, batch-compatible calibration, default
    /// flow table.
    fn default() -> Self {
        StreamConfig {
            shards: 1,
            batch_size: 32,
            channel_capacity: 64,
            window_secs: 10.0,
            threshold: ThresholdMode::default(),
            flow: FlowTableConfig::default(),
        }
    }
}

impl StreamConfig {
    fn validate(&self) -> Result<()> {
        if self.shards == 0 {
            return Err(CoreError::stream("shards must be >= 1"));
        }
        if self.batch_size == 0 {
            return Err(CoreError::stream("batch_size must be >= 1"));
        }
        if self.channel_capacity == 0 {
            return Err(CoreError::stream("channel_capacity must be >= 1"));
        }
        // NaN must be rejected too, hence the negated comparison shape.
        if self.window_secs.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err(CoreError::stream("window_secs must be positive"));
        }
        if let ThresholdMode::Fixed(threshold) = self.threshold {
            if threshold.is_nan() {
                // `score >= NaN` is always false: the run would complete but
                // silently never alert.
                return Err(CoreError::stream("fixed threshold must not be NaN"));
            }
        }
        Ok(())
    }
}

/// The outcome of a streaming run: the report plus the raw per-event score
/// stream in event order (what parity tests and calibration sweeps need).
///
/// In zero-buffer mode ([`ThresholdMode::Fixed`]) `scores` and `labels` are
/// empty — nothing was recorded, by design.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamRun {
    /// The merged, threshold-resolved report.
    pub report: StreamReport,
    /// Score per scored event, in batch-replay event order.
    pub scores: Vec<f64>,
    /// Ground truth aligned with `scores`.
    pub labels: Vec<bool>,
}

/// One packet in flight from the feeder to a shard: the parsed view rides
/// along, so the shard never touches raw bytes.
struct StreamItem {
    seq: u64,
    view: ParsedView,
}

/// Per-shard recording state, chosen by threshold mode.
enum Recorder {
    /// Replay mode: keep every scored event for post-hoc calibration.
    Full(Vec<ScoredEvent>),
    /// Zero-buffer mode: fold into online aggregates at a fixed threshold.
    Online(Box<OnlineStats>, f64),
}

impl Recorder {
    #[allow(clippy::too_many_arguments)]
    fn push(
        &mut self,
        seq: u64,
        sub: u32,
        window: u64,
        score: f64,
        latency_nanos: u64,
        label: idsbench_core::Label,
    ) {
        match self {
            Recorder::Full(records) => records.push(ScoredEvent {
                seq,
                sub,
                window,
                score,
                latency_nanos,
                label: label.is_attack(),
                kind: label.attack_kind(),
            }),
            Recorder::Online(stats, threshold) => stats.record(
                window,
                score,
                *threshold,
                label.is_attack(),
                label.attack_kind(),
                latency_nanos,
            ),
        }
    }
}

/// What a shard hands back when its channel drains.
struct ShardOutcome {
    shard: usize,
    recorder: Recorder,
    score_seconds: f64,
    fit_seconds: f64,
    packets: usize,
    flows: usize,
}

/// Deterministic shard routing: canonical flow-key hash, stable across runs
/// (`DefaultHasher` with default keys). Non-IP packets ride on shard 0.
fn shard_of(key: &Option<FlowKey>, shards: usize) -> usize {
    match key {
        None => 0,
        Some(key) => {
            let mut hasher = std::collections::hash_map::DefaultHasher::new();
            key.hash(&mut hasher);
            (hasher.finish() % shards as u64) as usize
        }
    }
}

fn window_of_micros(micros: u64, window_secs: f64) -> u64 {
    let window_micros = (window_secs * 1e6) as u64;
    micros / window_micros.max(1)
}

/// The per-shard event loop: scores the packet event, feeds the shard's
/// flow table (flow-format detectors only), and scores the evictions — the
/// exact event order the batch driver replays.
struct ShardLoop {
    detector: Box<dyn EventDetector>,
    recorder: Recorder,
    assembler: Option<FlowEventAssembler>,
    evicted: Vec<idsbench_core::LabeledFlow>,
    flows: HashSet<FlowKey>,
    window_secs: f64,
    score_nanos: u128,
    packets: usize,
}

impl ShardLoop {
    fn on_packet(&mut self, item: &StreamItem) {
        self.packets += 1;
        if let Some(key) = item.view.flow_key {
            self.flows.insert(key);
        }
        let started = Instant::now();
        let score = self.detector.on_event(&Event::Packet(&item.view));
        let latency = started.elapsed();
        self.score_nanos += latency.as_nanos();
        if let Some(score) = score {
            let window = window_of_micros(item.view.packet.packet.ts.as_micros(), self.window_secs);
            let latency_nanos = latency.as_nanos().min(u128::from(u64::MAX)) as u64;
            self.recorder.push(item.seq, 0, window, score, latency_nanos, item.view.label());
        }
        if let Some(assembler) = &mut self.assembler {
            let evicted = &mut self.evicted;
            assembler.observe(&item.view, |flow| evicted.push(flow));
            // Take/restore so the buffer's capacity survives eviction
            // bursts (on_flow needs &mut self, so draining in place would
            // alias the borrow).
            let mut evicted = std::mem::take(&mut self.evicted);
            for (index, flow) in evicted.drain(..).enumerate() {
                self.on_flow(item.seq, index as u32 + 1, flow);
            }
            self.evicted = evicted;
        }
    }

    fn on_flow(&mut self, seq: u64, sub: u32, flow: idsbench_core::LabeledFlow) {
        let started = Instant::now();
        let score = self.detector.on_event(&Event::FlowEvicted(&flow));
        let latency = started.elapsed();
        self.score_nanos += latency.as_nanos();
        if let Some(score) = score {
            let window = window_of_micros(flow.record.last_seen.as_micros(), self.window_secs);
            let latency_nanos = latency.as_nanos().min(u128::from(u64::MAX)) as u64;
            self.recorder.push(seq, sub, window, score, latency_nanos, flow.label);
        }
    }

    /// End of stream: flush the flow table (same as the batch driver).
    fn finish(&mut self) {
        if let Some(mut assembler) = self.assembler.take() {
            for (index, flow) in assembler.flush().into_iter().enumerate() {
                self.on_flow(u64::MAX, index as u32, flow);
            }
        }
    }
}

/// Runs one streaming evaluation: assembles the shared [`TrainView`] from
/// `warmup` (parsing each packet once), fits a detector per shard, then
/// drains `source` through the sharded scoring pipeline and merges the
/// result into a [`StreamReport`].
///
/// The factory is invoked once per shard; each instance must be independent
/// (the paper's out-of-the-box rule, per shard instead of per grid cell).
///
/// # Errors
///
/// Returns [`CoreError::Stream`] for invalid configuration, a failing packet
/// source, or a panicked shard worker.
pub fn run_stream(
    factory: &(dyn Fn() -> Box<dyn EventDetector> + Sync),
    warmup: &[LabeledPacket],
    mut source: impl PacketSource,
    config: &StreamConfig,
) -> Result<StreamRun> {
    config.validate()?;
    let shards = config.shards;
    let source_name = source.name().to_string();
    let (detector_name, format) = {
        let probe = factory();
        (probe.name().to_string(), probe.input_format())
    };

    // One shared train view for every shard: the warmup slice is parsed
    // once and its flows assembled once, here (not per shard).
    let assembly_started = Instant::now();
    let train = TrainView::assemble(
        warmup.iter().cloned().map(ParsedView::from_packet).collect(),
        config.flow,
    );
    let assembly_seconds = assembly_started.elapsed().as_secs_f64();
    let train = &train;

    // Everyone (shards + feeder) meets here after fit, so the throughput
    // clock starts only when scoring can actually proceed.
    let start_line = Barrier::new(shards + 1);

    let mut channels: Vec<channel::Sender<Vec<StreamItem>>> = Vec::new();
    let mut receivers: Vec<channel::Receiver<Vec<StreamItem>>> = Vec::new();
    for _ in 0..shards {
        let (tx, rx) = channel::bounded(config.channel_capacity);
        channels.push(tx);
        receivers.push(rx);
    }
    // Consumed batches flow back to the feeder through this channel: the
    // feeder hands each view's payload buffer to the source's arena
    // (`PacketSource::recycle_packet`) and reuses the vector, so the
    // steady-state fan-out allocates neither a `Vec` per batch nor a
    // payload per packet. Both ends use the non-blocking ops: recycling is
    // an optimisation, never a stall (a full return lane just drops the
    // buffer).
    let (recycle_tx, recycle_rx) =
        channel::bounded::<Vec<StreamItem>>(shards * config.channel_capacity + shards);

    let window_secs = config.window_secs;
    let threshold_mode = config.threshold;
    let flow_config = config.flow;
    let run = std::thread::scope(|scope| -> Result<(Vec<ShardOutcome>, u64, f64)> {
        let mut workers = Vec::new();
        for (shard, rx) in receivers.into_iter().enumerate() {
            let start_line = &start_line;
            let recycle = recycle_tx.clone();
            workers.push(scope.spawn(move || -> Option<ShardOutcome> {
                // A fit panic must not strand the barrier (the feeder would
                // deadlock behind it): catch it, pass the start line, and
                // disconnect so the feeder sees the shard as dead.
                let fit_started = Instant::now();
                let fitted = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let mut detector = factory();
                    detector.fit(train);
                    detector
                }));
                let fit_seconds = fit_started.elapsed().as_secs_f64();
                start_line.wait();
                let detector = match fitted {
                    Ok(detector) => detector,
                    Err(_) => {
                        drop(rx);
                        return None;
                    }
                };

                let recorder = match threshold_mode {
                    ThresholdMode::Fixed(threshold) => Recorder::Online(Box::default(), threshold),
                    ThresholdMode::Calibrated(_) => Recorder::Full(Vec::new()),
                };
                let mut state = ShardLoop {
                    detector,
                    recorder,
                    assembler: matches!(format, InputFormat::Flows)
                        .then(|| FlowEventAssembler::new(flow_config)),
                    evicted: Vec::new(),
                    flows: HashSet::new(),
                    window_secs,
                    score_nanos: 0,
                    packets: 0,
                };
                for batch in rx.iter() {
                    for item in &batch {
                        state.on_packet(item);
                    }
                    // The batch goes back *full*: the feeder recycles each
                    // view's payload buffer into its source's arena before
                    // reusing the vector.
                    let _ = recycle.try_send(batch);
                }
                state.finish();
                Some(ShardOutcome {
                    shard,
                    recorder: state.recorder,
                    score_seconds: state.score_nanos as f64 / 1e9,
                    fit_seconds,
                    packets: state.packets,
                    flows: state.flows.len(),
                })
            }));
        }

        // ---- Feeder (this thread): parse once, route, batch, apply
        // backpressure. ----
        start_line.wait();
        let clock = Instant::now();
        let mut batches: Vec<Vec<StreamItem>> = (0..shards).map(|_| Vec::new()).collect();
        let mut seq = 0u64;
        let mut source_error: Option<CoreError> = None;
        loop {
            match source.next_packet() {
                Ok(Some(packet)) => {
                    // The eval stream's single parse per packet.
                    let view = ParsedView::from_packet(packet);
                    let shard = shard_of(&view.flow_key, shards);
                    batches[shard].push(StreamItem { seq, view });
                    seq += 1;
                    if batches[shard].len() >= config.batch_size {
                        // Swap in a recycled buffer (or an empty placeholder
                        // that first pushes grow) before shipping the full
                        // one; consumed views give their payload buffers
                        // back to the source on the way.
                        let mut replacement = recycle_rx.try_recv().unwrap_or_default();
                        for item in replacement.drain(..) {
                            source.recycle_packet(item.view.packet.packet);
                        }
                        let batch = std::mem::replace(&mut batches[shard], replacement);
                        if channels[shard].send(batch).is_err() {
                            source_error = Some(CoreError::stream(format!("shard {shard} died")));
                            break;
                        }
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    source_error = Some(e);
                    break;
                }
            }
        }
        // Flush partial batches and close the channels so shards drain out.
        for (shard, batch) in batches.into_iter().enumerate() {
            if !batch.is_empty() {
                let _ = channels[shard].send(batch);
            }
        }
        channels.clear(); // drops every sender

        let mut outcomes = Vec::new();
        let mut worker_failure = None;
        for worker in workers {
            match worker.join() {
                Ok(Some(outcome)) => outcomes.push(outcome),
                Ok(None) => {
                    worker_failure = Some(CoreError::stream("shard worker panicked in fit"))
                }
                Err(_) => worker_failure = Some(CoreError::stream("shard worker panicked")),
            }
        }
        let wall_seconds = clock.elapsed().as_secs_f64();
        // A dead worker is the root cause when both fired (the feeder sees
        // it only as a closed channel), so report it first.
        if let Some(e) = worker_failure {
            return Err(e);
        }
        if let Some(e) = source_error {
            return Err(e);
        }
        Ok((outcomes, seq, wall_seconds))
    });
    let (mut outcomes, fed, wall_seconds) = run?;
    outcomes.sort_by_key(|o| o.shard);

    Ok(finalise(
        detector_name,
        source_name,
        warmup.len(),
        fed,
        wall_seconds,
        assembly_seconds,
        outcomes,
        config,
    ))
}

/// Merges shard outcomes, resolves the threshold, and assembles the report.
#[allow(clippy::too_many_arguments)]
fn finalise(
    detector: String,
    source: String,
    warmup_packets: usize,
    fed: u64,
    wall_seconds: f64,
    assembly_seconds: f64,
    outcomes: Vec<ShardOutcome>,
    config: &StreamConfig,
) -> StreamRun {
    let mut shard_stats = Vec::with_capacity(outcomes.len());
    let mut score_seconds = 0.0;
    let mut fit_seconds: f64 = 0.0;
    let mut full: Vec<(usize, ScoredEvent)> = Vec::new();
    let mut online: Option<OnlineStats> = None;
    let mut fixed_threshold = None;
    for outcome in outcomes {
        let items = match &outcome.recorder {
            Recorder::Full(records) => records.len(),
            Recorder::Online(stats, _) => stats.events,
        };
        shard_stats.push(ShardStats {
            shard: outcome.shard,
            packets: outcome.packets,
            items,
            flows: outcome.flows,
            score_seconds: outcome.score_seconds,
        });
        score_seconds += outcome.score_seconds;
        fit_seconds = fit_seconds.max(outcome.fit_seconds);
        match outcome.recorder {
            Recorder::Full(records) => {
                full.extend(records.into_iter().map(|r| (outcome.shard, r)));
            }
            Recorder::Online(stats, threshold) => {
                fixed_threshold = Some(threshold);
                match &mut online {
                    Some(merged) => merged.merge(&stats),
                    None => online = Some(*stats),
                }
            }
        }
    }
    let train_seconds = assembly_seconds + fit_seconds;

    if let Some(stats) = online {
        // Zero-buffer path: everything was aggregated online; no scores
        // exist to calibrate or rank, so AUC is undefined.
        let threshold = fixed_threshold.unwrap_or(f64::INFINITY);
        let report = StreamReport {
            detector,
            source,
            shards: config.shards,
            batch_size: config.batch_size,
            warmup_packets,
            eval_packets: fed as usize,
            eval_items: stats.events,
            attack_share: if stats.events == 0 {
                0.0
            } else {
                stats.attacks as f64 / stats.events as f64
            },
            threshold,
            metrics: stats.cm.metrics(),
            false_positive_rate: stats.cm.false_positive_rate(),
            auc: f64::NAN,
            family_recall: stats.family_recall(),
            windows: stats.window_metrics(config.window_secs),
            throughput: Throughput::from_histogram(
                fed as usize,
                wall_seconds,
                &stats.latency,
                score_seconds,
                train_seconds,
            ),
            shard_stats,
        };
        return StreamRun { report, scores: Vec::new(), labels: Vec::new() };
    }

    // Replay path: restore the batch driver's event order — packet seq,
    // then the evictions it triggered; flush events (seq = MAX) ordered by
    // shard then flush index.
    full.sort_by_key(|(shard, r)| (r.seq, *shard, r.sub));
    let records: Vec<ScoredEvent> = full.into_iter().map(|(_, r)| r).collect();

    let scores: Vec<f64> = records.iter().map(|r| r.score).collect();
    let labels: Vec<bool> = records.iter().map(|r| r.label).collect();
    let threshold = match config.threshold {
        ThresholdMode::Fixed(t) => t,
        ThresholdMode::Calibrated(policy) => policy.calibrate(&scores, &labels),
    };

    let cm = ConfusionMatrix::from_scores(&scores, &labels, threshold);
    let attacks = labels.iter().filter(|&&l| l).count();
    let report = StreamReport {
        detector,
        source,
        shards: config.shards,
        batch_size: config.batch_size,
        warmup_packets,
        eval_packets: fed as usize,
        eval_items: records.len(),
        attack_share: if labels.is_empty() { 0.0 } else { attacks as f64 / labels.len() as f64 },
        threshold,
        metrics: cm.metrics(),
        false_positive_rate: cm.false_positive_rate(),
        auc: auc(&roc_curve(&scores, &labels)),
        family_recall: family_recall(&records, threshold),
        windows: window_metrics(&records, config.window_secs, threshold),
        throughput: Throughput::from_run(
            fed as usize,
            wall_seconds,
            records.iter().map(|r| r.latency_nanos).collect(),
            score_seconds,
            train_seconds,
        ),
        shard_stats,
    };
    StreamRun { report, scores, labels }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::VecSource;
    use idsbench_core::{AttackKind, Label};
    use idsbench_net::{MacAddr, PacketBuilder, TcpFlags, Timestamp};
    use std::net::Ipv4Addr;

    /// Scores by wire length after counting warmup packets.
    #[derive(Debug, Default)]
    struct LengthDetector {
        warmed: usize,
    }

    impl EventDetector for LengthDetector {
        fn name(&self) -> &str {
            "length"
        }

        fn input_format(&self) -> InputFormat {
            InputFormat::Packets
        }

        fn fit(&mut self, train: &TrainView) {
            self.warmed = train.packets.len();
        }

        fn on_event(&mut self, event: &Event<'_>) -> Option<f64> {
            match event {
                Event::Packet(view) => Some(view.packet.packet.wire_len() as f64),
                Event::FlowEvicted(_) => None,
            }
        }
    }

    /// Scores each evicted flow by its packet count — exercises the
    /// per-shard eviction path.
    #[derive(Debug, Default)]
    struct FlowCounter;

    impl EventDetector for FlowCounter {
        fn name(&self) -> &str {
            "flow-counter"
        }

        fn input_format(&self) -> InputFormat {
            InputFormat::Flows
        }

        fn fit(&mut self, _train: &TrainView) {}

        fn on_event(&mut self, event: &Event<'_>) -> Option<f64> {
            match event {
                Event::Packet(_) => None,
                Event::FlowEvicted(flow) => Some(flow.record.total_packets() as f64),
            }
        }
    }

    fn flow_packet(host: u8, port: u16, t_micros: u64, attack: bool) -> LabeledPacket {
        let payload = if attack { 900 } else { 40 };
        let p = PacketBuilder::new()
            .ethernet(MacAddr::from_host_id(host as u32), MacAddr::from_host_id(200))
            .ipv4(Ipv4Addr::new(10, 0, 0, host), Ipv4Addr::new(10, 0, 0, 200))
            .tcp(port, 80, TcpFlags::ACK)
            .payload_len(payload)
            .build(Timestamp::from_micros(t_micros));
        let label = if attack { Label::Attack(AttackKind::SynFlood) } else { Label::Benign };
        LabeledPacket::new(p, label)
    }

    fn workload(n: usize) -> Vec<LabeledPacket> {
        (0..n)
            .map(|i| {
                flow_packet((i % 7) as u8 + 1, 1000 + (i % 13) as u16, i as u64 * 1000, i % 10 == 0)
            })
            .collect()
    }

    fn factory() -> Box<dyn EventDetector> {
        Box::new(LengthDetector::default())
    }

    fn flow_factory() -> Box<dyn EventDetector> {
        Box::new(FlowCounter)
    }

    #[test]
    fn single_shard_scores_every_packet_in_order() {
        let packets = workload(200);
        let run = run_stream(
            &factory,
            &packets[..50],
            VecSource::new("toy", packets[50..].to_vec()),
            &StreamConfig::default(),
        )
        .unwrap();
        assert_eq!(run.scores.len(), 150);
        assert_eq!(run.report.eval_items, 150);
        assert_eq!(run.report.eval_packets, 150);
        assert_eq!(run.report.warmup_packets, 50);
        // Length oracle: attacks are the large packets.
        assert_eq!(run.report.metrics.recall, 1.0);
        assert_eq!(run.report.metrics.precision, 1.0);
        assert_eq!(run.report.detector, "length");
        assert_eq!(run.report.source, "toy");
    }

    #[test]
    fn sharded_run_matches_single_shard_scores() {
        let packets = workload(400);
        let single = run_stream(
            &factory,
            &packets[..100],
            VecSource::new("toy", packets[100..].to_vec()),
            &StreamConfig::default(),
        )
        .unwrap();
        let sharded = run_stream(
            &factory,
            &packets[..100],
            VecSource::new("toy", packets[100..].to_vec()),
            &StreamConfig { shards: 4, batch_size: 7, ..Default::default() },
        )
        .unwrap();
        // A stateless per-packet scorer must agree exactly across shardings;
        // seq-indexed merge restores arrival order.
        assert_eq!(single.scores, sharded.scores);
        assert_eq!(single.labels, sharded.labels);
        assert_eq!(single.report.metrics, sharded.report.metrics);
        assert_eq!(sharded.report.shard_stats.len(), 4);
        let spread: usize = sharded.report.shard_stats.iter().map(|s| s.packets).sum();
        assert_eq!(spread, 300);
        assert!(
            sharded.report.shard_stats.iter().filter(|s| s.packets > 0).count() > 1,
            "flow hashing must actually spread load"
        );
    }

    #[test]
    fn flow_detector_scores_evictions_on_owning_shards() {
        let packets = workload(300);
        let single = run_stream(
            &flow_factory,
            &packets[..60],
            VecSource::new("toy", packets[60..].to_vec()),
            &StreamConfig::default(),
        )
        .unwrap();
        assert!(single.report.eval_items > 0, "flow events must be scored");
        assert_eq!(single.report.eval_packets, 240);
        // Flow events ≠ packet events: the report keeps both.
        assert!(single.report.eval_items < single.report.eval_packets);

        let sharded = run_stream(
            &flow_factory,
            &packets[..60],
            VecSource::new("toy", packets[60..].to_vec()),
            &StreamConfig { shards: 4, batch_size: 5, ..Default::default() },
        )
        .unwrap();
        // Per-flow locality: the same flows are assembled whole on their
        // owning shards, so the multiset of flow scores is identical.
        let mut a = single.scores.clone();
        let mut b = sharded.scores.clone();
        a.sort_by(f64::total_cmp);
        b.sort_by(f64::total_cmp);
        assert_eq!(a, b, "sharding must not split or merge flows");
    }

    #[test]
    fn flows_stay_on_one_shard() {
        // All packets share one flow: every one must land on a single shard.
        let packets: Vec<LabeledPacket> =
            (0..100).map(|i| flow_packet(1, 1000, i * 1000, false)).collect();
        let run = run_stream(
            &factory,
            &[],
            VecSource::new("one-flow", packets),
            &StreamConfig { shards: 4, ..Default::default() },
        )
        .unwrap();
        let active: Vec<_> = run.report.shard_stats.iter().filter(|s| s.packets > 0).collect();
        assert_eq!(active.len(), 1);
        assert_eq!(active[0].packets, 100);
        assert_eq!(active[0].flows, 1);
    }

    #[test]
    fn windows_split_the_traffic_timeline() {
        // 100 packets at 1ms spacing → 0.1s of traffic; 0.02s windows → 5.
        let packets = workload(100);
        let run = run_stream(
            &factory,
            &[],
            VecSource::new("toy", packets),
            &StreamConfig { window_secs: 0.02, ..Default::default() },
        )
        .unwrap();
        assert_eq!(run.report.windows.len(), 5);
        assert_eq!(run.report.windows.iter().map(|w| w.packets).sum::<usize>(), 100);
    }

    #[test]
    fn fixed_threshold_mode_is_zero_buffer() {
        let packets = workload(100);
        let run = run_stream(
            &factory,
            &[],
            VecSource::new("toy", packets.clone()),
            &StreamConfig { threshold: ThresholdMode::Fixed(500.0), ..Default::default() },
        )
        .unwrap();
        assert_eq!(run.report.threshold, 500.0);
        assert_eq!(run.report.metrics.recall, 1.0);
        // Zero-buffer: no per-event scores were recorded; AUC undefined.
        assert!(run.scores.is_empty());
        assert!(run.labels.is_empty());
        assert!(run.report.auc.is_nan());
        assert_eq!(run.report.eval_items, 100);

        // The online aggregation must agree with a calibrated replay run
        // resolved at the same threshold.
        let replayed =
            run_stream(&factory, &[], VecSource::new("toy", packets), &StreamConfig::default())
                .unwrap();
        let cm = ConfusionMatrix::from_scores(&replayed.scores, &replayed.labels, 500.0);
        assert_eq!(run.report.metrics, cm.metrics());
        assert_eq!(run.report.false_positive_rate, cm.false_positive_rate());
        assert_eq!(
            run.report.windows.iter().map(|w| w.packets).sum::<usize>(),
            replayed.report.eval_items
        );
    }

    #[test]
    fn zero_buffer_mode_covers_flow_detectors() {
        let packets = workload(300);
        let fixed = run_stream(
            &flow_factory,
            &packets[..60],
            VecSource::new("toy", packets[60..].to_vec()),
            &StreamConfig { shards: 2, threshold: ThresholdMode::Fixed(3.0), ..Default::default() },
        )
        .unwrap();
        assert!(fixed.scores.is_empty());
        assert!(fixed.report.eval_items > 0);
        let replayed = run_stream(
            &flow_factory,
            &packets[..60],
            VecSource::new("toy", packets[60..].to_vec()),
            &StreamConfig { shards: 2, ..Default::default() },
        )
        .unwrap();
        let cm = ConfusionMatrix::from_scores(&replayed.scores, &replayed.labels, 3.0);
        assert_eq!(fixed.report.metrics, cm.metrics());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let bad = |c: StreamConfig| {
            run_stream(&factory, &[], VecSource::new("x", Vec::new()), &c).unwrap_err()
        };
        assert!(matches!(
            bad(StreamConfig { shards: 0, ..Default::default() }),
            CoreError::Stream { .. }
        ));
        assert!(matches!(
            bad(StreamConfig { batch_size: 0, ..Default::default() }),
            CoreError::Stream { .. }
        ));
        assert!(matches!(
            bad(StreamConfig { window_secs: 0.0, ..Default::default() }),
            CoreError::Stream { .. }
        ));
        assert!(matches!(
            bad(StreamConfig { window_secs: f64::NAN, ..Default::default() }),
            CoreError::Stream { .. }
        ));
        assert!(matches!(
            bad(StreamConfig { threshold: ThresholdMode::Fixed(f64::NAN), ..Default::default() }),
            CoreError::Stream { .. }
        ));
    }

    #[test]
    fn fit_panic_fails_the_run_instead_of_deadlocking() {
        /// Panics during training, as a buggy detector would.
        #[derive(Debug)]
        struct Exploding;

        impl EventDetector for Exploding {
            fn name(&self) -> &str {
                "exploding"
            }
            fn input_format(&self) -> InputFormat {
                InputFormat::Packets
            }
            fn fit(&mut self, _train: &TrainView) {
                panic!("train-time bug");
            }
            fn on_event(&mut self, _event: &Event<'_>) -> Option<f64> {
                Some(0.0)
            }
        }

        let err = run_stream(
            &|| Box::new(Exploding) as Box<dyn EventDetector>,
            &workload(10),
            VecSource::new("toy", workload(100)),
            &StreamConfig { shards: 2, ..Default::default() },
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::Stream { .. }), "{err}");
        assert!(err.to_string().contains("fit"), "{err}");
    }

    #[test]
    fn empty_source_yields_empty_report() {
        let run = run_stream(
            &factory,
            &[],
            VecSource::new("empty", Vec::new()),
            &StreamConfig::default(),
        )
        .unwrap();
        assert_eq!(run.report.eval_items, 0);
        assert_eq!(run.report.threshold, f64::INFINITY);
        assert!(run.report.windows.is_empty());
    }

    #[test]
    fn report_reconciles_with_batch_experiment_shape() {
        let packets = workload(200);
        let run = run_stream(
            &factory,
            &packets[..60],
            VecSource::new("toy", packets[60..].to_vec()),
            &StreamConfig::default(),
        )
        .unwrap();
        let experiment = run.report.to_experiment();
        assert_eq!(experiment.detector, "length");
        assert_eq!(experiment.dataset, "toy");
        assert_eq!(experiment.eval_items, 140);
        assert_eq!(experiment.metrics, run.report.metrics);
        assert_eq!(experiment.threshold, run.report.threshold);
        assert_eq!(experiment.family_recall, run.report.family_recall);
        assert_eq!(experiment.score_seconds, run.report.throughput.score_seconds);
        assert_eq!(experiment.train_seconds, run.report.throughput.train_seconds);
    }
}
