//! `idsbench-stream` — the online replay-evaluation engine: the *streaming
//! driver* of the core Event contract.
//!
//! The paper's core finding is that batch evaluation flatters IDSs:
//! deployed detectors consume an *unbounded stream* one event at a time
//! under throughput pressure, and several published results do not survive
//! that shift. This crate drives the same
//! [`EventDetector`](idsbench_core::EventDetector) contract as the batch
//! runner in `idsbench-core`, sharded:
//!
//! * [`source`] — [`PacketSource`] unifies scenario generators, pcap
//!   captures, and in-memory traces behind one pull iterator;
//!   [`BoundedSource`] adds bounded-channel backpressure between producer
//!   and scorer.
//! * [`executor`] — [`run_stream`] parses each packet exactly once in the
//!   feeder, routes the resulting view by canonical flow key over a
//!   consistent-hash ring onto N shard workers — each owning an independent
//!   detector instance *and flow table* — and delivers the same event
//!   stream batch evaluation replays: packet events in order, flow-eviction
//!   events the moment the shard's flow table emits them. Flow-input
//!   systems (Slips, DNN) are therefore streaming-native, not batch
//!   adapters.
//! * [`ring`] + [`autoscale`] — elastic sharding: a vnode consistent-hash
//!   [`HashRing`] bounds ownership movement to the minimum when the pool
//!   changes, and an [`AutoscalePolicy`]-driven control loop grows/shrinks
//!   the pool mid-stream from the run's own windowed event rate (plus
//!   optional live channel-depth / p99 signals), migrating the affected
//!   flow state shard-to-shard without breaking per-flow event order.
//!   Every action lands in the report as a [`ScaleEvent`].
//! * [`metrics`] — windowed precision/recall/FPR over the traffic timeline
//!   plus per-event scoring latency and packets/sec; with a fixed
//!   deployment threshold the engine runs *zero-buffer* ([`OnlineStats`]):
//!   pure online aggregation, no per-event score recording.
//! * [`report`] — [`StreamReport`] merges the shards and reconciles with
//!   the batch `Experiment` shape ([`StreamReport::to_experiment`]), so
//!   streaming and batch numbers are directly comparable; the
//!   `stream_batch_parity` integration test pins single-shard streaming to
//!   batch `evaluate()` bitwise — for all four systems, flow-input ones
//!   included.
//! * **Telemetry** — [`run_stream_with_telemetry`] attaches an
//!   `idsbench-telemetry` [`Telemetry`](idsbench_telemetry::Telemetry)
//!   runtime to the same pipeline: lock-free counters and gauges, sampled
//!   feeder spans plus per-shard stage latency histograms, and a bounded
//!   journal of structured events (scale actions, feeder stalls, flow
//!   migrations, packet drops, suppressed threshold crossings). Telemetry
//!   observes the run without steering it — scores and reports are
//!   byte-identical with it on or off.
//!
//! # Quickstart
//!
//! Stream Kitsune over the Stratosphere scenario on four shards:
//!
//! ```
//! use idsbench_core::EventDetector;
//! use idsbench_datasets::{scenarios, ScenarioScale};
//! use idsbench_kitsune::Kitsune;
//! use idsbench_stream::{run_stream, ScenarioSource, StreamConfig};
//!
//! # fn main() -> Result<(), idsbench_core::CoreError> {
//! let scenario = scenarios::stratosphere_iot(ScenarioScale::Tiny);
//! let (warmup, source) = ScenarioSource::new(&scenario, 42).split_warmup(0.3);
//! let config = StreamConfig { shards: 4, ..Default::default() };
//! let run = run_stream(
//!     &|| Box::new(Kitsune::default()) as Box<dyn EventDetector>,
//!     &warmup,
//!     source,
//!     &config,
//! )?;
//! println!(
//!     "F1 {:.4} at {:.0} packets/sec across {} shards",
//!     run.report.metrics.f1,
//!     run.report.throughput.packets_per_sec,
//!     run.report.shards,
//! );
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod autoscale;
pub mod executor;
pub mod metrics;
pub mod report;
pub mod ring;
pub mod shard;
pub mod source;

pub use autoscale::{
    AutoscalePolicy, Autoscaler, LiveSignals, ScaleDecision, ScaleDirection, ThresholdCrossing,
};
pub use executor::{run_stream, run_stream_with_telemetry, StreamConfig, StreamRun, ThresholdMode};
pub use idsbench_core::ScaleEvent;
pub use metrics::{LatencyHistogram, OnlineStats, ScoredEvent, Throughput, WindowMetrics};
pub use report::{ShardStats, StreamReport};
pub use ring::{HashRing, DEFAULT_VNODES};
pub use shard::{
    merge_outcomes, Recorder, ShardCheckpoint, ShardLoop, ShardOutcome, ShardSpans, StreamItem,
};
pub use source::{BoundedSource, PacketSource, PcapLabeler, PcapSource, ScenarioSource, VecSource};
