//! The consistent-hash flow→shard ring: elastic ownership for the sharded
//! executor.
//!
//! The static executor mapped flows to shards with `hash % shards` — fine
//! while the pool is fixed, catastrophic when it is not: changing `shards`
//! by one remaps almost *every* flow, so an autoscaler built on modulo
//! routing would have to migrate nearly all live state on every step. A
//! consistent-hash ring bounds the damage to the minimum: each shard owns
//! [`HashRing::vnodes_per_shard`] pseudo-random points on a `u64` circle,
//! a key belongs to the first point at or clockwise of its hash, and
//! adding or removing one shard moves only the key ranges adjacent to that
//! shard's own points (≈ `1/n` of the space) — every other flow keeps its
//! owner, so its per-flow state never moves. The `proptest_ring`
//! integration test pins exactly that minimal-movement property.
//!
//! Hashing is [`fx_hash`] on the canonical [`FlowKey`] — the same
//! non-cryptographic multiply-fold hash the per-packet state maps use
//! (routing is not attacker-facing: shard counts are bounded by policy, and
//! a skewed adversarial key set degrades balance, not correctness).

use idsbench_core::fasthash::fx_hash;
use idsbench_flow::FlowKey;

/// Default virtual nodes per shard: enough that ownership spread stays
/// within a few percent of uniform for single-digit shard counts.
pub const DEFAULT_VNODES: usize = 64;

/// A vnode-based consistent-hash ring mapping canonical flow keys onto
/// shard ids (see module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HashRing {
    /// Sorted vnode points: `(position, shard id)`. Ties (vanishingly rare
    /// with 64-bit points) order by shard id, keeping lookups deterministic.
    points: Vec<(u64, usize)>,
    /// Live shard ids, sorted.
    shards: Vec<usize>,
    vnodes_per_shard: usize,
}

impl HashRing {
    /// Creates an empty ring placing `vnodes_per_shard` points per shard.
    ///
    /// # Panics
    ///
    /// Panics when `vnodes_per_shard` is zero.
    pub fn new(vnodes_per_shard: usize) -> Self {
        assert!(vnodes_per_shard > 0, "a shard needs at least one vnode");
        HashRing { points: Vec::new(), shards: Vec::new(), vnodes_per_shard }
    }

    /// Creates a ring already holding shards `0..shards`.
    pub fn with_shards(vnodes_per_shard: usize, shards: usize) -> Self {
        let mut ring = HashRing::new(vnodes_per_shard);
        for shard in 0..shards {
            ring.add_shard(shard);
        }
        ring
    }

    /// Vnode points each shard places on the ring.
    pub fn vnodes_per_shard(&self) -> usize {
        self.vnodes_per_shard
    }

    /// Adds a shard's vnodes to the ring. Adding an id twice is a caller
    /// bug (ownership would double), so it panics.
    pub fn add_shard(&mut self, shard: usize) {
        assert!(!self.contains(shard), "shard {shard} is already on the ring");
        self.shards.insert(self.shards.partition_point(|&s| s < shard), shard);
        for replica in 0..self.vnodes_per_shard {
            let point = vnode_point(shard, replica);
            let at = self.points.partition_point(|&p| p < (point, shard));
            self.points.insert(at, (point, shard));
        }
    }

    /// Removes a shard's vnodes from the ring; its key ranges fall to the
    /// clockwise successors. Removing an absent id is a no-op.
    pub fn remove_shard(&mut self, shard: usize) {
        self.points.retain(|&(_, s)| s != shard);
        self.shards.retain(|&s| s != shard);
    }

    /// Whether `shard` is on the ring.
    pub fn contains(&self, shard: usize) -> bool {
        self.shards.binary_search(&shard).is_ok()
    }

    /// Live shard ids, ascending.
    pub fn shards(&self) -> &[usize] {
        &self.shards
    }

    /// Number of live shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Whether the ring has no shards.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// The lowest live shard id — the designated owner of keyless (non-IP
    /// or malformed) packets, which carry no flow state to migrate.
    ///
    /// # Panics
    ///
    /// Panics on an empty ring.
    pub fn first_shard(&self) -> usize {
        *self.shards.first().expect("ring has no shards")
    }

    /// The shard owning `key`.
    ///
    /// # Panics
    ///
    /// Panics on an empty ring.
    pub fn owner_of(&self, key: &FlowKey) -> usize {
        self.owner_of_hash(fx_hash(key))
    }

    /// The shard owning an already-computed key hash: the first vnode at or
    /// clockwise of `hash`, wrapping at the top of the `u64` circle.
    ///
    /// # Panics
    ///
    /// Panics on an empty ring.
    pub fn owner_of_hash(&self, hash: u64) -> usize {
        assert!(!self.points.is_empty(), "ring has no shards");
        let at = self.points.partition_point(|&(point, _)| point < hash);
        let at = if at == self.points.len() { 0 } else { at };
        self.points[at].1
    }
}

/// Position of one shard replica on the ring.
///
/// Vnode inputs are tiny structured integers, the worst case for the
/// multiply-fold FxHash (consecutive `(shard, replica)` pairs land on
/// correlated points — measured: an 89/11 ownership split at 32 vnodes).
/// A splitmix64 finalizer decorrelates them; keys keep FxHash, where the
/// 5-tuple provides real entropy.
fn vnode_point(shard: usize, replica: usize) -> u64 {
    let mut z = ((shard as u64) << 32 | replica as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use idsbench_net::IpProtocol;
    use std::net::{IpAddr, Ipv4Addr};

    fn key(host: u8, port: u16) -> FlowKey {
        FlowKey {
            src_ip: IpAddr::V4(Ipv4Addr::new(10, 0, 0, host)),
            dst_ip: IpAddr::V4(Ipv4Addr::new(10, 0, 0, 200)),
            src_port: port,
            dst_port: 80,
            protocol: IpProtocol::Tcp,
        }
    }

    #[test]
    fn single_shard_owns_everything() {
        let ring = HashRing::with_shards(DEFAULT_VNODES, 1);
        for port in 0..100 {
            assert_eq!(ring.owner_of(&key(1, port)), 0);
        }
        assert_eq!(ring.first_shard(), 0);
        assert_eq!(ring.len(), 1);
    }

    #[test]
    fn ownership_is_deterministic_and_spreads() {
        let ring = HashRing::with_shards(DEFAULT_VNODES, 4);
        let again = HashRing::with_shards(DEFAULT_VNODES, 4);
        let mut owned = [0usize; 4];
        for host in 1..50u8 {
            for port in 1000..1040u16 {
                let k = key(host, port);
                let owner = ring.owner_of(&k);
                assert_eq!(owner, again.owner_of(&k), "ring construction must be deterministic");
                owned[owner] += 1;
            }
        }
        for (shard, count) in owned.iter().enumerate() {
            assert!(
                *count > 0,
                "shard {shard} owns no keys out of {}",
                owned.iter().sum::<usize>()
            );
        }
    }

    #[test]
    fn vnode_placement_balances_two_shards() {
        // The regression this pins: structured vnode inputs through a weak
        // hash gave one shard ~89% of the ring. With the finalizer, a
        // two-shard split must stay within sane bounds.
        let ring = HashRing::with_shards(DEFAULT_VNODES, 2);
        let total = 49 * 40;
        let first: usize = (1..50u8)
            .flat_map(|host| (1000..1040u16).map(move |port| key(host, port)))
            .filter(|k| ring.owner_of(k) == 0)
            .count();
        let share = first as f64 / total as f64;
        assert!((0.25..=0.75).contains(&share), "two-shard split degenerated: {share:.3}");
    }

    #[test]
    fn adding_a_shard_moves_keys_only_to_it() {
        let before = HashRing::with_shards(DEFAULT_VNODES, 3);
        let mut after = before.clone();
        after.add_shard(3);
        let mut moved = 0usize;
        let mut total = 0usize;
        for host in 1..40u8 {
            for port in 1000..1050u16 {
                let k = key(host, port);
                let (old, new) = (before.owner_of(&k), after.owner_of(&k));
                total += 1;
                if old != new {
                    moved += 1;
                    assert_eq!(new, 3, "a key moved between two surviving shards");
                }
            }
        }
        assert!(moved > 0, "the new shard must take some load");
        assert!(moved < total / 2, "consistent hashing must move a minority of keys");
    }

    #[test]
    fn removing_a_shard_moves_only_its_keys() {
        let before = HashRing::with_shards(DEFAULT_VNODES, 4);
        let mut after = before.clone();
        after.remove_shard(2);
        assert!(!after.contains(2));
        for host in 1..40u8 {
            for port in 1000..1050u16 {
                let k = key(host, port);
                let (old, new) = (before.owner_of(&k), after.owner_of(&k));
                if old != 2 {
                    assert_eq!(old, new, "a surviving shard's key moved");
                } else {
                    assert_ne!(new, 2);
                }
            }
        }
    }

    #[test]
    fn shard_ids_need_not_be_contiguous() {
        let mut ring = HashRing::with_shards(DEFAULT_VNODES, 2);
        ring.remove_shard(0);
        ring.add_shard(7);
        assert_eq!(ring.shards(), &[1, 7]);
        assert_eq!(ring.first_shard(), 1);
        let owner = ring.owner_of(&key(1, 1000));
        assert!(owner == 1 || owner == 7);
    }

    #[test]
    #[should_panic(expected = "already on the ring")]
    fn double_add_panics() {
        let mut ring = HashRing::with_shards(DEFAULT_VNODES, 2);
        ring.add_shard(1);
    }

    #[test]
    #[should_panic(expected = "ring has no shards")]
    fn empty_ring_panics_on_lookup() {
        HashRing::new(4).owner_of_hash(12345);
    }
}
