//! The shard-pool autoscaler: policy plus the window-boundary control loop
//! the feeder drives.
//!
//! The paper's deployment gap is exactly this: lab evaluations run with a
//! fixed, comfortable harness, while operational traffic is bursty and the
//! harness itself becomes the bottleneck. The autoscaler closes the loop —
//! the executor's own live metrics (windowed event rate on the traffic
//! timeline, per-shard scoring p99, feeder→shard channel depth) feed an
//! [`AutoscalePolicy`], and the executor grows or shrinks the shard pool
//! mid-stream, rebalancing flow ownership over the consistent-hash
//! [`HashRing`](crate::ring::HashRing) without breaking per-flow event
//! order.
//!
//! Decisions fire only at metrics-window boundaries of the *traffic*
//! timeline, so a replayed trace makes identical decisions on every run —
//! determinism the parity tests rely on. The wall-clock signals (p99,
//! channel depth) are disabled by default for the same reason; enabling
//! them trades reproducibility for responsiveness, which is a deployment
//! choice, not a harness default.

use std::collections::VecDeque;

use idsbench_core::{CoreError, Result};

use crate::ring::DEFAULT_VNODES;

/// When a silent gap in the traffic spans many empty metrics windows, the
/// control loop evaluates at most this many of them (enough to clear any
/// reasonable cooldown and step the pool all the way down) instead of
/// iterating per window across the gap.
const MAX_GAP_WINDOWS: u64 = 64;

/// The scale-out policy: bounds, thresholds, and damping for the shard
/// pool.
///
/// Rates are events per second of *traffic time*, measured over each
/// completed metrics window (`StreamConfig::window_secs`). The default
/// policy never fires — autoscaling is opt-in per threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutoscalePolicy {
    /// Pool floor; scale-down stops here. Must be ≥ 1.
    pub min_shards: usize,
    /// Pool ceiling; scale-up stops here.
    pub max_shards: usize,
    /// A completed window at or above this event rate adds a shard
    /// (`f64::INFINITY` disables).
    pub scale_up_pps: f64,
    /// A completed window strictly below this event rate removes a shard
    /// (`0.0` disables — no rate is below zero).
    pub scale_down_pps: f64,
    /// Live backpressure override: a feeder→shard channel at or beyond
    /// this depth (in batches) forces a scale-up regardless of window rate
    /// (`usize::MAX` disables; wall-clock-dependent, hence nondeterministic
    /// across runs).
    pub scale_up_depth: usize,
    /// Live latency override: a shard whose scoring p99 *over its most
    /// recent batch* is at or beyond this many microseconds forces a
    /// scale-up (`f64::INFINITY` disables; wall-clock-dependent). The
    /// per-shard histogram resets after every publish, so the signal
    /// tracks current latency, not run history — and the shards only pay
    /// for it when this threshold is finite.
    pub scale_up_p99_us: f64,
    /// Completed windows that must pass after a scale action before the
    /// next one — the anti-flap damping.
    pub cooldown_windows: u64,
    /// Virtual nodes per shard on the consistent-hash ring.
    pub vnodes: usize,
}

impl Default for AutoscalePolicy {
    /// Bounds 1–8 shards, every trigger disabled, one-window cooldown,
    /// [`DEFAULT_VNODES`] ring resolution.
    fn default() -> Self {
        AutoscalePolicy {
            min_shards: 1,
            max_shards: 8,
            scale_up_pps: f64::INFINITY,
            scale_down_pps: 0.0,
            scale_up_depth: usize::MAX,
            scale_up_p99_us: f64::INFINITY,
            cooldown_windows: 1,
            vnodes: DEFAULT_VNODES,
        }
    }
}

impl AutoscalePolicy {
    /// Validates the policy against the run's initial shard count.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Stream`] for an empty pool range, an initial
    /// shard count outside it, inverted thresholds, or a vnode-less ring.
    pub fn validate(&self, initial_shards: usize) -> Result<()> {
        if self.min_shards == 0 {
            return Err(CoreError::stream("autoscale min_shards must be >= 1"));
        }
        if self.max_shards < self.min_shards {
            return Err(CoreError::stream("autoscale max_shards must be >= min_shards"));
        }
        if initial_shards < self.min_shards || initial_shards > self.max_shards {
            return Err(CoreError::stream(format!(
                "initial shard count {initial_shards} outside autoscale bounds [{}, {}]",
                self.min_shards, self.max_shards
            )));
        }
        if self.scale_down_pps.is_nan() || self.scale_up_pps.is_nan() {
            return Err(CoreError::stream("autoscale rate thresholds must not be NaN"));
        }
        if self.scale_down_pps >= self.scale_up_pps {
            return Err(CoreError::stream(
                "scale_down_pps must be below scale_up_pps (the pool would flap)",
            ));
        }
        if self.vnodes == 0 {
            return Err(CoreError::stream("autoscale vnodes must be >= 1"));
        }
        Ok(())
    }
}

/// Which way a scale decision points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleDirection {
    /// Add one shard.
    Up,
    /// Remove one shard.
    Down,
}

/// One decision produced by [`Autoscaler::poll`]; the executor enacts it
/// (spawn/retire a shard, rebalance the ring) and records the outcome as a
/// [`ScaleEvent`](idsbench_core::ScaleEvent).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleDecision {
    /// Direction of the action.
    pub direction: ScaleDirection,
    /// Index of the completed window whose rate fired the policy.
    pub window: u64,
    /// That window's event rate (events/sec of traffic time).
    pub trigger_pps: f64,
}

/// A window whose event rate crossed a scale threshold without producing a
/// decision — swallowed by the cooldown or clamped at a pool bound. Only
/// recorded when [`Autoscaler::log_crossings`] is enabled (the telemetry
/// journal's feed); the default path keeps zero bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThresholdCrossing {
    /// Index of the completed window that crossed.
    pub window: u64,
    /// That window's event rate (events/sec of traffic time).
    pub pps: f64,
    /// `true` for an up-crossing (overload), `false` for a down-crossing.
    pub up: bool,
}

/// Live signals sampled by the feeder at poll time — the wall-clock half
/// of the policy inputs (the traffic-window rate is carried per window
/// inside the [`Autoscaler`]).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LiveSignals {
    /// Deepest feeder→shard channel, in batches.
    pub max_channel_depth: usize,
    /// Worst per-shard scoring p99, microseconds.
    pub max_p99_us: f64,
}

/// The feeder-side control loop: folds packet arrivals into per-window
/// counts and evaluates the policy once per completed window.
///
/// Usage from the executor: [`Autoscaler::observe_packet`] for every fed
/// packet, then drain [`Autoscaler::poll`] until `None` before routing it —
/// so the packet that reveals a window boundary is already routed under the
/// rebalanced ring.
#[derive(Debug)]
pub struct Autoscaler {
    policy: AutoscalePolicy,
    window_secs: f64,
    /// Currently accumulating window: `(index, events so far)`.
    current: Option<(u64, usize)>,
    /// Completed windows not yet evaluated: `(index, events)`.
    pending: VecDeque<(u64, usize)>,
    /// Completed windows since the last scale action (starts satisfied).
    windows_since_scale: u64,
    /// Whether suppressed crossings are collected (telemetry opt-in).
    log_crossings: bool,
    /// Suppressed crossings since the last [`Autoscaler::take_crossings`].
    crossings: Vec<ThresholdCrossing>,
}

impl Autoscaler {
    /// Creates the control loop for one run.
    pub fn new(policy: AutoscalePolicy, window_secs: f64) -> Self {
        Autoscaler {
            policy,
            window_secs,
            current: None,
            pending: VecDeque::new(),
            windows_since_scale: policy.cooldown_windows,
            log_crossings: false,
            crossings: Vec::new(),
        }
    }

    /// The policy this loop runs.
    pub fn policy(&self) -> &AutoscalePolicy {
        &self.policy
    }

    /// Enables (or disables) collection of suppressed threshold crossings.
    /// Off by default: without a telemetry journal to drain them into, the
    /// control loop keeps no history.
    pub fn log_crossings(&mut self, enabled: bool) {
        self.log_crossings = enabled;
        if !enabled {
            self.crossings = Vec::new();
        }
    }

    /// Whether suppressed crossings await [`Autoscaler::take_crossings`].
    pub fn has_crossings(&self) -> bool {
        !self.crossings.is_empty()
    }

    /// Drains the suppressed crossings collected since the last call
    /// (always empty unless [`Autoscaler::log_crossings`] is on).
    pub fn take_crossings(&mut self) -> Vec<ThresholdCrossing> {
        std::mem::take(&mut self.crossings)
    }

    /// Whether any completed window awaits evaluation — the feeder's cheap
    /// pre-check, so the live signals (channel depths, p99 atomics) are
    /// sampled only when [`Autoscaler::poll`] could actually act, never on
    /// the per-packet fast path.
    pub fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Folds one fed packet into the window accounting. Crossing a window
    /// boundary queues the completed window (plus a bounded number of empty
    /// ones for silent gaps) for [`Autoscaler::poll`].
    pub fn observe_packet(&mut self, ts_micros: u64) {
        // The shared boundary rule: decisions must land on the same window
        // axis the report's metrics windows use.
        let window = crate::metrics::window_index(ts_micros, self.window_secs);
        match &mut self.current {
            None => self.current = Some((window, 1)),
            Some((index, count)) if window <= *index => *count += 1,
            Some((index, count)) => {
                self.pending.push_back((*index, *count));
                let gap = window - *index - 1;
                for offset in 0..gap.min(MAX_GAP_WINDOWS) {
                    self.pending.push_back((*index + 1 + offset, 0));
                }
                self.current = Some((window, 1));
            }
        }
    }

    /// Evaluates the policy against the next pending completed window, if
    /// any. Call repeatedly until `None`; each `Some` consumes the windows
    /// up to and including the one that fired, so consecutive decisions
    /// respect the cooldown.
    pub fn poll(&mut self, live_shards: usize, live: LiveSignals) -> Option<ScaleDecision> {
        while let Some((window, count)) = self.pending.pop_front() {
            self.windows_since_scale = self.windows_since_scale.saturating_add(1);
            let in_cooldown = self.windows_since_scale <= self.policy.cooldown_windows;
            let pps = count as f64 / self.window_secs;
            let overloaded = pps >= self.policy.scale_up_pps
                || live.max_channel_depth >= self.policy.scale_up_depth
                || live.max_p99_us >= self.policy.scale_up_p99_us;
            let underloaded = !overloaded && pps < self.policy.scale_down_pps;
            let decision = if in_cooldown {
                None
            } else if overloaded && live_shards < self.policy.max_shards {
                Some(ScaleDirection::Up)
            } else if underloaded && live_shards > self.policy.min_shards {
                Some(ScaleDirection::Down)
            } else {
                None
            };
            if let Some(direction) = decision {
                self.windows_since_scale = 0;
                return Some(ScaleDecision { direction, window, trigger_pps: pps });
            }
            if self.log_crossings && (overloaded || underloaded) {
                // A crossing the policy swallowed (cooldown or bound) —
                // exactly the divergence the trace journal exists to show.
                self.crossings.push(ThresholdCrossing { window, pps, up: overloaded });
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bursty_policy() -> AutoscalePolicy {
        AutoscalePolicy {
            min_shards: 1,
            max_shards: 4,
            scale_up_pps: 1000.0,
            scale_down_pps: 200.0,
            cooldown_windows: 0,
            ..Default::default()
        }
    }

    /// Feeds `count` packets spread across window `w` (1-second windows).
    fn feed_window(scaler: &mut Autoscaler, w: u64, count: usize) {
        for i in 0..count {
            scaler.observe_packet(w * 1_000_000 + i as u64);
        }
    }

    #[test]
    fn burst_scales_up_and_quiet_scales_down() {
        let mut scaler = Autoscaler::new(bursty_policy(), 1.0);
        feed_window(&mut scaler, 0, 2000); // burst
        feed_window(&mut scaler, 1, 50); // quiet — completes window 0
        let up = scaler.poll(1, LiveSignals::default()).expect("burst window fires");
        assert_eq!(up.direction, ScaleDirection::Up);
        assert_eq!(up.window, 0);
        assert_eq!(up.trigger_pps, 2000.0);
        assert!(scaler.poll(2, LiveSignals::default()).is_none(), "window 1 still accumulating");

        feed_window(&mut scaler, 2, 50); // completes window 1
        let down = scaler.poll(2, LiveSignals::default()).expect("quiet window fires");
        assert_eq!(down.direction, ScaleDirection::Down);
        assert_eq!(down.window, 1);
    }

    #[test]
    fn cooldown_suppresses_consecutive_actions() {
        let policy = AutoscalePolicy { cooldown_windows: 1, ..bursty_policy() };
        let mut scaler = Autoscaler::new(policy, 1.0);
        for w in 0..4 {
            feed_window(&mut scaler, w, 2000);
        }
        feed_window(&mut scaler, 4, 1);
        // Windows 0..=3 completed: 0 fires (cooldown starts satisfied),
        // 1 is swallowed by the cooldown, 2 fires, 3 is swallowed.
        let first = scaler.poll(1, LiveSignals::default()).expect("first burst fires");
        assert_eq!(first.window, 0);
        let second = scaler.poll(2, LiveSignals::default()).expect("post-cooldown burst fires");
        assert_eq!(second.window, 2);
        assert!(scaler.poll(3, LiveSignals::default()).is_none());
    }

    #[test]
    fn bounds_clamp_the_pool() {
        let mut scaler = Autoscaler::new(bursty_policy(), 1.0);
        feed_window(&mut scaler, 0, 5000);
        feed_window(&mut scaler, 1, 1);
        assert!(scaler.poll(4, LiveSignals::default()).is_none(), "already at max_shards");
        let mut scaler = Autoscaler::new(bursty_policy(), 1.0);
        feed_window(&mut scaler, 0, 10);
        feed_window(&mut scaler, 1, 1);
        assert!(scaler.poll(1, LiveSignals::default()).is_none(), "already at min_shards");
    }

    #[test]
    fn silent_gaps_step_the_pool_down_without_per_window_cost() {
        let mut scaler = Autoscaler::new(bursty_policy(), 1.0);
        feed_window(&mut scaler, 0, 50);
        // A packet far in the future: the gap is compressed, not iterated.
        scaler.observe_packet(1_000_000_000_000);
        let mut shards = 4usize;
        while let Some(decision) = scaler.poll(shards, LiveSignals::default()) {
            assert_eq!(decision.direction, ScaleDirection::Down);
            shards -= 1;
        }
        assert_eq!(shards, 1, "a long quiet gap steps all the way to the floor");
    }

    #[test]
    fn live_depth_signal_forces_scale_up() {
        let policy = AutoscalePolicy { scale_up_depth: 8, ..bursty_policy() };
        let mut scaler = Autoscaler::new(policy, 1.0);
        feed_window(&mut scaler, 0, 500); // mid-band rate: neither threshold fires
        feed_window(&mut scaler, 1, 1);
        let decision = scaler
            .poll(1, LiveSignals { max_channel_depth: 9, max_p99_us: 0.0 })
            .expect("deep channel forces scale-up");
        assert_eq!(decision.direction, ScaleDirection::Up);
    }

    #[test]
    fn suppressed_crossings_are_logged_only_when_enabled() {
        // At max_shards already: the burst crosses the up threshold but no
        // decision can fire.
        let mut scaler = Autoscaler::new(bursty_policy(), 1.0);
        feed_window(&mut scaler, 0, 5000);
        feed_window(&mut scaler, 1, 1);
        assert!(scaler.poll(4, LiveSignals::default()).is_none());
        assert!(!scaler.has_crossings(), "logging is off by default");

        let mut scaler = Autoscaler::new(bursty_policy(), 1.0);
        scaler.log_crossings(true);
        feed_window(&mut scaler, 0, 5000);
        feed_window(&mut scaler, 1, 1);
        assert!(scaler.poll(4, LiveSignals::default()).is_none(), "clamped at max");
        let crossings = scaler.take_crossings();
        assert_eq!(crossings, vec![ThresholdCrossing { window: 0, pps: 5000.0, up: true }]);
        assert!(!scaler.has_crossings(), "drained");
    }

    #[test]
    fn policy_validation_rejects_nonsense() {
        assert!(AutoscalePolicy::default().validate(1).is_ok());
        assert!(AutoscalePolicy { min_shards: 0, ..Default::default() }.validate(1).is_err());
        assert!(AutoscalePolicy { max_shards: 2, min_shards: 3, ..Default::default() }
            .validate(3)
            .is_err());
        assert!(AutoscalePolicy::default().validate(9).is_err(), "initial above max");
        assert!(AutoscalePolicy { scale_up_pps: 10.0, scale_down_pps: 20.0, ..Default::default() }
            .validate(1)
            .is_err());
        assert!(AutoscalePolicy { vnodes: 0, ..Default::default() }.validate(1).is_err());
    }
}
