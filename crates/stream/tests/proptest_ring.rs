//! Property-based pinning of the consistent-hash ring's contract: when the
//! shard pool changes, ownership moves *only* where it must — the property
//! that bounds how much flow state an autoscale rebalance may migrate.

use idsbench_stream::HashRing;
use proptest::prelude::*;

/// Vnode resolution used throughout (the executor's default is the same
/// order of magnitude; the properties hold for any positive count).
const VNODES: usize = 32;

proptest! {
    /// Adding a shard reassigns keys only to the new shard; every key that
    /// moved was claimed by it, every other key keeps its owner.
    #[test]
    fn adding_a_shard_moves_keys_only_to_it(
        hashes in proptest::collection::vec(any::<u64>(), 1..400),
        shards in 1usize..7,
    ) {
        let before = HashRing::with_shards(VNODES, shards);
        let mut after = before.clone();
        after.add_shard(shards);
        for &hash in &hashes {
            let (old, new) = (before.owner_of_hash(hash), after.owner_of_hash(hash));
            if old != new {
                prop_assert_eq!(new, shards, "key moved between surviving shards");
            }
        }
    }

    /// Removing a shard reassigns only the keys it owned; survivors keep
    /// every key they had.
    #[test]
    fn removing_a_shard_moves_only_its_keys(
        hashes in proptest::collection::vec(any::<u64>(), 1..400),
        shards in 2usize..8,
        victim_pick in any::<u64>(),
    ) {
        let victim = (victim_pick % shards as u64) as usize;
        let before = HashRing::with_shards(VNODES, shards);
        let mut after = before.clone();
        after.remove_shard(victim);
        for &hash in &hashes {
            let (old, new) = (before.owner_of_hash(hash), after.owner_of_hash(hash));
            if old != victim {
                prop_assert_eq!(old, new, "a surviving shard's key moved");
            } else {
                prop_assert_ne!(new, victim, "a removed shard still owns keys");
            }
        }
    }

    /// Under any add/remove churn, every key resolves to a live shard, and
    /// lookups are a pure function of membership (rebuilding the ring from
    /// the surviving membership gives identical ownership).
    #[test]
    fn churned_ring_matches_freshly_built_membership(
        hashes in proptest::collection::vec(any::<u64>(), 1..200),
        ops in proptest::collection::vec(any::<u64>(), 0..24),
    ) {
        let mut ring = HashRing::with_shards(VNODES, 1);
        let mut next_id = 1usize;
        for &op in &ops {
            let (grow, pick) = (op & 1 == 1, op >> 1);
            if grow {
                ring.add_shard(next_id);
                next_id += 1;
            } else if ring.len() > 1 {
                let victim = ring.shards()[(pick % ring.len() as u64) as usize];
                ring.remove_shard(victim);
            }
        }
        let mut rebuilt = HashRing::new(VNODES);
        for &shard in ring.shards() {
            rebuilt.add_shard(shard);
        }
        for &hash in &hashes {
            let owner = ring.owner_of_hash(hash);
            prop_assert!(ring.contains(owner), "owner {} is not live", owner);
            prop_assert_eq!(owner, rebuilt.owner_of_hash(hash),
                "ownership depends on churn history, not membership");
        }
    }
}
