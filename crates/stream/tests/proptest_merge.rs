//! Property-based pinning of the aggregation algebra the sharded executor
//! relies on: per-shard [`OnlineStats`] (and the [`LatencyHistogram`] inside
//! them) are merged in whatever order shards finish, so the merge must be
//! associative and order-insensitive or the report would depend on thread
//! scheduling.

use idsbench_core::AttackKind;
use idsbench_stream::{LatencyHistogram, OnlineStats};
use proptest::prelude::*;

/// One scored event as the executor would fold it into a shard's stats.
#[derive(Debug, Clone)]
struct Event {
    window: u64,
    score: f64,
    label: bool,
    kind: Option<AttackKind>,
    is_flow: bool,
    latency_nanos: u64,
}

fn event_strategy() -> impl Strategy<Value = Event> {
    (0u64..6, 0.0f64..1.0, any::<bool>(), 0u8..8, any::<bool>(), 0u64..5_000_000).prop_map(
        |(window, score, label, kind_pick, is_flow, latency_nanos)| Event {
            window,
            score,
            label,
            kind: match kind_pick {
                0 => Some(AttackKind::SynFlood),
                1 => Some(AttackKind::UdpFlood),
                2 => Some(AttackKind::PortScan),
                3 => Some(AttackKind::BotnetC2),
                _ => None,
            },
            is_flow,
            latency_nanos,
        },
    )
}

const THRESHOLD: f64 = 0.5;

fn fold(events: &[Event]) -> OnlineStats {
    let mut stats = OnlineStats::default();
    for e in events {
        stats.record(e.window, e.score, THRESHOLD, e.label, e.kind, e.is_flow, e.latency_nanos);
    }
    stats
}

fn hist(nanos: &[u64]) -> LatencyHistogram {
    let mut h = LatencyHistogram::default();
    for &n in nanos {
        h.record(n);
    }
    h
}

proptest! {
    /// Merging latency histograms commutes: `a ∪ b == b ∪ a`.
    #[test]
    fn histogram_merge_is_commutative(
        a in proptest::collection::vec(any::<u64>(), 0..200),
        b in proptest::collection::vec(any::<u64>(), 0..200),
    ) {
        let (ha, hb) = (hist(&a), hist(&b));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(&ab, &ba);
        prop_assert_eq!(ab.len(), (a.len() + b.len()) as u64);
    }

    /// Merging latency histograms is associative: `(a ∪ b) ∪ c == a ∪ (b ∪ c)`,
    /// and both equal folding every sample into one histogram directly.
    #[test]
    fn histogram_merge_is_associative(
        a in proptest::collection::vec(any::<u64>(), 0..150),
        b in proptest::collection::vec(any::<u64>(), 0..150),
        c in proptest::collection::vec(any::<u64>(), 0..150),
    ) {
        let (ha, hb, hc) = (hist(&a), hist(&b), hist(&c));
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        let mut right_tail = hb.clone();
        right_tail.merge(&hc);
        let mut right = ha.clone();
        right.merge(&right_tail);
        prop_assert_eq!(&left, &right);

        let mut all = a.clone();
        all.extend_from_slice(&b);
        all.extend_from_slice(&c);
        prop_assert_eq!(&left, &hist(&all));
    }

    /// Merging per-shard stats commutes, and matches folding the union of
    /// events into a single stats instance — shard assignment is invisible.
    #[test]
    fn stats_merge_is_order_insensitive(
        a in proptest::collection::vec(event_strategy(), 0..120),
        b in proptest::collection::vec(event_strategy(), 0..120),
    ) {
        let (sa, sb) = (fold(&a), fold(&b));
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(&ab, &ba);

        let mut all = a.clone();
        all.extend_from_slice(&b);
        prop_assert_eq!(&ab, &fold(&all));
    }

    /// Three-way shard merges are associative — the executor may merge
    /// shard outputs in any grouping as they finish.
    #[test]
    fn stats_merge_is_associative(
        a in proptest::collection::vec(event_strategy(), 0..80),
        b in proptest::collection::vec(event_strategy(), 0..80),
        c in proptest::collection::vec(event_strategy(), 0..80),
    ) {
        let (sa, sb, sc) = (fold(&a), fold(&b), fold(&c));
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        let mut right_tail = sb.clone();
        right_tail.merge(&sc);
        let mut right = sa.clone();
        right.merge(&right_tail);
        prop_assert_eq!(&left, &right);
        prop_assert_eq!(left.events, a.len() + b.len() + c.len());
    }
}
