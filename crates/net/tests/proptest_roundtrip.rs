//! Property-based round-trip tests: any packet the builder can construct must
//! survive serialization → pcap container → parsing with every field intact.

use std::net::Ipv4Addr;

use idsbench_net::pcap;
use idsbench_net::{
    internet_checksum, IcmpHeader, IpProtocol, MacAddr, NetworkLayer, Packet, PacketBuilder,
    ParsedPacket, TcpFlags, TcpHeader, Timestamp, TransportLayer,
};
use proptest::prelude::*;

fn arb_mac() -> impl Strategy<Value = MacAddr> {
    any::<[u8; 6]>().prop_map(MacAddr::new)
}

fn arb_ipv4() -> impl Strategy<Value = Ipv4Addr> {
    any::<[u8; 4]>().prop_map(|o| Ipv4Addr::new(o[0], o[1], o[2], o[3]))
}

fn arb_flags() -> impl Strategy<Value = TcpFlags> {
    any::<u8>().prop_map(TcpFlags::from_bits)
}

proptest! {
    #[test]
    fn tcp_packet_round_trips(
        src_mac in arb_mac(),
        dst_mac in arb_mac(),
        src_ip in arb_ipv4(),
        dst_ip in arb_ipv4(),
        src_port in any::<u16>(),
        dst_port in any::<u16>(),
        seq in any::<u32>(),
        ack in any::<u32>(),
        window in any::<u16>(),
        flags in arb_flags(),
        payload in proptest::collection::vec(any::<u8>(), 0..512),
        micros in 0u64..(1u64 << 40),
    ) {
        let mut header = TcpHeader::new(src_port, dst_port, flags);
        header.seq = seq;
        header.ack = ack;
        header.window = window;
        let packet = PacketBuilder::new()
            .ethernet(src_mac, dst_mac)
            .ipv4(src_ip, dst_ip)
            .tcp_header(header)
            .payload(&payload)
            .build(Timestamp::from_micros(micros));

        let parsed = ParsedPacket::parse(&packet).unwrap();
        prop_assert_eq!(parsed.src_mac(), src_mac);
        prop_assert_eq!(parsed.dst_mac(), dst_mac);
        prop_assert_eq!(parsed.src_ip(), Some(src_ip.into()));
        prop_assert_eq!(parsed.dst_ip(), Some(dst_ip.into()));
        prop_assert_eq!(parsed.src_port(), Some(src_port));
        prop_assert_eq!(parsed.dst_port(), Some(dst_port));
        prop_assert_eq!(parsed.payload_len, payload.len());
        let tcp = parsed.tcp().unwrap();
        prop_assert_eq!(tcp.seq, seq);
        prop_assert_eq!(tcp.ack, ack);
        prop_assert_eq!(tcp.window, window);
        prop_assert_eq!(tcp.flags, flags);
        prop_assert_eq!(parsed.ts, Timestamp::from_micros(micros));
    }

    #[test]
    fn udp_packet_round_trips(
        src_ip in arb_ipv4(),
        dst_ip in arb_ipv4(),
        src_port in any::<u16>(),
        dst_port in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..1024),
    ) {
        let packet = PacketBuilder::new()
            .ethernet(MacAddr::from_host_id(1), MacAddr::from_host_id(2))
            .ipv4(src_ip, dst_ip)
            .udp(src_port, dst_port)
            .payload(&payload)
            .build(Timestamp::ZERO);
        let parsed = ParsedPacket::parse(&packet).unwrap();
        let Some(TransportLayer::Udp(udp)) = parsed.transport else {
            return Err(TestCaseError::fail("expected udp"));
        };
        prop_assert_eq!(udp.src_port, src_port);
        prop_assert_eq!(udp.dst_port, dst_port);
        prop_assert_eq!(udp.payload_len(), payload.len());
    }

    #[test]
    fn ipv4_checksum_always_verifies(
        src_ip in arb_ipv4(),
        dst_ip in arb_ipv4(),
        ttl in any::<u8>(),
        payload in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let packet = PacketBuilder::new()
            .ethernet(MacAddr::from_host_id(1), MacAddr::from_host_id(2))
            .ipv4_with_ttl(src_ip, dst_ip, ttl)
            .ip_payload(IpProtocol::Other(0xfd), &payload)
            .build(Timestamp::ZERO);
        // IPv4 header starts at offset 14 and is 20 bytes (builder never
        // emits options).
        prop_assert_eq!(internet_checksum(&packet.data[14..34]), 0);
    }

    #[test]
    fn pcap_container_round_trips(
        count in 0usize..20,
        seed in any::<u64>(),
    ) {
        let packets: Vec<Packet> = (0..count)
            .map(|i| {
                let len = 14 + ((seed as usize).wrapping_mul(i + 1) % 1200);
                Packet::new(
                    Timestamp::from_micros(seed % (1 << 32) + i as u64),
                    vec![(i % 251) as u8; len],
                )
            })
            .collect();
        let image = pcap::write_all(&packets).unwrap();
        let restored = pcap::read_all(&image).unwrap();
        prop_assert_eq!(restored, packets);
    }

    #[test]
    fn icmp_echo_round_trips(identifier in any::<u16>(), sequence in any::<u16>()) {
        let packet = PacketBuilder::new()
            .ethernet(MacAddr::from_host_id(1), MacAddr::from_host_id(2))
            .ipv4(Ipv4Addr::new(1, 1, 1, 1), Ipv4Addr::new(2, 2, 2, 2))
            .icmp(IcmpHeader::echo_request(identifier, sequence))
            .build(Timestamp::ZERO);
        let parsed = ParsedPacket::parse(&packet).unwrap();
        let Some(TransportLayer::Icmp(icmp)) = parsed.transport else {
            return Err(TestCaseError::fail("expected icmp"));
        };
        prop_assert_eq!(&icmp.rest[0..2], &identifier.to_be_bytes());
        prop_assert_eq!(&icmp.rest[2..4], &sequence.to_be_bytes());
    }

    /// Arbitrary garbage must never panic the parser: it either parses or
    /// returns a structured error.
    #[test]
    fn parser_never_panics(data in proptest::collection::vec(any::<u8>(), 0..200)) {
        let packet = Packet::new(Timestamp::ZERO, data);
        let _ = ParsedPacket::parse(&packet);
    }

    /// Arbitrary garbage must never panic the pcap reader.
    #[test]
    fn pcap_reader_never_panics(data in proptest::collection::vec(any::<u8>(), 0..400)) {
        let _ = pcap::read_all(&data);
    }
}

#[test]
fn ipv4_network_layer_reports_builder_ttl() {
    let packet = PacketBuilder::new()
        .ethernet(MacAddr::from_host_id(1), MacAddr::from_host_id(2))
        .ipv4_with_ttl(Ipv4Addr::new(9, 9, 9, 9), Ipv4Addr::new(8, 8, 8, 8), 42)
        .udp(1, 2)
        .build(Timestamp::ZERO);
    let parsed = ParsedPacket::parse(&packet).unwrap();
    let NetworkLayer::Ipv4(ip) = parsed.network else { panic!("expected ipv4") };
    assert_eq!(ip.ttl, 42);
}
