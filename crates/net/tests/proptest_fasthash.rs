//! Property-based parity of [`FastMap`] against `std::collections::HashMap`
//! under arbitrary operation sequences — the open-addressing map must be a
//! behavioural drop-in (insert/get/remove/iterate), tombstones, probe
//! chains, growth and all.

use idsbench_net::fasthash::{fx_hash, FastMap};
use proptest::prelude::*;
use std::collections::HashMap;

/// One scripted map operation. Key space is kept small (0..48) so probe
/// chains, overwrites, and remove-reinsert cycles are actually exercised.
#[derive(Debug, Clone, Copy)]
enum Op {
    Insert(u16, u32),
    Remove(u16),
    Get(u16),
}

fn op() -> impl Strategy<Value = Op> {
    (0u8..3, 0u16..48, any::<u32>()).prop_map(|(kind, key, value)| match kind {
        0 => Op::Insert(key, value),
        1 => Op::Remove(key),
        _ => Op::Get(key),
    })
}

proptest! {
    /// Every operation returns exactly what `HashMap` returns, and the
    /// final contents are identical.
    #[test]
    fn matches_std_hashmap(ops in proptest::collection::vec(op(), 1..400)) {
        let mut fast: FastMap<u16, u32> = FastMap::new();
        let mut std_map: HashMap<u16, u32> = HashMap::new();
        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    prop_assert_eq!(fast.insert(k, v), std_map.insert(k, v));
                }
                Op::Remove(k) => {
                    prop_assert_eq!(fast.remove(&k), std_map.remove(&k));
                }
                Op::Get(k) => {
                    prop_assert_eq!(fast.get(&k), std_map.get(&k));
                    prop_assert_eq!(fast.contains_key(&k), std_map.contains_key(&k));
                }
            }
            prop_assert_eq!(fast.len(), std_map.len());
            prop_assert_eq!(fast.is_empty(), std_map.is_empty());
        }
        // Iteration parity: same multiset of entries (order is unspecified
        // in both maps).
        let mut got: Vec<(u16, u32)> = fast.iter().map(|(k, v)| (*k, *v)).collect();
        let mut want: Vec<(u16, u32)> = std_map.iter().map(|(k, v)| (*k, *v)).collect();
        got.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got, want);
        // Drain parity: everything comes out exactly once.
        let mut drained: Vec<(u16, u32)> = fast.drain().collect();
        drained.sort_unstable();
        let mut expected: Vec<(u16, u32)> = std_map.drain().collect();
        expected.sort_unstable();
        prop_assert_eq!(drained, expected);
        prop_assert!(fast.is_empty());
    }

    /// `entry_or_insert_with` matches `entry().or_insert_with()`.
    #[test]
    fn entry_matches_std(keys in proptest::collection::vec(0u16..32, 1..200)) {
        let mut fast: FastMap<u16, u32> = FastMap::new();
        let mut std_map: HashMap<u16, u32> = HashMap::new();
        for (i, k) in keys.into_iter().enumerate() {
            let fast_v = fast.entry_or_insert_with(k, || i as u32);
            let std_v = std_map.entry(k).or_insert_with(|| i as u32);
            prop_assert_eq!(&*fast_v, &*std_v);
            *fast_v += 1;
            *std_v += 1;
        }
        for (k, v) in std_map {
            prop_assert_eq!(fast.get(&k), Some(&v));
        }
    }

    /// `retain` keeps exactly what `HashMap::retain` keeps.
    #[test]
    fn retain_matches_std(
        entries in proptest::collection::vec((0u16..64, any::<u32>()), 0..150),
        modulus in 2u32..7,
    ) {
        let mut fast: FastMap<u16, u32> = FastMap::new();
        let mut std_map: HashMap<u16, u32> = HashMap::new();
        for (k, v) in entries {
            fast.insert(k, v);
            std_map.insert(k, v);
        }
        fast.retain(|_, v| *v % modulus == 0);
        std_map.retain(|_, v| *v % modulus == 0);
        prop_assert_eq!(fast.len(), std_map.len());
        for (k, v) in &std_map {
            prop_assert_eq!(fast.get(k), Some(v));
        }
        // Survivors stay reachable through the tombstones retain left.
        for (k, v) in std_map {
            prop_assert_eq!(fast.remove(&k), Some(v));
        }
        prop_assert!(fast.is_empty());
    }

    /// The hasher is a pure function of the key.
    #[test]
    fn fx_hash_is_stable(key in any::<u64>()) {
        prop_assert_eq!(fx_hash(&key), fx_hash(&key));
    }
}
