//! Packet substrate for the `idsbench` replay-evaluation framework.
//!
//! This crate provides everything the higher layers need to work with raw
//! network traffic without any external capture library:
//!
//! * typed protocol headers with byte-exact parsing and serialization
//!   ([`EthernetHeader`], [`Ipv4Header`], [`Ipv6Header`], [`TcpHeader`],
//!   [`UdpHeader`], [`IcmpHeader`], [`ArpPacket`]),
//! * a zero-copy [`Packet`] record plus a fully decoded [`ParsedPacket`] view,
//! * a [`PacketBuilder`] that assembles valid frames (lengths and checksums
//!   computed for you),
//! * classic libpcap file I/O ([`pcap::PcapReader`], [`pcap::PcapWriter`])
//!   supporting both byte orders and microsecond/nanosecond resolution,
//! * fast hashing for the per-packet state maps of the layers above
//!   ([`fasthash::FastMap`], [`fasthash::FxHasher`]).
//!
//! # Examples
//!
//! Build a TCP SYN packet, serialize it, and parse it back:
//!
//! ```
//! use idsbench_net::{MacAddr, PacketBuilder, ParsedPacket, TcpFlags, Timestamp};
//! use std::net::Ipv4Addr;
//!
//! # fn main() -> Result<(), idsbench_net::NetError> {
//! let packet = PacketBuilder::new()
//!     .ethernet(MacAddr::new([0, 1, 2, 3, 4, 5]), MacAddr::BROADCAST)
//!     .ipv4(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2))
//!     .tcp(40000, 80, TcpFlags::SYN)
//!     .build(Timestamp::from_micros(1_000_000));
//!
//! let parsed = ParsedPacket::parse(&packet)?;
//! assert_eq!(parsed.src_port(), Some(40000));
//! assert_eq!(parsed.dst_port(), Some(80));
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

mod addr;
mod arp;
mod builder;
mod checksum;
mod error;
mod ethernet;
pub mod fasthash;
mod icmp;
mod ipv4;
mod ipv6;
mod packet;
pub mod pcap;
mod tcp;
mod time;
mod udp;
pub mod wire;

pub use addr::MacAddr;
pub use arp::{ArpOperation, ArpPacket};
pub use builder::PacketBuilder;
pub use checksum::{internet_checksum, pseudo_header_checksum};
pub use error::NetError;
pub use ethernet::{EtherType, EthernetHeader, ETHERNET_HEADER_LEN};
pub use icmp::{IcmpHeader, IcmpType, ICMP_HEADER_LEN};
pub use ipv4::{IpProtocol, Ipv4Header, IPV4_MIN_HEADER_LEN};
pub use ipv6::{Ipv6Header, IPV6_HEADER_LEN};
pub use packet::{NetworkLayer, Packet, ParsedPacket, TransportLayer};
pub use tcp::{TcpFlags, TcpHeader, TCP_MIN_HEADER_LEN};
pub use time::{Duration, Timestamp};
pub use udp::{UdpHeader, UDP_HEADER_LEN};

/// Result alias used throughout this crate.
pub type Result<T> = std::result::Result<T, NetError>;
