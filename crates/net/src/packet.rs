use std::net::IpAddr;

use bytes::Bytes;

use crate::arp::ArpPacket;
use crate::ethernet::{EtherType, EthernetHeader};
use crate::icmp::IcmpHeader;
use crate::ipv4::{IpProtocol, Ipv4Header};
use crate::ipv6::Ipv6Header;
use crate::tcp::TcpHeader;
use crate::time::Timestamp;
use crate::udp::UdpHeader;
use crate::{MacAddr, Result};

/// A captured (or synthesized) frame: a timestamp plus raw bytes.
///
/// The byte buffer is reference-counted ([`Bytes`]), so packets can be cloned
/// and fanned out to several detectors without copying frame data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Capture timestamp.
    pub ts: Timestamp,
    /// Raw frame bytes, starting at the Ethernet header.
    pub data: Bytes,
}

impl Packet {
    /// Creates a packet from a timestamp and raw frame bytes.
    pub fn new(ts: Timestamp, data: impl Into<Bytes>) -> Self {
        Packet { ts, data: data.into() }
    }

    /// Length of the frame in bytes.
    pub fn wire_len(&self) -> usize {
        self.data.len()
    }
}

/// The parsed network layer of a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetworkLayer {
    /// An IPv4 datagram.
    Ipv4(Ipv4Header),
    /// An IPv6 datagram.
    Ipv6(Ipv6Header),
    /// An ARP packet.
    Arp(ArpPacket),
    /// A payload this crate does not decode.
    Unknown(EtherType),
}

/// The parsed transport layer of a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum TransportLayer {
    /// A TCP segment.
    Tcp(TcpHeader),
    /// A UDP datagram.
    Udp(UdpHeader),
    /// An ICMP message.
    Icmp(IcmpHeader),
    /// A transport this crate does not decode.
    Other(IpProtocol),
}

/// A fully decoded view of a [`Packet`].
///
/// Parsing is tolerant above the Ethernet layer: unknown EtherTypes and IP
/// protocols are reported as [`NetworkLayer::Unknown`] /
/// [`TransportLayer::Other`] rather than errors, because real captures always
/// contain some traffic an IDS must simply pass through.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedPacket {
    /// Capture timestamp.
    pub ts: Timestamp,
    /// Ethernet header.
    pub ethernet: EthernetHeader,
    /// Network layer.
    pub network: NetworkLayer,
    /// Transport layer, when the network layer carries one.
    pub transport: Option<TransportLayer>,
    /// Bytes of transport payload (application data).
    pub payload_len: usize,
    /// Total frame length in bytes.
    pub wire_len: usize,
}

/// Process-wide count of [`ParsedPacket::parse`] invocations.
///
/// Parsing is the dominant fixed cost of the evaluation data plane, and the
/// parse-once Event API promises each packet is decoded exactly once across
/// the whole pipeline. The counter makes that promise testable (see the
/// `parse_once` integration test); a relaxed atomic increment is noise next
/// to the header decoding itself.
static PARSE_CALLS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

impl ParsedPacket {
    /// Total [`ParsedPacket::parse`] calls made by this process so far.
    ///
    /// Monotonically increasing; take a delta around the region of interest.
    /// Counts attempts, including ones that return an error.
    pub fn parse_calls() -> u64 {
        PARSE_CALLS.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Decodes a packet.
    ///
    /// # Errors
    ///
    /// Returns an error only when a *declared* structure is violated — e.g. a
    /// truncated Ethernet or IP header, or an IHL smaller than the legal
    /// minimum. Unknown protocols parse successfully as opaque layers.
    pub fn parse(packet: &Packet) -> Result<Self> {
        PARSE_CALLS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let data = &packet.data[..];
        let (ethernet, eth_len) = EthernetHeader::parse(data)?;
        let rest = &data[eth_len..];

        let (network, net_len) = match ethernet.ethertype {
            EtherType::Ipv4 => {
                let (h, n) = Ipv4Header::parse(rest)?;
                (NetworkLayer::Ipv4(h), n)
            }
            EtherType::Ipv6 => {
                let (h, n) = Ipv6Header::parse(rest)?;
                (NetworkLayer::Ipv6(h), n)
            }
            EtherType::Arp => {
                let (p, n) = ArpPacket::parse(rest)?;
                (NetworkLayer::Arp(p), n)
            }
            other => (NetworkLayer::Unknown(other), 0),
        };

        let after_net = &rest[net_len..];
        let (transport, transport_len) = match &network {
            NetworkLayer::Ipv4(h) if !h.is_fragment() || h.fragment_offset == 0 => {
                Self::parse_transport(h.protocol, after_net)?
            }
            NetworkLayer::Ipv6(h) => Self::parse_transport(h.next_header, after_net)?,
            _ => (None, 0),
        };

        let payload_len = after_net.len().saturating_sub(transport_len);
        Ok(ParsedPacket {
            ts: packet.ts,
            ethernet,
            network,
            transport,
            payload_len,
            wire_len: data.len(),
        })
    }

    fn parse_transport(
        protocol: IpProtocol,
        data: &[u8],
    ) -> Result<(Option<TransportLayer>, usize)> {
        Ok(match protocol {
            IpProtocol::Tcp => {
                let (h, n) = TcpHeader::parse(data)?;
                (Some(TransportLayer::Tcp(h)), n)
            }
            IpProtocol::Udp => {
                let (h, n) = UdpHeader::parse(data)?;
                (Some(TransportLayer::Udp(h)), n)
            }
            IpProtocol::Icmp => {
                let (h, n) = IcmpHeader::parse(data)?;
                (Some(TransportLayer::Icmp(h)), n)
            }
            other => (Some(TransportLayer::Other(other)), 0),
        })
    }

    /// Source MAC address.
    pub fn src_mac(&self) -> MacAddr {
        self.ethernet.src
    }

    /// Destination MAC address.
    pub fn dst_mac(&self) -> MacAddr {
        self.ethernet.dst
    }

    /// Source IP address, when the packet is IP.
    pub fn src_ip(&self) -> Option<IpAddr> {
        match &self.network {
            NetworkLayer::Ipv4(h) => Some(IpAddr::V4(h.src)),
            NetworkLayer::Ipv6(h) => Some(IpAddr::V6(h.src)),
            _ => None,
        }
    }

    /// Destination IP address, when the packet is IP.
    pub fn dst_ip(&self) -> Option<IpAddr> {
        match &self.network {
            NetworkLayer::Ipv4(h) => Some(IpAddr::V4(h.dst)),
            NetworkLayer::Ipv6(h) => Some(IpAddr::V6(h.dst)),
            _ => None,
        }
    }

    /// IP protocol number, when the packet is IP.
    pub fn ip_protocol(&self) -> Option<IpProtocol> {
        match &self.network {
            NetworkLayer::Ipv4(h) => Some(h.protocol),
            NetworkLayer::Ipv6(h) => Some(h.next_header),
            _ => None,
        }
    }

    /// Source transport port, when the packet is TCP or UDP.
    pub fn src_port(&self) -> Option<u16> {
        match self.transport {
            Some(TransportLayer::Tcp(h)) => Some(h.src_port),
            Some(TransportLayer::Udp(h)) => Some(h.src_port),
            _ => None,
        }
    }

    /// Destination transport port, when the packet is TCP or UDP.
    pub fn dst_port(&self) -> Option<u16> {
        match self.transport {
            Some(TransportLayer::Tcp(h)) => Some(h.dst_port),
            Some(TransportLayer::Udp(h)) => Some(h.dst_port),
            _ => None,
        }
    }

    /// TCP header, when the packet is TCP.
    pub fn tcp(&self) -> Option<&TcpHeader> {
        match &self.transport {
            Some(TransportLayer::Tcp(h)) => Some(h),
            _ => None,
        }
    }

    /// UDP header, when the packet is UDP.
    pub fn udp(&self) -> Option<&UdpHeader> {
        match &self.transport {
            Some(TransportLayer::Udp(h)) => Some(h),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PacketBuilder;
    use crate::tcp::TcpFlags;
    use std::net::Ipv4Addr;

    fn tcp_packet() -> Packet {
        PacketBuilder::new()
            .ethernet(MacAddr::from_host_id(1), MacAddr::from_host_id(2))
            .ipv4(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2))
            .tcp(1234, 80, TcpFlags::SYN)
            .payload(&[1, 2, 3])
            .build(Timestamp::from_secs(1))
    }

    #[test]
    fn parse_full_tcp_packet() {
        let packet = tcp_packet();
        let parsed = ParsedPacket::parse(&packet).unwrap();
        assert_eq!(parsed.src_ip(), Some(IpAddr::V4(Ipv4Addr::new(10, 0, 0, 1))));
        assert_eq!(parsed.dst_port(), Some(80));
        assert_eq!(parsed.payload_len, 3);
        assert_eq!(parsed.ip_protocol(), Some(IpProtocol::Tcp));
        assert!(parsed.tcp().unwrap().flags.contains(TcpFlags::SYN));
        assert_eq!(parsed.wire_len, packet.wire_len());
    }

    #[test]
    fn unknown_ethertype_is_opaque() {
        let mut frame = vec![0u8; 20];
        frame[12] = 0x88; // 0x88cc = LLDP
        frame[13] = 0xcc;
        let packet = Packet::new(Timestamp::ZERO, frame);
        let parsed = ParsedPacket::parse(&packet).unwrap();
        assert!(matches!(parsed.network, NetworkLayer::Unknown(EtherType::Other(0x88cc))));
        assert!(parsed.transport.is_none());
        assert!(parsed.src_ip().is_none());
        assert!(parsed.src_port().is_none());
    }

    #[test]
    fn unknown_ip_protocol_is_opaque() {
        let packet = PacketBuilder::new()
            .ethernet(MacAddr::from_host_id(1), MacAddr::from_host_id(2))
            .ipv4(Ipv4Addr::new(1, 1, 1, 1), Ipv4Addr::new(2, 2, 2, 2))
            .ip_payload(IpProtocol::Other(47), &[0u8; 16]) // GRE
            .build(Timestamp::ZERO);
        let parsed = ParsedPacket::parse(&packet).unwrap();
        assert_eq!(parsed.transport, Some(TransportLayer::Other(IpProtocol::Other(47))));
        assert_eq!(parsed.payload_len, 16);
    }

    #[test]
    fn truncated_frame_is_an_error() {
        let packet = Packet::new(Timestamp::ZERO, vec![0u8; 10]);
        assert!(ParsedPacket::parse(&packet).is_err());
    }

    #[test]
    fn packet_clone_shares_buffer() {
        let packet = tcp_packet();
        let clone = packet.clone();
        // Bytes clones share the same backing allocation.
        assert_eq!(packet.data.as_ptr(), clone.data.as_ptr());
    }
}
