use std::fmt;
use std::io;

/// Error type for packet parsing, serialization, and capture-file I/O.
///
/// All fallible operations in this crate return [`NetError`]. The variants
/// carry enough context to diagnose malformed traffic encountered during a
/// replay run without aborting the whole evaluation.
#[derive(Debug)]
#[non_exhaustive]
pub enum NetError {
    /// The buffer ended before a complete header could be read.
    Truncated {
        /// What was being parsed when the data ran out.
        what: &'static str,
        /// Number of bytes required.
        needed: usize,
        /// Number of bytes available.
        got: usize,
    },
    /// A header field held a value that violates the protocol specification.
    InvalidField {
        /// What was being parsed.
        what: &'static str,
        /// Description of the violation.
        detail: String,
    },
    /// A pcap file began with an unrecognized magic number.
    BadPcapMagic(u32),
    /// A pcap file used a link type other than Ethernet (`LINKTYPE_ETHNET`).
    UnsupportedLinkType(u32),
    /// An underlying I/O operation failed.
    Io(io::Error),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Truncated { what, needed, got } => {
                write!(f, "truncated {what}: needed {needed} bytes, got {got}")
            }
            NetError::InvalidField { what, detail } => {
                write!(f, "invalid {what}: {detail}")
            }
            NetError::BadPcapMagic(magic) => {
                write!(f, "unrecognized pcap magic number {magic:#010x}")
            }
            NetError::UnsupportedLinkType(lt) => {
                write!(f, "unsupported pcap link type {lt} (only Ethernet is supported)")
            }
            NetError::Io(err) => write!(f, "i/o error: {err}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<io::Error> for NetError {
    fn from(err: io::Error) -> Self {
        NetError::Io(err)
    }
}

impl NetError {
    /// Convenience constructor for [`NetError::Truncated`].
    pub(crate) fn truncated(what: &'static str, needed: usize, got: usize) -> Self {
        NetError::Truncated { what, needed, got }
    }

    /// Convenience constructor for [`NetError::InvalidField`].
    pub(crate) fn invalid(what: &'static str, detail: impl Into<String>) -> Self {
        NetError::InvalidField { what, detail: detail.into() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let err = NetError::truncated("tcp header", 20, 7);
        assert_eq!(err.to_string(), "truncated tcp header: needed 20 bytes, got 7");
    }

    #[test]
    fn io_error_is_source() {
        use std::error::Error as _;
        let err = NetError::from(io::Error::new(io::ErrorKind::UnexpectedEof, "eof"));
        assert!(err.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetError>();
    }

    #[test]
    fn bad_magic_display_includes_hex() {
        let err = NetError::BadPcapMagic(0xdeadbeef);
        assert!(err.to_string().contains("0xdeadbeef"));
    }
}
