use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A capture timestamp with microsecond resolution.
///
/// Timestamps are stored as microseconds since an arbitrary epoch (for
/// synthetic traces, the start of the scenario; for pcap files, the Unix
/// epoch). The representation matches the classic libpcap record header, and
/// microsecond resolution is sufficient for every statistic computed by the
/// evaluation pipeline.
///
/// # Examples
///
/// ```
/// use idsbench_net::{Duration, Timestamp};
///
/// let t0 = Timestamp::from_secs_f64(1.5);
/// let t1 = t0 + Duration::from_millis(250);
/// assert_eq!((t1 - t0).as_secs_f64(), 0.25);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp {
    micros: u64,
}

impl Timestamp {
    /// The zero timestamp (epoch).
    pub const ZERO: Timestamp = Timestamp { micros: 0 };

    /// Creates a timestamp from whole microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        Timestamp { micros }
    }

    /// Creates a timestamp from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        Timestamp { micros: secs * 1_000_000 }
    }

    /// Creates a timestamp from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "timestamp seconds must be finite and non-negative"
        );
        Timestamp { micros: (secs * 1e6).round() as u64 }
    }

    /// Microseconds since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.micros
    }

    /// Seconds since the epoch as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.micros as f64 / 1e6
    }

    /// Whole seconds and leftover microseconds, as stored in a pcap record.
    pub const fn split(self) -> (u32, u32) {
        ((self.micros / 1_000_000) as u32, (self.micros % 1_000_000) as u32)
    }

    /// Saturating subtraction; returns [`Duration::ZERO`] when `earlier` is
    /// after `self`.
    pub fn saturating_since(self, earlier: Timestamp) -> Duration {
        Duration { micros: self.micros.saturating_sub(earlier.micros) }
    }

    /// Returns `self + duration`, saturating at the maximum representable
    /// timestamp.
    pub fn saturating_add(self, duration: Duration) -> Timestamp {
        Timestamp { micros: self.micros.saturating_add(duration.micros) }
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{:06}s", self.micros / 1_000_000, self.micros % 1_000_000)
    }
}

impl Add<Duration> for Timestamp {
    type Output = Timestamp;

    fn add(self, rhs: Duration) -> Timestamp {
        Timestamp { micros: self.micros + rhs.micros }
    }
}

impl AddAssign<Duration> for Timestamp {
    fn add_assign(&mut self, rhs: Duration) {
        self.micros += rhs.micros;
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = Duration;

    /// Elapsed time between two timestamps.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`; use
    /// [`Timestamp::saturating_since`] when ordering is not guaranteed.
    fn sub(self, rhs: Timestamp) -> Duration {
        debug_assert!(self.micros >= rhs.micros, "timestamp subtraction underflow");
        Duration { micros: self.micros.saturating_sub(rhs.micros) }
    }
}

/// A span of time with microsecond resolution.
///
/// A lighter-weight companion to [`std::time::Duration`] that matches the
/// resolution of [`Timestamp`] and supports the float conversions the
/// statistics layers need.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration {
    micros: u64,
}

impl Duration {
    /// The zero-length duration.
    pub const ZERO: Duration = Duration { micros: 0 };

    /// Creates a duration from whole microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        Duration { micros }
    }

    /// Creates a duration from whole milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        Duration { micros: millis * 1_000 }
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        Duration { micros: secs * 1_000_000 }
    }

    /// Creates a duration from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration seconds must be finite and non-negative"
        );
        Duration { micros: (secs * 1e6).round() as u64 }
    }

    /// Whole microseconds in this duration.
    pub const fn as_micros(self) -> u64 {
        self.micros
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.micros as f64 / 1e6
    }

    /// Whether this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.micros == 0
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl Add<Duration> for Duration {
    type Output = Duration;

    fn add(self, rhs: Duration) -> Duration {
        Duration { micros: self.micros + rhs.micros }
    }
}

impl std::iter::Sum for Duration {
    fn sum<I: Iterator<Item = Duration>>(iter: I) -> Duration {
        iter.fold(Duration::ZERO, Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_fractional_seconds() {
        let ts = Timestamp::from_secs_f64(12.345678);
        assert_eq!(ts.as_micros(), 12_345_678);
        assert!((ts.as_secs_f64() - 12.345678).abs() < 1e-9);
    }

    #[test]
    fn split_matches_pcap_layout() {
        let ts = Timestamp::from_micros(3_000_042);
        assert_eq!(ts.split(), (3, 42));
    }

    #[test]
    fn arithmetic_is_consistent() {
        let t0 = Timestamp::from_micros(500);
        let t1 = t0 + Duration::from_micros(250);
        assert_eq!(t1 - t0, Duration::from_micros(250));
        assert_eq!(t0.saturating_since(t1), Duration::ZERO);
    }

    #[test]
    fn ordering_follows_time() {
        assert!(Timestamp::from_secs(1) < Timestamp::from_secs(2));
        assert!(Duration::from_millis(1) < Duration::from_secs(1));
    }

    #[test]
    fn display_formats_are_readable() {
        assert_eq!(Timestamp::from_micros(1_500_000).to_string(), "1.500000s");
        assert_eq!(Duration::from_millis(1500).to_string(), "1.500000s");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_seconds_panic() {
        let _ = Timestamp::from_secs_f64(-1.0);
    }

    #[test]
    fn duration_sum() {
        let total: Duration =
            [Duration::from_secs(1), Duration::from_millis(500)].into_iter().sum();
        assert_eq!(total, Duration::from_millis(1500));
    }
}
