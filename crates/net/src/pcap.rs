//! Classic libpcap capture-file reading and writing.
//!
//! Supports the original `pcap` container (not pcapng): both byte orders,
//! microsecond (`0xa1b2c3d4`) and nanosecond (`0xa1b23c4d`) timestamp
//! resolution, Ethernet link type only. This is the format every dataset in
//! the paper ships in (when pcaps are available at all — see Table III).
//!
//! # Examples
//!
//! ```
//! use idsbench_net::pcap::{PcapReader, PcapWriter};
//! use idsbench_net::{Packet, Timestamp};
//! use std::io::Cursor;
//!
//! # fn main() -> Result<(), idsbench_net::NetError> {
//! let mut buf = Vec::new();
//! let mut writer = PcapWriter::new(&mut buf)?;
//! writer.write_packet(&Packet::new(Timestamp::from_secs(1), vec![0u8; 60]))?;
//! writer.flush()?;
//!
//! let mut reader = PcapReader::new(Cursor::new(buf))?;
//! let packet = reader.next_packet()?.expect("one packet");
//! assert_eq!(packet.ts, Timestamp::from_secs(1));
//! assert_eq!(packet.wire_len(), 60);
//! # Ok(())
//! # }
//! ```

use std::io::{self, Read, Write};

use bytes::Bytes;

use crate::packet::Packet;
use crate::time::Timestamp;
use crate::{NetError, Result};

const MAGIC_MICROS: u32 = 0xa1b2_c3d4;
const MAGIC_NANOS: u32 = 0xa1b2_3c4d;
const MAGIC_MICROS_SWAPPED: u32 = 0xd4c3_b2a1;
const MAGIC_NANOS_SWAPPED: u32 = 0x4d3c_b2a1;
const LINKTYPE_ETHERNET: u32 = 1;
/// The standard maximum capture length written into the global header.
const DEFAULT_SNAPLEN: u32 = 65_535;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Endianness {
    Native,
    Swapped,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Resolution {
    Micros,
    Nanos,
}

/// Streaming reader for classic pcap files.
///
/// Wraps any [`Read`] source. Note that a `&mut R` is itself a reader, so a
/// mutable reference can be passed when the caller needs the source back.
#[derive(Debug)]
pub struct PcapReader<R> {
    source: R,
    endianness: Endianness,
    resolution: Resolution,
    snaplen: u32,
    packets_read: u64,
}

impl<R: Read> PcapReader<R> {
    /// Reads and validates the global header.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::BadPcapMagic`] for an unknown magic number,
    /// [`NetError::UnsupportedLinkType`] for non-Ethernet captures, and
    /// [`NetError::Io`] for underlying read failures.
    pub fn new(mut source: R) -> Result<Self> {
        let mut header = [0u8; 24];
        source.read_exact(&mut header)?;
        let magic = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
        let (endianness, resolution) = match magic {
            MAGIC_MICROS => (Endianness::Native, Resolution::Micros),
            MAGIC_NANOS => (Endianness::Native, Resolution::Nanos),
            MAGIC_MICROS_SWAPPED => (Endianness::Swapped, Resolution::Micros),
            MAGIC_NANOS_SWAPPED => (Endianness::Swapped, Resolution::Nanos),
            other => return Err(NetError::BadPcapMagic(other)),
        };
        let read_u32 = |bytes: &[u8]| -> u32 {
            let arr = [bytes[0], bytes[1], bytes[2], bytes[3]];
            match endianness {
                Endianness::Native => u32::from_le_bytes(arr),
                Endianness::Swapped => u32::from_be_bytes(arr),
            }
        };
        let snaplen = read_u32(&header[16..20]);
        let linktype = read_u32(&header[20..24]);
        if linktype != LINKTYPE_ETHERNET {
            return Err(NetError::UnsupportedLinkType(linktype));
        }
        Ok(PcapReader { source, endianness, resolution, snaplen, packets_read: 0 })
    }

    /// The snap length declared in the global header.
    pub fn snaplen(&self) -> u32 {
        self.snaplen
    }

    /// Number of packets returned so far.
    pub fn packets_read(&self) -> u64 {
        self.packets_read
    }

    /// Reads the next packet record, or `Ok(None)` at a clean end of file.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] if the file ends mid-record or the underlying
    /// read fails, and [`NetError::InvalidField`] if a record claims a
    /// capture length beyond the snap length (corrupt file).
    pub fn next_packet(&mut self) -> Result<Option<Packet>> {
        let mut data = Vec::new();
        Ok(self.read_record_into(&mut data)?.map(|ts| Packet { ts, data: Bytes::from(data) }))
    }

    /// [`PcapReader::next_packet`] into a caller-owned buffer: the record's
    /// frame bytes replace `data`'s contents and the capture timestamp is
    /// returned (`Ok(None)` at a clean end of file, with `data` cleared).
    ///
    /// This is the pooled-transport entry point — a feeder drawing buffers
    /// from a `PayloadArena` replays a capture without allocating a
    /// `Vec<u8>` per packet, the way [`PcapReader::next_packet`] must.
    ///
    /// # Errors
    ///
    /// Same as [`PcapReader::next_packet`].
    pub fn read_record_into(&mut self, data: &mut Vec<u8>) -> Result<Option<Timestamp>> {
        data.clear();
        let mut record = [0u8; 16];
        match self.source.read(&mut record[..1])? {
            0 => return Ok(None), // clean EOF
            _ => self.source.read_exact(&mut record[1..])?,
        }
        let read_u32 = |bytes: &[u8]| -> u32 {
            let arr = [bytes[0], bytes[1], bytes[2], bytes[3]];
            match self.endianness {
                Endianness::Native => u32::from_le_bytes(arr),
                Endianness::Swapped => u32::from_be_bytes(arr),
            }
        };
        let ts_secs = read_u32(&record[0..4]);
        let ts_frac = read_u32(&record[4..8]);
        let cap_len = read_u32(&record[8..12]);
        if cap_len > self.snaplen.max(DEFAULT_SNAPLEN) {
            return Err(NetError::invalid(
                "pcap record",
                format!("capture length {cap_len} exceeds snaplen {}", self.snaplen),
            ));
        }
        let micros = match self.resolution {
            Resolution::Micros => u64::from(ts_secs) * 1_000_000 + u64::from(ts_frac),
            Resolution::Nanos => u64::from(ts_secs) * 1_000_000 + u64::from(ts_frac) / 1_000,
        };
        data.resize(cap_len as usize, 0);
        self.source.read_exact(data)?;
        self.packets_read += 1;
        Ok(Some(Timestamp::from_micros(micros)))
    }

    /// Consumes the reader and returns the underlying source.
    pub fn into_inner(self) -> R {
        self.source
    }
}

impl PcapReader<std::io::BufReader<std::fs::File>> {
    /// Opens a capture file for buffered streaming reads.
    ///
    /// The returned reader is lazy: records decode one at a time as
    /// [`PcapReader::next_packet`] (or the iterator) is driven, so captures
    /// larger than memory replay fine.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] when the file cannot be opened and any
    /// [`PcapReader::new`] error for a bad global header.
    pub fn open(path: impl AsRef<std::path::Path>) -> Result<Self> {
        let file = std::fs::File::open(path)?;
        PcapReader::new(std::io::BufReader::new(file))
    }
}

impl<R: Read> Iterator for PcapReader<R> {
    type Item = Result<Packet>;

    fn next(&mut self) -> Option<Self::Item> {
        self.next_packet().transpose()
    }
}

/// Streaming writer for classic pcap files (native byte order, microsecond
/// resolution, Ethernet link type).
///
/// Wraps any [`Write`] sink; a `&mut W` can be passed when the caller needs
/// the sink back afterwards.
#[derive(Debug)]
pub struct PcapWriter<W: Write> {
    sink: W,
    packets_written: u64,
}

impl<W: Write> PcapWriter<W> {
    /// Writes the global header.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] if the header cannot be written.
    pub fn new(mut sink: W) -> Result<Self> {
        let mut header = [0u8; 24];
        header[0..4].copy_from_slice(&MAGIC_MICROS.to_le_bytes());
        header[4..6].copy_from_slice(&2u16.to_le_bytes()); // major
        header[6..8].copy_from_slice(&4u16.to_le_bytes()); // minor
                                                           // thiszone (8..12) and sigfigs (12..16) are zero.
        header[16..20].copy_from_slice(&DEFAULT_SNAPLEN.to_le_bytes());
        header[20..24].copy_from_slice(&LINKTYPE_ETHERNET.to_le_bytes());
        sink.write_all(&header)?;
        Ok(PcapWriter { sink, packets_written: 0 })
    }

    /// Appends one packet record.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] on write failure.
    pub fn write_packet(&mut self, packet: &Packet) -> Result<()> {
        let (secs, micros) = packet.ts.split();
        let len = packet.data.len() as u32;
        let mut record = [0u8; 16];
        record[0..4].copy_from_slice(&secs.to_le_bytes());
        record[4..8].copy_from_slice(&micros.to_le_bytes());
        record[8..12].copy_from_slice(&len.to_le_bytes());
        record[12..16].copy_from_slice(&len.to_le_bytes());
        self.sink.write_all(&record)?;
        self.sink.write_all(&packet.data)?;
        self.packets_written += 1;
        Ok(())
    }

    /// Number of packets written so far.
    pub fn packets_written(&self) -> u64 {
        self.packets_written
    }

    /// Flushes the underlying sink.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] on flush failure.
    pub fn flush(&mut self) -> Result<()> {
        self.sink.flush()?;
        Ok(())
    }

    /// Consumes the writer and returns the underlying sink.
    pub fn into_inner(self) -> W {
        self.sink
    }
}

/// Reads every packet from a pcap byte slice.
///
/// Convenience wrapper used heavily in tests and examples.
///
/// # Errors
///
/// Propagates any header or record error from [`PcapReader`].
pub fn read_all(data: &[u8]) -> Result<Vec<Packet>> {
    let reader = PcapReader::new(io::Cursor::new(data))?;
    reader.collect()
}

/// Writes all `packets` into an in-memory pcap image.
///
/// # Errors
///
/// Propagates any error from [`PcapWriter`]; with an in-memory sink this can
/// only be an allocation failure surfaced through `io`.
pub fn write_all<'a>(packets: impl IntoIterator<Item = &'a Packet>) -> Result<Vec<u8>> {
    let mut buf = Vec::new();
    let mut writer = PcapWriter::new(&mut buf)?;
    for packet in packets {
        writer.write_packet(packet)?;
    }
    writer.flush()?;
    Ok(buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_packets() -> Vec<Packet> {
        (0..5)
            .map(|i| {
                Packet::new(
                    Timestamp::from_micros(1_000_000 + i * 250_000),
                    vec![i as u8; 60 + i as usize],
                )
            })
            .collect()
    }

    #[test]
    fn write_read_round_trip() {
        let packets = sample_packets();
        let image = write_all(&packets).unwrap();
        let restored = read_all(&image).unwrap();
        assert_eq!(restored, packets);
    }

    #[test]
    fn rejects_bad_magic() {
        let image = [0u8; 24];
        assert!(matches!(read_all(&image), Err(NetError::BadPcapMagic(0))));
    }

    #[test]
    fn rejects_non_ethernet_linktype() {
        let mut image = write_all(&[]).unwrap();
        image[20..24].copy_from_slice(&101u32.to_le_bytes()); // LINKTYPE_RAW
        assert!(matches!(read_all(&image), Err(NetError::UnsupportedLinkType(101))));
    }

    #[test]
    fn truncated_record_is_io_error() {
        let packets = sample_packets();
        let image = write_all(&packets).unwrap();
        let cut = &image[..image.len() - 10];
        assert!(matches!(read_all(cut), Err(NetError::Io(_))));
    }

    #[test]
    fn reads_swapped_byte_order() {
        // Hand-build a big-endian file with one 4-byte packet.
        let mut image = Vec::new();
        image.extend_from_slice(&MAGIC_MICROS.to_be_bytes());
        image.extend_from_slice(&2u16.to_be_bytes());
        image.extend_from_slice(&4u16.to_be_bytes());
        image.extend_from_slice(&0u32.to_be_bytes());
        image.extend_from_slice(&0u32.to_be_bytes());
        image.extend_from_slice(&DEFAULT_SNAPLEN.to_be_bytes());
        image.extend_from_slice(&LINKTYPE_ETHERNET.to_be_bytes());
        image.extend_from_slice(&7u32.to_be_bytes()); // secs
        image.extend_from_slice(&9u32.to_be_bytes()); // micros
        image.extend_from_slice(&4u32.to_be_bytes()); // cap len
        image.extend_from_slice(&4u32.to_be_bytes()); // orig len
        image.extend_from_slice(&[1, 2, 3, 4]);
        let packets = read_all(&image).unwrap();
        assert_eq!(packets.len(), 1);
        assert_eq!(packets[0].ts, Timestamp::from_micros(7_000_009));
        assert_eq!(&packets[0].data[..], &[1, 2, 3, 4]);
    }

    #[test]
    fn reads_nanosecond_resolution() {
        let mut image = Vec::new();
        image.extend_from_slice(&MAGIC_NANOS.to_le_bytes());
        image.extend_from_slice(&2u16.to_le_bytes());
        image.extend_from_slice(&4u16.to_le_bytes());
        image.extend_from_slice(&0u32.to_le_bytes());
        image.extend_from_slice(&0u32.to_le_bytes());
        image.extend_from_slice(&DEFAULT_SNAPLEN.to_le_bytes());
        image.extend_from_slice(&LINKTYPE_ETHERNET.to_le_bytes());
        image.extend_from_slice(&1u32.to_le_bytes()); // secs
        image.extend_from_slice(&500_000_000u32.to_le_bytes()); // nanos
        image.extend_from_slice(&2u32.to_le_bytes());
        image.extend_from_slice(&2u32.to_le_bytes());
        image.extend_from_slice(&[0xaa, 0xbb]);
        let packets = read_all(&image).unwrap();
        assert_eq!(packets[0].ts, Timestamp::from_micros(1_500_000));
    }

    #[test]
    fn empty_capture_yields_no_packets() {
        let image = write_all(&[]).unwrap();
        assert!(read_all(&image).unwrap().is_empty());
    }

    #[test]
    fn iterator_interface_counts() {
        let packets = sample_packets();
        let image = write_all(&packets).unwrap();
        let mut reader = PcapReader::new(io::Cursor::new(&image[..])).unwrap();
        let mut count = 0;
        for item in &mut reader {
            item.unwrap();
            count += 1;
        }
        assert_eq!(count, 5);
        assert_eq!(reader.packets_read(), 5);
    }
}
