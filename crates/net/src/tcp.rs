use std::fmt;
use std::ops::{BitOr, BitOrAssign};

use crate::{NetError, Result};

/// Minimum length of a TCP header (no options) in bytes.
pub const TCP_MIN_HEADER_LEN: usize = 20;

/// TCP control flags as a typed bit set.
///
/// # Examples
///
/// ```
/// use idsbench_net::TcpFlags;
///
/// let synack = TcpFlags::SYN | TcpFlags::ACK;
/// assert!(synack.contains(TcpFlags::SYN));
/// assert!(!synack.contains(TcpFlags::FIN));
/// assert_eq!(synack.to_string(), "SA");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TcpFlags(u8);

impl TcpFlags {
    /// No flags set.
    pub const EMPTY: TcpFlags = TcpFlags(0);
    /// FIN: sender is finished.
    pub const FIN: TcpFlags = TcpFlags(0x01);
    /// SYN: synchronize sequence numbers.
    pub const SYN: TcpFlags = TcpFlags(0x02);
    /// RST: reset the connection.
    pub const RST: TcpFlags = TcpFlags(0x04);
    /// PSH: push buffered data.
    pub const PSH: TcpFlags = TcpFlags(0x08);
    /// ACK: acknowledgment field is significant.
    pub const ACK: TcpFlags = TcpFlags(0x10);
    /// URG: urgent pointer is significant.
    pub const URG: TcpFlags = TcpFlags(0x20);
    /// ECE: ECN echo.
    pub const ECE: TcpFlags = TcpFlags(0x40);
    /// CWR: congestion window reduced.
    pub const CWR: TcpFlags = TcpFlags(0x80);

    /// Builds a flag set from the raw header byte.
    pub const fn from_bits(bits: u8) -> Self {
        TcpFlags(bits)
    }

    /// The raw header byte.
    pub const fn bits(self) -> u8 {
        self.0
    }

    /// Whether every flag in `other` is also set in `self`.
    pub const fn contains(self, other: TcpFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Whether any flag in `other` is set in `self`.
    pub const fn intersects(self, other: TcpFlags) -> bool {
        self.0 & other.0 != 0
    }

    /// Whether no flags are set.
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }
}

impl BitOr for TcpFlags {
    type Output = TcpFlags;

    fn bitor(self, rhs: TcpFlags) -> TcpFlags {
        TcpFlags(self.0 | rhs.0)
    }
}

impl BitOrAssign for TcpFlags {
    fn bitor_assign(&mut self, rhs: TcpFlags) {
        self.0 |= rhs.0;
    }
}

impl fmt::Display for TcpFlags {
    /// Renders in tcpdump's compact notation (`S`, `SA`, `FPA`, ...), with
    /// `.` for the empty set.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, ".");
        }
        const NAMES: [(TcpFlags, char); 8] = [
            (TcpFlags::FIN, 'F'),
            (TcpFlags::SYN, 'S'),
            (TcpFlags::RST, 'R'),
            (TcpFlags::PSH, 'P'),
            (TcpFlags::ACK, 'A'),
            (TcpFlags::URG, 'U'),
            (TcpFlags::ECE, 'E'),
            (TcpFlags::CWR, 'C'),
        ];
        for (flag, ch) in NAMES {
            if self.contains(flag) {
                write!(f, "{ch}")?;
            }
        }
        Ok(())
    }
}

/// A TCP segment header.
///
/// Options are supported on parse (skipped, reflected in `header_len`) and
/// never emitted by [`TcpHeader::to_bytes`]. The checksum field is carried
/// verbatim on parse; [`crate::PacketBuilder`] fills it in on build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TcpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgment number.
    pub ack: u32,
    /// Control flags.
    pub flags: TcpFlags,
    /// Receive window.
    pub window: u16,
    /// Checksum as seen on the wire (zero before the builder fills it in).
    pub checksum: u16,
    /// Urgent pointer.
    pub urgent: u16,
    /// Header length in bytes (20 when no options are present).
    pub header_len: u8,
}

impl TcpHeader {
    /// Creates an option-less header with a zero checksum.
    pub fn new(src_port: u16, dst_port: u16, flags: TcpFlags) -> Self {
        TcpHeader {
            src_port,
            dst_port,
            seq: 0,
            ack: 0,
            flags,
            window: 64_240,
            checksum: 0,
            urgent: 0,
            header_len: TCP_MIN_HEADER_LEN as u8,
        }
    }

    /// Parses a header from the front of `data`.
    ///
    /// Returns the header and the number of bytes consumed (including
    /// options).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Truncated`] for short input and
    /// [`NetError::InvalidField`] when the data-offset field is below the
    /// legal minimum.
    pub fn parse(data: &[u8]) -> Result<(Self, usize)> {
        if data.len() < TCP_MIN_HEADER_LEN {
            return Err(NetError::truncated("tcp header", TCP_MIN_HEADER_LEN, data.len()));
        }
        let data_offset = (data[12] >> 4) as usize * 4;
        if data_offset < TCP_MIN_HEADER_LEN {
            return Err(NetError::invalid("tcp header", format!("data offset {data_offset} < 20")));
        }
        if data.len() < data_offset {
            return Err(NetError::truncated("tcp options", data_offset, data.len()));
        }
        Ok((
            TcpHeader {
                src_port: u16::from_be_bytes([data[0], data[1]]),
                dst_port: u16::from_be_bytes([data[2], data[3]]),
                seq: u32::from_be_bytes([data[4], data[5], data[6], data[7]]),
                ack: u32::from_be_bytes([data[8], data[9], data[10], data[11]]),
                flags: TcpFlags::from_bits(data[13]),
                window: u16::from_be_bytes([data[14], data[15]]),
                checksum: u16::from_be_bytes([data[16], data[17]]),
                urgent: u16::from_be_bytes([data[18], data[19]]),
                header_len: data_offset as u8,
            },
            data_offset,
        ))
    }

    /// Serializes to the 20-byte option-less wire form.
    ///
    /// The stored `checksum` is written verbatim; use
    /// [`crate::pseudo_header_checksum`] to compute a real one.
    pub fn to_bytes(&self) -> [u8; TCP_MIN_HEADER_LEN] {
        let mut out = [0u8; TCP_MIN_HEADER_LEN];
        out[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        out[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        out[4..8].copy_from_slice(&self.seq.to_be_bytes());
        out[8..12].copy_from_slice(&self.ack.to_be_bytes());
        out[12] = 5 << 4; // data offset 5 words
        out[13] = self.flags.bits();
        out[14..16].copy_from_slice(&self.window.to_be_bytes());
        out[16..18].copy_from_slice(&self.checksum.to_be_bytes());
        out[18..20].copy_from_slice(&self.urgent.to_be_bytes());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TcpHeader {
        let mut header = TcpHeader::new(443, 51234, TcpFlags::PSH | TcpFlags::ACK);
        header.seq = 0x0102_0304;
        header.ack = 0xa0b0_c0d0;
        header.window = 1024;
        header
    }

    #[test]
    fn round_trip() {
        let header = sample();
        let (parsed, consumed) = TcpHeader::parse(&header.to_bytes()).unwrap();
        assert_eq!(consumed, TCP_MIN_HEADER_LEN);
        assert_eq!(parsed, header);
    }

    #[test]
    fn parses_options_length() {
        let mut bytes = vec![0u8; 32];
        bytes[12] = 8 << 4; // 8 words = 32 bytes
        let (header, consumed) = TcpHeader::parse(&bytes).unwrap();
        assert_eq!(consumed, 32);
        assert_eq!(header.header_len, 32);
    }

    #[test]
    fn rejects_bad_data_offset() {
        let mut bytes = sample().to_bytes();
        bytes[12] = 2 << 4;
        assert!(matches!(TcpHeader::parse(&bytes), Err(NetError::InvalidField { .. })));
    }

    #[test]
    fn rejects_truncated_options() {
        let mut bytes = sample().to_bytes().to_vec();
        bytes[12] = 10 << 4; // claims 40 bytes, only 20 present
        assert!(matches!(TcpHeader::parse(&bytes), Err(NetError::Truncated { .. })));
    }

    #[test]
    fn flag_set_operations() {
        let mut flags = TcpFlags::SYN;
        flags |= TcpFlags::ECE;
        assert!(flags.intersects(TcpFlags::SYN | TcpFlags::FIN));
        assert!(!flags.contains(TcpFlags::SYN | TcpFlags::FIN));
        assert_eq!(flags.bits(), 0x42);
    }

    #[test]
    fn flag_display() {
        assert_eq!(TcpFlags::EMPTY.to_string(), ".");
        assert_eq!((TcpFlags::FIN | TcpFlags::PSH | TcpFlags::ACK).to_string(), "FPA");
    }
}
