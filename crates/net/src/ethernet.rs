use crate::{MacAddr, NetError, Result};

/// Length of an Ethernet II header in bytes.
pub const ETHERNET_HEADER_LEN: usize = 14;

/// The EtherType field of an Ethernet II frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum EtherType {
    /// IPv4 (`0x0800`).
    Ipv4,
    /// ARP (`0x0806`).
    Arp,
    /// IPv6 (`0x86dd`).
    Ipv6,
    /// Any other EtherType, carried verbatim.
    Other(u16),
}

impl EtherType {
    /// The on-wire 16-bit value.
    pub const fn as_u16(self) -> u16 {
        match self {
            EtherType::Ipv4 => 0x0800,
            EtherType::Arp => 0x0806,
            EtherType::Ipv6 => 0x86dd,
            EtherType::Other(v) => v,
        }
    }
}

impl From<u16> for EtherType {
    fn from(v: u16) -> Self {
        match v {
            0x0800 => EtherType::Ipv4,
            0x0806 => EtherType::Arp,
            0x86dd => EtherType::Ipv6,
            other => EtherType::Other(other),
        }
    }
}

/// An Ethernet II frame header.
///
/// # Examples
///
/// ```
/// use idsbench_net::{EthernetHeader, EtherType, MacAddr};
///
/// let header = EthernetHeader {
///     dst: MacAddr::BROADCAST,
///     src: MacAddr::from_host_id(7),
///     ethertype: EtherType::Ipv4,
/// };
/// let bytes = header.to_bytes();
/// let (parsed, consumed) = EthernetHeader::parse(&bytes).unwrap();
/// assert_eq!(parsed, header);
/// assert_eq!(consumed, idsbench_net::ETHERNET_HEADER_LEN);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EthernetHeader {
    /// Destination MAC address.
    pub dst: MacAddr,
    /// Source MAC address.
    pub src: MacAddr,
    /// Payload protocol.
    pub ethertype: EtherType,
}

impl EthernetHeader {
    /// Parses a header from the front of `data`.
    ///
    /// Returns the header and the number of bytes consumed.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Truncated`] if `data` is shorter than
    /// [`ETHERNET_HEADER_LEN`].
    pub fn parse(data: &[u8]) -> Result<(Self, usize)> {
        if data.len() < ETHERNET_HEADER_LEN {
            return Err(NetError::truncated("ethernet header", ETHERNET_HEADER_LEN, data.len()));
        }
        let mut dst = [0u8; 6];
        let mut src = [0u8; 6];
        dst.copy_from_slice(&data[0..6]);
        src.copy_from_slice(&data[6..12]);
        let ethertype = EtherType::from(u16::from_be_bytes([data[12], data[13]]));
        Ok((
            EthernetHeader { dst: MacAddr::new(dst), src: MacAddr::new(src), ethertype },
            ETHERNET_HEADER_LEN,
        ))
    }

    /// Serializes the header to its 14-byte wire form.
    pub fn to_bytes(&self) -> [u8; ETHERNET_HEADER_LEN] {
        let mut out = [0u8; ETHERNET_HEADER_LEN];
        out[0..6].copy_from_slice(&self.dst.octets());
        out[6..12].copy_from_slice(&self.src.octets());
        out[12..14].copy_from_slice(&self.ethertype.as_u16().to_be_bytes());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_rejects_short_input() {
        let err = EthernetHeader::parse(&[0u8; 13]).unwrap_err();
        assert!(matches!(err, NetError::Truncated { needed: 14, got: 13, .. }));
    }

    #[test]
    fn unknown_ethertype_is_preserved() {
        let et = EtherType::from(0x88cc); // LLDP
        assert_eq!(et, EtherType::Other(0x88cc));
        assert_eq!(et.as_u16(), 0x88cc);
    }

    #[test]
    fn known_ethertypes_round_trip() {
        for et in [EtherType::Ipv4, EtherType::Arp, EtherType::Ipv6] {
            assert_eq!(EtherType::from(et.as_u16()), et);
        }
    }

    #[test]
    fn serialization_layout() {
        let header = EthernetHeader {
            dst: MacAddr::new([1, 2, 3, 4, 5, 6]),
            src: MacAddr::new([7, 8, 9, 10, 11, 12]),
            ethertype: EtherType::Ipv6,
        };
        let bytes = header.to_bytes();
        assert_eq!(&bytes[0..6], &[1, 2, 3, 4, 5, 6]);
        assert_eq!(&bytes[6..12], &[7, 8, 9, 10, 11, 12]);
        assert_eq!(&bytes[12..14], &[0x86, 0xdd]);
    }
}
