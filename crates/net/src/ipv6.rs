use std::net::Ipv6Addr;

use crate::ipv4::IpProtocol;
use crate::{NetError, Result};

/// Length of the fixed IPv6 header in bytes.
pub const IPV6_HEADER_LEN: usize = 40;

/// The fixed IPv6 header.
///
/// Extension headers are not interpreted; `next_header` reports whatever
/// immediately follows the fixed header. The synthetic scenarios in
/// `idsbench-datasets` emit plain TCP/UDP-over-IPv6 only, matching the IPv6
/// share observed in the evaluated datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ipv6Header {
    /// Traffic class byte.
    pub traffic_class: u8,
    /// 20-bit flow label.
    pub flow_label: u32,
    /// Payload length in bytes (everything after the fixed header).
    pub payload_len: u16,
    /// Protocol of the next header.
    pub next_header: IpProtocol,
    /// Hop limit.
    pub hop_limit: u8,
    /// Source address.
    pub src: Ipv6Addr,
    /// Destination address.
    pub dst: Ipv6Addr,
}

impl Ipv6Header {
    /// Creates a plain header for a payload of `payload_len` bytes.
    pub fn new(src: Ipv6Addr, dst: Ipv6Addr, next_header: IpProtocol, payload_len: usize) -> Self {
        Ipv6Header {
            traffic_class: 0,
            flow_label: 0,
            payload_len: payload_len as u16,
            next_header,
            hop_limit: 64,
            src,
            dst,
        }
    }

    /// Parses a fixed header from the front of `data`.
    ///
    /// Returns the header and the number of bytes consumed.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Truncated`] for short input and
    /// [`NetError::InvalidField`] if the version nibble is not 6.
    pub fn parse(data: &[u8]) -> Result<(Self, usize)> {
        if data.len() < IPV6_HEADER_LEN {
            return Err(NetError::truncated("ipv6 header", IPV6_HEADER_LEN, data.len()));
        }
        let version = data[0] >> 4;
        if version != 6 {
            return Err(NetError::invalid("ipv6 header", format!("version {version}, expected 6")));
        }
        let traffic_class = (data[0] << 4) | (data[1] >> 4);
        let flow_label =
            (u32::from(data[1] & 0x0f) << 16) | (u32::from(data[2]) << 8) | u32::from(data[3]);
        let mut src = [0u8; 16];
        let mut dst = [0u8; 16];
        src.copy_from_slice(&data[8..24]);
        dst.copy_from_slice(&data[24..40]);
        Ok((
            Ipv6Header {
                traffic_class,
                flow_label,
                payload_len: u16::from_be_bytes([data[4], data[5]]),
                next_header: IpProtocol::from(data[6]),
                hop_limit: data[7],
                src: Ipv6Addr::from(src),
                dst: Ipv6Addr::from(dst),
            },
            IPV6_HEADER_LEN,
        ))
    }

    /// Serializes the fixed header to its 40-byte wire form.
    pub fn to_bytes(&self) -> [u8; IPV6_HEADER_LEN] {
        let mut out = [0u8; IPV6_HEADER_LEN];
        out[0] = 0x60 | (self.traffic_class >> 4);
        out[1] = (self.traffic_class << 4) | ((self.flow_label >> 16) as u8 & 0x0f);
        out[2] = (self.flow_label >> 8) as u8;
        out[3] = self.flow_label as u8;
        out[4..6].copy_from_slice(&self.payload_len.to_be_bytes());
        out[6] = self.next_header.as_u8();
        out[7] = self.hop_limit;
        out[8..24].copy_from_slice(&self.src.octets());
        out[24..40].copy_from_slice(&self.dst.octets());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Ipv6Header {
        let mut header = Ipv6Header::new(
            Ipv6Addr::new(0xfd00, 0, 0, 0, 0, 0, 0, 1),
            Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, 2),
            IpProtocol::Udp,
            64,
        );
        header.traffic_class = 0xa5;
        header.flow_label = 0xfffff;
        header
    }

    #[test]
    fn round_trip() {
        let header = sample();
        let (parsed, consumed) = Ipv6Header::parse(&header.to_bytes()).unwrap();
        assert_eq!(consumed, IPV6_HEADER_LEN);
        assert_eq!(parsed, header);
    }

    #[test]
    fn rejects_wrong_version() {
        let mut bytes = sample().to_bytes();
        bytes[0] = 0x45;
        assert!(matches!(Ipv6Header::parse(&bytes), Err(NetError::InvalidField { .. })));
    }

    #[test]
    fn rejects_short_input() {
        assert!(matches!(Ipv6Header::parse(&[0x60; 39]), Err(NetError::Truncated { .. })));
    }

    #[test]
    fn flow_label_is_20_bits() {
        let bytes = sample().to_bytes();
        let (parsed, _) = Ipv6Header::parse(&bytes).unwrap();
        assert_eq!(parsed.flow_label, 0xfffff);
        assert_eq!(parsed.traffic_class, 0xa5);
    }
}
