use std::net::Ipv4Addr;

use crate::checksum::internet_checksum;
use crate::{NetError, Result};

/// Minimum length of an IPv4 header (no options) in bytes.
pub const IPV4_MIN_HEADER_LEN: usize = 20;

/// An IP protocol number, as carried in the IPv4 `protocol` field and the
/// IPv6 `next header` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[non_exhaustive]
pub enum IpProtocol {
    /// ICMP (1).
    Icmp,
    /// TCP (6).
    Tcp,
    /// UDP (17).
    Udp,
    /// Any other protocol number.
    Other(u8),
}

impl IpProtocol {
    /// The on-wire protocol number.
    pub const fn as_u8(self) -> u8 {
        match self {
            IpProtocol::Icmp => 1,
            IpProtocol::Tcp => 6,
            IpProtocol::Udp => 17,
            IpProtocol::Other(v) => v,
        }
    }
}

impl From<u8> for IpProtocol {
    fn from(v: u8) -> Self {
        match v {
            1 => IpProtocol::Icmp,
            6 => IpProtocol::Tcp,
            17 => IpProtocol::Udp,
            other => IpProtocol::Other(other),
        }
    }
}

impl std::fmt::Display for IpProtocol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IpProtocol::Icmp => write!(f, "icmp"),
            IpProtocol::Tcp => write!(f, "tcp"),
            IpProtocol::Udp => write!(f, "udp"),
            IpProtocol::Other(v) => write!(f, "proto-{v}"),
        }
    }
}

/// An IPv4 header.
///
/// Options are supported on parse (skipped and accounted for in the reported
/// header length) but never emitted by [`Ipv4Header::to_bytes`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ipv4Header {
    /// Differentiated services / TOS byte.
    pub dscp_ecn: u8,
    /// Total length of the datagram (header + payload) in bytes.
    pub total_len: u16,
    /// Datagram identification (used for fragment reassembly).
    pub identification: u16,
    /// Don't-fragment flag.
    pub dont_fragment: bool,
    /// More-fragments flag.
    pub more_fragments: bool,
    /// Fragment offset in 8-byte units.
    pub fragment_offset: u16,
    /// Time to live.
    pub ttl: u8,
    /// Payload protocol.
    pub protocol: IpProtocol,
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Header length in bytes (20 when no options are present).
    pub header_len: u8,
}

impl Ipv4Header {
    /// Creates a plain header (no options, no fragmentation) for a payload of
    /// `payload_len` bytes.
    pub fn new(src: Ipv4Addr, dst: Ipv4Addr, protocol: IpProtocol, payload_len: usize) -> Self {
        Ipv4Header {
            dscp_ecn: 0,
            total_len: (IPV4_MIN_HEADER_LEN + payload_len) as u16,
            identification: 0,
            dont_fragment: true,
            more_fragments: false,
            fragment_offset: 0,
            ttl: 64,
            protocol,
            src,
            dst,
            header_len: IPV4_MIN_HEADER_LEN as u8,
        }
    }

    /// Parses a header from the front of `data`.
    ///
    /// Returns the header and the number of bytes consumed (the header length
    /// including any options).
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Truncated`] if `data` is shorter than the declared
    /// header length and [`NetError::InvalidField`] if the version or IHL
    /// fields are malformed.
    pub fn parse(data: &[u8]) -> Result<(Self, usize)> {
        if data.len() < IPV4_MIN_HEADER_LEN {
            return Err(NetError::truncated("ipv4 header", IPV4_MIN_HEADER_LEN, data.len()));
        }
        let version = data[0] >> 4;
        if version != 4 {
            return Err(NetError::invalid("ipv4 header", format!("version {version}, expected 4")));
        }
        let ihl = (data[0] & 0x0f) as usize * 4;
        if ihl < IPV4_MIN_HEADER_LEN {
            return Err(NetError::invalid("ipv4 header", format!("ihl {ihl} < 20 bytes")));
        }
        if data.len() < ihl {
            return Err(NetError::truncated("ipv4 options", ihl, data.len()));
        }
        let flags = data[6] >> 5;
        let fragment_offset = u16::from_be_bytes([data[6] & 0x1f, data[7]]);
        Ok((
            Ipv4Header {
                dscp_ecn: data[1],
                total_len: u16::from_be_bytes([data[2], data[3]]),
                identification: u16::from_be_bytes([data[4], data[5]]),
                dont_fragment: flags & 0b010 != 0,
                more_fragments: flags & 0b001 != 0,
                fragment_offset,
                ttl: data[8],
                protocol: IpProtocol::from(data[9]),
                src: Ipv4Addr::new(data[12], data[13], data[14], data[15]),
                dst: Ipv4Addr::new(data[16], data[17], data[18], data[19]),
                header_len: ihl as u8,
            },
            ihl,
        ))
    }

    /// Serializes the header to its 20-byte option-less wire form with a
    /// correct header checksum.
    pub fn to_bytes(&self) -> [u8; IPV4_MIN_HEADER_LEN] {
        let mut out = [0u8; IPV4_MIN_HEADER_LEN];
        out[0] = 0x45; // version 4, IHL 5
        out[1] = self.dscp_ecn;
        out[2..4].copy_from_slice(&self.total_len.to_be_bytes());
        out[4..6].copy_from_slice(&self.identification.to_be_bytes());
        let flags = u8::from(self.dont_fragment) << 1 | u8::from(self.more_fragments);
        out[6] = flags << 5 | ((self.fragment_offset >> 8) as u8 & 0x1f);
        out[7] = self.fragment_offset as u8;
        out[8] = self.ttl;
        out[9] = self.protocol.as_u8();
        // checksum at [10..12], zero for now
        out[12..16].copy_from_slice(&self.src.octets());
        out[16..20].copy_from_slice(&self.dst.octets());
        let sum = internet_checksum(&out);
        out[10..12].copy_from_slice(&sum.to_be_bytes());
        out
    }

    /// Whether this datagram is a fragment (either flag or a nonzero offset).
    pub fn is_fragment(&self) -> bool {
        self.more_fragments || self.fragment_offset != 0
    }

    /// Length of the payload in bytes according to `total_len`.
    pub fn payload_len(&self) -> usize {
        (self.total_len as usize).saturating_sub(self.header_len as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Ipv4Header {
        Ipv4Header::new(
            Ipv4Addr::new(192, 168, 0, 1),
            Ipv4Addr::new(10, 1, 2, 3),
            IpProtocol::Tcp,
            100,
        )
    }

    #[test]
    fn round_trip() {
        let header = sample();
        let bytes = header.to_bytes();
        let (parsed, consumed) = Ipv4Header::parse(&bytes).unwrap();
        assert_eq!(consumed, IPV4_MIN_HEADER_LEN);
        assert_eq!(parsed, header);
    }

    #[test]
    fn emitted_checksum_verifies() {
        let bytes = sample().to_bytes();
        assert_eq!(internet_checksum(&bytes), 0);
    }

    #[test]
    fn rejects_wrong_version() {
        let mut bytes = sample().to_bytes();
        bytes[0] = 0x65; // version 6
        assert!(matches!(Ipv4Header::parse(&bytes), Err(NetError::InvalidField { .. })));
    }

    #[test]
    fn rejects_bad_ihl() {
        let mut bytes = sample().to_bytes();
        bytes[0] = 0x43; // IHL 3 -> 12 bytes
        assert!(matches!(Ipv4Header::parse(&bytes), Err(NetError::InvalidField { .. })));
    }

    #[test]
    fn parses_options_length() {
        let mut bytes = vec![0u8; 24];
        bytes[0] = 0x46; // IHL 6 -> 24 bytes
        bytes[2..4].copy_from_slice(&24u16.to_be_bytes());
        bytes[9] = 17;
        let (header, consumed) = Ipv4Header::parse(&bytes).unwrap();
        assert_eq!(consumed, 24);
        assert_eq!(header.header_len, 24);
        assert_eq!(header.payload_len(), 0);
    }

    #[test]
    fn fragment_fields_round_trip() {
        let mut header = sample();
        header.dont_fragment = false;
        header.more_fragments = true;
        header.fragment_offset = 0x1abc;
        let (parsed, _) = Ipv4Header::parse(&header.to_bytes()).unwrap();
        assert!(parsed.is_fragment());
        assert_eq!(parsed.fragment_offset, 0x1abc);
        assert!(parsed.more_fragments);
        assert!(!parsed.dont_fragment);
    }

    #[test]
    fn protocol_display() {
        assert_eq!(IpProtocol::Tcp.to_string(), "tcp");
        assert_eq!(IpProtocol::Other(89).to_string(), "proto-89");
    }
}
