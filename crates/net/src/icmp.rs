use crate::{NetError, Result};

/// Length of the fixed ICMP header in bytes.
pub const ICMP_HEADER_LEN: usize = 8;

/// ICMP message types used by the evaluation traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum IcmpType {
    /// Echo reply (0).
    EchoReply,
    /// Destination unreachable (3).
    DestinationUnreachable,
    /// Echo request (8).
    EchoRequest,
    /// Time exceeded (11).
    TimeExceeded,
    /// Any other type.
    Other(u8),
}

impl IcmpType {
    /// The on-wire type value.
    pub const fn as_u8(self) -> u8 {
        match self {
            IcmpType::EchoReply => 0,
            IcmpType::DestinationUnreachable => 3,
            IcmpType::EchoRequest => 8,
            IcmpType::TimeExceeded => 11,
            IcmpType::Other(v) => v,
        }
    }
}

impl From<u8> for IcmpType {
    fn from(v: u8) -> Self {
        match v {
            0 => IcmpType::EchoReply,
            3 => IcmpType::DestinationUnreachable,
            8 => IcmpType::EchoRequest,
            11 => IcmpType::TimeExceeded,
            other => IcmpType::Other(other),
        }
    }
}

/// An ICMP message header (type, code, checksum, and the 4-byte "rest of
/// header" field, which for echo messages holds identifier and sequence).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IcmpHeader {
    /// Message type.
    pub icmp_type: IcmpType,
    /// Message code.
    pub code: u8,
    /// Checksum as seen on the wire.
    pub checksum: u16,
    /// Remaining 4 header bytes, interpretation depends on the type.
    pub rest: [u8; 4],
}

impl IcmpHeader {
    /// Creates an echo-request header with the given identifier and sequence
    /// number and a zero checksum.
    pub fn echo_request(identifier: u16, sequence: u16) -> Self {
        let mut rest = [0u8; 4];
        rest[0..2].copy_from_slice(&identifier.to_be_bytes());
        rest[2..4].copy_from_slice(&sequence.to_be_bytes());
        IcmpHeader { icmp_type: IcmpType::EchoRequest, code: 0, checksum: 0, rest }
    }

    /// Parses a header from the front of `data`.
    ///
    /// Returns the header and the number of bytes consumed.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Truncated`] for short input.
    pub fn parse(data: &[u8]) -> Result<(Self, usize)> {
        if data.len() < ICMP_HEADER_LEN {
            return Err(NetError::truncated("icmp header", ICMP_HEADER_LEN, data.len()));
        }
        let mut rest = [0u8; 4];
        rest.copy_from_slice(&data[4..8]);
        Ok((
            IcmpHeader {
                icmp_type: IcmpType::from(data[0]),
                code: data[1],
                checksum: u16::from_be_bytes([data[2], data[3]]),
                rest,
            },
            ICMP_HEADER_LEN,
        ))
    }

    /// Serializes to the 8-byte wire form, writing the stored checksum
    /// verbatim.
    pub fn to_bytes(&self) -> [u8; ICMP_HEADER_LEN] {
        let mut out = [0u8; ICMP_HEADER_LEN];
        out[0] = self.icmp_type.as_u8();
        out[1] = self.code;
        out[2..4].copy_from_slice(&self.checksum.to_be_bytes());
        out[4..8].copy_from_slice(&self.rest);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_round_trip() {
        let header = IcmpHeader::echo_request(0x1234, 7);
        let (parsed, consumed) = IcmpHeader::parse(&header.to_bytes()).unwrap();
        assert_eq!(consumed, ICMP_HEADER_LEN);
        assert_eq!(parsed, header);
        assert_eq!(parsed.icmp_type, IcmpType::EchoRequest);
    }

    #[test]
    fn unknown_type_preserved() {
        assert_eq!(IcmpType::from(42), IcmpType::Other(42));
        assert_eq!(IcmpType::Other(42).as_u8(), 42);
    }

    #[test]
    fn rejects_short_input() {
        assert!(matches!(IcmpHeader::parse(&[0; 7]), Err(NetError::Truncated { .. })));
    }
}
