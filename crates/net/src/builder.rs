use std::net::{Ipv4Addr, Ipv6Addr};

use bytes::{BufMut, BytesMut};

use crate::arp::ArpPacket;
use crate::checksum::pseudo_header_checksum;
use crate::ethernet::{EtherType, EthernetHeader};
use crate::icmp::IcmpHeader;
use crate::ipv4::{IpProtocol, Ipv4Header};
use crate::ipv6::Ipv6Header;
use crate::packet::Packet;
use crate::tcp::{TcpFlags, TcpHeader};
use crate::time::Timestamp;
use crate::udp::UdpHeader;
use crate::{internet_checksum, MacAddr};

#[derive(Debug, Clone)]
enum NetworkPlan {
    None,
    Ipv4 { src: Ipv4Addr, dst: Ipv4Addr, ttl: u8, identification: u16 },
    Ipv6 { src: Ipv6Addr, dst: Ipv6Addr },
    Arp(ArpPacket),
}

#[derive(Debug, Clone)]
enum TransportPlan {
    None,
    Tcp(TcpHeader),
    Udp { src_port: u16, dst_port: u16 },
    Icmp(IcmpHeader),
    Raw(IpProtocol),
}

/// Assembles syntactically valid frames with lengths and checksums computed
/// automatically.
///
/// This is the single construction path used by every synthetic traffic
/// generator, which guarantees that whatever the generators emit survives the
/// same parser the replay pipeline applies to capture files.
///
/// # Examples
///
/// ```
/// use idsbench_net::{MacAddr, PacketBuilder, Timestamp};
/// use std::net::Ipv4Addr;
///
/// let packet = PacketBuilder::new()
///     .ethernet(MacAddr::from_host_id(1), MacAddr::from_host_id(2))
///     .ipv4(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(8, 8, 8, 8))
///     .udp(5353, 53)
///     .payload(b"dns-query")
///     .build(Timestamp::from_secs(42));
/// assert_eq!(packet.ts, Timestamp::from_secs(42));
/// ```
#[derive(Debug, Clone)]
pub struct PacketBuilder {
    src_mac: MacAddr,
    dst_mac: MacAddr,
    network: NetworkPlan,
    transport: TransportPlan,
    payload: Vec<u8>,
}

impl Default for PacketBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl PacketBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        PacketBuilder {
            src_mac: MacAddr::ZERO,
            dst_mac: MacAddr::ZERO,
            network: NetworkPlan::None,
            transport: TransportPlan::None,
            payload: Vec::new(),
        }
    }

    /// Sets the Ethernet source and destination addresses.
    pub fn ethernet(mut self, src: MacAddr, dst: MacAddr) -> Self {
        self.src_mac = src;
        self.dst_mac = dst;
        self
    }

    /// Adds an IPv4 layer with default TTL 64.
    pub fn ipv4(mut self, src: Ipv4Addr, dst: Ipv4Addr) -> Self {
        self.network = NetworkPlan::Ipv4 { src, dst, ttl: 64, identification: 0 };
        self
    }

    /// Adds an IPv4 layer with an explicit TTL (used by scan generators that
    /// mimic OS fingerprints).
    pub fn ipv4_with_ttl(mut self, src: Ipv4Addr, dst: Ipv4Addr, ttl: u8) -> Self {
        self.network = NetworkPlan::Ipv4 { src, dst, ttl, identification: 0 };
        self
    }

    /// Sets the IPv4 identification field (only meaningful after
    /// [`PacketBuilder::ipv4`]).
    pub fn ipv4_identification(mut self, identification: u16) -> Self {
        if let NetworkPlan::Ipv4 { identification: id, .. } = &mut self.network {
            *id = identification;
        }
        self
    }

    /// Adds an IPv6 layer.
    pub fn ipv6(mut self, src: Ipv6Addr, dst: Ipv6Addr) -> Self {
        self.network = NetworkPlan::Ipv6 { src, dst };
        self
    }

    /// Makes this frame an ARP packet (replaces any network/transport plan).
    pub fn arp(mut self, arp: ArpPacket) -> Self {
        self.network = NetworkPlan::Arp(arp);
        self.transport = TransportPlan::None;
        self
    }

    /// Adds a TCP layer with the given ports and flags.
    pub fn tcp(mut self, src_port: u16, dst_port: u16, flags: TcpFlags) -> Self {
        self.transport = TransportPlan::Tcp(TcpHeader::new(src_port, dst_port, flags));
        self
    }

    /// Adds a TCP layer from a fully specified header (sequence numbers,
    /// window, etc.). The checksum field is recomputed on build.
    pub fn tcp_header(mut self, header: TcpHeader) -> Self {
        self.transport = TransportPlan::Tcp(header);
        self
    }

    /// Adds a UDP layer with the given ports.
    pub fn udp(mut self, src_port: u16, dst_port: u16) -> Self {
        self.transport = TransportPlan::Udp { src_port, dst_port };
        self
    }

    /// Adds an ICMP layer.
    pub fn icmp(mut self, header: IcmpHeader) -> Self {
        self.transport = TransportPlan::Icmp(header);
        self
    }

    /// Adds an opaque IP payload under the given protocol number.
    pub fn ip_payload(mut self, protocol: IpProtocol, data: &[u8]) -> Self {
        self.transport = TransportPlan::Raw(protocol);
        self.payload = data.to_vec();
        self
    }

    /// Sets the application payload bytes.
    pub fn payload(mut self, data: &[u8]) -> Self {
        self.payload = data.to_vec();
        self
    }

    /// Sets an all-zero application payload of the given length.
    ///
    /// Generators use this for bulk traffic where only the size matters; the
    /// buffer is shared per-build so large floods stay cheap.
    pub fn payload_len(mut self, len: usize) -> Self {
        self.payload = vec![0u8; len];
        self
    }

    /// Assembles the frame.
    ///
    /// # Panics
    ///
    /// Panics if a transport layer was requested without a network layer, or
    /// if the resulting datagram would exceed the 16-bit IP length field.
    pub fn build(&self, ts: Timestamp) -> Packet {
        let transport_bytes = self.transport_bytes();
        let ip_payload_len = transport_bytes.len() + self.payload.len();
        assert!(ip_payload_len <= usize::from(u16::MAX) - 40, "datagram too large");

        let ethertype = match &self.network {
            NetworkPlan::Ipv4 { .. } => EtherType::Ipv4,
            NetworkPlan::Ipv6 { .. } => EtherType::Ipv6,
            NetworkPlan::Arp(_) => EtherType::Arp,
            NetworkPlan::None => {
                assert!(
                    matches!(self.transport, TransportPlan::None),
                    "transport layer requires a network layer"
                );
                EtherType::Other(0xffff)
            }
        };

        let mut buf = BytesMut::with_capacity(14 + 40 + ip_payload_len);
        let eth = EthernetHeader { dst: self.dst_mac, src: self.src_mac, ethertype };
        buf.put_slice(&eth.to_bytes());

        match &self.network {
            NetworkPlan::Ipv4 { src, dst, ttl, identification } => {
                let mut header = Ipv4Header::new(*src, *dst, self.ip_protocol(), ip_payload_len);
                header.ttl = *ttl;
                header.identification = *identification;
                buf.put_slice(&header.to_bytes());
                let segment = self.checksummed_segment(&transport_bytes, Some((*src, *dst)));
                buf.put_slice(&segment);
            }
            NetworkPlan::Ipv6 { src, dst } => {
                let header = Ipv6Header::new(*src, *dst, self.ip_protocol(), ip_payload_len);
                buf.put_slice(&header.to_bytes());
                // IPv6 checksums use a v6 pseudo-header; the evaluation
                // pipeline never verifies transport checksums over IPv6, so
                // emit the segment with a zero checksum.
                let segment = self.checksummed_segment(&transport_bytes, None);
                buf.put_slice(&segment);
            }
            NetworkPlan::Arp(arp) => {
                buf.put_slice(&arp.to_bytes());
            }
            NetworkPlan::None => {
                buf.put_slice(&self.payload);
            }
        }

        Packet { ts, data: buf.freeze() }
    }

    fn ip_protocol(&self) -> IpProtocol {
        match &self.transport {
            TransportPlan::Tcp(_) => IpProtocol::Tcp,
            TransportPlan::Udp { .. } => IpProtocol::Udp,
            TransportPlan::Icmp(_) => IpProtocol::Icmp,
            TransportPlan::Raw(p) => *p,
            TransportPlan::None => IpProtocol::Other(0xfd),
        }
    }

    fn transport_bytes(&self) -> Vec<u8> {
        match &self.transport {
            TransportPlan::Tcp(h) => h.to_bytes().to_vec(),
            TransportPlan::Udp { src_port, dst_port } => {
                UdpHeader::new(*src_port, *dst_port, self.payload.len()).to_bytes().to_vec()
            }
            TransportPlan::Icmp(h) => h.to_bytes().to_vec(),
            TransportPlan::Raw(_) | TransportPlan::None => Vec::new(),
        }
    }

    /// Concatenates transport header + payload and patches in the checksum.
    fn checksummed_segment(
        &self,
        transport_bytes: &[u8],
        v4_addrs: Option<(Ipv4Addr, Ipv4Addr)>,
    ) -> Vec<u8> {
        let mut segment = Vec::with_capacity(transport_bytes.len() + self.payload.len());
        segment.extend_from_slice(transport_bytes);
        segment.extend_from_slice(&self.payload);
        match (&self.transport, v4_addrs) {
            (TransportPlan::Tcp(_), Some((src, dst))) => {
                segment[16] = 0;
                segment[17] = 0;
                let sum = pseudo_header_checksum(src, dst, 6, &segment);
                segment[16..18].copy_from_slice(&sum.to_be_bytes());
            }
            (TransportPlan::Udp { .. }, Some((src, dst))) => {
                segment[6] = 0;
                segment[7] = 0;
                let sum = pseudo_header_checksum(src, dst, 17, &segment);
                // Per RFC 768 a computed zero is transmitted as 0xffff.
                let sum = if sum == 0 { 0xffff } else { sum };
                segment[6..8].copy_from_slice(&sum.to_be_bytes());
            }
            (TransportPlan::Icmp(_), _) => {
                segment[2] = 0;
                segment[3] = 0;
                let sum = internet_checksum(&segment);
                segment[2..4].copy_from_slice(&sum.to_be_bytes());
            }
            _ => {}
        }
        segment
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{NetworkLayer, ParsedPacket, TransportLayer};

    #[test]
    fn tcp_checksum_verifies() {
        let packet = PacketBuilder::new()
            .ethernet(MacAddr::from_host_id(1), MacAddr::from_host_id(2))
            .ipv4(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2))
            .tcp(5555, 80, TcpFlags::SYN | TcpFlags::ECE)
            .payload(b"hello")
            .build(Timestamp::ZERO);
        // Extract the TCP segment (after 14-byte eth + 20-byte IP).
        let segment = &packet.data[34..];
        let sum = pseudo_header_checksum(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            6,
            segment,
        );
        assert_eq!(sum, 0, "checksummed segment must verify to zero");
    }

    #[test]
    fn udp_checksum_verifies() {
        let packet = PacketBuilder::new()
            .ethernet(MacAddr::from_host_id(1), MacAddr::from_host_id(2))
            .ipv4(Ipv4Addr::new(172, 16, 0, 1), Ipv4Addr::new(172, 16, 0, 2))
            .udp(5353, 53)
            .payload(b"query")
            .build(Timestamp::ZERO);
        let segment = &packet.data[34..];
        let sum = pseudo_header_checksum(
            Ipv4Addr::new(172, 16, 0, 1),
            Ipv4Addr::new(172, 16, 0, 2),
            17,
            segment,
        );
        assert_eq!(sum, 0);
    }

    #[test]
    fn icmp_checksum_verifies() {
        let packet = PacketBuilder::new()
            .ethernet(MacAddr::from_host_id(1), MacAddr::from_host_id(2))
            .ipv4(Ipv4Addr::new(1, 1, 1, 1), Ipv4Addr::new(2, 2, 2, 2))
            .icmp(IcmpHeader::echo_request(7, 1))
            .payload(&[0xab; 32])
            .build(Timestamp::ZERO);
        let segment = &packet.data[34..];
        assert_eq!(internet_checksum(segment), 0);
    }

    #[test]
    fn ipv6_udp_parses() {
        let packet = PacketBuilder::new()
            .ethernet(MacAddr::from_host_id(1), MacAddr::from_host_id(2))
            .ipv6(
                Ipv6Addr::new(0xfd00, 0, 0, 0, 0, 0, 0, 1),
                Ipv6Addr::new(0xfd00, 0, 0, 0, 0, 0, 0, 2),
            )
            .udp(1000, 2000)
            .payload(&[1, 2, 3, 4])
            .build(Timestamp::ZERO);
        let parsed = ParsedPacket::parse(&packet).unwrap();
        assert!(matches!(parsed.network, NetworkLayer::Ipv6(_)));
        assert_eq!(parsed.payload_len, 4);
        assert_eq!(parsed.dst_port(), Some(2000));
    }

    #[test]
    fn arp_builds_and_parses() {
        let arp = ArpPacket::request(
            MacAddr::from_host_id(9),
            Ipv4Addr::new(192, 168, 0, 9),
            Ipv4Addr::new(192, 168, 0, 1),
        );
        let packet = PacketBuilder::new()
            .ethernet(MacAddr::from_host_id(9), MacAddr::BROADCAST)
            .arp(arp)
            .build(Timestamp::ZERO);
        let parsed = ParsedPacket::parse(&packet).unwrap();
        assert_eq!(parsed.network, NetworkLayer::Arp(arp));
    }

    #[test]
    fn total_length_fields_are_consistent() {
        let packet = PacketBuilder::new()
            .ethernet(MacAddr::from_host_id(1), MacAddr::from_host_id(2))
            .ipv4(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2))
            .udp(1, 2)
            .payload(&[0u8; 100])
            .build(Timestamp::ZERO);
        let parsed = ParsedPacket::parse(&packet).unwrap();
        let NetworkLayer::Ipv4(ip) = parsed.network else { panic!("expected ipv4") };
        assert_eq!(ip.total_len as usize, 20 + 8 + 100);
        let Some(TransportLayer::Udp(udp)) = parsed.transport else { panic!("expected udp") };
        assert_eq!(udp.length as usize, 8 + 100);
        assert_eq!(packet.wire_len(), 14 + 20 + 8 + 100);
    }

    #[test]
    #[should_panic(expected = "transport layer requires a network layer")]
    fn transport_without_network_panics() {
        let _ = PacketBuilder::new().tcp(1, 2, TcpFlags::SYN).build(Timestamp::ZERO);
    }

    #[test]
    fn custom_tcp_header_fields_survive() {
        let mut header = TcpHeader::new(1, 2, TcpFlags::ACK);
        header.seq = 1000;
        header.ack = 2000;
        header.window = 333;
        let packet = PacketBuilder::new()
            .ethernet(MacAddr::from_host_id(1), MacAddr::from_host_id(2))
            .ipv4(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2))
            .tcp_header(header)
            .build(Timestamp::ZERO);
        let parsed = ParsedPacket::parse(&packet).unwrap();
        let tcp = parsed.tcp().unwrap();
        assert_eq!(tcp.seq, 1000);
        assert_eq!(tcp.ack, 2000);
        assert_eq!(tcp.window, 333);
    }
}
