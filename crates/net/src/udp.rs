use crate::{NetError, Result};

/// Length of a UDP header in bytes.
pub const UDP_HEADER_LEN: usize = 8;

/// A UDP datagram header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct UdpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Length of header plus payload in bytes.
    pub length: u16,
    /// Checksum as seen on the wire (zero means "not computed" in IPv4).
    pub checksum: u16,
}

impl UdpHeader {
    /// Creates a header for a payload of `payload_len` bytes with a zero
    /// checksum.
    pub fn new(src_port: u16, dst_port: u16, payload_len: usize) -> Self {
        UdpHeader { src_port, dst_port, length: (UDP_HEADER_LEN + payload_len) as u16, checksum: 0 }
    }

    /// Parses a header from the front of `data`.
    ///
    /// Returns the header and the number of bytes consumed.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Truncated`] for short input and
    /// [`NetError::InvalidField`] if the length field is below the header
    /// size.
    pub fn parse(data: &[u8]) -> Result<(Self, usize)> {
        if data.len() < UDP_HEADER_LEN {
            return Err(NetError::truncated("udp header", UDP_HEADER_LEN, data.len()));
        }
        let length = u16::from_be_bytes([data[4], data[5]]);
        if (length as usize) < UDP_HEADER_LEN {
            return Err(NetError::invalid("udp header", format!("length {length} < 8")));
        }
        Ok((
            UdpHeader {
                src_port: u16::from_be_bytes([data[0], data[1]]),
                dst_port: u16::from_be_bytes([data[2], data[3]]),
                length,
                checksum: u16::from_be_bytes([data[6], data[7]]),
            },
            UDP_HEADER_LEN,
        ))
    }

    /// Serializes to the 8-byte wire form, writing the stored checksum
    /// verbatim.
    pub fn to_bytes(&self) -> [u8; UDP_HEADER_LEN] {
        let mut out = [0u8; UDP_HEADER_LEN];
        out[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        out[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        out[4..6].copy_from_slice(&self.length.to_be_bytes());
        out[6..8].copy_from_slice(&self.checksum.to_be_bytes());
        out
    }

    /// Payload length in bytes according to the length field.
    pub fn payload_len(&self) -> usize {
        (self.length as usize).saturating_sub(UDP_HEADER_LEN)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let header = UdpHeader::new(53, 33333, 120);
        let (parsed, consumed) = UdpHeader::parse(&header.to_bytes()).unwrap();
        assert_eq!(consumed, UDP_HEADER_LEN);
        assert_eq!(parsed, header);
        assert_eq!(parsed.payload_len(), 120);
    }

    #[test]
    fn rejects_undersized_length_field() {
        let mut bytes = UdpHeader::new(1, 2, 0).to_bytes();
        bytes[4..6].copy_from_slice(&4u16.to_be_bytes());
        assert!(matches!(UdpHeader::parse(&bytes), Err(NetError::InvalidField { .. })));
    }

    #[test]
    fn rejects_short_input() {
        assert!(matches!(UdpHeader::parse(&[0; 7]), Err(NetError::Truncated { .. })));
    }
}
