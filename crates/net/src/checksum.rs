//! The Internet checksum (RFC 1071) used by IPv4, TCP, UDP, and ICMP.

use std::net::Ipv4Addr;

/// Computes the 16-bit one's-complement Internet checksum of `data`.
///
/// The result is ready to be stored in a header checksum field. Verifying a
/// header checksum is done by summing over the header with its checksum field
/// in place and checking for zero — see the unit tests for the idiom.
///
/// # Examples
///
/// ```
/// use idsbench_net::internet_checksum;
///
/// // From RFC 1071 section 3: the example data 00 01 f2 03 f4 f5 f6 f7.
/// let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
/// assert_eq!(internet_checksum(&data), !0xddf2u16);
/// ```
pub fn internet_checksum(data: &[u8]) -> u16 {
    finish(sum_words(data, 0))
}

/// Computes a TCP/UDP checksum that includes the IPv4 pseudo-header.
///
/// `protocol` is the IP protocol number (6 for TCP, 17 for UDP) and `segment`
/// is the full transport header plus payload with its checksum field zeroed.
pub fn pseudo_header_checksum(src: Ipv4Addr, dst: Ipv4Addr, protocol: u8, segment: &[u8]) -> u16 {
    let mut acc: u32 = 0;
    acc = sum_words(&src.octets(), acc);
    acc = sum_words(&dst.octets(), acc);
    acc += u32::from(protocol);
    acc += segment.len() as u32;
    finish(sum_words(segment, acc))
}

fn sum_words(data: &[u8], mut acc: u32) -> u32 {
    let mut chunks = data.chunks_exact(2);
    for chunk in &mut chunks {
        acc += u32::from(u16::from_be_bytes([chunk[0], chunk[1]]));
    }
    if let [last] = chunks.remainder() {
        acc += u32::from(u16::from_be_bytes([*last, 0]));
    }
    acc
}

fn finish(mut acc: u32) -> u16 {
    while acc >> 16 != 0 {
        acc = (acc & 0xffff) + (acc >> 16);
    }
    !(acc as u16)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Wikipedia's worked IPv4 header checksum example.
    #[test]
    fn ipv4_header_example() {
        let header = [
            0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00, 0x40, 0x11, 0x00, 0x00, 0xc0, 0xa8,
            0x00, 0x01, 0xc0, 0xa8, 0x00, 0xc7,
        ];
        assert_eq!(internet_checksum(&header), 0xb861);
    }

    #[test]
    fn verification_sums_to_zero() {
        let mut header = [
            0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00, 0x40, 0x11, 0x00, 0x00, 0xc0, 0xa8,
            0x00, 0x01, 0xc0, 0xa8, 0x00, 0xc7,
        ];
        let sum = internet_checksum(&header);
        header[10..12].copy_from_slice(&sum.to_be_bytes());
        // A correct header checksums (one's-complement) to zero.
        assert_eq!(internet_checksum(&header), 0);
    }

    #[test]
    fn odd_length_padding() {
        // Padding with a zero byte must not change the sum.
        let odd = [0x01u8, 0x02, 0x03];
        let even = [0x01u8, 0x02, 0x03, 0x00];
        assert_eq!(internet_checksum(&odd), internet_checksum(&even));
    }

    #[test]
    fn empty_data_checksums_to_ffff() {
        assert_eq!(internet_checksum(&[]), 0xffff);
    }

    #[test]
    fn pseudo_header_udp_example() {
        // Hand-checkable tiny UDP datagram: src 1.2.3.4 -> dst 5.6.7.8,
        // ports 1:2, length 9, one payload byte 0xff, checksum field zeroed.
        let segment = [0x00, 0x01, 0x00, 0x02, 0x00, 0x09, 0x00, 0x00, 0xff];
        let sum = pseudo_header_checksum(
            Ipv4Addr::new(1, 2, 3, 4),
            Ipv4Addr::new(5, 6, 7, 8),
            17,
            &segment,
        );
        // Verify by re-summing with the checksum patched in.
        let mut patched = segment;
        patched[6..8].copy_from_slice(&sum.to_be_bytes());
        let verify = pseudo_header_checksum(
            Ipv4Addr::new(1, 2, 3, 4),
            Ipv4Addr::new(5, 6, 7, 8),
            17,
            &patched,
        );
        assert_eq!(verify, 0);
    }
}
