//! Little-endian byte-codec primitives for the multi-node fabric.
//!
//! Every integer travels little-endian and every variable-length field is
//! length-prefixed, so the format has no alignment, no padding, and no
//! ambiguity: a [`WireReader`] either yields exactly the value that was
//! written or reports [`WireError::Truncated`]. Higher layers (flow records,
//! report fragments, the fabric frame codec) compose these primitives; none
//! of them hand-roll byte twiddling of their own.

use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

/// Decode-side failure: the bytes cannot be the output of the encoder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the value it promised.
    Truncated,
    /// A tag or enum discriminant holds a value the protocol never emits.
    BadTag(u8),
    /// A length prefix or count exceeds the protocol's sanity bound.
    Oversize(u64),
    /// A string field is not valid UTF-8.
    BadUtf8,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "wire payload truncated"),
            WireError::BadTag(tag) => write!(f, "unknown wire tag {tag:#04x}"),
            WireError::Oversize(n) => write!(f, "wire length {n} exceeds sanity bound"),
            WireError::BadUtf8 => write!(f, "wire string is not valid UTF-8"),
        }
    }
}

impl std::error::Error for WireError {}

/// Result alias for decoders.
pub type WireResult<T> = std::result::Result<T, WireError>;

/// Appends a `u8`.
#[inline]
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Appends a `u16`, little-endian.
#[inline]
pub fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u32`, little-endian.
#[inline]
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64`, little-endian.
#[inline]
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `f64` as its IEEE-754 bit pattern — decoding is bitwise
/// lossless, which the score-parity guarantees require.
#[inline]
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

/// Appends a `bool` as one byte (0 or 1).
#[inline]
pub fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(u8::from(v));
}

/// Appends a `u32`-length-prefixed byte slice.
#[inline]
pub fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_u32(out, bytes.len() as u32);
    out.extend_from_slice(bytes);
}

/// Appends a `u32`-length-prefixed UTF-8 string.
#[inline]
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_bytes(out, s.as_bytes());
}

/// Appends an IP address: a family tag byte then 4 or 16 address octets.
pub fn put_ip(out: &mut Vec<u8>, ip: IpAddr) {
    match ip {
        IpAddr::V4(v4) => {
            out.push(4);
            out.extend_from_slice(&v4.octets());
        }
        IpAddr::V6(v6) => {
            out.push(6);
            out.extend_from_slice(&v6.octets());
        }
    }
}

/// A checked cursor over an encoded buffer. Every read either returns the
/// decoded value or a [`WireError`]; nothing panics and nothing reads past
/// the end.
#[derive(Debug, Clone)]
pub struct WireReader<'a> {
    buf: &'a [u8],
}

impl<'a> WireReader<'a> {
    /// Wraps a buffer for decoding.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is fully consumed — decoders use this to reject
    /// trailing garbage.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    fn take(&mut self, n: usize) -> WireResult<&'a [u8]> {
        if self.buf.len() < n {
            return Err(WireError::Truncated);
        }
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> WireResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> WireResult<u16> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> WireResult<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> WireResult<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Reads an `f64` from its IEEE-754 bit pattern.
    pub fn f64(&mut self) -> WireResult<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a `bool`; any byte other than 0 or 1 is a [`WireError::BadTag`].
    pub fn bool(&mut self) -> WireResult<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(WireError::BadTag(tag)),
        }
    }

    /// Reads a `u32`-length-prefixed byte slice (borrowed from the buffer).
    pub fn bytes(&mut self) -> WireResult<&'a [u8]> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    /// Reads a `u32`-length-prefixed UTF-8 string.
    pub fn str(&mut self) -> WireResult<&'a str> {
        std::str::from_utf8(self.bytes()?).map_err(|_| WireError::BadUtf8)
    }

    /// Reads an IP address written by [`put_ip`].
    pub fn ip(&mut self) -> WireResult<IpAddr> {
        match self.u8()? {
            4 => {
                let b = self.take(4)?;
                Ok(IpAddr::V4(Ipv4Addr::new(b[0], b[1], b[2], b[3])))
            }
            6 => {
                let b = self.take(16)?;
                let mut octets = [0u8; 16];
                octets.copy_from_slice(b);
                Ok(IpAddr::V6(Ipv6Addr::from(octets)))
            }
            tag => Err(WireError::BadTag(tag)),
        }
    }

    /// Reads a `u32` element count, validated against `max` so a corrupt
    /// length prefix fails cleanly instead of triggering a huge allocation.
    pub fn count(&mut self, max: usize) -> WireResult<usize> {
        let n = self.u32()? as usize;
        if n > max {
            return Err(WireError::Oversize(n as u64));
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 0xAB);
        put_u16(&mut buf, 0xBEEF);
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, u64::MAX - 7);
        put_f64(&mut buf, -0.0);
        put_f64(&mut buf, f64::NAN);
        put_bool(&mut buf, true);
        put_str(&mut buf, "héllo");
        put_ip(&mut buf, IpAddr::V4(Ipv4Addr::new(10, 0, 0, 1)));
        put_ip(&mut buf, IpAddr::V6(Ipv6Addr::LOCALHOST));

        let mut r = WireReader::new(&buf);
        assert_eq!(r.u8().unwrap(), 0xAB);
        assert_eq!(r.u16().unwrap(), 0xBEEF);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 7);
        // Bitwise, not semantic, equality: -0.0 and NaN payloads survive.
        assert_eq!(r.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.f64().unwrap().to_bits(), f64::NAN.to_bits());
        assert!(r.bool().unwrap());
        assert_eq!(r.str().unwrap(), "héllo");
        assert_eq!(r.ip().unwrap(), IpAddr::V4(Ipv4Addr::new(10, 0, 0, 1)));
        assert_eq!(r.ip().unwrap(), IpAddr::V6(Ipv6Addr::LOCALHOST));
        assert!(r.is_empty());
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let mut buf = Vec::new();
        put_str(&mut buf, "hello");
        for cut in 0..buf.len() {
            let mut r = WireReader::new(&buf[..cut]);
            assert!(r.str().is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn bad_tags_are_rejected() {
        let mut r = WireReader::new(&[9, 0, 0, 0, 0]);
        assert_eq!(r.ip().unwrap_err(), WireError::BadTag(9));
        let mut r = WireReader::new(&[2]);
        assert_eq!(r.bool().unwrap_err(), WireError::BadTag(2));
    }

    #[test]
    fn counts_enforce_the_sanity_bound() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 1_000_000);
        let mut r = WireReader::new(&buf);
        assert_eq!(r.count(100).unwrap_err(), WireError::Oversize(1_000_000));
    }
}
