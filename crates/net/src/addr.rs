use std::fmt;
use std::str::FromStr;

use crate::NetError;

/// A 48-bit IEEE 802 MAC address.
///
/// # Examples
///
/// ```
/// use idsbench_net::MacAddr;
///
/// let mac: MacAddr = "02:42:ac:11:00:02".parse().unwrap();
/// assert_eq!(mac.to_string(), "02:42:ac:11:00:02");
/// assert!(mac.is_locally_administered());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct MacAddr([u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    /// The all-zero address `00:00:00:00:00:00`.
    pub const ZERO: MacAddr = MacAddr([0; 6]);

    /// Creates an address from its six octets.
    pub const fn new(octets: [u8; 6]) -> Self {
        MacAddr(octets)
    }

    /// The six octets of the address.
    pub const fn octets(self) -> [u8; 6] {
        self.0
    }

    /// Whether this is the broadcast address.
    pub fn is_broadcast(self) -> bool {
        self == Self::BROADCAST
    }

    /// Whether the multicast (group) bit is set.
    pub const fn is_multicast(self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// Whether the locally-administered bit is set.
    pub const fn is_locally_administered(self) -> bool {
        self.0[0] & 0x02 != 0
    }

    /// Derives a deterministic locally-administered unicast address from an
    /// integer identifier. Useful for synthetic hosts: distinct identifiers
    /// map to distinct addresses.
    pub const fn from_host_id(id: u32) -> Self {
        let b = id.to_be_bytes();
        // 0x02 prefix: locally administered, unicast.
        MacAddr([0x02, 0x1d, b[0], b[1], b[2], b[3]])
    }
}

impl From<[u8; 6]> for MacAddr {
    fn from(octets: [u8; 6]) -> Self {
        MacAddr(octets)
    }
}

impl From<MacAddr> for [u8; 6] {
    fn from(mac: MacAddr) -> Self {
        mac.0
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.0;
        write!(f, "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}", o[0], o[1], o[2], o[3], o[4], o[5])
    }
}

impl FromStr for MacAddr {
    type Err = NetError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut octets = [0u8; 6];
        let mut count = 0;
        for part in s.split(':') {
            if count == 6 {
                return Err(NetError::invalid("mac address", "more than 6 octets"));
            }
            octets[count] = u8::from_str_radix(part, 16)
                .map_err(|_| NetError::invalid("mac address", format!("bad octet {part:?}")))?;
            count += 1;
        }
        if count != 6 {
            return Err(NetError::invalid(
                "mac address",
                format!("expected 6 octets, got {count}"),
            ));
        }
        Ok(MacAddr(octets))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_display_round_trip() {
        let mac: MacAddr = "de:ad:be:ef:00:01".parse().unwrap();
        assert_eq!(mac.octets(), [0xde, 0xad, 0xbe, 0xef, 0x00, 0x01]);
        assert_eq!(mac.to_string(), "de:ad:be:ef:00:01");
    }

    #[test]
    fn rejects_malformed_strings() {
        assert!("de:ad:be:ef:00".parse::<MacAddr>().is_err());
        assert!("de:ad:be:ef:00:01:02".parse::<MacAddr>().is_err());
        assert!("zz:ad:be:ef:00:01".parse::<MacAddr>().is_err());
        assert!("".parse::<MacAddr>().is_err());
    }

    #[test]
    fn broadcast_and_multicast_bits() {
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(MacAddr::BROADCAST.is_multicast());
        assert!(!MacAddr::new([0x02, 0, 0, 0, 0, 1]).is_multicast());
        assert!(MacAddr::new([0x01, 0, 0x5e, 0, 0, 1]).is_multicast());
    }

    #[test]
    fn host_ids_map_to_distinct_unicast_addrs() {
        let a = MacAddr::from_host_id(1);
        let b = MacAddr::from_host_id(2);
        assert_ne!(a, b);
        assert!(!a.is_multicast());
        assert!(a.is_locally_administered());
    }
}
