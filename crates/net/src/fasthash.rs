//! Fast hashing for per-packet state maps.
//!
//! Every packet the data plane scores touches several hash maps: the four
//! AfterImage aggregate maps, the flow table, the flow-label fold, and (for
//! HELAD) the per-channel smoothing history. `std::collections::HashMap`
//! hashes with SipHash-1-3 — a keyed PRF whose DoS resistance this
//! workload does not need (keys are derived from already-parsed header
//! fields, and every map is bounded by an explicit entity budget, not by
//! attacker-controlled growth). This module provides the two pieces that
//! take SipHash off the per-packet path:
//!
//! * [`FxHasher`] / [`FxBuildHasher`] — the multiply-fold hash used by the
//!   Rust compiler itself (`rustc-hash`): one rotate, one xor, one multiply
//!   per word. Usable directly with std collections:
//!   `HashMap::with_hasher(FxBuildHasher)`.
//! * [`FastMap`] — an open-addressing (linear-probe, tombstone) hash map
//!   built on [`FxHasher`] with exactly the API surface the data plane
//!   uses. Probing walks one flat slot array, so the common hit case is a
//!   single cache line instead of SipHash rounds plus bucket indirection.
//!
//! Behavioural parity with `HashMap` (insert/get/remove/iterate under
//! arbitrary key sequences) is pinned by the `proptest_fasthash`
//! integration test.

use std::hash::{BuildHasher, Hash, Hasher};

/// Multiplier from the `rustc-hash` crate (derived from the golden ratio).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// An FxHash-style hasher: one rotate + xor + multiply per 8-byte word.
///
/// Not cryptographic and not DoS-resistant — use only for maps whose keys
/// are not attacker-chosen or whose size is externally bounded (see module
/// docs).
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn fold(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.fold(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.fold(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.fold(u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.fold(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.fold(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.fold(v);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.fold(v as u64);
        self.fold((v >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.fold(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`]; plugs into std collections
/// (`HashMap::with_hasher(FxBuildHasher)`) and backs [`FastMap`].
#[derive(Debug, Default, Clone, Copy)]
pub struct FxBuildHasher;

impl BuildHasher for FxBuildHasher {
    type Hasher = FxHasher;

    #[inline]
    fn build_hasher(&self) -> FxHasher {
        FxHasher::default()
    }
}

/// Hashes one value with [`FxHasher`].
#[inline]
pub fn fx_hash<T: Hash>(value: &T) -> u64 {
    let mut hasher = FxHasher::default();
    value.hash(&mut hasher);
    hasher.finish()
}

/// One slot of the open-addressing table.
#[derive(Debug, Clone)]
enum Slot<K, V> {
    /// Never occupied: probes stop here.
    Empty,
    /// Previously occupied: probes continue, inserts may reuse.
    Tombstone,
    /// Live entry.
    Full(K, V),
}

impl<K, V> Slot<K, V> {
    fn is_full(&self) -> bool {
        matches!(self, Slot::Full(..))
    }
}

/// An open-addressing hash map over [`FxHasher`] (see module docs).
///
/// Drop-in for the `std::collections::HashMap` usage of the per-packet
/// state maps: linear probing over one flat slot array, tombstone
/// deletion, capacity doubling at 7/8 load. Iteration order is
/// unspecified, exactly like `HashMap`.
///
/// # Examples
///
/// ```
/// use idsbench_net::fasthash::FastMap;
///
/// let mut map: FastMap<u32, &str> = FastMap::new();
/// map.insert(1, "one");
/// assert_eq!(map.get(&1), Some(&"one"));
/// *map.entry_or_insert_with(2, || "two") = "TWO";
/// assert_eq!(map.remove(&2), Some("TWO"));
/// assert_eq!(map.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct FastMap<K, V> {
    slots: Vec<Slot<K, V>>,
    /// Live entries.
    len: usize,
    /// Dead slots still blocking probe chains.
    tombstones: usize,
}

impl<K, V> Default for FastMap<K, V> {
    fn default() -> Self {
        FastMap { slots: Vec::new(), len: 0, tombstones: 0 }
    }
}

impl<K: Hash + Eq, V> FastMap<K, V> {
    /// Creates an empty map without allocating.
    pub fn new() -> Self {
        FastMap { slots: Vec::new(), len: 0, tombstones: 0 }
    }

    /// Creates a map presized for `capacity` live entries.
    pub fn with_capacity(capacity: usize) -> Self {
        let mut map = FastMap::new();
        if capacity > 0 {
            map.rebuild((capacity * 8 / 7 + 1).next_power_of_two().max(16));
        }
        map
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map has no live entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Probe start index for a hash.
    #[inline]
    fn index_of(&self, hash: u64) -> usize {
        // Fold the high bits down: linear probing with a power-of-two mask
        // only sees the low bits, and Fx concentrates entropy high.
        ((hash ^ (hash >> 32)) as usize) & (self.slots.len() - 1)
    }

    /// Finds the slot holding `key`, if present.
    #[inline]
    fn find(&self, key: &K) -> Option<usize> {
        if self.slots.is_empty() {
            return None;
        }
        let mut idx = self.index_of(fx_hash(key));
        let mask = self.slots.len() - 1;
        loop {
            match &self.slots[idx] {
                Slot::Empty => return None,
                Slot::Full(k, _) if k == key => return Some(idx),
                _ => idx = (idx + 1) & mask,
            }
        }
    }

    /// Finds the slot to insert `key` into: its current slot if present
    /// (`true`), else the first reusable slot of its probe chain (`false`).
    #[inline]
    fn find_insert(&self, key: &K) -> (usize, bool) {
        let mut idx = self.index_of(fx_hash(key));
        let mask = self.slots.len() - 1;
        let mut reusable: Option<usize> = None;
        loop {
            match &self.slots[idx] {
                Slot::Empty => return (reusable.unwrap_or(idx), false),
                Slot::Tombstone => reusable = reusable.or(Some(idx)),
                Slot::Full(k, _) if k == key => return (idx, true),
                Slot::Full(..) => {}
            }
            idx = (idx + 1) & mask;
        }
    }

    /// Grows (or compacts tombstones) so one more entry always fits under
    /// the 7/8 load ceiling.
    fn reserve_one(&mut self) {
        let cap = self.slots.len();
        if cap == 0 {
            self.rebuild(16);
        } else if (self.len + self.tombstones + 1) * 8 > cap * 7 {
            // Double when genuinely full; same size when tombstones are the
            // bulk (compaction).
            let target = if (self.len + 1) * 4 > cap * 3 { cap * 2 } else { cap };
            self.rebuild(target);
        }
    }

    /// Rehashes every live entry into a fresh table of `new_cap` slots.
    fn rebuild(&mut self, new_cap: usize) {
        debug_assert!(new_cap.is_power_of_two());
        let old = std::mem::replace(
            &mut self.slots,
            (0..new_cap).map(|_| Slot::Empty).collect::<Vec<_>>(),
        );
        self.tombstones = 0;
        let mask = new_cap - 1;
        for slot in old {
            if let Slot::Full(k, v) = slot {
                let mut idx = self.index_of(fx_hash(&k));
                while self.slots[idx].is_full() {
                    idx = (idx + 1) & mask;
                }
                self.slots[idx] = Slot::Full(k, v);
            }
        }
    }

    /// Inserts, returning the previous value for the key (like
    /// `HashMap::insert`).
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        self.reserve_one();
        let (idx, existed) = self.find_insert(&key);
        if matches!(self.slots[idx], Slot::Tombstone) {
            self.tombstones -= 1;
        }
        let prev = std::mem::replace(&mut self.slots[idx], Slot::Full(key, value));
        match prev {
            Slot::Full(_, v) => Some(v),
            _ => {
                debug_assert!(!existed);
                self.len += 1;
                None
            }
        }
    }

    /// Shared borrow of the value for `key`.
    pub fn get(&self, key: &K) -> Option<&V> {
        self.find(key).map(|idx| match &self.slots[idx] {
            Slot::Full(_, v) => v,
            _ => unreachable!("find returned a non-full slot"),
        })
    }

    /// Mutable borrow of the value for `key`.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        self.find(key).map(|idx| match &mut self.slots[idx] {
            Slot::Full(_, v) => v,
            _ => unreachable!("find returned a non-full slot"),
        })
    }

    /// Whether `key` has a live entry.
    pub fn contains_key(&self, key: &K) -> bool {
        self.find(key).is_some()
    }

    /// Removes and returns the value for `key`.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let idx = self.find(key)?;
        let slot = std::mem::replace(&mut self.slots[idx], Slot::Tombstone);
        self.len -= 1;
        self.tombstones += 1;
        match slot {
            Slot::Full(_, v) => Some(v),
            _ => unreachable!("find returned a non-full slot"),
        }
    }

    /// Mutable borrow of the value for `key`, inserting `default()` first
    /// when absent — `map.entry(key).or_insert_with(default)`.
    pub fn entry_or_insert_with(&mut self, key: K, default: impl FnOnce() -> V) -> &mut V {
        self.reserve_one();
        let (idx, existed) = self.find_insert(&key);
        if !existed {
            if matches!(self.slots[idx], Slot::Tombstone) {
                self.tombstones -= 1;
            }
            self.slots[idx] = Slot::Full(key, default());
            self.len += 1;
        }
        match &mut self.slots[idx] {
            Slot::Full(_, v) => v,
            _ => unreachable!("slot filled above"),
        }
    }

    /// Iterates over `(&key, &value)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.slots.iter().filter_map(|slot| match slot {
            Slot::Full(k, v) => Some((k, v)),
            _ => None,
        })
    }

    /// Iterates over `(&key, &mut value)` pairs in unspecified order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (&K, &mut V)> {
        self.slots.iter_mut().filter_map(|slot| match slot {
            Slot::Full(k, v) => Some((&*k, v)),
            _ => None,
        })
    }

    /// Iterates over the keys in unspecified order.
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.iter().map(|(k, _)| k)
    }

    /// Iterates over the values in unspecified order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.iter().map(|(_, v)| v)
    }

    /// Iterates over the values mutably in unspecified order.
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut V> {
        self.iter_mut().map(|(_, v)| v)
    }

    /// Keeps only the entries for which `keep` returns true.
    pub fn retain(&mut self, mut keep: impl FnMut(&K, &mut V) -> bool) {
        for slot in &mut self.slots {
            if let Slot::Full(k, v) = slot {
                if !keep(k, v) {
                    *slot = Slot::Tombstone;
                    self.len -= 1;
                    self.tombstones += 1;
                }
            }
        }
    }

    /// Empties the map, yielding every entry (like `HashMap::drain`; the
    /// backing storage is released rather than kept, which suits the
    /// end-of-stream flush this is used for).
    pub fn drain(&mut self) -> impl Iterator<Item = (K, V)> {
        self.len = 0;
        self.tombstones = 0;
        std::mem::take(&mut self.slots).into_iter().filter_map(|slot| match slot {
            Slot::Full(k, v) => Some((k, v)),
            _ => None,
        })
    }

    /// Removes every entry, keeping the allocated table.
    pub fn clear(&mut self) {
        for slot in &mut self.slots {
            *slot = Slot::Empty;
        }
        self.len = 0;
        self.tombstones = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut map = FastMap::new();
        assert!(map.is_empty());
        assert_eq!(map.insert("a", 1), None);
        assert_eq!(map.insert("b", 2), None);
        assert_eq!(map.insert("a", 10), Some(1));
        assert_eq!(map.len(), 2);
        assert_eq!(map.get(&"a"), Some(&10));
        assert!(map.contains_key(&"b"));
        assert_eq!(map.remove(&"a"), Some(10));
        assert_eq!(map.remove(&"a"), None);
        assert_eq!(map.len(), 1);
        assert_eq!(map.get(&"a"), None);
    }

    #[test]
    fn tombstones_do_not_break_probe_chains() {
        // Force collisions by overfilling a small table repeatedly.
        let mut map = FastMap::with_capacity(4);
        for i in 0..64u64 {
            map.insert(i, i * 2);
        }
        for i in (0..64).step_by(2) {
            assert_eq!(map.remove(&i), Some(i * 2));
        }
        for i in (1..64).step_by(2) {
            assert_eq!(map.get(&i), Some(&(i * 2)), "key {i} lost after deletions");
        }
        // Reinsert over tombstones.
        for i in (0..64).step_by(2) {
            assert_eq!(map.insert(i, i + 1000), None);
        }
        assert_eq!(map.len(), 64);
    }

    #[test]
    fn entry_or_insert_with_matches_entry_semantics() {
        let mut map: FastMap<u8, Vec<u32>> = FastMap::new();
        map.entry_or_insert_with(7, Vec::new).push(1);
        map.entry_or_insert_with(7, || panic!("must not re-init")).push(2);
        assert_eq!(map.get(&7), Some(&vec![1, 2]));
    }

    #[test]
    fn iteration_retain_drain_clear() {
        let mut map = FastMap::new();
        for i in 0..10u32 {
            map.insert(i, i);
        }
        assert_eq!(map.iter().count(), 10);
        assert_eq!(map.values().sum::<u32>(), 45);
        for v in map.values_mut() {
            *v *= 10;
        }
        map.retain(|k, _| k % 2 == 0);
        assert_eq!(map.len(), 5);
        assert_eq!(map.keys().filter(|k| **k % 2 == 1).count(), 0);
        let mut drained: Vec<(u32, u32)> = map.drain().collect();
        drained.sort_unstable();
        assert_eq!(drained, vec![(0, 0), (2, 20), (4, 40), (6, 60), (8, 80)]);
        assert!(map.is_empty());
        map.insert(1, 1);
        map.clear();
        assert!(map.is_empty());
        assert_eq!(map.get(&1), None);
    }

    #[test]
    fn fx_hash_is_deterministic_and_spreads() {
        assert_eq!(fx_hash(&42u64), fx_hash(&42u64));
        assert_ne!(fx_hash(&1u64), fx_hash(&2u64));
        // Sequential keys must not collide on the low bits after the fold.
        let mut low: std::collections::HashSet<u64> = std::collections::HashSet::new();
        for i in 0..256u64 {
            let h = fx_hash(&i);
            low.insert((h ^ (h >> 32)) & 0xff);
        }
        assert!(low.len() > 128, "low-bit spread too weak: {}", low.len());
    }

    #[test]
    fn std_hashmap_accepts_the_build_hasher() {
        let mut map: std::collections::HashMap<u32, u32, FxBuildHasher> =
            std::collections::HashMap::with_hasher(FxBuildHasher);
        map.insert(1, 2);
        assert_eq!(map.get(&1), Some(&2));
    }
}
