use std::net::Ipv4Addr;

use crate::{MacAddr, NetError, Result};

/// Length of an Ethernet/IPv4 ARP packet in bytes.
const ARP_PACKET_LEN: usize = 28;

/// ARP operation codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ArpOperation {
    /// Who-has request (1).
    Request,
    /// Is-at reply (2).
    Reply,
    /// Any other operation code.
    Other(u16),
}

impl ArpOperation {
    /// The on-wire operation code.
    pub const fn as_u16(self) -> u16 {
        match self {
            ArpOperation::Request => 1,
            ArpOperation::Reply => 2,
            ArpOperation::Other(v) => v,
        }
    }
}

impl From<u16> for ArpOperation {
    fn from(v: u16) -> Self {
        match v {
            1 => ArpOperation::Request,
            2 => ArpOperation::Reply,
            other => ArpOperation::Other(other),
        }
    }
}

/// An Ethernet/IPv4 ARP packet.
///
/// Only the hardware/protocol combination seen in the evaluated datasets
/// (Ethernet + IPv4) is supported; other combinations are rejected on parse.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArpPacket {
    /// Request or reply.
    pub operation: ArpOperation,
    /// Sender hardware address.
    pub sender_mac: MacAddr,
    /// Sender protocol address.
    pub sender_ip: Ipv4Addr,
    /// Target hardware address (zero in requests).
    pub target_mac: MacAddr,
    /// Target protocol address.
    pub target_ip: Ipv4Addr,
}

impl ArpPacket {
    /// Creates a who-has request for `target_ip`.
    pub fn request(sender_mac: MacAddr, sender_ip: Ipv4Addr, target_ip: Ipv4Addr) -> Self {
        ArpPacket {
            operation: ArpOperation::Request,
            sender_mac,
            sender_ip,
            target_mac: MacAddr::ZERO,
            target_ip,
        }
    }

    /// Parses an ARP packet from the front of `data`.
    ///
    /// Returns the packet and the number of bytes consumed.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Truncated`] for short input and
    /// [`NetError::InvalidField`] for non-Ethernet/IPv4 ARP.
    pub fn parse(data: &[u8]) -> Result<(Self, usize)> {
        if data.len() < ARP_PACKET_LEN {
            return Err(NetError::truncated("arp packet", ARP_PACKET_LEN, data.len()));
        }
        let htype = u16::from_be_bytes([data[0], data[1]]);
        let ptype = u16::from_be_bytes([data[2], data[3]]);
        if htype != 1 || ptype != 0x0800 || data[4] != 6 || data[5] != 4 {
            return Err(NetError::invalid(
                "arp packet",
                format!("unsupported htype/ptype {htype}/{ptype:#06x}"),
            ));
        }
        let mut sender_mac = [0u8; 6];
        let mut target_mac = [0u8; 6];
        sender_mac.copy_from_slice(&data[8..14]);
        target_mac.copy_from_slice(&data[18..24]);
        Ok((
            ArpPacket {
                operation: ArpOperation::from(u16::from_be_bytes([data[6], data[7]])),
                sender_mac: MacAddr::new(sender_mac),
                sender_ip: Ipv4Addr::new(data[14], data[15], data[16], data[17]),
                target_mac: MacAddr::new(target_mac),
                target_ip: Ipv4Addr::new(data[24], data[25], data[26], data[27]),
            },
            ARP_PACKET_LEN,
        ))
    }

    /// Serializes to the 28-byte wire form.
    pub fn to_bytes(&self) -> [u8; ARP_PACKET_LEN] {
        let mut out = [0u8; ARP_PACKET_LEN];
        out[0..2].copy_from_slice(&1u16.to_be_bytes()); // Ethernet
        out[2..4].copy_from_slice(&0x0800u16.to_be_bytes()); // IPv4
        out[4] = 6;
        out[5] = 4;
        out[6..8].copy_from_slice(&self.operation.as_u16().to_be_bytes());
        out[8..14].copy_from_slice(&self.sender_mac.octets());
        out[14..18].copy_from_slice(&self.sender_ip.octets());
        out[18..24].copy_from_slice(&self.target_mac.octets());
        out[24..28].copy_from_slice(&self.target_ip.octets());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trip() {
        let packet = ArpPacket::request(
            MacAddr::from_host_id(3),
            Ipv4Addr::new(192, 168, 1, 3),
            Ipv4Addr::new(192, 168, 1, 1),
        );
        let (parsed, consumed) = ArpPacket::parse(&packet.to_bytes()).unwrap();
        assert_eq!(consumed, 28);
        assert_eq!(parsed, packet);
        assert_eq!(parsed.operation, ArpOperation::Request);
    }

    #[test]
    fn rejects_non_ethernet_arp() {
        let mut bytes =
            ArpPacket::request(MacAddr::ZERO, Ipv4Addr::UNSPECIFIED, Ipv4Addr::UNSPECIFIED)
                .to_bytes();
        bytes[1] = 6; // token ring
        assert!(matches!(ArpPacket::parse(&bytes), Err(NetError::InvalidField { .. })));
    }

    #[test]
    fn rejects_short_input() {
        assert!(matches!(ArpPacket::parse(&[0; 27]), Err(NetError::Truncated { .. })));
    }
}
