//! HELAD (Zhong et al., *Computer Networks* 169, 2020) reimplemented for
//! the `idsbench` evaluation pipeline.
//!
//! HELAD is a *heterogeneous ensemble*: it reuses Kitsune's damped
//! incremental statistics (AfterImage) as the per-packet feature stream,
//! scores each packet with a single wide **autoencoder**, and feeds the
//! recent score history into an **LSTM** that predicts the next score. The
//! final anomaly signal blends the reconstruction error with the LSTM's
//! surprise:
//!
//! ```text
//! score(t) = w_ae · mean(rmse over the packet's channel history) +
//!            w_lstm · |rmse(t) − lstm_prediction(t)|
//! ```
//!
//! The reconstruction term is smoothed over the recent errors *of the same
//! channel* (source↔destination pair): a sustained anomaly keeps its
//! channel's score high, while an isolated benign burst on another channel
//! is damped by that channel's own quiet history — the source of HELAD's
//! high-precision / lower-recall profile on bursty enterprise traffic
//! (CICIDS2017 in Table IV).
//!
//! Training uses the leading traffic slice *assumed to be benign* — the
//! assumption the paper identifies as HELAD's Achilles heel: on datasets
//! without a clean benign prefix (UNSW-NB15) the ensemble normalizes attack
//! traffic and collapses (Table IV), while on Stratosphere's clean IoT
//! baseline it is the best system tested.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

use idsbench_core::{Event, EventDetector, InputFormat, ParsedView, TrainView};
use idsbench_flow::{AfterImage, AfterImageConfig};
use idsbench_nn::{
    Autoencoder, AutoencoderConfig, LstmRegressor, LstmRegressorConfig, Matrix, MatrixF32,
    MinMaxNormalizer, Precision, Workspace,
};

/// A src↔dst channel key (ordered so both directions share one history).
type ChannelKey = (std::net::IpAddr, std::net::IpAddr);

/// A fixed-capacity ring of the most recent reconstruction errors — the
/// LSTM's input window, kept allocation-free (the old implementation
/// rebuilt a `Vec<Vec<f64>>` sequence per packet).
#[derive(Debug, Clone)]
struct ScoreRing {
    buf: Vec<f64>,
    /// Index of the oldest element.
    head: usize,
    len: usize,
}

impl ScoreRing {
    fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        ScoreRing { buf: vec![0.0; capacity], head: 0, len: 0 }
    }

    /// Appends a score, overwriting the oldest once full.
    fn push(&mut self, value: f64) {
        let capacity = self.buf.len();
        if self.len < capacity {
            self.buf[(self.head + self.len) % capacity] = value;
            self.len += 1;
        } else {
            self.buf[self.head] = value;
            self.head = (self.head + 1) % capacity;
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    /// Oldest-to-newest iteration (the chronological order the LSTM
    /// expects).
    fn iter(&self) -> impl Iterator<Item = &f64> + '_ {
        let capacity = self.buf.len();
        (0..self.len).map(move |i| &self.buf[(self.head + i) % capacity])
    }
}

/// Configuration for [`Helad`] (out-of-the-box defaults).
#[derive(Debug, Clone, PartialEq)]
pub struct HeladConfig {
    /// AfterImage damped-window configuration.
    pub afterimage: AfterImageConfig,
    /// Autoencoder hidden ratio.
    pub hidden_ratio: f64,
    /// Autoencoder learning rate.
    pub learning_rate: f64,
    /// Length of the score history window fed to the LSTM.
    pub lstm_window: usize,
    /// LSTM hidden width.
    pub lstm_hidden: usize,
    /// LSTM learning rate.
    pub lstm_learning_rate: f64,
    /// Train the LSTM on every `lstm_stride`-th window (keeps training
    /// linear in trace length).
    pub lstm_stride: usize,
    /// Autoencoder training epochs over the training slice (HELAD trains
    /// offline, unlike Kitsune's single online pass).
    pub epochs: usize,
    /// Reconstruction errors are averaged over this many recent packets of
    /// the *same channel* (src↔dst pair).
    pub smooth_window: usize,
    /// Weight of the autoencoder reconstruction error in the blend.
    pub weight_ae: f64,
    /// Weight of the LSTM surprise in the blend.
    pub weight_lstm: f64,
    /// Weight-initialization seed.
    pub seed: u64,
    /// Numeric mode of the inference kernels: bitwise `f64` (default) or
    /// eight-lane `f32` under the epsilon-parity contract. Training always
    /// runs in `f64`; this selects how the frozen ensemble scores.
    pub precision: Precision,
}

impl Default for HeladConfig {
    fn default() -> Self {
        HeladConfig {
            afterimage: AfterImageConfig::default(),
            hidden_ratio: 0.5,
            learning_rate: 0.05,
            lstm_window: 12,
            lstm_hidden: 12,
            lstm_learning_rate: 0.01,
            lstm_stride: 4,
            epochs: 5,
            smooth_window: 6,
            weight_ae: 0.7,
            weight_lstm: 0.3,
            seed: 0,
            precision: Precision::F64Bitwise,
        }
    }
}

/// The HELAD NIDS (see crate docs).
///
/// Like [`Kitsune`](https://docs.rs/idsbench-kitsune), HELAD implements the
/// unified [`EventDetector`] contract over one training/scoring code path
/// ([`Helad::fit`] → [`HeladEngine`]), so batch and single-shard streaming
/// runs produce bit-identical scores — and every packet is consumed through
/// its already-parsed view, never re-parsed.
#[derive(Debug)]
pub struct Helad {
    config: HeladConfig,
    /// The fitted online engine, populated by [`EventDetector::fit`].
    engine: Option<HeladEngine>,
    /// Optional sampled timer around the inference kernel.
    probe: Option<idsbench_telemetry::SpanTimer>,
}

impl Helad {
    /// Creates a HELAD instance with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the LSTM window is zero or the blend weights are both zero.
    pub fn new(config: HeladConfig) -> Self {
        assert!(config.lstm_window > 0, "lstm window must be positive");
        assert!(
            config.weight_ae + config.weight_lstm > 0.0,
            "at least one ensemble weight must be positive"
        );
        Helad { config, engine: None, probe: None }
    }

    /// Attaches a sampled [`SpanTimer`](idsbench_telemetry::SpanTimer)
    /// around the per-packet inference kernel ([`HeladEngine::score_view`]).
    /// Purely observational — scores are bit-identical with or without it —
    /// and allocation-free on the scoring path.
    pub fn attach_inference_probe(&mut self, probe: idsbench_telemetry::SpanTimer) {
        self.probe = Some(probe);
    }

    /// Trains the autoencoder and LSTM over the (assumed benign) training
    /// slice and returns the fitted per-packet scoring engine — the single
    /// training path behind both drivers of the event contract.
    pub fn fit(&self, train: &TrainView) -> HeladEngine {
        let train = &train.packets;
        let mut extractor = AfterImage::new(self.config.afterimage.clone());
        let width = extractor.feature_count();
        let mut norm = MinMaxNormalizer::new(width);
        let mut autoencoder = Autoencoder::new(
            width,
            AutoencoderConfig {
                hidden_ratio: self.config.hidden_ratio,
                learning_rate: self.config.learning_rate,
                seed: self.config.seed,
            },
        );
        let mut lstm = LstmRegressor::new(
            1,
            LstmRegressorConfig {
                hidden_size: self.config.lstm_hidden,
                learning_rate: self.config.lstm_learning_rate,
                seed: self.config.seed ^ 0x4a17,
            },
        );

        // Phase 1 — train the autoencoder over the (assumed benign)
        // training slice. The first pass extracts features and widens the
        // normalizer; subsequent epochs retrain on the buffered vectors.
        let mut buffered: Vec<Vec<f64>> = Vec::with_capacity(train.len());
        for view in train.iter() {
            if let Some(features) = features_of(&mut extractor, view) {
                norm.observe(&features);
                buffered.push(features);
            }
        }
        let mut history: Vec<f64> = Vec::with_capacity(buffered.len());
        for epoch in 0..self.config.epochs.max(1) {
            history.clear();
            for features in &buffered {
                let rmse = autoencoder.train_sample(&norm.transform(features));
                history.push(rmse);
            }
            let _ = epoch;
        }

        // Phase 2 — train the LSTM to predict the next reconstruction error
        // from the previous `lstm_window` errors.
        let window = self.config.lstm_window;
        if history.len() > window {
            let stride = self.config.lstm_stride.max(1);
            for start in (0..history.len() - window).step_by(stride) {
                let sequence: Vec<Vec<f64>> =
                    history[start..start + window].iter().map(|&s| vec![s]).collect();
                lstm.train_sequence(&sequence, history[start + window]);
            }
        }

        let mut recent = ScoreRing::new(window);
        for &score in history.iter().rev().take(window).rev() {
            recent.push(score);
        }
        // Training is done: pack the autoencoder weights for the fused
        // inference kernels (bit-identical scores, no column striding) and,
        // in f32 mode, convert the wide weight mirrors of both models.
        autoencoder.pack();
        if self.config.precision == Precision::F32Wide {
            autoencoder.pack_wide();
            lstm.pack_wide();
        }
        let ws = autoencoder.workspace();
        HeladEngine {
            extractor,
            norm,
            autoencoder,
            lstm,
            recent,
            channel_history: idsbench_core::fasthash::FastMap::new(),
            window,
            smooth: self.config.smooth_window.max(1),
            weight_ae: self.config.weight_ae,
            weight_lstm: self.config.weight_lstm,
            precision: self.config.precision,
            feat_buf: Vec::with_capacity(width),
            norm_buf: Vec::with_capacity(width),
            ws,
            norm_buf32: Vec::new(),
            feat_rows: Matrix::default(),
            feat_rows32: MatrixF32::default(),
            windows: Matrix::default(),
            batch_rmses: Vec::new(),
            batch_preds: Vec::new(),
            batch_keys: Vec::new(),
        }
    }
}

/// A fitted HELAD ensemble scoring packets one at a time (phase 3): damped
/// feature extraction, offline-fitted normalizer, trained autoencoder and
/// LSTM, plus the rolling score and per-channel smoothing state.
#[derive(Debug)]
pub struct HeladEngine {
    extractor: AfterImage,
    norm: MinMaxNormalizer,
    autoencoder: Autoencoder,
    lstm: LstmRegressor,
    /// Rolling window of recent reconstruction errors fed to the LSTM.
    recent: ScoreRing,
    /// Recent errors per src↔dst channel for the smoothing term (FxHash:
    /// one lookup per packet, channel count bounded by the traffic).
    channel_history: idsbench_core::fasthash::FastMap<
        (std::net::IpAddr, std::net::IpAddr),
        std::collections::VecDeque<f64>,
    >,
    window: usize,
    smooth: usize,
    weight_ae: f64,
    weight_lstm: f64,
    precision: Precision,
    /// Reused per-packet feature buffer.
    feat_buf: Vec<f64>,
    /// Reused normalized-feature buffer.
    norm_buf: Vec<f64>,
    /// Shared NN inference scratch (autoencoder and LSTM).
    ws: Workspace,
    /// Narrowed features for the wide (f32) single-packet path.
    norm_buf32: Vec<f32>,
    /// Batch staging: one normalized feature row per well-formed packet.
    feat_rows: Matrix,
    /// Wide-lane sibling of `feat_rows`.
    feat_rows32: MatrixF32,
    /// Lockstep LSTM input: one score-history window per predicted row.
    windows: Matrix,
    /// Reconstruction errors for the valid rows of the current burst.
    batch_rmses: Vec<f64>,
    /// LSTM predictions for the rows whose history window was full.
    batch_preds: Vec<f64>,
    /// Per-view routing for the current burst: `None` = malformed (scores
    /// 0), `Some(None)` = valid but channel-less, `Some(Some(key))` = valid
    /// with a smoothing channel.
    batch_keys: Vec<Option<Option<ChannelKey>>>,
}

impl HeladEngine {
    /// Scores one packet from its parsed view: blended reconstruction error
    /// and LSTM surprise. Malformed packets (no parsed view) score 0
    /// (pass-through), keeping stream alignment.
    ///
    /// Steady-state allocation-free: extraction, normalization, both model
    /// forward passes, and the score ring all reuse engine-owned buffers
    /// (pinned by the `hot_path_allocs` integration test).
    pub fn score_view(&mut self, view: &ParsedView) -> f64 {
        let Some(parsed) = &view.parsed else {
            return 0.0;
        };
        self.extractor.update_into(parsed, &mut self.feat_buf);
        // HELAD fits its scaler offline on the training set; out-of-range
        // eval features clamp to the boundary (and read as anomalous)
        // rather than re-scaling the whole space.
        self.norm.transform_into(&self.feat_buf, &mut self.norm_buf);
        let rmse = match self.precision {
            Precision::F64Bitwise => self.autoencoder.score_with(&self.norm_buf, &mut self.ws),
            Precision::F32Wide => {
                self.norm_buf32.clear();
                self.norm_buf32.extend(self.norm_buf.iter().map(|&v| v as f32));
                self.autoencoder.score_wide_with(&self.norm_buf32, &mut self.ws)
            }
        };
        let surprise = if self.recent.len() == self.window {
            let predicted = match self.precision {
                Precision::F64Bitwise => self
                    .lstm
                    .predict_with(self.recent.iter().map(std::slice::from_ref), &mut self.ws),
                Precision::F32Wide => self
                    .lstm
                    .predict_wide_with(self.recent.iter().map(std::slice::from_ref), &mut self.ws),
            };
            (rmse - predicted).abs()
        } else {
            0.0
        };
        self.recent.push(rmse);
        // Per-channel smoothing: a channel's sustained anomaly stays high;
        // other channels keep their own quiet history.
        let smoothed = match (parsed.src_ip(), parsed.dst_ip()) {
            (Some(a), Some(b)) => {
                let key = if a <= b { (a, b) } else { (b, a) };
                let history = self.channel_history.entry_or_insert_with(key, Default::default);
                history.push_back(rmse);
                if history.len() > self.smooth {
                    history.pop_front();
                }
                history.iter().sum::<f64>() / history.len() as f64
            }
            _ => rmse,
        };
        self.weight_ae * smoothed + self.weight_lstm * surprise
    }

    /// Batch-of-rows [`HeladEngine::score_view`] over a burst of views,
    /// pushing one score per view in order. Stateful stages (AfterImage
    /// extraction, the score ring, per-channel smoothing) run sequentially
    /// exactly as the one-at-a-time path does; the pure model forwards run
    /// batched — all autoencoder RMSEs in one batch forward, then the LSTM
    /// in lockstep over every row's history window — so both models stream
    /// their weights through cache once per *burst* instead of once per
    /// *packet*. In the default f64 mode the scores are bitwise identical
    /// to scoring each view alone.
    pub fn score_batch(
        &mut self,
        views: &mut dyn Iterator<Item = &ParsedView>,
        out: &mut Vec<f64>,
    ) {
        let width = self.extractor.feature_count();
        self.batch_keys.clear();
        let mut rows = 0;
        // Pass 1 (sequential): feature extraction and normalization into
        // the staging rows; channel keys are captured here because the
        // views are consumed by this pass.
        for view in views {
            match &view.parsed {
                Some(parsed) => {
                    self.extractor.update_into(parsed, &mut self.feat_buf);
                    self.norm.transform_into(&self.feat_buf, &mut self.norm_buf);
                    rows += 1;
                    if self.feat_rows.rows() < rows || self.feat_rows.cols() != width {
                        self.feat_rows.reshape(rows.max(self.feat_rows.rows()), width);
                    }
                    self.feat_rows.as_mut_slice()[(rows - 1) * width..rows * width]
                        .copy_from_slice(&self.norm_buf);
                    let key = match (parsed.src_ip(), parsed.dst_ip()) {
                        (Some(a), Some(b)) => Some(if a <= b { (a, b) } else { (b, a) }),
                        _ => None,
                    };
                    self.batch_keys.push(Some(key));
                }
                None => self.batch_keys.push(None),
            }
        }
        if rows == 0 {
            out.extend(self.batch_keys.iter().map(|_| 0.0));
            return;
        }
        self.feat_rows.reshape(rows, width);

        // Pass 2 (batched): every row's reconstruction error in one
        // autoencoder batch forward.
        self.batch_rmses.clear();
        match self.precision {
            Precision::F64Bitwise => {
                self.autoencoder.score_rows_with(
                    &self.feat_rows,
                    &mut self.batch_rmses,
                    &mut self.ws,
                );
            }
            Precision::F32Wide => {
                self.feat_rows32.reshape(rows, width);
                for (o, &v) in
                    self.feat_rows32.as_mut_slice().iter_mut().zip(self.feat_rows.as_slice())
                {
                    *o = v as f32;
                }
                self.autoencoder.score_rows_wide_with(
                    &self.feat_rows32,
                    &mut self.batch_rmses,
                    &mut self.ws,
                );
            }
        }

        // Pass 3 (sequential ring, then lockstep LSTM): snapshot each row's
        // history window in arrival order — row `i` sees the ring exactly
        // as the one-at-a-time path would, i.e. after pushes of rows
        // `0..i` — then predict every full window in one lockstep batch.
        // The first `missing` rows have incomplete windows (no surprise
        // term), matching the sequential warm-up.
        let missing = self.window - self.recent.len().min(self.window);
        let predicted_rows = rows - missing.min(rows);
        self.windows.reshape(predicted_rows, self.window);
        let mut w = 0;
        for i in 0..rows {
            if self.recent.len() == self.window {
                let row = &mut self.windows.as_mut_slice()[w * self.window..(w + 1) * self.window];
                for (slot, &score) in row.iter_mut().zip(self.recent.iter()) {
                    *slot = score;
                }
                w += 1;
            }
            self.recent.push(self.batch_rmses[i]);
        }
        debug_assert_eq!(w, predicted_rows);
        self.batch_preds.clear();
        if predicted_rows > 0 {
            match self.precision {
                Precision::F64Bitwise => {
                    self.lstm.predict_windows_with(
                        &self.windows,
                        &mut self.batch_preds,
                        &mut self.ws,
                    );
                }
                Precision::F32Wide => {
                    self.lstm.predict_windows_wide_with(
                        &self.windows,
                        &mut self.batch_preds,
                        &mut self.ws,
                    );
                }
            }
        }

        // Pass 4 (sequential): blend and per-channel smoothing in arrival
        // order — the channel histories are shared mutable state.
        let mut i = 0;
        for entry in &self.batch_keys {
            let Some(channel) = entry else {
                out.push(0.0);
                continue;
            };
            let rmse = self.batch_rmses[i];
            let surprise =
                if i >= missing { (rmse - self.batch_preds[i - missing]).abs() } else { 0.0 };
            let smoothed = match channel {
                Some(key) => {
                    let history = self.channel_history.entry_or_insert_with(*key, Default::default);
                    history.push_back(rmse);
                    if history.len() > self.smooth {
                        history.pop_front();
                    }
                    history.iter().sum::<f64>() / history.len() as f64
                }
                None => rmse,
            };
            out.push(self.weight_ae * smoothed + self.weight_lstm * surprise);
            i += 1;
        }
    }
}

impl Default for Helad {
    fn default() -> Self {
        Helad::new(HeladConfig::default())
    }
}

fn features_of(extractor: &mut AfterImage, view: &ParsedView) -> Option<Vec<f64>> {
    view.parsed.as_ref().map(|parsed| extractor.update(parsed))
}

impl EventDetector for Helad {
    fn name(&self) -> &str {
        "HELAD"
    }

    fn input_format(&self) -> InputFormat {
        InputFormat::Packets
    }

    fn fit(&mut self, train: &TrainView) {
        self.engine = Some(Helad::fit(self, train));
    }

    fn on_event(&mut self, event: &Event<'_>) -> Option<f64> {
        match event {
            Event::Packet(view) => {
                // Scoring without fit degrades to an untrained engine rather
                // than panicking — the stream keeps flowing, as a deployed
                // IDS must.
                if self.engine.is_none() {
                    self.engine = Some(Helad::fit(self, &TrainView::default()));
                }
                let engine = self.engine.as_mut().expect("engine fitted above");
                let started = self.probe.as_ref().and_then(|probe| probe.begin());
                let score = engine.score_view(view);
                if let (Some(probe), Some(started)) = (&self.probe, started) {
                    probe.end(started);
                }
                Some(score)
            }
            Event::FlowEvicted(_) => None,
        }
    }

    fn on_packet_batch(
        &mut self,
        views: &mut dyn Iterator<Item = &ParsedView>,
        scores: &mut Vec<f64>,
    ) {
        if self.engine.is_none() {
            self.engine = Some(Helad::fit(self, &TrainView::default()));
        }
        let engine = self.engine.as_mut().expect("engine fitted above");
        let started = self.probe.as_ref().and_then(|probe| probe.begin());
        engine.score_batch(views, scores);
        if let (Some(probe), Some(started)) = (&self.probe, started) {
            probe.end(started);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idsbench_core::{AttackKind, Label, LabeledPacket};
    use idsbench_net::{MacAddr, PacketBuilder, TcpFlags, Timestamp};
    use std::net::Ipv4Addr;

    fn periodic_benign(count: u32, offset_micros: u64) -> Vec<LabeledPacket> {
        (0..count)
            .map(|i| {
                let device = (i % 3) as u8 + 1;
                let p = PacketBuilder::new()
                    .ethernet(MacAddr::from_host_id(device as u32), MacAddr::from_host_id(100))
                    .ipv4(Ipv4Addr::new(10, 0, 0, device), Ipv4Addr::new(10, 0, 0, 100))
                    .tcp(41_000 + device as u16, 1883, TcpFlags::PSH | TcpFlags::ACK)
                    .payload_len(70)
                    .build(Timestamp::from_micros(offset_micros + u64::from(i) * 40_000));
                LabeledPacket::new(p, Label::Benign)
            })
            .collect()
    }

    fn flood(count: u32, start_micros: u64, step_micros: u64) -> Vec<LabeledPacket> {
        (0..count)
            .map(|i| {
                let p = PacketBuilder::new()
                    .ethernet(MacAddr::from_host_id(77), MacAddr::from_host_id(100))
                    .ipv4(Ipv4Addr::new(7, 7, 7, 7), Ipv4Addr::new(10, 0, 0, 100))
                    .udp(2000 + (i % 64) as u16, 80)
                    .payload_len(1100)
                    .build(Timestamp::from_micros(start_micros + u64::from(i) * step_micros));
                LabeledPacket::new(p, Label::Attack(AttackKind::UdpFlood))
            })
            .collect()
    }

    /// Sorts, splits 30/70 at the packet level, and parses once.
    fn split_views(mut packets: Vec<LabeledPacket>) -> (TrainView, Vec<ParsedView>) {
        packets.sort_by_key(|lp| lp.packet.ts);
        let split = packets.len() * 3 / 10;
        let mut views: Vec<ParsedView> = packets.into_iter().map(ParsedView::from_packet).collect();
        let eval = views.split_off(split);
        (TrainView { packets: views, flows: Vec::new() }, eval)
    }

    fn clean_baseline_input() -> (TrainView, Vec<ParsedView>) {
        let mut packets = periodic_benign(2000, 0);
        packets.extend(flood(400, 70_000_000, 150));
        let (train, eval) = split_views(packets);
        assert!(train.packets.iter().all(|v| !v.is_attack()));
        (train, eval)
    }

    fn score_all(helad: &mut Helad, train: &TrainView, eval: &[ParsedView]) -> Vec<f64> {
        helad.fit(train);
        eval.iter()
            .map(|view| helad.on_event(&Event::Packet(view)).expect("packet event scored"))
            .collect()
    }

    fn mean_split(scores: &[f64], eval: &[ParsedView]) -> (f64, f64) {
        let (mut attack, mut benign) = (Vec::new(), Vec::new());
        for (score, view) in scores.iter().zip(eval) {
            if view.is_attack() {
                attack.push(*score);
            } else {
                benign.push(*score);
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        (mean(&attack), mean(&benign))
    }

    #[test]
    fn clean_baseline_separates_attacks() {
        let (train, eval) = clean_baseline_input();
        let mut helad = Helad::default();
        let scores = score_all(&mut helad, &train, &eval);
        assert_eq!(scores.len(), eval.len());
        let (attack, benign) = mean_split(&scores, &eval);
        assert!(attack > 1.5 * benign, "attack mean {attack} vs benign mean {benign}");
    }

    #[test]
    fn contaminated_training_narrows_the_gap() {
        // Same attack, but the *training* slice is saturated with identical
        // flood traffic — HELAD normalizes it (the UNSW failure mode).
        let mut packets = periodic_benign(2000, 0);
        packets.extend(flood(1200, 1_000_000, 60_000));
        let (train, eval) = split_views(packets);
        assert!(
            train.packets.iter().filter(|v| v.is_attack()).count() > 100,
            "training slice must be contaminated"
        );
        let mut helad = Helad::default();
        let scores = score_all(&mut helad, &train, &eval);
        let (attack, benign) = mean_split(&scores, &eval);
        let contaminated_ratio = attack / benign;

        // Compare with the clean-baseline ratio on the same attack shape.
        let (clean_train, clean_eval) = clean_baseline_input();
        let mut helad2 = Helad::default();
        let clean_scores = score_all(&mut helad2, &clean_train, &clean_eval);
        let (attack2, benign2) = mean_split(&clean_scores, &clean_eval);
        let clean_ratio = attack2 / benign2;
        assert!(
            contaminated_ratio < clean_ratio,
            "contamination must narrow the anomaly gap: {contaminated_ratio} vs {clean_ratio}"
        );
    }

    #[test]
    fn scores_are_finite() {
        let (train, eval) = clean_baseline_input();
        let mut helad = Helad::default();
        for score in score_all(&mut helad, &train, &eval) {
            assert!(score.is_finite() && score >= 0.0);
        }
    }

    #[test]
    fn name_and_format() {
        let helad = Helad::default();
        assert_eq!(helad.name(), "HELAD");
        assert_eq!(helad.input_format(), InputFormat::Packets);
    }

    #[test]
    fn scoring_without_fit_does_not_panic() {
        let (_, eval) = clean_baseline_input();
        let mut helad = Helad::default();
        assert!(helad.on_event(&Event::Packet(&eval[0])).expect("scored").is_finite());
    }

    #[test]
    #[should_panic(expected = "lstm window must be positive")]
    fn zero_window_panics() {
        let _ = Helad::new(HeladConfig { lstm_window: 0, ..Default::default() });
    }

    #[test]
    fn batch_scoring_is_bitwise_identical_to_row_scoring() {
        let (train, eval) = clean_baseline_input();
        let mut one_at_a_time = Helad::default();
        let reference = score_all(&mut one_at_a_time, &train, &eval);

        let mut batched = Helad::default();
        EventDetector::fit(&mut batched, &train);
        let mut scores = Vec::new();
        // Uneven bursts exercise the warm-up (partial LSTM windows), full
        // windows, and re-used staging across batch sizes.
        for chunk in eval.chunks(89) {
            batched.on_packet_batch(&mut chunk.iter(), &mut scores);
        }
        assert_eq!(scores.len(), reference.len());
        for (i, (b, r)) in scores.iter().zip(&reference).enumerate() {
            assert_eq!(b.to_bits(), r.to_bits(), "packet {i}: batch {b} vs row {r}");
        }
    }

    #[test]
    fn wide_precision_scores_track_f64_within_epsilon() {
        let (train, eval) = clean_baseline_input();
        let mut reference = Helad::default();
        let f64_scores = score_all(&mut reference, &train, &eval);

        let mut wide =
            Helad::new(HeladConfig { precision: Precision::F32Wide, ..Default::default() });
        EventDetector::fit(&mut wide, &train);
        let mut f32_scores = Vec::new();
        for chunk in eval.chunks(64) {
            wide.on_packet_batch(&mut chunk.iter(), &mut f32_scores);
        }
        assert_eq!(f32_scores.len(), f64_scores.len());
        for (i, (w, r)) in f32_scores.iter().zip(&f64_scores).enumerate() {
            assert!((w - r).abs() <= 1e-3 * r.abs().max(1e-6), "packet {i}: wide {w} vs f64 {r}");
        }
    }
}
