//! Multi-stage evasion campaigns — tier (c) of the workload library.
//!
//! One [`StagedCampaign`] process walks the paper's composite-attack shape:
//! reconnaissance (vertical scan) → foothold (credential brute force) →
//! lateral movement (C2 beaconing plus stealthy internal sessions) →
//! exfiltration. Every packet is labeled with the attack family of its
//! stage, so per-family recall decomposes the campaign exactly. The
//! [`Pace`] knob stretches every inter-event gap, turning the same campaign
//! into its low-and-slow variant.

use idsbench_core::{AttackKind, Label, LabeledPacket};
use idsbench_datasets::{Host, HostPool, SessionEmitter};
use rand::rngs::SmallRng;
use rand::Rng;

use crate::process::Process;

/// How aggressively a campaign moves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pace {
    /// Stage gaps in seconds — visible to rate- and window-based detectors.
    Brisk,
    /// Every gap stretched ~12×: each stage hides under the benign noise
    /// floor of a detection window.
    LowSlow,
}

impl Pace {
    /// Multiplier applied to every inter-event gap.
    pub fn stretch(self) -> f64 {
        match self {
            Pace::Brisk => 1.0,
            Pace::LowSlow => 12.0,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    Recon { next_port: u16 },
    Foothold { attempt: u8 },
    Lateral { beat: u8 },
    Exfil,
    Done,
}

/// The staged intrusion process. Stages advance in traffic time; each
/// `emit` call produces one small burst of the current stage.
#[derive(Debug, Clone)]
pub struct StagedCampaign {
    /// External attacker (recon and foothold source).
    pub attacker: Host,
    /// External command-and-control endpoint.
    pub c2: Host,
    /// Internal subnet the campaign moves through; the first host is the
    /// initial victim.
    pub targets: HostPool,
    /// Traffic time the recon stage starts.
    pub start: f64,
    /// Gap stretch.
    pub pace: Pace,
    stage: Stage,
    t: f64,
}

impl StagedCampaign {
    /// Number of ports probed during recon.
    const RECON_PORTS: u16 = 48;
    /// Credential attempts during foothold.
    const ATTEMPTS: u8 = 12;
    /// Beacon/lateral beats during lateral movement.
    const BEATS: u8 = 10;

    /// Creates the campaign; recon begins at `start`.
    ///
    /// # Panics
    ///
    /// Panics if `targets` is empty.
    pub fn new(attacker: Host, c2: Host, targets: HostPool, start: f64, pace: Pace) -> Self {
        assert!(!targets.is_empty(), "campaign needs at least one target");
        StagedCampaign {
            attacker,
            c2,
            targets,
            start,
            pace,
            stage: Stage::Recon { next_port: 1 },
            t: start,
        }
    }

    fn victim(&self) -> Host {
        self.targets.get(0)
    }
}

impl Process for StagedCampaign {
    fn name(&self) -> &'static str {
        match self.pace {
            Pace::Brisk => "staged-campaign",
            Pace::LowSlow => "lowslow-campaign",
        }
    }

    fn next_at(&self) -> Option<f64> {
        (self.stage != Stage::Done).then_some(self.t)
    }

    fn emit(&mut self, rng: &mut SmallRng, out: &mut Vec<LabeledPacket>) {
        let stretch = self.pace.stretch();
        match self.stage {
            Stage::Recon { mut next_port } => {
                let mut em = SessionEmitter::new(out, Label::Attack(AttackKind::PortScan));
                for _ in 0..8 {
                    if next_port > Self::RECON_PORTS {
                        break;
                    }
                    let sport = rng.random_range(40_000..60_000);
                    em.syn_probe(self.attacker, self.victim(), sport, next_port, self.t, 0.8, rng);
                    next_port += 1;
                    self.t += 0.25 * stretch * rng.random_range(0.6..1.4);
                }
                self.stage = if next_port > Self::RECON_PORTS {
                    self.t += 2.0 * stretch;
                    Stage::Foothold { attempt: 0 }
                } else {
                    Stage::Recon { next_port }
                };
            }
            Stage::Foothold { attempt } => {
                // One SSH credential attempt: a short, failed exchange.
                let mut em = SessionEmitter::new(out, Label::Attack(AttackKind::BruteForce));
                let sport = rng.random_range(40_000..60_000);
                self.t = em.tcp_session(
                    self.attacker,
                    self.victim(),
                    sport,
                    22,
                    self.t,
                    &[(64, 96)],
                    0.05,
                    rng,
                );
                self.t += 0.8 * stretch * rng.random_range(0.5..1.5);
                self.stage = if attempt + 1 >= Self::ATTEMPTS {
                    self.t += 3.0 * stretch;
                    Stage::Lateral { beat: 0 }
                } else {
                    Stage::Foothold { attempt: attempt + 1 }
                };
            }
            Stage::Lateral { beat } => {
                // Each beat: one C2 beacon from the victim, and on every
                // other beat a stealthy benign-shaped session to another
                // internal host.
                {
                    let mut em = SessionEmitter::new(out, Label::Attack(AttackKind::BotnetC2));
                    let sport = rng.random_range(40_000..60_000);
                    em.tcp_session(
                        self.victim(),
                        self.c2,
                        sport,
                        443,
                        self.t,
                        &[(48, 64)],
                        0.02,
                        rng,
                    );
                }
                if beat % 2 == 1 && self.targets.len() > 1 {
                    let peer =
                        self.targets.get(1 + usize::from(beat / 2) % (self.targets.len() - 1));
                    let mut em = SessionEmitter::new(out, Label::Attack(AttackKind::Stealth));
                    let sport = rng.random_range(40_000..60_000);
                    em.tcp_session(
                        self.victim(),
                        peer,
                        sport,
                        445,
                        self.t + 1.0 * stretch,
                        &[(300, 700), (200, 400)],
                        0.2,
                        rng,
                    );
                }
                self.t += 4.0 * stretch * rng.random_range(0.8..1.2);
                self.stage = if beat + 1 >= Self::BEATS {
                    self.t += 2.0 * stretch;
                    Stage::Exfil
                } else {
                    Stage::Lateral { beat: beat + 1 }
                };
            }
            Stage::Exfil => {
                // Bulk upload to the C2 host: client-heavy exchanges.
                let mut em = SessionEmitter::new(out, Label::Attack(AttackKind::Exfiltration));
                let sport = rng.random_range(40_000..60_000);
                let exchanges: Vec<(usize, usize)> =
                    (0..4).map(|_| (rng.random_range(40_000..120_000), 128)).collect();
                self.t = em.tcp_session(
                    self.victim(),
                    self.c2,
                    sport,
                    443,
                    self.t,
                    &exchanges,
                    0.5,
                    rng,
                );
                self.stage = Stage::Done;
            }
            Stage::Done => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use std::collections::BTreeSet;

    fn drain(mut p: StagedCampaign) -> Vec<LabeledPacket> {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut out = Vec::new();
        while p.next_at().is_some() {
            p.emit(&mut rng, &mut out);
        }
        out
    }

    fn campaign(pace: Pace) -> StagedCampaign {
        StagedCampaign::new(
            Host::external(7),
            Host::external(200),
            HostPool::subnet(1, 12),
            30.0,
            pace,
        )
    }

    #[test]
    fn campaign_walks_every_stage_family() {
        let packets = drain(campaign(Pace::Brisk));
        let families: BTreeSet<&str> =
            packets.iter().filter_map(|p| p.label.attack_kind().map(|k| k.name())).collect();
        for family in ["port-scan", "brute-force", "botnet-c2", "stealth", "exfiltration"] {
            assert!(families.contains(family), "missing stage family {family}");
        }
    }

    #[test]
    fn low_and_slow_stretches_the_timeline() {
        let brisk = drain(campaign(Pace::Brisk));
        let slow = drain(campaign(Pace::LowSlow));
        let span = |p: &[LabeledPacket]| {
            p.iter().map(|lp| lp.packet.ts.as_secs_f64()).fold(0.0, f64::max) - 30.0
        };
        assert!(
            span(&slow) > 5.0 * span(&brisk),
            "low-and-slow must stretch: brisk {} slow {}",
            span(&brisk),
            span(&slow)
        );
    }

    #[test]
    fn every_packet_carries_a_stage_label() {
        let packets = drain(campaign(Pace::Brisk));
        assert!(packets.iter().all(|p| p.is_attack()));
        assert!(packets.len() > 100);
    }
}
