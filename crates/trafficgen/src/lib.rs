//! `idsbench-trafficgen`: the seeded, deterministic adversarial workload
//! library behind the redesigned streaming scenario API.
//!
//! The paper's central finding is that reported IDS accuracy does not
//! survive contact with *other* workloads (Section V: "expectations versus
//! reality"). This crate supplies those other workloads as first-class,
//! reproducible [`TrafficModel`]s in three tiers:
//!
//! * **Trace-shaped benign** ([`benign`]) — VOIP/video/web mixes with
//!   heavy-tailed session durations and many concurrent streams, the
//!   false-positive stressor.
//! * **Volumetric** ([`flood`]) — SYN/UDP/ICMP floods and port/host scans
//!   with tunable rate, port spread, and target spread.
//! * **Multi-stage campaigns** ([`campaign`]) — recon → foothold → lateral
//!   movement → exfiltration, with a low-and-slow variant.
//!
//! Every scenario is a *streaming* generator: component [`Process`] state
//! machines merged on demand by [`CampaignStream`], so a realisation is
//! never materialised and memory stays bounded by concurrency. Every attack
//! packet carries its stable family label
//! ([`AttackKind::name`](idsbench_core::AttackKind::name)), which is what
//! the per-family recall matrices in `fig_scenarios` decompose.
//!
//! The [`registry`] maps stable names to builders; the stream executor's
//! `ScenarioSource` consumes any entry directly.
//!
//! # Examples
//!
//! ```
//! use idsbench_core::ScenarioScale;
//! use idsbench_trafficgen::{registry, spec};
//!
//! let spec = spec("syn-burst").unwrap();
//! let model = spec.build(ScenarioScale::Tiny);
//! let mut stream = model.stream(42);
//! assert!(stream.next().is_some());
//! assert!(registry().len() >= 6);
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod benign;
pub mod campaign;
pub mod flood;
mod process;
mod registry;

pub use idsbench_core::{PacketStream, ScenarioScale, TrafficModel};
pub use process::{component_seed, CampaignModel, CampaignStream, Process, ProcessFactory};
pub use registry::{registry, spec, table4_models, ScenarioSpec, Tier, HORIZON_SECS, WARMUP_SECS};
