//! The streaming engine: [`Process`] state machines merged by a
//! [`CampaignStream`] into one timestamp-ordered packet stream.
//!
//! A realisation is never materialised. Each process is a small state
//! machine that emits the *next* burst of its traffic on demand; the stream
//! keeps a heap of not-yet-released packets and releases one only when no
//! live process can still emit an earlier one. Memory is bounded by the
//! workload's concurrency (active sessions and burst sizes), not its
//! length — the property the `TrafficModel` contract demands.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use idsbench_core::{DatasetInfo, LabeledPacket, PacketStream, TrafficModel};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// One traffic state machine inside a campaign.
///
/// The contract the merge relies on:
///
/// * Every packet an `emit` call produces has a timestamp `>=` the
///   process's `next_at` at the time of the call.
/// * `next_at` is non-decreasing across `emit` calls, and `None` once the
///   process has finished.
/// * Each `emit` call makes progress: it emits packets, advances
///   `next_at`, or finishes.
pub trait Process: Send + std::fmt::Debug {
    /// Short name used in diagnostics.
    fn name(&self) -> &'static str;

    /// The earliest traffic time (seconds) at which this process may still
    /// emit a packet; `None` once it has finished.
    fn next_at(&self) -> Option<f64>;

    /// Appends the process's next burst of packets to `out`.
    fn emit(&mut self, rng: &mut SmallRng, out: &mut Vec<LabeledPacket>);
}

/// Spawns one fresh [`Process`] per realisation.
///
/// Every cloneable process is automatically its own factory: the value held
/// by the model *is* the initial state, and each realisation starts from a
/// clone of it.
pub trait ProcessFactory: Send + Sync + std::fmt::Debug {
    /// Creates the process in its initial state.
    fn spawn(&self) -> Box<dyn Process>;
}

impl<P: Process + Clone + Sync + 'static> ProcessFactory for P {
    fn spawn(&self) -> Box<dyn Process> {
        Box::new(self.clone())
    }
}

/// A buffered packet awaiting release, ordered by `(timestamp, arrival)`.
struct Pending {
    ts_micros: u64,
    order: u64,
    packet: LabeledPacket,
}

impl PartialEq for Pending {
    fn eq(&self, other: &Self) -> bool {
        self.ts_micros == other.ts_micros && self.order == other.order
    }
}

impl Eq for Pending {}

impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Pending {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.ts_micros, self.order).cmp(&(other.ts_micros, other.order))
    }
}

/// The k-way merge over a campaign's processes — the iterator behind every
/// [`CampaignModel`] stream.
pub struct CampaignStream {
    processes: Vec<(Box<dyn Process>, SmallRng)>,
    heap: BinaryHeap<Reverse<Pending>>,
    order: u64,
    scratch: Vec<LabeledPacket>,
}

impl std::fmt::Debug for CampaignStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CampaignStream")
            .field("processes", &self.processes.len())
            .field("buffered", &self.heap.len())
            .finish()
    }
}

impl CampaignStream {
    /// Builds the merge over already-seeded processes.
    pub fn new(processes: Vec<(Box<dyn Process>, SmallRng)>) -> Self {
        CampaignStream { processes, heap: BinaryHeap::new(), order: 0, scratch: Vec::new() }
    }

    /// Index and time of the live process with the earliest `next_at`.
    fn frontier(&self) -> Option<(usize, f64)> {
        let mut best: Option<(usize, f64)> = None;
        for (i, (p, _)) in self.processes.iter().enumerate() {
            if let Some(at) = p.next_at() {
                if best.map_or(true, |(_, t)| at < t) {
                    best = Some((i, at));
                }
            }
        }
        best
    }
}

impl Iterator for CampaignStream {
    type Item = LabeledPacket;

    fn next(&mut self) -> Option<LabeledPacket> {
        loop {
            match self.frontier() {
                None => return self.heap.pop().map(|Reverse(p)| p.packet),
                Some((index, at)) => {
                    // Release the buffered minimum once no live process can
                    // still emit an earlier packet (future packets all have
                    // ts >= the frontier).
                    let frontier_micros = idsbench_net::Timestamp::from_secs_f64(at).as_micros();
                    if let Some(Reverse(min)) = self.heap.peek() {
                        if min.ts_micros <= frontier_micros {
                            return self.heap.pop().map(|Reverse(p)| p.packet);
                        }
                    }
                    let (process, rng) = &mut self.processes[index];
                    debug_assert!(self.scratch.is_empty());
                    process.emit(rng, &mut self.scratch);
                    let advanced = process.next_at() != Some(at);
                    debug_assert!(
                        advanced || !self.scratch.is_empty(),
                        "process {} made no progress at t={at}",
                        process.name()
                    );
                    for packet in self.scratch.drain(..) {
                        debug_assert!(
                            packet.packet.ts.as_micros() >= frontier_micros,
                            "packet before the process's own next_at"
                        );
                        self.heap.push(Reverse(Pending {
                            ts_micros: packet.packet.ts.as_micros(),
                            order: self.order,
                            packet,
                        }));
                        self.order += 1;
                    }
                }
            }
        }
    }
}

/// Derives a decorrelated per-component seed — the same convention the
/// legacy `Scenario` applies to its generators, so reordering components
/// never perturbs a neighbour's stream.
pub fn component_seed(seed: u64, index: usize) -> u64 {
    seed.wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add((index as u64 + 1).wrapping_mul(0xd1b5_4a32_d192_ed03))
}

/// A named, seeded composition of [`Process`] factories — the natively
/// streaming [`TrafficModel`] every trafficgen scenario is built from.
#[derive(Debug)]
pub struct CampaignModel {
    info: DatasetInfo,
    factories: Vec<Box<dyn ProcessFactory>>,
}

impl CampaignModel {
    /// Builds a model from its components.
    ///
    /// # Panics
    ///
    /// Panics if no factories are given.
    pub fn new(info: DatasetInfo, factories: Vec<Box<dyn ProcessFactory>>) -> Self {
        assert!(!factories.is_empty(), "campaign needs at least one process");
        CampaignModel { info, factories }
    }

    /// Number of component processes.
    pub fn components(&self) -> usize {
        self.factories.len()
    }
}

impl TrafficModel for CampaignModel {
    fn info(&self) -> &DatasetInfo {
        &self.info
    }

    fn stream(&self, seed: u64) -> PacketStream {
        let processes = self
            .factories
            .iter()
            .enumerate()
            .map(|(i, f)| (f.spawn(), SmallRng::seed_from_u64(component_seed(seed, i))))
            .collect();
        Box::new(CampaignStream::new(processes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idsbench_core::Label;
    use idsbench_net::{Packet, Timestamp};
    use rand::Rng;

    /// Emits `count` packets, one per emit call, `step` seconds apart.
    #[derive(Debug, Clone)]
    struct Metronome {
        start: f64,
        step: f64,
        count: usize,
        emitted: usize,
    }

    impl Process for Metronome {
        fn name(&self) -> &'static str {
            "metronome"
        }

        fn next_at(&self) -> Option<f64> {
            (self.emitted < self.count).then_some(self.start + self.emitted as f64 * self.step)
        }

        fn emit(&mut self, rng: &mut SmallRng, out: &mut Vec<LabeledPacket>) {
            let t = self.start + self.emitted as f64 * self.step;
            let jitter: u64 = rng.random_range(0..100);
            out.push(LabeledPacket::new(
                Packet::new(
                    Timestamp::from_micros(Timestamp::from_secs_f64(t).as_micros() + jitter),
                    vec![0u8; 60],
                ),
                Label::Benign,
            ));
            self.emitted += 1;
        }
    }

    fn model() -> CampaignModel {
        CampaignModel::new(
            DatasetInfo::new("interleaved", "", "", 2026),
            vec![
                Box::new(Metronome { start: 0.0, step: 0.5, count: 20, emitted: 0 }),
                Box::new(Metronome { start: 0.1, step: 0.3, count: 30, emitted: 0 }),
                Box::new(Metronome { start: 5.0, step: 1.0, count: 5, emitted: 0 }),
            ],
        )
    }

    #[test]
    fn merge_interleaves_in_timestamp_order() {
        let packets: Vec<_> = model().stream(3).collect();
        assert_eq!(packets.len(), 55);
        for pair in packets.windows(2) {
            assert!(pair[0].packet.ts <= pair[1].packet.ts, "stream must be sorted");
        }
    }

    #[test]
    fn stream_is_seed_deterministic() {
        let m = model();
        assert_eq!(m.materialize(9), m.materialize(9));
        assert_ne!(m.materialize(9), m.materialize(10));
    }

    #[test]
    fn component_seeds_are_decorrelated() {
        assert_ne!(component_seed(1, 0), component_seed(1, 1));
        assert_ne!(component_seed(1, 0), component_seed(2, 0));
    }
}
