//! The scenario registry: every workload the benches can run, by name.
//!
//! A [`ScenarioSpec`] maps a stable name to a [`TrafficModel`] builder at a
//! chosen [`ScenarioScale`], plus the warmup horizon a streaming run should
//! train/calibrate on. The six native specs cover the three adversarial
//! tiers (trace-shaped benign, volumetric floods/scans, multi-stage
//! campaigns); the five `Legacy` specs re-express the Table II dataset
//! scenarios on the same contract, so batch, stream, fabric, and trafficgen
//! consumers all draw from one catalogue.

use idsbench_core::{DatasetInfo, ScenarioScale, TrafficModel};
use idsbench_datasets::{scenarios, Host, HostPool};

use crate::benign::{VideoSlot, VoipSlot, WebSlot};
use crate::campaign::{Pace, StagedCampaign};
use crate::flood::{Flood, FloodKind, HostSweep, PortScanWave};
use crate::process::{CampaignModel, ProcessFactory};

/// Which tier of the workload library a scenario belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Trace-shaped benign mixes (no attacks).
    Benign,
    /// Volumetric floods and scans over a benign bed.
    Volumetric,
    /// Multi-stage evasion campaigns over a benign bed.
    Campaign,
    /// A Table II dataset scenario re-expressed on the streaming contract.
    Legacy,
}

impl Tier {
    /// Stable lowercase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Tier::Benign => "benign",
            Tier::Volumetric => "volumetric",
            Tier::Campaign => "campaign",
            Tier::Legacy => "legacy",
        }
    }
}

/// One registry entry: a named scenario builder.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioSpec {
    /// Stable scenario name (report key).
    pub name: &'static str,
    /// Workload tier.
    pub tier: Tier,
    /// One-line description.
    pub summary: &'static str,
    /// Traffic seconds a streaming run should treat as warmup: the leading
    /// attack-free span every native scenario guarantees. Legacy scenarios
    /// interleave attacks from t=0 and use fraction-based splits instead.
    pub warmup_secs: f64,
    builder: fn(ScenarioScale) -> Box<dyn TrafficModel>,
}

impl ScenarioSpec {
    /// Builds the scenario's model at `scale`.
    pub fn build(&self, scale: ScenarioScale) -> Box<dyn TrafficModel> {
        (self.builder)(scale)
    }
}

/// Traffic seconds every native scenario runs for.
pub const HORIZON_SECS: f64 = 90.0;

/// Warmup span of the native scenarios: attacks start strictly after this.
pub const WARMUP_SECS: f64 = 30.0;

/// Earliest traffic time adversarial processes may start.
const ATTACK_START: f64 = 40.0;

/// Scaled count: `full` slots at `Full`, proportionally fewer below, and
/// never zero.
fn slots(scale: ScenarioScale, full: f64) -> usize {
    ((full * scale.factor()).round() as usize).max(1)
}

/// The shared benign bed: VOIP, video, and web session slots over one
/// client subnet — many concurrent heavy-tailed streams per client mix.
fn benign_bed(scale: ScenarioScale) -> Vec<Box<dyn ProcessFactory>> {
    let clients = HostPool::subnet(1, 24);
    let voip_gw = Host::new(2, 1);
    let cdn = Host::external(40);
    let web = Host::external(41);
    let mut out: Vec<Box<dyn ProcessFactory>> = Vec::new();
    for i in 0..slots(scale, 6.0) {
        let start = i as f64 * 0.37;
        out.push(Box::new(VoipSlot::new(clients.get(i), voip_gw, start, 7.0, HORIZON_SECS)));
    }
    for i in 0..slots(scale, 6.0) {
        let start = i as f64 * 0.53;
        out.push(Box::new(VideoSlot::new(clients.get(6 + i), cdn, start, 9.0, HORIZON_SECS)));
    }
    for i in 0..slots(scale, 10.0) {
        let start = i as f64 * 0.29;
        out.push(Box::new(WebSlot::new(clients.get(12 + i), web, start, 2.5, HORIZON_SECS)));
    }
    out
}

fn info(name: &str, characteristics: &str) -> DatasetInfo {
    DatasetInfo::new(name, characteristics, "idsbench-trafficgen adversarial workload", 2026)
}

fn benign_mix(scale: ScenarioScale) -> Box<dyn TrafficModel> {
    Box::new(CampaignModel::new(
        info("benign-mix", "VOIP/video/web mix, heavy-tailed sessions, no attacks"),
        benign_bed(scale),
    ))
}

fn syn_burst(scale: ScenarioScale) -> Box<dyn TrafficModel> {
    let mut components = benign_bed(scale);
    components.push(Box::new(Flood::new(
        FloodKind::Syn,
        Host::external(9),
        HostPool::from_hosts(vec![Host::new(1, 1)]),
        160.0 * scale.factor().max(0.2),
        80,
        1,
        true,
        ATTACK_START,
        30.0,
    )));
    Box::new(CampaignModel::new(
        info("syn-burst", "spoofed single-target SYN flood over the benign bed"),
        components,
    ))
}

fn udp_storm(scale: ScenarioScale) -> Box<dyn TrafficModel> {
    let mut components = benign_bed(scale);
    components.push(Box::new(Flood::new(
        FloodKind::Udp,
        Host::external(10),
        HostPool::subnet(1, 4),
        140.0 * scale.factor().max(0.2),
        1024,
        2048,
        true,
        ATTACK_START,
        30.0,
    )));
    components.push(Box::new(Flood::new(
        FloodKind::Icmp,
        Host::external(11),
        HostPool::from_hosts(vec![Host::new(1, 2)]),
        60.0 * scale.factor().max(0.2),
        0,
        1,
        false,
        ATTACK_START + 5.0,
        20.0,
    )));
    Box::new(CampaignModel::new(
        info("udp-storm", "spoofed wide-port UDP flood plus an ICMP echo flood"),
        components,
    ))
}

fn scan_wave(scale: ScenarioScale) -> Box<dyn TrafficModel> {
    let mut components = benign_bed(scale);
    let ports = (400.0 * scale.factor()).round().max(60.0) as u16;
    components.push(Box::new(PortScanWave::new(
        Host::external(12),
        Host::new(1, 3),
        ports,
        0.06,
        ATTACK_START,
    )));
    components.push(Box::new(HostSweep::new(
        Host::external(13),
        HostPool::subnet(1, 24),
        23,
        0.4,
        ATTACK_START + 8.0,
    )));
    Box::new(CampaignModel::new(
        info("scan-wave", "vertical port scan and a horizontal telnet sweep"),
        components,
    ))
}

fn campaign_components(scale: ScenarioScale, pace: Pace) -> Vec<Box<dyn ProcessFactory>> {
    let mut components = benign_bed(scale);
    components.push(Box::new(StagedCampaign::new(
        Host::external(14),
        Host::external(210),
        HostPool::subnet(1, 12),
        ATTACK_START,
        pace,
    )));
    components
}

fn stealth_campaign(scale: ScenarioScale) -> Box<dyn TrafficModel> {
    Box::new(CampaignModel::new(
        info("stealth-campaign", "recon → foothold → lateral movement → exfiltration"),
        campaign_components(scale, Pace::Brisk),
    ))
}

fn lowslow_campaign(scale: ScenarioScale) -> Box<dyn TrafficModel> {
    Box::new(CampaignModel::new(
        info("lowslow-campaign", "the staged campaign with every gap stretched ~12×"),
        campaign_components(scale, Pace::LowSlow),
    ))
}

/// Every scenario the workload library ships, native tiers first.
pub fn registry() -> Vec<ScenarioSpec> {
    vec![
        ScenarioSpec {
            name: "benign-mix",
            tier: Tier::Benign,
            summary: "VOIP/video/web mix with heavy-tailed sessions and no attacks",
            warmup_secs: WARMUP_SECS,
            builder: benign_mix,
        },
        ScenarioSpec {
            name: "syn-burst",
            tier: Tier::Volumetric,
            summary: "Spoofed single-target SYN flood over the benign bed",
            warmup_secs: WARMUP_SECS,
            builder: syn_burst,
        },
        ScenarioSpec {
            name: "udp-storm",
            tier: Tier::Volumetric,
            summary: "Spoofed wide-port UDP flood plus an ICMP echo flood",
            warmup_secs: WARMUP_SECS,
            builder: udp_storm,
        },
        ScenarioSpec {
            name: "scan-wave",
            tier: Tier::Volumetric,
            summary: "Vertical port scan and a horizontal telnet sweep",
            warmup_secs: WARMUP_SECS,
            builder: scan_wave,
        },
        ScenarioSpec {
            name: "stealth-campaign",
            tier: Tier::Campaign,
            summary: "Recon, foothold, lateral movement, exfiltration — brisk",
            warmup_secs: WARMUP_SECS,
            builder: stealth_campaign,
        },
        ScenarioSpec {
            name: "lowslow-campaign",
            tier: Tier::Campaign,
            summary: "The staged campaign, low-and-slow (~12× stretched gaps)",
            warmup_secs: WARMUP_SECS,
            builder: lowslow_campaign,
        },
        ScenarioSpec {
            name: "unsw-nb15",
            tier: Tier::Legacy,
            summary: "Table II UNSW-NB15 calibrated scenario",
            warmup_secs: 0.0,
            builder: |scale| Box::new(scenarios::unsw_nb15(scale)),
        },
        ScenarioSpec {
            name: "bot-iot",
            tier: Tier::Legacy,
            summary: "Table II BoT-IoT calibrated scenario",
            warmup_secs: 0.0,
            builder: |scale| Box::new(scenarios::bot_iot(scale)),
        },
        ScenarioSpec {
            name: "cicids2017",
            tier: Tier::Legacy,
            summary: "Table II CICIDS2017 calibrated scenario",
            warmup_secs: 0.0,
            builder: |scale| Box::new(scenarios::cicids2017(scale)),
        },
        ScenarioSpec {
            name: "stratosphere-iot",
            tier: Tier::Legacy,
            summary: "Table II Stratosphere IoT calibrated scenario",
            warmup_secs: 0.0,
            builder: |scale| Box::new(scenarios::stratosphere_iot(scale)),
        },
        ScenarioSpec {
            name: "mirai",
            tier: Tier::Legacy,
            summary: "Table II Mirai calibrated scenario",
            warmup_secs: 0.0,
            builder: |scale| Box::new(scenarios::mirai(scale)),
        },
    ]
}

/// The five Table IV dataset scenarios, in row order, as boxed models —
/// what the bench harness's `standard_scenarios` is built on.
pub fn table4_models(scale: ScenarioScale) -> Vec<Box<dyn TrafficModel>> {
    registry().into_iter().filter(|s| s.tier == Tier::Legacy).map(|s| s.build(scale)).collect()
}

/// Looks a spec up by name.
pub fn spec(name: &str) -> Option<ScenarioSpec> {
    registry().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_lookup_works() {
        let specs = registry();
        let mut names: Vec<_> = specs.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), specs.len(), "duplicate scenario names");
        assert!(spec("syn-burst").is_some());
        assert!(spec("nope").is_none());
    }

    #[test]
    fn registry_covers_all_tiers() {
        let specs = registry();
        for tier in [Tier::Benign, Tier::Volumetric, Tier::Campaign, Tier::Legacy] {
            assert!(specs.iter().any(|s| s.tier == tier), "missing tier {}", tier.name());
        }
        assert!(specs.iter().filter(|s| s.tier != Tier::Legacy).count() >= 6);
    }

    #[test]
    fn native_scenarios_keep_the_warmup_attack_free() {
        for spec in registry().into_iter().filter(|s| s.tier != Tier::Legacy) {
            let model = spec.build(ScenarioScale::Tiny);
            let mut saw_warmup_packet = false;
            for packet in model.stream(11) {
                let t = packet.packet.ts.as_secs_f64();
                if t < spec.warmup_secs {
                    saw_warmup_packet = true;
                    assert!(!packet.is_attack(), "{}: attack at t={t} inside warmup", spec.name);
                }
            }
            assert!(saw_warmup_packet, "{}: empty warmup span", spec.name);
        }
    }

    #[test]
    fn model_names_match_spec_names() {
        for spec in registry().into_iter().filter(|s| s.tier != Tier::Legacy) {
            let model = spec.build(ScenarioScale::Tiny);
            assert_eq!(model.info().name, spec.name);
        }
    }
}
