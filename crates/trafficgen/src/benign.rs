//! Trace-shaped benign processes: VOIP, video, and web session slots.
//!
//! Each process models one *session slot* of a client — an endless
//! idle/session alternation with heavy-tailed (bounded-Pareto) session
//! durations and Poisson idle gaps, truncated at the scenario horizon.
//! Concurrency comes from spawning many slots per client mix; the
//! [`CampaignStream`](crate::CampaignStream) merge interleaves them, so at
//! any moment the stream carries many concurrent sessions without any
//! process holding more than its current burst in memory.

use idsbench_core::{Label, LabeledPacket};
use idsbench_datasets::{exponential_gap, pareto, Host, SessionEmitter};
use rand::rngs::SmallRng;
use rand::Rng;

use crate::process::Process;

/// One VOIP call slot: idle gaps, then RTP-like UDP media (50 packets/s
/// each direction, 172-byte payloads) emitted in one-second chunks, with
/// call durations drawn from a bounded Pareto.
#[derive(Debug, Clone)]
pub struct VoipSlot {
    /// Calling endpoint.
    pub client: Host,
    /// Media gateway / callee.
    pub server: Host,
    /// Mean idle time between calls, seconds.
    pub mean_idle: f64,
    /// No new call starts at or after this traffic time.
    pub horizon: f64,
    t: f64,
    remaining_call: f64,
    sport: u16,
    done: bool,
}

impl VoipSlot {
    /// Creates an idle slot starting at `start`.
    pub fn new(client: Host, server: Host, start: f64, mean_idle: f64, horizon: f64) -> Self {
        VoipSlot {
            client,
            server,
            mean_idle,
            horizon,
            t: start,
            remaining_call: 0.0,
            sport: 0,
            done: false,
        }
    }
}

impl Process for VoipSlot {
    fn name(&self) -> &'static str {
        "voip"
    }

    fn next_at(&self) -> Option<f64> {
        (!self.done).then_some(self.t)
    }

    fn emit(&mut self, rng: &mut SmallRng, out: &mut Vec<LabeledPacket>) {
        if self.remaining_call <= 0.0 {
            self.t += exponential_gap(rng, self.mean_idle);
            if self.t >= self.horizon {
                self.done = true;
                return;
            }
            self.remaining_call = pareto(rng, 4.0, 1.2, 90.0);
            self.sport = rng.random_range(16_384..32_768);
            return;
        }
        // One second of media (or the tail of the call), both directions.
        let span = self.remaining_call.min(1.0).min((self.horizon - self.t).max(0.05));
        let mut em = SessionEmitter::new(out, Label::Benign);
        let frames = (span * 25.0).ceil() as usize;
        for i in 0..frames {
            let ts = self.t + i as f64 * 0.04 + rng.random_range(0.0..0.004);
            em.udp_packet(self.client, self.server, self.sport, 7078, 172, ts);
            em.udp_packet(self.server, self.client, 7078, self.sport, 172, ts + 0.005);
        }
        self.t += span;
        self.remaining_call -= span;
        if self.t >= self.horizon {
            self.done = true;
        }
    }
}

/// One video-streaming slot: idle gaps, then a TCP session fetching a
/// heavy-tailed number of segments (DASH-shaped request/response bursts).
#[derive(Debug, Clone)]
pub struct VideoSlot {
    /// Viewing client.
    pub client: Host,
    /// CDN edge.
    pub server: Host,
    /// Mean idle time between viewing sessions, seconds.
    pub mean_idle: f64,
    /// No new session starts at or after this traffic time.
    pub horizon: f64,
    t: f64,
    done: bool,
}

impl VideoSlot {
    /// Creates an idle slot starting at `start`.
    pub fn new(client: Host, server: Host, start: f64, mean_idle: f64, horizon: f64) -> Self {
        VideoSlot { client, server, mean_idle, horizon, t: start, done: false }
    }
}

impl Process for VideoSlot {
    fn name(&self) -> &'static str {
        "video"
    }

    fn next_at(&self) -> Option<f64> {
        (!self.done).then_some(self.t)
    }

    fn emit(&mut self, rng: &mut SmallRng, out: &mut Vec<LabeledPacket>) {
        self.t += exponential_gap(rng, self.mean_idle);
        if self.t >= self.horizon {
            self.done = true;
            return;
        }
        let segments = pareto(rng, 2.0, 1.4, 8.0) as usize;
        let exchanges: Vec<(usize, usize)> = (0..segments.max(1))
            .map(|_| (400, pareto(rng, 15_000.0, 1.3, 80_000.0) as usize))
            .collect();
        let sport = rng.random_range(32_768..61_000);
        let mut em = SessionEmitter::new(out, Label::Benign);
        self.t = em.tcp_session(self.client, self.server, sport, 443, self.t, &exchanges, 1.0, rng);
        if self.t >= self.horizon {
            self.done = true;
        }
    }
}

/// One web-browsing slot: think-time gaps, then a short HTTP-shaped TCP
/// session with a handful of heavy-tailed responses.
#[derive(Debug, Clone)]
pub struct WebSlot {
    /// Browsing client.
    pub client: Host,
    /// Web server.
    pub server: Host,
    /// Mean think time between page loads, seconds.
    pub mean_think: f64,
    /// No new page load starts at or after this traffic time.
    pub horizon: f64,
    t: f64,
    done: bool,
}

impl WebSlot {
    /// Creates an idle slot starting at `start`.
    pub fn new(client: Host, server: Host, start: f64, mean_think: f64, horizon: f64) -> Self {
        WebSlot { client, server, mean_think, horizon, t: start, done: false }
    }
}

impl Process for WebSlot {
    fn name(&self) -> &'static str {
        "web"
    }

    fn next_at(&self) -> Option<f64> {
        (!self.done).then_some(self.t)
    }

    fn emit(&mut self, rng: &mut SmallRng, out: &mut Vec<LabeledPacket>) {
        self.t += exponential_gap(rng, self.mean_think);
        if self.t >= self.horizon {
            self.done = true;
            return;
        }
        let requests = rng.random_range(1..=3);
        let exchanges: Vec<(usize, usize)> = (0..requests)
            .map(|_| (rng.random_range(200..800), pareto(rng, 2_000.0, 1.2, 120_000.0) as usize))
            .collect();
        let sport = rng.random_range(32_768..61_000);
        let mut em = SessionEmitter::new(out, Label::Benign);
        self.t = em.tcp_session(self.client, self.server, sport, 80, self.t, &exchanges, 0.3, rng);
        if self.t >= self.horizon {
            self.done = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn drain(mut p: impl Process) -> Vec<LabeledPacket> {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut out = Vec::new();
        while p.next_at().is_some() {
            p.emit(&mut rng, &mut out);
        }
        out
    }

    #[test]
    fn voip_slot_emits_paced_media_and_finishes() {
        let packets = drain(VoipSlot::new(Host::new(1, 1), Host::new(1, 2), 0.0, 3.0, 30.0));
        assert!(!packets.is_empty());
        assert!(packets.iter().all(|p| !p.is_attack()));
        // RTP frames are small and fixed-size.
        assert!(packets.iter().all(|p| p.packet.data.len() < 300));
    }

    #[test]
    fn video_sessions_are_heavy_tailed_but_bounded() {
        let packets = drain(VideoSlot::new(Host::new(1, 3), Host::new(2, 1), 0.0, 4.0, 40.0));
        assert!(!packets.is_empty());
        assert!(packets.iter().all(|p| !p.is_attack()));
    }

    #[test]
    fn web_slot_respects_the_horizon() {
        let packets = drain(WebSlot::new(Host::new(1, 4), Host::new(2, 2), 0.0, 2.0, 25.0));
        assert!(!packets.is_empty());
        let last = packets.iter().map(|p| p.packet.ts.as_secs_f64()).fold(0.0, f64::max);
        // Sessions may run a little past the horizon but never start after.
        assert!(last < 60.0);
    }
}
