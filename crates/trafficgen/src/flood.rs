//! Volumetric floods and scans with tunable rate, port spread, and target
//! spread — tier (b) of the workload library.

use idsbench_core::{AttackKind, Label, LabeledPacket};
use idsbench_datasets::{exponential_gap, Host, HostPool, SessionEmitter};
use rand::rngs::SmallRng;
use rand::Rng;

use crate::process::Process;

/// Which flood primitive a [`Flood`] process emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FloodKind {
    /// Bare TCP SYNs, never completed.
    Syn,
    /// UDP datagrams with junk payloads.
    Udp,
    /// ICMP echo requests.
    Icmp,
}

impl FloodKind {
    /// The attack family the flood's packets are labeled with.
    pub fn attack_kind(self) -> AttackKind {
        match self {
            FloodKind::Syn => AttackKind::SynFlood,
            FloodKind::Udp => AttackKind::UdpFlood,
            FloodKind::Icmp => AttackKind::IcmpFlood,
        }
    }
}

/// A rate-controlled volumetric flood: Poisson packet arrivals at `rate`
/// packets/second for `duration` seconds, spread over `targets` and a
/// destination-port window, optionally with spoofed source addresses.
/// Emitted in ~100 ms chunks so memory stays bounded at any rate.
#[derive(Debug, Clone)]
pub struct Flood {
    /// Flood primitive.
    pub kind: FloodKind,
    /// The real attacking host (its MAC stays on spoofed packets, as a LAN
    /// capture would see).
    pub attacker: Host,
    /// Victim pool — `len()` is the target spread.
    pub targets: HostPool,
    /// Packets per second.
    pub rate: f64,
    /// Destination ports are drawn from `base_port..base_port+port_spread`.
    pub base_port: u16,
    /// Width of the destination-port window (min 1).
    pub port_spread: u16,
    /// Randomise the source address per packet.
    pub spoofed: bool,
    /// Traffic time the flood starts.
    pub start: f64,
    /// Flood length, seconds.
    pub duration: f64,
    t: f64,
    icmp_seq: u16,
    started: bool,
}

impl Flood {
    /// Creates the flood; packet emission begins at `start`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        kind: FloodKind,
        attacker: Host,
        targets: HostPool,
        rate: f64,
        base_port: u16,
        port_spread: u16,
        spoofed: bool,
        start: f64,
        duration: f64,
    ) -> Self {
        Flood {
            kind,
            attacker,
            targets,
            rate,
            base_port,
            port_spread,
            spoofed,
            start,
            duration,
            t: start,
            icmp_seq: 0,
            started: false,
        }
    }

    fn end(&self) -> f64 {
        self.start + self.duration
    }
}

impl Process for Flood {
    fn name(&self) -> &'static str {
        match self.kind {
            FloodKind::Syn => "syn-flood",
            FloodKind::Udp => "udp-flood",
            FloodKind::Icmp => "icmp-flood",
        }
    }

    fn next_at(&self) -> Option<f64> {
        (self.t < self.end() || !self.started).then_some(self.t)
    }

    fn emit(&mut self, rng: &mut SmallRng, out: &mut Vec<LabeledPacket>) {
        self.started = true;
        let chunk_end = (self.t + 0.1).min(self.end());
        let mut em = SessionEmitter::new(out, Label::Attack(self.kind.attack_kind()));
        while self.t < chunk_end {
            let src =
                if self.spoofed { Host::spoofed(self.attacker.mac, rng) } else { self.attacker };
            let dst = self.targets.pick(rng);
            let dport = self.base_port.wrapping_add(rng.random_range(0..self.port_spread.max(1)));
            match self.kind {
                FloodKind::Syn => {
                    // Bare SYN, no answer: half-open connection pressure.
                    em.syn_probe(
                        src,
                        dst,
                        rng.random_range(1024..u16::MAX),
                        dport,
                        self.t,
                        0.0,
                        rng,
                    );
                }
                FloodKind::Udp => {
                    let len = rng.random_range(64..1200);
                    em.udp_packet(src, dst, rng.random_range(1024..u16::MAX), dport, len, self.t);
                }
                FloodKind::Icmp => {
                    em.icmp_echo(src, dst, self.icmp_seq, self.t);
                    self.icmp_seq = self.icmp_seq.wrapping_add(1);
                }
            }
            self.t += exponential_gap(rng, 1.0 / self.rate);
        }
        self.t = self.t.max(chunk_end);
    }
}

/// A vertical port scan: one attacker probes `ports` consecutive ports of
/// one victim, pacing probes `gap` seconds apart; closed ports answer with
/// RST. Labeled [`AttackKind::PortScan`].
#[derive(Debug, Clone)]
pub struct PortScanWave {
    /// Scanning host.
    pub attacker: Host,
    /// Scanned victim.
    pub target: Host,
    /// Number of consecutive ports probed, starting at 1.
    pub ports: u16,
    /// Seconds between probes.
    pub gap: f64,
    /// Traffic time of the first probe.
    pub start: f64,
    t: f64,
    next_port: u16,
}

impl PortScanWave {
    /// Creates the scan; the first probe fires at `start`.
    pub fn new(attacker: Host, target: Host, ports: u16, gap: f64, start: f64) -> Self {
        PortScanWave { attacker, target, ports, gap, start, t: start, next_port: 1 }
    }
}

impl Process for PortScanWave {
    fn name(&self) -> &'static str {
        "port-scan"
    }

    fn next_at(&self) -> Option<f64> {
        (self.next_port <= self.ports).then_some(self.t)
    }

    fn emit(&mut self, rng: &mut SmallRng, out: &mut Vec<LabeledPacket>) {
        let mut em = SessionEmitter::new(out, Label::Attack(AttackKind::PortScan));
        for _ in 0..16 {
            if self.next_port > self.ports {
                break;
            }
            let sport = rng.random_range(40_000..60_000);
            em.syn_probe(self.attacker, self.target, sport, self.next_port, self.t, 0.85, rng);
            self.next_port += 1;
            self.t += self.gap * rng.random_range(0.6..1.4);
        }
    }
}

/// A horizontal sweep: one attacker probes the same port across a whole
/// victim pool. Labeled [`AttackKind::AddressSweep`].
#[derive(Debug, Clone)]
pub struct HostSweep {
    /// Sweeping host.
    pub attacker: Host,
    /// Swept subnet — `len()` is the target spread.
    pub targets: HostPool,
    /// The one probed port (e.g. 23 for telnet sweeps).
    pub port: u16,
    /// Seconds between probes.
    pub gap: f64,
    /// Traffic time of the first probe.
    pub start: f64,
    t: f64,
    next_host: usize,
}

impl HostSweep {
    /// Creates the sweep; the first probe fires at `start`.
    pub fn new(attacker: Host, targets: HostPool, port: u16, gap: f64, start: f64) -> Self {
        HostSweep { attacker, targets, port, gap, start, t: start, next_host: 0 }
    }
}

impl Process for HostSweep {
    fn name(&self) -> &'static str {
        "host-sweep"
    }

    fn next_at(&self) -> Option<f64> {
        (self.next_host < self.targets.len()).then_some(self.t)
    }

    fn emit(&mut self, rng: &mut SmallRng, out: &mut Vec<LabeledPacket>) {
        let mut em = SessionEmitter::new(out, Label::Attack(AttackKind::AddressSweep));
        for _ in 0..16 {
            if self.next_host >= self.targets.len() {
                break;
            }
            let dst = self.targets.get(self.next_host);
            let sport = rng.random_range(40_000..60_000);
            em.syn_probe(self.attacker, dst, sport, self.port, self.t, 0.6, rng);
            self.next_host += 1;
            self.t += self.gap * rng.random_range(0.6..1.4);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn drain(mut p: impl Process) -> Vec<LabeledPacket> {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut out = Vec::new();
        while p.next_at().is_some() {
            p.emit(&mut rng, &mut out);
        }
        out
    }

    #[test]
    fn flood_hits_its_rate_and_window() {
        let flood = Flood::new(
            FloodKind::Syn,
            Host::external(9),
            HostPool::subnet(1, 1),
            200.0,
            80,
            1,
            true,
            10.0,
            5.0,
        );
        let packets = drain(flood);
        let n = packets.len() as f64;
        assert!((n - 1000.0).abs() < 250.0, "≈200 pps × 5 s, got {n}");
        assert!(packets.iter().all(|p| p.is_attack()));
        let (lo, hi) = packets
            .iter()
            .map(|p| p.packet.ts.as_secs_f64())
            .fold((f64::INFINITY, 0.0f64), |(lo, hi), t| (lo.min(t), hi.max(t)));
        assert!(lo >= 10.0 && hi <= 15.2, "window [{lo}, {hi}]");
    }

    #[test]
    fn flood_kinds_map_to_families() {
        assert_eq!(FloodKind::Syn.attack_kind().name(), "syn-flood");
        assert_eq!(FloodKind::Udp.attack_kind().name(), "udp-flood");
        assert_eq!(FloodKind::Icmp.attack_kind().name(), "icmp-flood");
    }

    #[test]
    fn port_scan_covers_every_port_once() {
        let scan = PortScanWave::new(Host::external(3), Host::new(1, 7), 50, 0.05, 0.0);
        let packets = drain(scan);
        // 50 probes plus RST answers from closed ports.
        assert!(packets.len() >= 50);
        assert!(packets.iter().all(|p| p.is_attack()));
    }

    #[test]
    fn host_sweep_touches_the_whole_pool() {
        let sweep = HostSweep::new(Host::external(4), HostPool::subnet(2, 20), 23, 0.1, 1.0);
        let packets = drain(sweep);
        assert!(packets.len() >= 20);
        assert!(packets.iter().all(|p| p.is_attack()));
    }
}
