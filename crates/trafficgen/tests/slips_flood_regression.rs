//! Pins the root-caused Slips syn-flood result: **zero recall on the
//! spoofed single-target SYN flood is faithful behaviour, not a bug.**
//!
//! Slips accumulates evidence per source profile and per time window. The
//! `syn-burst` scenario spoofs every source address, so no profile ever
//! sees a second flow: the vertical-scan counter stays at one port, the
//! sweep counter at one host, and every flood flow scores zero evidence —
//! exactly the mechanism behind the paper's Table IV Slips/BoT-IoT recall
//! of 0.0000 (volumetric spoofed floods dominate BoT-IoT). The same
//! detector, same configuration, and same threshold *does* alert on the
//! unanswered-scan scenario, where evidence can accumulate on the real
//! scanning profile — so the zero is attribution, not blindness.

use idsbench_core::{EventDetector, ScenarioScale};
use idsbench_slips::Slips;
use idsbench_stream::{run_stream, ScenarioSource, StreamConfig, ThresholdMode};
use idsbench_trafficgen::spec;

fn slips_family_outcomes(scenario: &str) -> Vec<idsbench_core::metrics::FamilyOutcome> {
    let spec = spec(scenario).expect("registered scenario");
    let model = spec.build(ScenarioScale::Tiny);
    let (warmup, source) =
        ScenarioSource::new(model.as_ref(), 42).split_warmup_secs(spec.warmup_secs);
    let config = StreamConfig { threshold: ThresholdMode::Fixed(0.3), ..Default::default() };
    let run = run_stream(
        &|| Box::new(Slips::default()) as Box<dyn EventDetector>,
        &warmup,
        source,
        &config,
    )
    .expect("streaming run");
    run.report.family_recall
}

#[test]
fn slips_scores_zero_recall_on_the_spoofed_syn_flood() {
    let outcomes = slips_family_outcomes("syn-burst");
    let syn = outcomes
        .iter()
        .find(|o| o.family == "syn-flood")
        .unwrap_or_else(|| panic!("syn-flood family missing: {outcomes:?}"));
    assert!(syn.flows > 0, "flood flows must be evicted and scored: {syn:?}");
    assert_eq!(syn.alerts, 0, "spoofed flood must accumulate no evidence: {syn:?}");
    assert_eq!(syn.recall, 0.0, "paper-faithful zero recall regressed: {syn:?}");
}

#[test]
fn the_same_slips_configuration_alerts_on_accumulating_scans() {
    let outcomes = slips_family_outcomes("scan-wave");
    let scan = outcomes
        .iter()
        .find(|o| o.family == "port-scan")
        .unwrap_or_else(|| panic!("port-scan family missing: {outcomes:?}"));
    assert!(scan.alerts > 0, "vertical scan past the port threshold must alert: {scan:?}");
    assert!(scan.recall > 0.0, "scan recall must be positive: {scan:?}");
}
