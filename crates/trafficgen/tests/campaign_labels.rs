//! Campaign-label integrity through the streaming engine: every stage
//! family of the staged campaign must survive the full path — flow-table
//! assembly, eviction, sharded scoring, and the per-family merge — and
//! come out as its own [`FamilyOutcome`] row, on both the flow-event path
//! (Slips) and the packet-event path (Kitsune).

use std::collections::BTreeMap;

use idsbench_core::{EventDetector, ScenarioScale};
use idsbench_kitsune::Kitsune;
use idsbench_slips::Slips;
use idsbench_stream::{run_stream, ScenarioSource, StreamConfig, ThresholdMode};
use idsbench_trafficgen::spec;

/// The five stage families the staged campaign emits, by construction.
const STAGE_FAMILIES: [&str; 5] =
    ["port-scan", "brute-force", "botnet-c2", "stealth", "exfiltration"];

fn family_counts(
    factory: &(dyn Fn() -> Box<dyn EventDetector> + Sync),
    shards: usize,
) -> BTreeMap<String, (usize, usize)> {
    let spec = spec("stealth-campaign").expect("registered scenario");
    let model = spec.build(ScenarioScale::Tiny);
    let (warmup, source) =
        ScenarioSource::new(model.as_ref(), 42).split_warmup_secs(spec.warmup_secs);
    assert!(!warmup.is_empty(), "campaign scenario must carry a benign warmup");
    let config =
        StreamConfig { shards, threshold: ThresholdMode::Fixed(0.3), ..Default::default() };
    let run = run_stream(factory, &warmup, source, &config).expect("streaming run");
    run.report.family_recall.iter().map(|o| (o.family.clone(), (o.packets, o.flows))).collect()
}

#[test]
fn stage_labels_survive_eviction_and_sharded_merge_on_the_flow_path() {
    // Two shards so the per-family tallies really merge across workers;
    // Slips is flow-format, so every scored event is a flow eviction and
    // the label must have ridden the flow record through the table.
    let families = family_counts(&|| Box::new(Slips::default()) as Box<dyn EventDetector>, 2);
    for family in STAGE_FAMILIES {
        let (packets, flows) = *families
            .get(family)
            .unwrap_or_else(|| panic!("family {family} missing: {families:?}"));
        assert!(flows > 0, "{family}: no flow evictions scored ({families:?})");
        assert_eq!(packets, 0, "{family}: flow-format run scored packet events");
    }
}

#[test]
fn stage_labels_survive_on_the_packet_path() {
    let families = family_counts(&|| Box::new(Kitsune::default()) as Box<dyn EventDetector>, 1);
    for family in STAGE_FAMILIES {
        let (packets, flows) = *families
            .get(family)
            .unwrap_or_else(|| panic!("family {family} missing: {families:?}"));
        assert!(packets > 0, "{family}: no packet events scored ({families:?})");
        assert_eq!(flows, 0, "{family}: packet-format run scored flow events");
    }
}
