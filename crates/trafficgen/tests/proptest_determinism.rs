//! Seeded-determinism contract for every generator in the registry: the
//! same `(scenario, seed)` pair must yield bitwise-identical packet
//! streams, the stream must equal its materialisation, and timestamps must
//! come out non-decreasing — the properties every downstream consumer
//! (ScenarioSource splits, shard feeders, fabric re-homing) leans on.

use idsbench_core::{LabeledPacket, ScenarioScale};
use idsbench_trafficgen::{registry, Tier, TrafficModel};
use proptest::prelude::*;

fn realize(model: &dyn TrafficModel, seed: u64) -> Vec<LabeledPacket> {
    model.stream(seed).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Two independent streams of the same seed are identical packet for
    /// packet, and both equal `materialize` — for all eleven scenarios.
    #[test]
    fn every_scenario_streams_deterministically(seed in any::<u64>()) {
        for spec in registry() {
            let model = spec.build(ScenarioScale::Tiny);
            let a = realize(model.as_ref(), seed);
            let b = realize(model.as_ref(), seed);
            prop_assert!(!a.is_empty(), "{}: empty realisation", spec.name);
            prop_assert_eq!(&a, &b, "{}: same seed diverged", spec.name);
            prop_assert_eq!(&a, &model.materialize(seed), "{}: stream != materialize", spec.name);
        }
    }

    /// Streams come out sorted on the traffic timeline — the k-way merge
    /// (native tiers) and the eager generators (legacy tier) both hold it.
    #[test]
    fn every_scenario_streams_in_timestamp_order(seed in any::<u64>()) {
        for spec in registry() {
            let mut last = 0u64;
            for packet in spec.build(ScenarioScale::Tiny).stream(seed) {
                let ts = packet.packet.ts.as_micros();
                prop_assert!(ts >= last, "{}: ts regressed {last} -> {ts}", spec.name);
                last = ts;
            }
        }
    }

    /// Different seeds produce different realisations (native tiers; the
    /// benign bed alone has enough entropy that a collision means a seed is
    /// being ignored somewhere).
    #[test]
    fn seeds_decorrelate_native_scenarios(seed in any::<u64>()) {
        for spec in registry().into_iter().filter(|s| s.tier != Tier::Legacy) {
            let model = spec.build(ScenarioScale::Tiny);
            let a = realize(model.as_ref(), seed);
            let b = realize(model.as_ref(), seed.wrapping_add(1));
            prop_assert!(a != b, "{}: adjacent seeds collided", spec.name);
        }
    }
}

/// The label vocabulary of each tier is structural, not seed-dependent:
/// benign scenarios never emit an attack packet, volumetric and campaign
/// scenarios always carry their families.
#[test]
fn tier_label_vocabulary_is_seed_independent() {
    for seed in [7u64, 1234, 987_654_321] {
        for spec in registry().into_iter().filter(|s| s.tier != Tier::Legacy) {
            let families: std::collections::BTreeSet<&'static str> = spec
                .build(ScenarioScale::Tiny)
                .stream(seed)
                .filter_map(|p| p.label.attack_kind().map(|k| k.name()))
                .collect();
            match spec.tier {
                Tier::Benign => assert!(families.is_empty(), "{}: {families:?}", spec.name),
                _ => assert!(!families.is_empty(), "{}: no attack families", spec.name),
            }
        }
    }
}
