//! A Stratosphere-Linux-IPS (Slips) style behavioural NIDS for the
//! `idsbench` evaluation pipeline.
//!
//! Slips models traffic per *profile* (source host) and *time window*,
//! accumulating **evidence** from independent detection modules until a
//! window crosses the alert threshold. This reimplementation carries the
//! modules that drive Slips' published behaviour on the paper's datasets:
//!
//! * **Periodicity (behavioural model)** — repeated flows to the same
//!   external service with low inter-flow jitter (botnet C2 beaconing);
//!   the flow-gap coefficient of variation stands in for Stratosphere's
//!   behavioural-letter Markov models.
//! * **Vertical port scan** — many distinct unanswered ports on one host.
//! * **Horizontal sweep** — one port probed across many hosts, unanswered.
//! * **Brute force** — repeated short sessions to an authentication port.
//! * **Threat intelligence** — destination matches a blacklist feed.
//! * **Long connection / large upload** — auxiliary low-weight evidence.
//!
//! The structural weaknesses the paper measures fall out of this design:
//! spoofed floods never accumulate evidence on any profile (BoT-IoT ≈ zero
//! detection), and low-and-slow attacks stay below per-window thresholds
//! (UNSW-NB15 ≈ zero detection), while periodic C2 on a clean IoT baseline
//! is caught (Stratosphere, Slips' best dataset).

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

use std::collections::{HashMap, HashSet};
use std::net::IpAddr;

use idsbench_core::{Detector, DetectorInput, InputFormat, LabeledFlow};

/// Evidence weights per module (relative importance, as in Slips'
/// `evidence` severity levels).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvidenceWeights {
    /// Destination on a threat-intelligence blacklist.
    pub threat_intel: f64,
    /// Periodic beaconing to an external service.
    pub periodicity: f64,
    /// Vertical port scan.
    pub port_scan: f64,
    /// Horizontal address sweep.
    pub sweep: f64,
    /// Authentication brute force.
    pub brute_force: f64,
    /// Unusually long connection.
    pub long_connection: f64,
    /// Large upload to an external host.
    pub upload: f64,
}

impl Default for EvidenceWeights {
    fn default() -> Self {
        EvidenceWeights {
            threat_intel: 1.0,
            periodicity: 0.8,
            port_scan: 0.6,
            sweep: 0.6,
            brute_force: 0.7,
            long_connection: 0.25,
            upload: 0.5,
        }
    }
}

/// Configuration for [`Slips`].
#[derive(Debug, Clone, PartialEq)]
pub struct SlipsConfig {
    /// Profile time-window length in seconds (Slips' default is 1 hour; the
    /// evaluated traces are minutes long, so the out-of-the-box idsbench
    /// profile uses one minute).
    pub window_secs: f64,
    /// Minimum flows in a (src, dst, port) group before periodicity is
    /// assessed.
    pub c2_min_flows: usize,
    /// Maximum coefficient of variation of inter-flow gaps to call a group
    /// periodic.
    pub c2_max_cv: f64,
    /// Distinct unanswered destination ports (one destination, one window)
    /// that constitute a vertical scan.
    pub scan_port_threshold: usize,
    /// Distinct unanswered destinations (one port, one window) that
    /// constitute a horizontal sweep.
    pub sweep_host_threshold: usize,
    /// Connections to one authentication service in one window that
    /// constitute brute force.
    pub brute_force_threshold: usize,
    /// Authentication ports watched by the brute-force module.
    pub auth_ports: Vec<u16>,
    /// Duration (seconds) beyond which a connection is "long".
    pub long_connection_secs: f64,
    /// Outbound payload bytes to an external host that count as a large
    /// upload.
    pub upload_bytes: u64,
    /// Threat-intelligence feed: blacklisted IPv4 prefixes `(addr, len)`.
    pub blacklist: Vec<(std::net::Ipv4Addr, u8)>,
    /// Ports exempt from the periodicity module (benign periodic services).
    pub periodic_port_whitelist: Vec<u16>,
    /// The site's internal IPv4 prefix (destinations outside it are
    /// "external").
    pub internal_prefix: (std::net::Ipv4Addr, u8),
    /// Module weights.
    pub weights: EvidenceWeights,
}

impl Default for SlipsConfig {
    fn default() -> Self {
        SlipsConfig {
            window_secs: 60.0,
            c2_min_flows: 4,
            c2_max_cv: 0.15,
            scan_port_threshold: 20,
            sweep_host_threshold: 20,
            brute_force_threshold: 10,
            auth_ports: vec![21, 22, 23, 2323, 3389],
            long_connection_secs: 1200.0,
            upload_bytes: 1_000_000,
            // The default feed blacklists the block this workspace's
            // scenario C2 controllers live in, the way a real TI feed lists
            // known botnet infrastructure.
            blacklist: vec![(std::net::Ipv4Addr::new(203, 0, 1, 240), 28)],
            periodic_port_whitelist: vec![53, 123],
            internal_prefix: (std::net::Ipv4Addr::new(10, 0, 0, 0), 8),
            weights: EvidenceWeights::default(),
        }
    }
}

/// The Slips-style behavioural NIDS (see crate docs).
#[derive(Debug)]
pub struct Slips {
    config: SlipsConfig,
}

impl Slips {
    /// Creates a Slips instance with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the window length is not positive.
    pub fn new(config: SlipsConfig) -> Self {
        assert!(config.window_secs > 0.0, "window length must be positive");
        Slips { config }
    }

    fn matches_prefix(ip: IpAddr, prefix: (std::net::Ipv4Addr, u8)) -> bool {
        let IpAddr::V4(v4) = ip else { return false };
        let bits = u32::from_be_bytes(v4.octets());
        let base = u32::from_be_bytes(prefix.0.octets());
        let len = u32::from(prefix.1.min(32));
        if len == 0 {
            return true;
        }
        let mask = u32::MAX << (32 - len);
        (bits & mask) == (base & mask)
    }

    fn is_external(&self, ip: IpAddr) -> bool {
        !Self::matches_prefix(ip, self.config.internal_prefix)
    }

    fn is_blacklisted(&self, ip: IpAddr) -> bool {
        self.config.blacklist.iter().any(|&prefix| Self::matches_prefix(ip, prefix))
    }

    fn window_of(&self, flow: &LabeledFlow) -> u64 {
        (flow.record.first_seen.as_secs_f64() / self.config.window_secs) as u64
    }
}

impl Default for Slips {
    fn default() -> Self {
        Slips::new(SlipsConfig::default())
    }
}

/// A flow is "unanswered" when the other side never sent meaningful data —
/// the raw material of scan detection.
fn is_unanswered(flow: &LabeledFlow) -> bool {
    flow.record.is_unanswered_syn() || !flow.record.is_bidirectional()
}

impl Detector for Slips {
    fn name(&self) -> &str {
        "Slips"
    }

    fn input_format(&self) -> InputFormat {
        InputFormat::Flows
    }

    fn score(&mut self, input: &DetectorInput) -> Vec<f64> {
        let weights = self.config.weights;
        // Warm up on training flows, score evaluation flows: both feed the
        // behavioural state; only evaluation flows receive scores. Evidence
        // is attributed to the flows that triggered each module (Slips
        // alerts carry the offending connections as their evidence set).
        let all: Vec<&LabeledFlow> =
            input.train_flows.iter().chain(input.eval_flows.iter()).collect();

        // Per-flow accumulated evidence, indexed into `all`.
        let mut evidence: Vec<f64> = vec![0.0; all.len()];
        // (profile, dst, dport) → (start time, flow index), for periodicity.
        let mut groups: HashMap<(IpAddr, IpAddr, u16), Vec<(f64, usize)>> = HashMap::new();
        // (profile, window, dst) → unanswered (port, flow index) set.
        let mut vertical: HashMap<(IpAddr, u64, IpAddr), Vec<(u16, usize)>> = HashMap::new();
        // (profile, window, port) → unanswered (dst, flow index) set.
        let mut horizontal: HashMap<(IpAddr, u64, u16), Vec<(IpAddr, usize)>> = HashMap::new();
        // (profile, window, dst, auth port) → member flow indices.
        let mut auth_counts: HashMap<(IpAddr, u64, IpAddr, u16), Vec<usize>> = HashMap::new();

        for (index, flow) in all.iter().enumerate() {
            let key = flow.record.initiator_key();
            let profile = key.src_ip;
            let window = self.window_of(flow);
            let start = flow.record.first_seen.as_secs_f64();

            groups.entry((profile, key.dst_ip, key.dst_port)).or_default().push((start, index));

            if is_unanswered(flow) {
                vertical
                    .entry((profile, window, key.dst_ip))
                    .or_default()
                    .push((key.dst_port, index));
                horizontal
                    .entry((profile, window, key.dst_port))
                    .or_default()
                    .push((key.dst_ip, index));
            }
            if self.config.auth_ports.contains(&key.dst_port) {
                auth_counts
                    .entry((profile, window, key.dst_ip, key.dst_port))
                    .or_default()
                    .push(index);
            }

            // Per-flow modules accumulate immediately.
            if self.is_blacklisted(key.dst_ip) {
                evidence[index] += weights.threat_intel;
            }
            if flow.record.duration().as_secs_f64() > self.config.long_connection_secs {
                evidence[index] += weights.long_connection;
            }
            if flow.record.forward_payload_bytes > self.config.upload_bytes
                && self.is_external(key.dst_ip)
            {
                evidence[index] += weights.upload;
            }
        }

        // Periodicity module (the behavioural model).
        for ((_profile, dst, dport), mut members) in groups {
            if members.len() < self.config.c2_min_flows
                || !self.is_external(dst)
                || self.config.periodic_port_whitelist.contains(&dport)
            {
                continue;
            }
            members.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
            let gaps: Vec<f64> = members.windows(2).map(|w| w[1].0 - w[0].0).collect();
            let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
            if mean <= 0.0 {
                continue;
            }
            let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
            let cv = var.sqrt() / mean;
            if cv <= self.config.c2_max_cv {
                for (_, index) in members {
                    evidence[index] += weights.periodicity;
                }
            }
        }

        // Scan modules: evidence lands on the probe flows themselves.
        for ((_profile, _window, _dst), members) in vertical {
            let distinct: HashSet<u16> = members.iter().map(|(port, _)| *port).collect();
            if distinct.len() >= self.config.scan_port_threshold {
                let strength = distinct.len() as f64 / self.config.scan_port_threshold as f64;
                for (_, index) in members {
                    evidence[index] += weights.port_scan * strength;
                }
            }
        }
        for ((_profile, _window, _port), members) in horizontal {
            let distinct: HashSet<IpAddr> = members.iter().map(|(dst, _)| *dst).collect();
            if distinct.len() >= self.config.sweep_host_threshold {
                let strength = distinct.len() as f64 / self.config.sweep_host_threshold as f64;
                for (_, index) in members {
                    evidence[index] += weights.sweep * strength;
                }
            }
        }
        for ((_profile, _window, _dst, _port), members) in auth_counts {
            if members.len() >= self.config.brute_force_threshold {
                for index in members {
                    evidence[index] += weights.brute_force;
                }
            }
        }

        // Scores for the evaluation flows (they follow the training flows in
        // `all`).
        evidence.split_off(input.train_flows.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idsbench_core::preprocess::{Pipeline, PipelineConfig};
    use idsbench_core::{AttackKind, Label, LabeledPacket};
    use idsbench_net::{MacAddr, PacketBuilder, TcpFlags, Timestamp};
    use std::net::Ipv4Addr;

    fn tcp_exchange(
        out: &mut Vec<LabeledPacket>,
        src: (Ipv4Addr, u32, u16),
        dst: (Ipv4Addr, u32, u16),
        t: f64,
        label: Label,
    ) {
        // Request and (answered) response, so the flow is bidirectional.
        let p = PacketBuilder::new()
            .ethernet(MacAddr::from_host_id(src.1), MacAddr::from_host_id(dst.1))
            .ipv4(src.0, dst.0)
            .tcp(src.2, dst.2, TcpFlags::PSH | TcpFlags::ACK)
            .payload_len(100)
            .build(Timestamp::from_secs_f64(t));
        out.push(LabeledPacket::new(p, label));
        let r = PacketBuilder::new()
            .ethernet(MacAddr::from_host_id(dst.1), MacAddr::from_host_id(src.1))
            .ipv4(dst.0, src.0)
            .tcp(dst.2, src.2, TcpFlags::PSH | TcpFlags::ACK)
            .payload_len(120)
            .build(Timestamp::from_secs_f64(t + 0.01));
        out.push(LabeledPacket::new(r, label));
    }

    fn prepare(packets: Vec<LabeledPacket>) -> DetectorInput {
        let mut sorted = packets;
        sorted.sort_by_key(|lp| lp.packet.ts);
        Pipeline::new(PipelineConfig { train_fraction: 0.0, ..Default::default() })
            .unwrap()
            .prepare("toy", sorted)
            .unwrap()
    }

    /// Periodic beacons to an external controller are flagged; jittery
    /// browsing to the same controller is not.
    #[test]
    fn periodicity_module_catches_beacons() {
        let mut packets = Vec::new();
        let bot = Ipv4Addr::new(10, 0, 0, 5);
        let c2 = Ipv4Addr::new(198, 51, 100, 7);
        for i in 0..12u16 {
            // Each beacon is its own connection (fresh ephemeral port).
            tcp_exchange(
                &mut packets,
                (bot, 5, 45_000 + i),
                (c2, 99, 8080),
                10.0 + f64::from(i) * 30.0,
                Label::Attack(AttackKind::BotnetC2),
            );
        }
        // A benign client contacting the same /8 at irregular times.
        let client = Ipv4Addr::new(10, 0, 0, 9);
        for (i, &t) in [3.0, 41.0, 44.5, 120.0, 260.0, 291.0].iter().enumerate() {
            tcp_exchange(
                &mut packets,
                (client, 9, 46_000 + i as u16),
                (Ipv4Addr::new(198, 51, 100, 8), 98, 443),
                t,
                Label::Benign,
            );
        }
        let input = prepare(packets);
        let scores = Slips::default().score(&input);
        for (score, flow) in scores.iter().zip(&input.eval_flows) {
            if flow.is_attack() {
                assert!(*score > 0.0, "beacon flow must accumulate evidence");
            } else {
                assert_eq!(*score, 0.0, "irregular browsing must stay clean");
            }
        }
    }

    /// A fast vertical scan accumulates evidence; spoofed one-flow profiles
    /// never do.
    #[test]
    fn scans_are_caught_spoofed_floods_are_not() {
        let mut packets = Vec::new();
        let scanner = Ipv4Addr::new(10, 0, 0, 66);
        let target = Ipv4Addr::new(10, 0, 0, 99);
        for port in 1..60u16 {
            let p = PacketBuilder::new()
                .ethernet(MacAddr::from_host_id(66), MacAddr::from_host_id(99))
                .ipv4(scanner, target)
                .tcp(40_000 + port, port, TcpFlags::SYN)
                .build(Timestamp::from_secs_f64(5.0 + f64::from(port) * 0.2));
            packets.push(LabeledPacket::new(p, Label::Attack(AttackKind::PortScan)));
        }
        // Spoofed flood: every packet from a unique source.
        for i in 0..200u32 {
            let src = Ipv4Addr::new(172, 16, (i / 250) as u8, (i % 250) as u8 + 1);
            let p = PacketBuilder::new()
                .ethernet(MacAddr::from_host_id(7), MacAddr::from_host_id(99))
                .ipv4(src, target)
                .tcp(30_000 + (i % 1000) as u16, 80, TcpFlags::SYN)
                .build(Timestamp::from_secs_f64(8.0 + f64::from(i) * 0.01));
            packets.push(LabeledPacket::new(p, Label::Attack(AttackKind::SynFlood)));
        }
        let input = prepare(packets);
        let scores = Slips::default().score(&input);
        let mut scan_scores = Vec::new();
        let mut flood_scores = Vec::new();
        for (score, flow) in scores.iter().zip(&input.eval_flows) {
            match flow.label.attack_kind() {
                Some(AttackKind::PortScan) => scan_scores.push(*score),
                Some(AttackKind::SynFlood) => flood_scores.push(*score),
                _ => {}
            }
        }
        assert!(scan_scores.iter().all(|&s| s > 0.0), "scan flows must be flagged");
        assert!(flood_scores.iter().all(|&s| s == 0.0), "spoofed flood must stay invisible");
    }

    #[test]
    fn threat_intel_flags_blacklisted_destinations() {
        let mut packets = Vec::new();
        tcp_exchange(
            &mut packets,
            (Ipv4Addr::new(10, 0, 0, 3), 3, 50_000),
            (Ipv4Addr::new(203, 0, 1, 244), 77, 443),
            4.0,
            Label::Attack(AttackKind::Exfiltration),
        );
        tcp_exchange(
            &mut packets,
            (Ipv4Addr::new(10, 0, 0, 4), 4, 50_001),
            (Ipv4Addr::new(203, 0, 0, 10), 78, 443),
            5.0,
            Label::Benign,
        );
        let input = prepare(packets);
        let scores = Slips::default().score(&input);
        for (score, flow) in scores.iter().zip(&input.eval_flows) {
            if flow.is_attack() {
                assert!(*score >= 1.0, "blacklisted dst must carry TI evidence");
            } else {
                assert_eq!(*score, 0.0);
            }
        }
    }

    #[test]
    fn brute_force_module_counts_auth_sessions() {
        let mut packets = Vec::new();
        for i in 0..15 {
            tcp_exchange(
                &mut packets,
                (Ipv4Addr::new(10, 0, 0, 8), 8, 52_000 + i as u16),
                (Ipv4Addr::new(10, 0, 0, 22), 22, 22),
                10.0 + i as f64 * 2.0,
                Label::Attack(AttackKind::BruteForce),
            );
        }
        let input = prepare(packets);
        let scores = Slips::default().score(&input);
        assert!(scores.iter().any(|&s| s > 0.0));
    }

    #[test]
    fn slow_scan_stays_below_threshold() {
        // 15 probes spread over 15 windows: never 20 in one window.
        let mut packets = Vec::new();
        for i in 0..15u16 {
            let p = PacketBuilder::new()
                .ethernet(MacAddr::from_host_id(66), MacAddr::from_host_id(99))
                .ipv4(Ipv4Addr::new(10, 0, 0, 66), Ipv4Addr::new(10, 0, 0, 99))
                .tcp(40_000 + i, 100 + i, TcpFlags::SYN)
                .build(Timestamp::from_secs_f64(f64::from(i) * 61.0));
            packets.push(LabeledPacket::new(p, Label::Attack(AttackKind::PortScan)));
        }
        let input = prepare(packets);
        let scores = Slips::default().score(&input);
        assert!(scores.iter().all(|&s| s == 0.0), "low-and-slow must evade: {scores:?}");
    }

    #[test]
    fn whitelisted_periodic_ports_are_exempt() {
        let mut packets = Vec::new();
        // Perfectly periodic NTP — must not be called C2.
        for i in 0..12 {
            let p = PacketBuilder::new()
                .ethernet(MacAddr::from_host_id(2), MacAddr::from_host_id(50))
                .ipv4(Ipv4Addr::new(10, 0, 0, 2), Ipv4Addr::new(203, 0, 9, 9))
                .udp(123, 123)
                .payload_len(48)
                .build(Timestamp::from_secs_f64(i as f64 * 64.0));
            packets.push(LabeledPacket::new(p, Label::Benign));
        }
        let input = prepare(packets);
        let scores = Slips::default().score(&input);
        assert!(scores.iter().all(|&s| s == 0.0), "ntp must stay whitelisted: {scores:?}");
    }

    /// Long connections accumulate low-weight evidence.
    #[test]
    fn long_connection_module_fires() {
        let mut packets = Vec::new();
        // A connection spanning 25 minutes (above the 20-minute default).
        for i in 0..30u32 {
            let p = PacketBuilder::new()
                .ethernet(MacAddr::from_host_id(3), MacAddr::from_host_id(40))
                .ipv4(Ipv4Addr::new(10, 0, 0, 3), Ipv4Addr::new(10, 0, 0, 40))
                .tcp(50_000, 443, TcpFlags::PSH | TcpFlags::ACK)
                .payload_len(100)
                .build(Timestamp::from_secs_f64(f64::from(i) * 50.0));
            packets.push(LabeledPacket::new(p, Label::Benign));
        }
        let input = prepare(packets);
        let scores = Slips::default().score(&input);
        assert!(
            scores.iter().any(|&s| (s - 0.25).abs() < 1e-9),
            "long-connection evidence (0.25) expected: {scores:?}"
        );
    }

    /// Large uploads to external hosts accumulate evidence; the same volume
    /// to an internal server does not.
    #[test]
    fn upload_module_is_external_only() {
        let big_upload = |dst: Ipv4Addr, label: Label, out: &mut Vec<LabeledPacket>| {
            // ~1.4 MB upstream in 1000 packets.
            for i in 0..1000u32 {
                let p = PacketBuilder::new()
                    .ethernet(MacAddr::from_host_id(4), MacAddr::from_host_id(41))
                    .ipv4(Ipv4Addr::new(10, 0, 0, 4), dst)
                    .tcp(51_000, 443, TcpFlags::PSH | TcpFlags::ACK)
                    .payload_len(1400)
                    .build(Timestamp::from_secs_f64(1.0 + f64::from(i) * 0.002));
                out.push(LabeledPacket::new(p, label));
            }
        };
        let mut external = Vec::new();
        big_upload(
            Ipv4Addr::new(198, 51, 100, 9),
            Label::Attack(AttackKind::Exfiltration),
            &mut external,
        );
        let input = prepare(external);
        let scores = Slips::default().score(&input);
        assert!(scores.iter().any(|&s| s >= 0.5), "external upload must be flagged: {scores:?}");

        let mut internal = Vec::new();
        big_upload(Ipv4Addr::new(10, 0, 0, 99), Label::Benign, &mut internal);
        let input = prepare(internal);
        let scores = Slips::default().score(&input);
        assert!(scores.iter().all(|&s| s == 0.0), "internal upload must stay clean: {scores:?}");
    }

    /// A custom blacklist replaces the default feed.
    #[test]
    fn custom_blacklist_is_respected() {
        let mut packets = Vec::new();
        tcp_exchange(
            &mut packets,
            (Ipv4Addr::new(10, 0, 0, 6), 6, 52_000),
            (Ipv4Addr::new(203, 0, 1, 244), 70, 443),
            2.0,
            Label::Benign,
        );
        let input = prepare(packets);
        // Empty feed: the default-blacklisted destination goes unflagged.
        let mut slips = Slips::new(SlipsConfig { blacklist: Vec::new(), ..Default::default() });
        let scores = slips.score(&input);
        assert!(scores.iter().all(|&s| s == 0.0));
    }

    #[test]
    fn prefix_matching() {
        let inside = IpAddr::V4(Ipv4Addr::new(203, 0, 1, 241));
        let outside = IpAddr::V4(Ipv4Addr::new(203, 0, 1, 200));
        assert!(Slips::matches_prefix(inside, (Ipv4Addr::new(203, 0, 1, 240), 28)));
        assert!(!Slips::matches_prefix(outside, (Ipv4Addr::new(203, 0, 1, 240), 28)));
        assert!(Slips::matches_prefix(inside, (Ipv4Addr::new(0, 0, 0, 0), 0)));
    }

    #[test]
    fn name_and_format() {
        let slips = Slips::default();
        assert_eq!(slips.name(), "Slips");
        assert_eq!(slips.input_format(), InputFormat::Flows);
    }
}
