//! A Stratosphere-Linux-IPS (Slips) style behavioural NIDS for the
//! `idsbench` evaluation pipeline.
//!
//! Slips models traffic per *profile* (source host) and *time window*,
//! accumulating **evidence** from independent detection modules. This
//! reimplementation carries the modules that drive Slips' published
//! behaviour on the paper's datasets:
//!
//! * **Periodicity (behavioural model)** — repeated flows to the same
//!   external service with low inter-flow jitter (botnet C2 beaconing);
//!   the flow-gap coefficient of variation stands in for Stratosphere's
//!   behavioural-letter Markov models.
//! * **Vertical port scan** — many distinct unanswered ports on one host.
//! * **Horizontal sweep** — one port probed across many hosts, unanswered.
//! * **Brute force** — repeated short sessions to an authentication port.
//! * **Threat intelligence** — destination matches a blacklist feed.
//! * **Long connection / large upload** — auxiliary low-weight evidence.
//!
//! Slips is *streaming-native* under the Event API: it consumes
//! [`Event::FlowEvicted`] events and must score each flow **at eviction
//! time**, from the behavioural state accumulated so far — no second pass,
//! no retroactive evidence. A beacon therefore scores zero until its group
//! has shown enough periodic repetitions, and the early probes of a scan
//! score zero until the per-window counter crosses its threshold: the
//! flow-eviction timing the false-negative root-cause literature identifies
//! as a detection variable is part of the contract, not an artifact.
//!
//! The structural weaknesses the paper measures fall out of this design:
//! spoofed floods never accumulate evidence on any profile (BoT-IoT ≈ zero
//! detection), and low-and-slow attacks stay below per-window thresholds
//! (UNSW-NB15 ≈ zero detection), while periodic C2 on a clean IoT baseline
//! is caught (Stratosphere, Slips' best dataset).

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

use std::collections::HashSet;
use std::net::IpAddr;

use idsbench_core::fasthash::{FastMap, FxBuildHasher};
use idsbench_core::{Event, EventDetector, InputFormat, LabeledFlow, TrainView};

/// A `HashSet` hashed with Fx instead of SipHash (window counters sit on
/// the flow-eviction path; their sizes are bounded by the windowing, not by
/// an attacker).
type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// Evidence weights per module (relative importance, as in Slips'
/// `evidence` severity levels).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvidenceWeights {
    /// Destination on a threat-intelligence blacklist.
    pub threat_intel: f64,
    /// Periodic beaconing to an external service.
    pub periodicity: f64,
    /// Vertical port scan.
    pub port_scan: f64,
    /// Horizontal address sweep.
    pub sweep: f64,
    /// Authentication brute force.
    pub brute_force: f64,
    /// Unusually long connection.
    pub long_connection: f64,
    /// Large upload to an external host.
    pub upload: f64,
}

impl Default for EvidenceWeights {
    fn default() -> Self {
        EvidenceWeights {
            threat_intel: 1.0,
            periodicity: 0.8,
            port_scan: 0.6,
            sweep: 0.6,
            brute_force: 0.7,
            long_connection: 0.25,
            upload: 0.5,
        }
    }
}

/// Configuration for [`Slips`].
#[derive(Debug, Clone, PartialEq)]
pub struct SlipsConfig {
    /// Profile time-window length in seconds (Slips' default is 1 hour; the
    /// evaluated traces are minutes long, so the out-of-the-box idsbench
    /// profile uses one minute).
    pub window_secs: f64,
    /// Minimum flows in a (src, dst, port) group before periodicity is
    /// assessed.
    pub c2_min_flows: usize,
    /// Maximum coefficient of variation of inter-flow gaps to call a group
    /// periodic.
    pub c2_max_cv: f64,
    /// Distinct unanswered destination ports (one destination, one window)
    /// that constitute a vertical scan.
    pub scan_port_threshold: usize,
    /// Distinct unanswered destinations (one port, one window) that
    /// constitute a horizontal sweep.
    pub sweep_host_threshold: usize,
    /// Connections to one authentication service in one window that
    /// constitute brute force.
    pub brute_force_threshold: usize,
    /// Authentication ports watched by the brute-force module.
    pub auth_ports: Vec<u16>,
    /// Duration (seconds) beyond which a connection is "long".
    pub long_connection_secs: f64,
    /// Outbound payload bytes to an external host that count as a large
    /// upload.
    pub upload_bytes: u64,
    /// Threat-intelligence feed: blacklisted IPv4 prefixes `(addr, len)`.
    pub blacklist: Vec<(std::net::Ipv4Addr, u8)>,
    /// Ports exempt from the periodicity module (benign periodic services).
    pub periodic_port_whitelist: Vec<u16>,
    /// The site's internal IPv4 prefix (destinations outside it are
    /// "external").
    pub internal_prefix: (std::net::Ipv4Addr, u8),
    /// Module weights.
    pub weights: EvidenceWeights,
}

impl Default for SlipsConfig {
    fn default() -> Self {
        SlipsConfig {
            window_secs: 60.0,
            c2_min_flows: 4,
            c2_max_cv: 0.15,
            scan_port_threshold: 20,
            sweep_host_threshold: 20,
            brute_force_threshold: 10,
            auth_ports: vec![21, 22, 23, 2323, 3389],
            long_connection_secs: 1200.0,
            upload_bytes: 1_000_000,
            // The default feed blacklists the block this workspace's
            // scenario C2 controllers live in, the way a real TI feed lists
            // known botnet infrastructure.
            blacklist: vec![(std::net::Ipv4Addr::new(203, 0, 1, 240), 28)],
            periodic_port_whitelist: vec![53, 123],
            internal_prefix: (std::net::Ipv4Addr::new(10, 0, 0, 0), 8),
            weights: EvidenceWeights::default(),
        }
    }
}

/// How many of a group's most recent flow start-times the periodicity
/// module keeps. Bounds both memory and per-eviction cost on long-lived
/// groups (a persistent beacon otherwise accumulates state forever), the
/// way Slips' real profiles are windowed; the cap is far above
/// `c2_min_flows`, so detection behaviour only changes for groups with
/// hundreds of repetitions — by then the verdict is long since stable.
const MAX_GROUP_HISTORY: usize = 256;

/// Online behavioural state: what every profile has shown so far. Window
/// maps are bounded by the traffic itself (profiles × windows × services),
/// exactly like Slips' Redis profiles; group histories are capped at
/// [`MAX_GROUP_HISTORY`] entries.
#[derive(Debug, Default)]
struct BehaviourState {
    /// (profile, dst, dport) → most recent first-seen times of the group's
    /// flows, kept sorted for the gap statistics.
    groups: FastMap<(IpAddr, IpAddr, u16), Vec<f64>>,
    /// (profile, window, dst) → distinct unanswered destination ports.
    vertical: FastMap<(IpAddr, u64, IpAddr), FxHashSet<u16>>,
    /// (profile, window, dport) → distinct unanswered destinations.
    horizontal: FastMap<(IpAddr, u64, u16), FxHashSet<IpAddr>>,
    /// (profile, window, dst, auth port) → sessions so far.
    auth: FastMap<(IpAddr, u64, IpAddr, u16), usize>,
}

/// The Slips-style behavioural NIDS (see crate docs).
#[derive(Debug)]
pub struct Slips {
    config: SlipsConfig,
    state: BehaviourState,
    /// Optional sampled timer around the inference kernel.
    probe: Option<idsbench_telemetry::SpanTimer>,
}

impl Slips {
    /// Creates a Slips instance with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the window length is not positive.
    pub fn new(config: SlipsConfig) -> Self {
        assert!(config.window_secs > 0.0, "window length must be positive");
        Slips { config, state: BehaviourState::default(), probe: None }
    }

    /// Attaches a sampled [`SpanTimer`](idsbench_telemetry::SpanTimer)
    /// around the per-flow evidence fold. Purely observational — scores
    /// are bit-identical with or without it — and allocation-free on the
    /// scoring path.
    pub fn attach_inference_probe(&mut self, probe: idsbench_telemetry::SpanTimer) {
        self.probe = Some(probe);
    }

    fn matches_prefix(ip: IpAddr, prefix: (std::net::Ipv4Addr, u8)) -> bool {
        let IpAddr::V4(v4) = ip else { return false };
        let bits = u32::from_be_bytes(v4.octets());
        let base = u32::from_be_bytes(prefix.0.octets());
        let len = u32::from(prefix.1.min(32));
        if len == 0 {
            return true;
        }
        let mask = u32::MAX << (32 - len);
        (bits & mask) == (base & mask)
    }

    fn is_external(&self, ip: IpAddr) -> bool {
        !Self::matches_prefix(ip, self.config.internal_prefix)
    }

    fn is_blacklisted(&self, ip: IpAddr) -> bool {
        self.config.blacklist.iter().any(|&prefix| Self::matches_prefix(ip, prefix))
    }

    fn window_of(&self, flow: &LabeledFlow) -> u64 {
        (flow.record.first_seen.as_secs_f64() / self.config.window_secs) as u64
    }

    /// Folds one evicted flow into the behavioural state and returns the
    /// evidence this flow carries *at this moment* — the deployment-shaped
    /// scoring rule (see crate docs). Shared by `fit` (training flows warm
    /// the state, scores discarded) and `on_event`.
    fn observe_flow(&mut self, flow: &LabeledFlow) -> f64 {
        let weights = self.config.weights;
        let key = flow.record.initiator_key();
        let profile = key.src_ip;
        let window = self.window_of(flow);
        let start = flow.record.first_seen.as_secs_f64();
        let mut evidence = 0.0;

        // Per-flow modules fire immediately.
        if self.is_blacklisted(key.dst_ip) {
            evidence += weights.threat_intel;
        }
        if flow.record.duration().as_secs_f64() > self.config.long_connection_secs {
            evidence += weights.long_connection;
        }
        if flow.record.forward_payload_bytes > self.config.upload_bytes
            && self.is_external(key.dst_ip)
        {
            evidence += weights.upload;
        }

        // Periodicity (the behavioural model): this flow joins its
        // (profile, dst, service) group; once the group has enough members
        // and their inter-start gaps are regular, the flow is beaconing.
        if self.is_external(key.dst_ip)
            && !self.config.periodic_port_whitelist.contains(&key.dst_port)
        {
            let members = self
                .state
                .groups
                .entry_or_insert_with((profile, key.dst_ip, key.dst_port), Vec::new);
            let at = members.partition_point(|&t| t <= start);
            members.insert(at, start);
            if members.len() > MAX_GROUP_HISTORY {
                members.remove(0); // slide the window: drop the oldest start
            }
            if members.len() >= self.config.c2_min_flows {
                // Gap mean and variance computed streaming over adjacent
                // pairs — no materialized gap vector on the eviction path.
                let count = (members.len() - 1) as f64;
                let mean = members.windows(2).map(|w| w[1] - w[0]).sum::<f64>() / count;
                if mean > 0.0 {
                    let var = members.windows(2).map(|w| (w[1] - w[0] - mean).powi(2)).sum::<f64>()
                        / count;
                    if var.sqrt() / mean <= self.config.c2_max_cv {
                        evidence += weights.periodicity;
                    }
                }
            }
        }

        // Scan modules: evidence lands on the probe flows from the moment
        // the per-window counters cross their thresholds.
        if is_unanswered(flow) {
            let ports = self
                .state
                .vertical
                .entry_or_insert_with((profile, window, key.dst_ip), Default::default);
            ports.insert(key.dst_port);
            if ports.len() >= self.config.scan_port_threshold {
                evidence += weights.port_scan
                    * (ports.len() as f64 / self.config.scan_port_threshold as f64);
            }
            let hosts = self
                .state
                .horizontal
                .entry_or_insert_with((profile, window, key.dst_port), Default::default);
            hosts.insert(key.dst_ip);
            if hosts.len() >= self.config.sweep_host_threshold {
                evidence +=
                    weights.sweep * (hosts.len() as f64 / self.config.sweep_host_threshold as f64);
            }
        }

        // Brute force: repeated sessions to one authentication service.
        if self.config.auth_ports.contains(&key.dst_port) {
            let count = self
                .state
                .auth
                .entry_or_insert_with((profile, window, key.dst_ip, key.dst_port), || 0);
            *count += 1;
            if *count >= self.config.brute_force_threshold {
                evidence += weights.brute_force;
            }
        }

        evidence
    }
}

impl Default for Slips {
    fn default() -> Self {
        Slips::new(SlipsConfig::default())
    }
}

/// A flow is "unanswered" when the other side never sent meaningful data —
/// the raw material of scan detection.
fn is_unanswered(flow: &LabeledFlow) -> bool {
    flow.record.is_unanswered_syn() || !flow.record.is_bidirectional()
}

impl EventDetector for Slips {
    fn name(&self) -> &str {
        "Slips"
    }

    fn input_format(&self) -> InputFormat {
        InputFormat::Flows
    }

    /// Training flows warm the behavioural state (profiles, groups, window
    /// counters) without emitting scores, so evaluation flows are judged
    /// against everything the site has already shown.
    fn fit(&mut self, train: &TrainView) {
        for flow in &train.flows {
            let _ = self.observe_flow(flow);
        }
    }

    fn on_event(&mut self, event: &Event<'_>) -> Option<f64> {
        match event {
            // Slips builds its state from flows; packets pass through.
            Event::Packet(_) => None,
            Event::FlowEvicted(flow) => {
                let started = self.probe.as_ref().and_then(|probe| probe.begin());
                let score = self.observe_flow(flow);
                if let (Some(probe), Some(started)) = (&self.probe, started) {
                    probe.end(started);
                }
                Some(score)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use idsbench_core::preprocess::{Pipeline, PipelineConfig};
    use idsbench_core::runner::replay;
    use idsbench_core::{AttackKind, Label, LabeledPacket};
    use idsbench_net::{MacAddr, PacketBuilder, TcpFlags, Timestamp};
    use std::net::Ipv4Addr;

    fn tcp_exchange(
        out: &mut Vec<LabeledPacket>,
        src: (Ipv4Addr, u32, u16),
        dst: (Ipv4Addr, u32, u16),
        t: f64,
        label: Label,
    ) {
        // Request and (answered) response, so the flow is bidirectional.
        let p = PacketBuilder::new()
            .ethernet(MacAddr::from_host_id(src.1), MacAddr::from_host_id(dst.1))
            .ipv4(src.0, dst.0)
            .tcp(src.2, dst.2, TcpFlags::PSH | TcpFlags::ACK)
            .payload_len(100)
            .build(Timestamp::from_secs_f64(t));
        out.push(LabeledPacket::new(p, label));
        let r = PacketBuilder::new()
            .ethernet(MacAddr::from_host_id(dst.1), MacAddr::from_host_id(src.1))
            .ipv4(dst.0, src.0)
            .tcp(dst.2, src.2, TcpFlags::PSH | TcpFlags::ACK)
            .payload_len(120)
            .build(Timestamp::from_secs_f64(t + 0.01));
        out.push(LabeledPacket::new(r, label));
    }

    /// Runs the full event replay (all flows are evaluation flows) and
    /// returns `(score, label, kind)` per flow event in eviction order.
    fn flow_scores(
        slips: &mut Slips,
        packets: Vec<LabeledPacket>,
    ) -> Vec<(f64, bool, Option<AttackKind>)> {
        let mut sorted = packets;
        sorted.sort_by_key(|lp| lp.packet.ts);
        let input = Pipeline::new(PipelineConfig { train_fraction: 0.0, ..Default::default() })
            .unwrap()
            .prepare_events("toy", sorted)
            .unwrap();
        let replayed = replay(slips, &input).unwrap();
        replayed
            .scores
            .iter()
            .zip(&replayed.labels)
            .zip(&replayed.kinds)
            .map(|((&s, &l), &k)| (s, l, k))
            .collect()
    }

    /// Periodic beacons to an external controller are flagged once the
    /// group shows enough regular repetitions; jittery browsing to the same
    /// block never is. The first `c2_min_flows - 1` beacons legitimately
    /// score zero — at eviction time nothing distinguishes them yet.
    #[test]
    fn periodicity_module_catches_beacons() {
        let mut packets = Vec::new();
        let bot = Ipv4Addr::new(10, 0, 0, 5);
        let c2 = Ipv4Addr::new(198, 51, 100, 7);
        for i in 0..12u16 {
            // Each beacon is its own connection (fresh ephemeral port).
            tcp_exchange(
                &mut packets,
                (bot, 5, 45_000 + i),
                (c2, 99, 8080),
                10.0 + f64::from(i) * 30.0,
                Label::Attack(AttackKind::BotnetC2),
            );
        }
        // A benign client contacting the same /8 at irregular times.
        let client = Ipv4Addr::new(10, 0, 0, 9);
        for (i, &t) in [3.0, 41.0, 44.5, 120.0, 260.0, 291.0].iter().enumerate() {
            tcp_exchange(
                &mut packets,
                (client, 9, 46_000 + i as u16),
                (Ipv4Addr::new(198, 51, 100, 8), 98, 443),
                t,
                Label::Benign,
            );
        }
        let scores = flow_scores(&mut Slips::default(), packets);
        let flagged_beacons =
            scores.iter().filter(|(s, _, k)| *k == Some(AttackKind::BotnetC2) && *s > 0.0).count();
        assert!(
            flagged_beacons >= 12 - SlipsConfig::default().c2_min_flows,
            "established beacon flows must accumulate evidence ({flagged_beacons} flagged)"
        );
        for (score, _, kind) in &scores {
            if kind.is_none() {
                assert_eq!(*score, 0.0, "irregular browsing must stay clean");
            }
        }
    }

    /// A fast vertical scan accumulates evidence once the port counter
    /// crosses the threshold; spoofed one-flow profiles never do.
    #[test]
    fn scans_are_caught_spoofed_floods_are_not() {
        let mut packets = Vec::new();
        let scanner = Ipv4Addr::new(10, 0, 0, 66);
        let target = Ipv4Addr::new(10, 0, 0, 99);
        for port in 1..60u16 {
            let p = PacketBuilder::new()
                .ethernet(MacAddr::from_host_id(66), MacAddr::from_host_id(99))
                .ipv4(scanner, target)
                .tcp(40_000 + port, port, TcpFlags::SYN)
                .build(Timestamp::from_secs_f64(5.0 + f64::from(port) * 0.2));
            packets.push(LabeledPacket::new(p, Label::Attack(AttackKind::PortScan)));
        }
        // Spoofed flood: every packet from a unique source.
        for i in 0..200u32 {
            let src = Ipv4Addr::new(172, 16, (i / 250) as u8, (i % 250) as u8 + 1);
            let p = PacketBuilder::new()
                .ethernet(MacAddr::from_host_id(7), MacAddr::from_host_id(99))
                .ipv4(src, target)
                .tcp(30_000 + (i % 1000) as u16, 80, TcpFlags::SYN)
                .build(Timestamp::from_secs_f64(8.0 + f64::from(i) * 0.01));
            packets.push(LabeledPacket::new(p, Label::Attack(AttackKind::SynFlood)));
        }
        let scores = flow_scores(&mut Slips::default(), packets);
        let scan: Vec<f64> = scores
            .iter()
            .filter(|(_, _, k)| *k == Some(AttackKind::PortScan))
            .map(|(s, _, _)| *s)
            .collect();
        let flood: Vec<f64> = scores
            .iter()
            .filter(|(_, _, k)| *k == Some(AttackKind::SynFlood))
            .map(|(s, _, _)| *s)
            .collect();
        let threshold = SlipsConfig::default().scan_port_threshold;
        assert!(
            scan.iter().filter(|&&s| s > 0.0).count() >= scan.len() - threshold,
            "scan flows past the threshold must be flagged"
        );
        assert!(flood.iter().all(|&s| s == 0.0), "spoofed flood must stay invisible");
    }

    #[test]
    fn threat_intel_flags_blacklisted_destinations() {
        let mut packets = Vec::new();
        tcp_exchange(
            &mut packets,
            (Ipv4Addr::new(10, 0, 0, 3), 3, 50_000),
            (Ipv4Addr::new(203, 0, 1, 244), 77, 443),
            4.0,
            Label::Attack(AttackKind::Exfiltration),
        );
        tcp_exchange(
            &mut packets,
            (Ipv4Addr::new(10, 0, 0, 4), 4, 50_001),
            (Ipv4Addr::new(203, 0, 0, 10), 78, 443),
            5.0,
            Label::Benign,
        );
        for (score, label, _) in flow_scores(&mut Slips::default(), packets) {
            if label {
                assert!(score >= 1.0, "blacklisted dst must carry TI evidence");
            } else {
                assert_eq!(score, 0.0);
            }
        }
    }

    #[test]
    fn brute_force_module_counts_auth_sessions() {
        let mut packets = Vec::new();
        for i in 0..15 {
            tcp_exchange(
                &mut packets,
                (Ipv4Addr::new(10, 0, 0, 8), 8, 52_000 + i as u16),
                (Ipv4Addr::new(10, 0, 0, 22), 22, 22),
                10.0 + i as f64 * 2.0,
                Label::Attack(AttackKind::BruteForce),
            );
        }
        let scores = flow_scores(&mut Slips::default(), packets);
        assert!(scores.iter().any(|(s, _, _)| *s > 0.0));
    }

    #[test]
    fn slow_scan_stays_below_threshold() {
        // 15 probes spread over 15 windows: never 20 in one window.
        let mut packets = Vec::new();
        for i in 0..15u16 {
            let p = PacketBuilder::new()
                .ethernet(MacAddr::from_host_id(66), MacAddr::from_host_id(99))
                .ipv4(Ipv4Addr::new(10, 0, 0, 66), Ipv4Addr::new(10, 0, 0, 99))
                .tcp(40_000 + i, 100 + i, TcpFlags::SYN)
                .build(Timestamp::from_secs_f64(f64::from(i) * 61.0));
            packets.push(LabeledPacket::new(p, Label::Attack(AttackKind::PortScan)));
        }
        let scores = flow_scores(&mut Slips::default(), packets);
        assert!(scores.iter().all(|(s, _, _)| *s == 0.0), "low-and-slow must evade: {scores:?}");
    }

    #[test]
    fn whitelisted_periodic_ports_are_exempt() {
        let mut packets = Vec::new();
        // Perfectly periodic NTP — must not be called C2.
        for i in 0..12 {
            let p = PacketBuilder::new()
                .ethernet(MacAddr::from_host_id(2), MacAddr::from_host_id(50))
                .ipv4(Ipv4Addr::new(10, 0, 0, 2), Ipv4Addr::new(203, 0, 9, 9))
                .udp(123, 123)
                .payload_len(48)
                .build(Timestamp::from_secs_f64(i as f64 * 64.0));
            packets.push(LabeledPacket::new(p, Label::Benign));
        }
        let scores = flow_scores(&mut Slips::default(), packets);
        assert!(scores.iter().all(|(s, _, _)| *s == 0.0), "ntp must stay whitelisted: {scores:?}");
    }

    /// Long connections accumulate low-weight evidence.
    #[test]
    fn long_connection_module_fires() {
        let mut packets = Vec::new();
        // A connection spanning 25 minutes (above the 20-minute default).
        for i in 0..30u32 {
            let p = PacketBuilder::new()
                .ethernet(MacAddr::from_host_id(3), MacAddr::from_host_id(40))
                .ipv4(Ipv4Addr::new(10, 0, 0, 3), Ipv4Addr::new(10, 0, 0, 40))
                .tcp(50_000, 443, TcpFlags::PSH | TcpFlags::ACK)
                .payload_len(100)
                .build(Timestamp::from_secs_f64(f64::from(i) * 50.0));
            packets.push(LabeledPacket::new(p, Label::Benign));
        }
        let scores = flow_scores(&mut Slips::default(), packets);
        assert!(
            scores.iter().any(|(s, _, _)| (s - 0.25).abs() < 1e-9),
            "long-connection evidence (0.25) expected: {scores:?}"
        );
    }

    /// Large uploads to external hosts accumulate evidence; the same volume
    /// to an internal server does not.
    #[test]
    fn upload_module_is_external_only() {
        let big_upload = |dst: Ipv4Addr, label: Label, out: &mut Vec<LabeledPacket>| {
            // ~1.4 MB upstream in 1000 packets.
            for i in 0..1000u32 {
                let p = PacketBuilder::new()
                    .ethernet(MacAddr::from_host_id(4), MacAddr::from_host_id(41))
                    .ipv4(Ipv4Addr::new(10, 0, 0, 4), dst)
                    .tcp(51_000, 443, TcpFlags::PSH | TcpFlags::ACK)
                    .payload_len(1400)
                    .build(Timestamp::from_secs_f64(1.0 + f64::from(i) * 0.002));
                out.push(LabeledPacket::new(p, label));
            }
        };
        let mut external = Vec::new();
        big_upload(
            Ipv4Addr::new(198, 51, 100, 9),
            Label::Attack(AttackKind::Exfiltration),
            &mut external,
        );
        let scores = flow_scores(&mut Slips::default(), external);
        assert!(
            scores.iter().any(|(s, _, _)| *s >= 0.5),
            "external upload must be flagged: {scores:?}"
        );

        let mut internal = Vec::new();
        big_upload(Ipv4Addr::new(10, 0, 0, 99), Label::Benign, &mut internal);
        let scores = flow_scores(&mut Slips::default(), internal);
        assert!(
            scores.iter().all(|(s, _, _)| *s == 0.0),
            "internal upload must stay clean: {scores:?}"
        );
    }

    /// A custom blacklist replaces the default feed.
    #[test]
    fn custom_blacklist_is_respected() {
        let mut packets = Vec::new();
        tcp_exchange(
            &mut packets,
            (Ipv4Addr::new(10, 0, 0, 6), 6, 52_000),
            (Ipv4Addr::new(203, 0, 1, 244), 70, 443),
            2.0,
            Label::Benign,
        );
        // Empty feed: the default-blacklisted destination goes unflagged.
        let mut slips = Slips::new(SlipsConfig { blacklist: Vec::new(), ..Default::default() });
        let scores = flow_scores(&mut slips, packets);
        assert!(scores.iter().all(|(s, _, _)| *s == 0.0));
    }

    /// Training flows warm the behavioural state: a beacon group whose
    /// early members arrived during training is flagged from the first
    /// evaluation flow.
    #[test]
    fn fit_warms_the_profile_state() {
        let bot = Ipv4Addr::new(10, 0, 0, 5);
        let c2 = Ipv4Addr::new(198, 51, 100, 7);
        let beacon = |i: u16, out: &mut Vec<LabeledPacket>| {
            tcp_exchange(
                out,
                (bot, 5, 45_000 + i),
                (c2, 99, 8080),
                10.0 + f64::from(i) * 30.0,
                Label::Attack(AttackKind::BotnetC2),
            );
        };
        let mut train_packets = Vec::new();
        for i in 0..8u16 {
            beacon(i, &mut train_packets);
        }
        let input = Pipeline::new(PipelineConfig { train_fraction: 0.0, ..Default::default() })
            .unwrap()
            .prepare_events("warm", train_packets)
            .unwrap();
        // Hand-build the train view from the replayed flows.
        let mut slips = Slips::default();
        let mut probe = Slips::default();
        let warm_flows = replay(&mut probe, &input).unwrap();
        assert!(warm_flows.scores.len() >= 8);

        // Reuse the same eviction stream as training data...
        let mut collector = idsbench_core::FlowEventAssembler::new(input.flow_config);
        let mut flows = Vec::new();
        for view in &input.eval {
            collector.observe(view, |f| flows.push(f));
        }
        flows.extend(collector.flush());
        slips.fit(&TrainView { packets: Vec::new(), flows });

        // ...then the next beacon in the cadence must be flagged
        // immediately.
        let mut next = Vec::new();
        beacon(8, &mut next);
        let scores = flow_scores(&mut slips, next);
        assert!(scores.iter().any(|(s, _, _)| *s > 0.0), "warmed group must flag: {scores:?}");
    }

    #[test]
    fn prefix_matching() {
        let inside = IpAddr::V4(Ipv4Addr::new(203, 0, 1, 241));
        let outside = IpAddr::V4(Ipv4Addr::new(203, 0, 1, 200));
        assert!(Slips::matches_prefix(inside, (Ipv4Addr::new(203, 0, 1, 240), 28)));
        assert!(!Slips::matches_prefix(outside, (Ipv4Addr::new(203, 0, 1, 240), 28)));
        assert!(Slips::matches_prefix(inside, (Ipv4Addr::new(0, 0, 0, 0), 0)));
    }

    #[test]
    fn name_and_format() {
        let slips = Slips::default();
        assert_eq!(slips.name(), "Slips");
        assert_eq!(slips.input_format(), InputFormat::Flows);
    }
}
