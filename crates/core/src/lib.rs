//! The `idsbench` evaluation pipeline — the primary contribution of
//! *Expectations Versus Reality: Evaluating Intrusion Detection Systems in
//! Practice* (DSN 2025) as a reusable library.
//!
//! The paper proposes (and executes) a standardized pipeline for comparing
//! network IDSs across datasets. This crate implements that pipeline:
//!
//! 1. **Vocabulary & contract** — [`Label`]/[`AttackKind`]/[`LabeledPacket`]
//!    ground truth, the [`Dataset`] trait, and the parse-once [`event`]
//!    model: every packet is decoded exactly once into a [`ParsedView`] and
//!    every detector implements one [`EventDetector`] contract over
//!    [`Event::Packet`] and [`Event::FlowEvicted`] events ([`InputFormat`]
//!    names the two shapes — the format-compatibility problem Section I
//!    discusses at length).
//! 2. **Preprocessing** (Section IV-A steps 1–2) — [`preprocess::Pipeline`]:
//!    random flow sampling, timestamp re-sorting, train/eval splitting, and
//!    label-preserving flow assembly.
//! 3. **Deployment** (step 3) — detectors run with their out-of-the-box
//!    configurations captured as `Default` impls.
//! 4. **Threshold calibration** (step 4) — [`threshold::ThresholdPolicy`]:
//!    a standardized rule applied uniformly to every IDS.
//! 5. **Metrics & reporting** — [`metrics`] (accuracy/precision/recall/F1,
//!    ROC/PR/AUC) and [`report`] renderers that reproduce the paper's table
//!    layouts, plus [`registry`] holding Tables I–III as data.
//! 6. **Execution** — [`runner`]: the IDS × dataset grid, parallelized with
//!    crossbeam scoped threads.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod allocwatch;
pub mod arena;
mod dataset;
pub mod fasthash {
    //! Fast hashing for per-packet state maps — re-exported from
    //! [`idsbench_net::fasthash`], which lives at the bottom of the crate
    //! stack so the flow layer can share it.
    pub use idsbench_net::fasthash::{fx_hash, FastMap, FxBuildHasher, FxHasher};
}
mod detector;
mod error;
pub mod event;
pub mod json;
mod label;
pub mod metrics;
pub mod preprocess;
pub mod registry;
pub mod report;
pub mod runner;
pub mod threshold;
pub mod traffic;

pub use arena::PayloadArena;
pub use dataset::{Dataset, DatasetInfo};
pub use detector::{DetectorInput, InputFormat, LabeledFlow, Verdict};
pub use error::CoreError;
pub use event::{
    Event, EventDetector, EventFactory, FlowEventAssembler, FlowMigration, ParsedView, TrainView,
};
pub use label::{AttackKind, Label, LabeledPacket};
pub use metrics::{FamilyCounts, FamilyOutcome};
pub use report::ScaleEvent;
pub use traffic::{PacketStream, ScenarioScale, TrafficModel};

/// Result alias used throughout this crate.
pub type Result<T> = std::result::Result<T, CoreError>;
