//! Confusion-matrix metrics and score-ranking curves.
//!
//! The paper evaluates with accuracy, precision, recall, and F1 (Section
//! IV-B) and explicitly warns that accuracy alone misleads on imbalanced
//! datasets (Section V). This module implements those metrics plus ROC/PR
//! curves and AUC for the threshold-sensitivity ablations.

use serde::{Deserialize, Serialize};

/// Binary confusion matrix.
///
/// # Examples
///
/// ```
/// use idsbench_core::metrics::ConfusionMatrix;
///
/// let mut cm = ConfusionMatrix::default();
/// cm.record(true, true); // predicted attack, was attack
/// cm.record(false, true); // predicted benign, was attack
/// cm.record(false, false);
/// assert_eq!(cm.true_positives, 1);
/// assert_eq!(cm.false_negatives, 1);
/// assert!((cm.recall() - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    /// Attack items predicted as attack.
    pub true_positives: u64,
    /// Benign items predicted as attack.
    pub false_positives: u64,
    /// Benign items predicted as benign.
    pub true_negatives: u64,
    /// Attack items predicted as benign.
    pub false_negatives: u64,
}

impl ConfusionMatrix {
    /// Tallies one decision.
    pub fn record(&mut self, predicted_attack: bool, actually_attack: bool) {
        match (predicted_attack, actually_attack) {
            (true, true) => self.true_positives += 1,
            (true, false) => self.false_positives += 1,
            (false, false) => self.true_negatives += 1,
            (false, true) => self.false_negatives += 1,
        }
    }

    /// Adds another matrix's counts into this one (shard merging).
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        self.true_positives += other.true_positives;
        self.false_positives += other.false_positives;
        self.true_negatives += other.true_negatives;
        self.false_negatives += other.false_negatives;
    }

    /// Builds a matrix by thresholding `scores` against `labels`
    /// (`score >= threshold` ⇒ alert).
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn from_scores(scores: &[f64], labels: &[bool], threshold: f64) -> Self {
        assert_eq!(scores.len(), labels.len(), "scores/labels length mismatch");
        let mut cm = ConfusionMatrix::default();
        for (&score, &label) in scores.iter().zip(labels) {
            cm.record(score >= threshold, label);
        }
        cm
    }

    /// Total items.
    pub fn total(&self) -> u64 {
        self.true_positives + self.false_positives + self.true_negatives + self.false_negatives
    }

    /// Accuracy: fraction of correct decisions (0 on an empty matrix).
    pub fn accuracy(&self) -> f64 {
        ratio(self.true_positives + self.true_negatives, self.total())
    }

    /// Precision: TP / (TP + FP); 0 when nothing was predicted positive.
    pub fn precision(&self) -> f64 {
        ratio(self.true_positives, self.true_positives + self.false_positives)
    }

    /// Recall (detection rate): TP / (TP + FN); 0 when there were no attacks.
    pub fn recall(&self) -> f64 {
        ratio(self.true_positives, self.true_positives + self.false_negatives)
    }

    /// False-positive rate: FP / (FP + TN); 0 when there was no benign
    /// traffic.
    pub fn false_positive_rate(&self) -> f64 {
        ratio(self.false_positives, self.false_positives + self.true_negatives)
    }

    /// F1: harmonic mean of precision and recall (0 when both are 0).
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r > 0.0 {
            2.0 * p * r / (p + r)
        } else {
            0.0
        }
    }

    /// The four headline metrics as a [`Metrics`] record.
    pub fn metrics(&self) -> Metrics {
        Metrics {
            accuracy: self.accuracy(),
            precision: self.precision(),
            recall: self.recall(),
            f1: self.f1(),
        }
    }
}

fn ratio(numerator: u64, denominator: u64) -> f64 {
    if denominator == 0 {
        0.0
    } else {
        numerator as f64 / denominator as f64
    }
}

/// The four metrics reported per (IDS, dataset) cell of Table IV.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Metrics {
    /// Fraction of correct decisions.
    pub accuracy: f64,
    /// TP / predicted positives.
    pub precision: f64,
    /// TP / actual positives (detection rate).
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
}

impl Metrics {
    /// Element-wise mean of several metric records (the "Average:" rows of
    /// Table IV). Returns zeros for an empty slice.
    pub fn mean(items: &[Metrics]) -> Metrics {
        if items.is_empty() {
            return Metrics::default();
        }
        let n = items.len() as f64;
        Metrics {
            accuracy: items.iter().map(|m| m.accuracy).sum::<f64>() / n,
            precision: items.iter().map(|m| m.precision).sum::<f64>() / n,
            recall: items.iter().map(|m| m.recall).sum::<f64>() / n,
            f1: items.iter().map(|m| m.f1).sum::<f64>() / n,
        }
    }
}

/// Raw per-attack-family tallies, accumulated while scoring and merged
/// across shards/peers exactly like confusion counts.
///
/// `packets` and `flows` split the family's scored items by event shape:
/// a packet-format detector scores [`Event::Packet`]s (so `flows == 0`),
/// a flow-format detector scores [`Event::FlowEvicted`]s (so
/// `packets == 0`) — keeping both makes the split visible when outcomes
/// from differently-shaped detectors sit in one table.
///
/// [`Event::Packet`]: crate::event::Event::Packet
/// [`Event::FlowEvicted`]: crate::event::Event::FlowEvicted
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FamilyCounts {
    /// Scored items of this family at or above the alert threshold.
    pub alerts: usize,
    /// Packet events of this family scored.
    pub packets: usize,
    /// Flow-eviction events of this family scored.
    pub flows: usize,
}

impl FamilyCounts {
    /// Tallies one scored event of this family.
    pub fn record(&mut self, alert: bool, is_flow: bool) {
        self.alerts += usize::from(alert);
        if is_flow {
            self.flows += 1;
        } else {
            self.packets += 1;
        }
    }

    /// Adds another shard's tallies (the cross-shard/cross-peer merge).
    pub fn merge(&mut self, other: &FamilyCounts) {
        self.alerts += other.alerts;
        self.packets += other.packets;
        self.flows += other.flows;
    }

    /// Total scored items of this family.
    pub fn items(&self) -> usize {
        self.packets + self.flows
    }
}

/// The per-attack-family outcome row of an experiment or stream report:
/// named fields instead of the historical `(name, recall, count)` tuple.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FamilyOutcome {
    /// Attack family name (`AttackKind::name()`).
    pub family: String,
    /// Fraction of this family's scored items that raised an alert.
    pub recall: f64,
    /// Scored items of this family at or above the alert threshold.
    pub alerts: usize,
    /// Packet events of this family scored.
    pub packets: usize,
    /// Flow-eviction events of this family scored.
    pub flows: usize,
}

impl FamilyOutcome {
    /// Builds the outcome row from raw tallies.
    pub fn from_counts(family: &str, counts: &FamilyCounts) -> Self {
        FamilyOutcome {
            family: family.to_string(),
            recall: counts.alerts as f64 / counts.items().max(1) as f64,
            alerts: counts.alerts,
            packets: counts.packets,
            flows: counts.flows,
        }
    }

    /// Total scored items of this family (packets + flows).
    pub fn items(&self) -> usize {
        self.packets + self.flows
    }

    /// Serializes this row as a JSON object (the hand-rolled convention
    /// shared by `Experiment` and `StreamReport` serialization).
    pub fn to_json(&self) -> String {
        use crate::json::{num_field, str_field};
        let mut out = String::with_capacity(96);
        out.push('{');
        str_field(&mut out, "family", &self.family);
        out.push(',');
        num_field(&mut out, "recall", self.recall);
        out.push(',');
        num_field(&mut out, "alerts", self.alerts as f64);
        out.push(',');
        num_field(&mut out, "packets", self.packets as f64);
        out.push(',');
        num_field(&mut out, "flows", self.flows as f64);
        out.push('}');
        out
    }
}

/// Folds a per-family tally map into sorted [`FamilyOutcome`] rows — the
/// one rendering rule shared by the batch runner and the stream merge.
pub fn family_outcomes(
    families: &std::collections::BTreeMap<&'static str, FamilyCounts>,
) -> Vec<FamilyOutcome> {
    families.iter().map(|(name, counts)| FamilyOutcome::from_counts(name, counts)).collect()
}

/// One point of a ROC or precision-recall curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CurvePoint {
    /// Threshold producing this point.
    pub threshold: f64,
    /// X coordinate (FPR for ROC, recall for PR).
    pub x: f64,
    /// Y coordinate (TPR for ROC, precision for PR).
    pub y: f64,
}

/// Computes the ROC curve (FPR, TPR) over all distinct score thresholds.
///
/// Points are ordered by increasing FPR. Degenerate inputs (no positives or
/// no negatives) yield an empty curve.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn roc_curve(scores: &[f64], labels: &[bool]) -> Vec<CurvePoint> {
    assert_eq!(scores.len(), labels.len(), "scores/labels length mismatch");
    let positives = labels.iter().filter(|&&l| l).count() as f64;
    let negatives = labels.len() as f64 - positives;
    if positives == 0.0 || negatives == 0.0 {
        return Vec::new();
    }
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).unwrap_or(std::cmp::Ordering::Equal));
    let mut points = Vec::new();
    let mut tp = 0.0;
    let mut fp = 0.0;
    let mut i = 0;
    while i < order.len() {
        let threshold = scores[order[i]];
        // Consume all items tied at this score.
        while i < order.len() && scores[order[i]] == threshold {
            if labels[order[i]] {
                tp += 1.0;
            } else {
                fp += 1.0;
            }
            i += 1;
        }
        points.push(CurvePoint { threshold, x: fp / negatives, y: tp / positives });
    }
    points
}

/// Area under the ROC curve via trapezoidal integration (0.5 for random
/// scores, 0 for an empty curve).
pub fn auc(points: &[CurvePoint]) -> f64 {
    if points.is_empty() {
        return 0.0;
    }
    let mut area = 0.0;
    let mut prev = CurvePoint { threshold: f64::INFINITY, x: 0.0, y: 0.0 };
    for point in points {
        area += (point.x - prev.x) * (point.y + prev.y) / 2.0;
        prev = *point;
    }
    // Close the curve to (1, 1).
    area += (1.0 - prev.x) * (1.0 + prev.y) / 2.0;
    area
}

/// Computes the precision-recall curve over all distinct score thresholds,
/// ordered by increasing recall.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn pr_curve(scores: &[f64], labels: &[bool]) -> Vec<CurvePoint> {
    assert_eq!(scores.len(), labels.len(), "scores/labels length mismatch");
    let positives = labels.iter().filter(|&&l| l).count() as f64;
    if positives == 0.0 {
        return Vec::new();
    }
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[b].partial_cmp(&scores[a]).unwrap_or(std::cmp::Ordering::Equal));
    let mut points = Vec::new();
    let mut tp = 0.0;
    let mut predicted = 0.0;
    let mut i = 0;
    while i < order.len() {
        let threshold = scores[order[i]];
        while i < order.len() && scores[order[i]] == threshold {
            if labels[order[i]] {
                tp += 1.0;
            }
            predicted += 1.0;
            i += 1;
        }
        points.push(CurvePoint { threshold, x: tp / positives, y: tp / predicted });
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_classifier() {
        let scores = [0.9, 0.8, 0.1, 0.2];
        let labels = [true, true, false, false];
        let cm = ConfusionMatrix::from_scores(&scores, &labels, 0.5);
        let m = cm.metrics();
        assert_eq!(m.accuracy, 1.0);
        assert_eq!(m.precision, 1.0);
        assert_eq!(m.recall, 1.0);
        assert_eq!(m.f1, 1.0);
        assert_eq!(auc(&roc_curve(&scores, &labels)), 1.0);
    }

    #[test]
    fn all_positive_predictor_matches_table_iv_degenerate_rows() {
        // DNN on Stratosphere predicted everything attack: acc == prec ==
        // attack share, recall == 1.
        let labels = [true, false, false, false, true];
        let scores = [1.0; 5];
        let cm = ConfusionMatrix::from_scores(&scores, &labels, 0.5);
        let m = cm.metrics();
        assert!((m.accuracy - 0.4).abs() < 1e-12);
        assert!((m.precision - 0.4).abs() < 1e-12);
        assert_eq!(m.recall, 1.0);
    }

    #[test]
    fn all_negative_predictor_matches_slips_rows() {
        // Slips on UNSW alerted on nothing: precision = recall = f1 = 0,
        // accuracy = benign share.
        let labels = [true, false, false, false];
        let scores = [0.0; 4];
        let cm = ConfusionMatrix::from_scores(&scores, &labels, 0.5);
        let m = cm.metrics();
        assert_eq!(m.precision, 0.0);
        assert_eq!(m.recall, 0.0);
        assert_eq!(m.f1, 0.0);
        assert!((m.accuracy - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_matrix_is_all_zero() {
        let cm = ConfusionMatrix::default();
        let m = cm.metrics();
        assert_eq!((m.accuracy, m.precision, m.recall, m.f1), (0.0, 0.0, 0.0, 0.0));
    }

    #[test]
    fn random_scores_have_auc_near_half() {
        // Deterministic pseudo-random scores via a linear congruential step.
        let mut state = 12345u64;
        let mut scores = Vec::new();
        let mut labels = Vec::new();
        for i in 0..2000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            scores.push((state >> 11) as f64 / (1u64 << 53) as f64);
            labels.push(i % 2 == 0);
        }
        let a = auc(&roc_curve(&scores, &labels));
        assert!((a - 0.5).abs() < 0.05, "auc = {a}");
    }

    #[test]
    fn roc_handles_no_positives() {
        assert!(roc_curve(&[1.0, 2.0], &[false, false]).is_empty());
        assert!(pr_curve(&[1.0, 2.0], &[false, false]).is_empty());
    }

    #[test]
    fn roc_is_monotone_in_fpr_and_tpr() {
        let scores = [0.1, 0.4, 0.35, 0.8, 0.65, 0.2, 0.9];
        let labels = [false, true, false, true, true, false, true];
        let curve = roc_curve(&scores, &labels);
        for pair in curve.windows(2) {
            assert!(pair[1].x >= pair[0].x);
            assert!(pair[1].y >= pair[0].y);
        }
    }

    #[test]
    fn tied_scores_are_grouped() {
        let scores = [0.5, 0.5, 0.5];
        let labels = [true, false, true];
        let curve = roc_curve(&scores, &labels);
        assert_eq!(curve.len(), 1);
        assert_eq!(curve[0].x, 1.0);
        assert_eq!(curve[0].y, 1.0);
    }

    #[test]
    fn metrics_mean_matches_paper_average_rows() {
        let rows = [
            Metrics { accuracy: 0.8, precision: 0.5, recall: 0.4, f1: 0.44 },
            Metrics { accuracy: 0.6, precision: 0.7, recall: 0.8, f1: 0.75 },
        ];
        let avg = Metrics::mean(&rows);
        assert!((avg.accuracy - 0.7).abs() < 1e-12);
        assert!((avg.precision - 0.6).abs() < 1e-12);
        assert!((avg.recall - 0.6).abs() < 1e-12);
    }

    #[test]
    fn f1_is_harmonic_mean() {
        let cm = ConfusionMatrix {
            true_positives: 30,
            false_positives: 10,
            true_negatives: 50,
            false_negatives: 10,
        };
        let p = 0.75;
        let r = 0.75;
        assert!((cm.f1() - 2.0 * p * r / (p + r)).abs() < 1e-12);
    }
}
