//! Data preprocessing and sampling (Section IV-A steps 1–2).
//!
//! The paper's pipeline, reproduced exactly:
//!
//! 1. **Random flow sampling** — when a dataset is too large, whole flows
//!    are sampled at random (sampling packets independently would destroy
//!    the flow structure every evaluated IDS depends on).
//! 2. **Timestamp re-sort** — after sampling, packets are re-sorted by
//!    timestamp so "the IDSs received data that preserved the temporal
//!    statistics of the input packets".
//! 3. **Train/eval split** — the leading fraction of the trace (by time) is
//!    made available for training/calibration, mirroring how the evaluated
//!    systems train on initial traffic when no explicit benign capture
//!    exists.
//! 4. **Flow assembly** — the same packet stream is also delivered as
//!    labeled flow records for flow-input IDSs.

use std::collections::HashMap;

use idsbench_flow::{FlowFeatures, FlowKey, FlowTable, FlowTableConfig};
use idsbench_net::ParsedPacket;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::detector::{DetectorInput, LabeledFlow};
use crate::event::{ParsedView, TrainView};
use crate::label::{Label, LabeledPacket};
use crate::{CoreError, Result};

/// How assembled flows are divided into training and evaluation sets — in
/// the *materialized* [`Pipeline::prepare`] view only.
///
/// Packet-input IDSs always receive a *temporal* split (they train on
/// leading traffic, as their published protocols dictate). Flow-input IDSs
/// were originally evaluated on record-level splits of labelled CSVs —
/// k-fold style, not temporal — so the materialized view reproduces that by
/// default.
///
/// The event drivers ([`Pipeline::prepare_events`], `runner::evaluate`, the
/// streaming executor) deliberately ignore this knob: a stream has no
/// second pass to shuffle flows through, so training flows are always the
/// ones assembled from the leading packet slice and evaluation flows arrive
/// at flow-table eviction time. That temporal discipline *is* the
/// deployment reality the redesign models (it also removes the
/// future-into-training leak this option's own docs acknowledge).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowSplit {
    /// First `train_fraction` of flows by start time.
    Temporal,
    /// Seeded random split, stratified by label so both sides keep the
    /// dataset's class balance (the evaluation convention of the original
    /// flow-based IDS studies; note it leaks future records into training,
    /// a known criticism the paper echoes).
    RandomStratified,
}

/// Configuration for the preprocessing pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineConfig {
    /// Fraction of flows retained by random flow sampling (1.0 = keep all).
    pub sampling_rate: f64,
    /// Fraction of the trace (by packet count, after sorting) available for
    /// training/calibration.
    pub train_fraction: f64,
    /// How flows are split into train/eval sets in the materialized
    /// [`Pipeline::prepare`] view. Ignored by the event drivers, which are
    /// always temporal (see [`FlowSplit`]).
    pub flow_split: FlowSplit,
    /// Seed for the sampling RNG.
    pub seed: u64,
    /// Flow-table parameters used for flow assembly.
    pub flow_config: FlowTableConfig,
}

impl Default for PipelineConfig {
    /// Keep every flow, train on the leading 30% (the split the evaluated
    /// anomaly detectors assume), stratified-random flow split, seed 0.
    fn default() -> Self {
        PipelineConfig {
            sampling_rate: 1.0,
            train_fraction: 0.3,
            flow_split: FlowSplit::RandomStratified,
            seed: 0,
            flow_config: FlowTableConfig::default(),
        }
    }
}

/// Prepared input for event replay: the training slice in both shapes plus
/// the evaluation packets as parsed views, produced by
/// [`Pipeline::prepare_events`].
///
/// Evaluation flows are deliberately *not* materialized here — the drivers
/// deliver them as [`Event::FlowEvicted`](crate::event::Event::FlowEvicted)
/// events at the moment the flow table evicts them, because eviction timing
/// is part of what is being evaluated.
#[derive(Debug, Clone)]
pub struct EventInput {
    /// The training slice: parsed packets plus the flows assembled from
    /// exactly those packets.
    pub train: TrainView,
    /// Evaluation packets with their parsed views, in timestamp order.
    pub eval: Vec<ParsedView>,
    /// Flow-table parameters the eval replay must use (the same ones the
    /// training flows were assembled with).
    pub flow_config: FlowTableConfig,
}

/// The preprocessing pipeline (see module docs).
#[derive(Debug, Clone)]
pub struct Pipeline {
    config: PipelineConfig,
}

impl Pipeline {
    /// Creates a pipeline.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] when `sampling_rate` is outside
    /// `(0, 1]` or `train_fraction` outside `[0, 1)`.
    pub fn new(config: PipelineConfig) -> Result<Self> {
        if !(config.sampling_rate > 0.0 && config.sampling_rate <= 1.0) {
            return Err(CoreError::invalid(
                "sampling_rate",
                format!("{} not in (0, 1]", config.sampling_rate),
            ));
        }
        if !(0.0..1.0).contains(&config.train_fraction) {
            return Err(CoreError::invalid(
                "train_fraction",
                format!("{} not in [0, 1)", config.train_fraction),
            ));
        }
        Ok(Pipeline { config })
    }

    /// The pipeline's configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Runs the parse-once pipeline for event replay: decode every packet
    /// exactly once, flow-sample on the precomputed keys, sort, split, and
    /// assemble the training slice's flow view.
    ///
    /// This is the preparation step behind [`crate::runner::evaluate`] and
    /// the entry point for replaying externally captured traffic (pcap)
    /// through the event drivers. Unlike the materialized
    /// [`Pipeline::prepare`], malformed frames are *not* an error here:
    /// they ride through as keyless [`ParsedView`]s that packet detectors
    /// score neutrally, exactly as a deployed IDS passes them through.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::EmptyDataset`] if nothing survives sampling.
    pub fn prepare_events(&self, name: &str, packets: Vec<LabeledPacket>) -> Result<EventInput> {
        // The data plane's single parse per packet (see `event` module).
        let views: Vec<ParsedView> = packets.into_iter().map(ParsedView::from_packet).collect();
        let sampled = self.sample_flow_views(views);
        if sampled.is_empty() {
            return Err(CoreError::EmptyDataset { dataset: name.to_string() });
        }
        let mut sorted = sampled;
        sorted.sort_by_key(|view| view.packet.packet.ts);

        let (train_views, eval) = split_at_fraction(sorted, self.config.train_fraction);
        let train = TrainView::assemble(train_views, self.config.flow_config);
        Ok(EventInput { train, eval, flow_config: self.config.flow_config })
    }

    /// Step 1 for the event path: random flow sampling on the precomputed
    /// canonical keys. Packets without flow identity — non-IP *and*
    /// malformed frames — are always retained, honouring the event
    /// pipeline's pass-through promise (the legacy [`Pipeline::prepare`]
    /// instead drops unparseable packets when sampling). Keep/drop
    /// decisions for parseable traffic are identical to the legacy path:
    /// the RNG is consumed once per newly seen flow, in the same order.
    fn sample_flow_views(&self, views: Vec<ParsedView>) -> Vec<ParsedView> {
        if self.config.sampling_rate >= 1.0 {
            return views;
        }
        let mut rng = SmallRng::seed_from_u64(self.config.seed);
        let mut keep: HashMap<FlowKey, bool> = HashMap::new();
        views
            .into_iter()
            .filter(|view| match view.flow_key {
                None => true,
                Some(key) => *keep
                    .entry(key)
                    .or_insert_with(|| rng.random_range(0.0..1.0) < self.config.sampling_rate),
            })
            .collect()
    }

    /// Runs the full pipeline on a labeled packet stream, materializing
    /// both train/eval shapes up front — the offline analysis view (the
    /// event drivers use [`Pipeline::prepare_events`] instead).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::EmptyDataset`] if nothing survives sampling and
    /// [`CoreError::MalformedPacket`] if a packet fails to parse (synthetic
    /// datasets never produce these; pcap replays might).
    pub fn prepare(&self, name: &str, packets: Vec<LabeledPacket>) -> Result<DetectorInput> {
        let sampled = self.sample_flows(packets);
        if sampled.is_empty() {
            return Err(CoreError::EmptyDataset { dataset: name.to_string() });
        }
        let sorted = sort_by_timestamp(sampled);

        // Flows are assembled over the whole (sampled, sorted) trace so flow
        // boundaries do not depend on where the packet split lands, then
        // divided per the configured flow-split discipline.
        let flows = self.assemble_flows(&sorted)?;
        let (train_flows, eval_flows) = self.split_flows(flows);

        let (train_packets, eval_packets) = split_at_fraction(sorted, self.config.train_fraction);
        Ok(DetectorInput { train_packets, eval_packets, train_flows, eval_flows })
    }

    fn split_flows(&self, flows: Vec<LabeledFlow>) -> (Vec<LabeledFlow>, Vec<LabeledFlow>) {
        match self.config.flow_split {
            FlowSplit::Temporal => {
                let split = ((flows.len() as f64) * self.config.train_fraction) as usize;
                let mut flows = flows;
                let eval = flows.split_off(split);
                (flows, eval)
            }
            FlowSplit::RandomStratified => {
                let mut rng = SmallRng::seed_from_u64(self.config.seed ^ 0xf10f_5b17);
                let (mut attack, mut benign): (Vec<LabeledFlow>, Vec<LabeledFlow>) =
                    flows.into_iter().partition(|f| f.is_attack());
                shuffle(&mut attack, &mut rng);
                shuffle(&mut benign, &mut rng);
                let mut train = Vec::new();
                let mut eval = Vec::new();
                for class in [attack, benign] {
                    let split = ((class.len() as f64) * self.config.train_fraction) as usize;
                    let mut class = class;
                    let class_eval = class.split_off(split);
                    train.extend(class);
                    eval.extend(class_eval);
                }
                // Restore chronological order within each side (detectors
                // like Slips interpret flow order).
                train.sort_by_key(|f| (f.record.first_seen, f.record.key));
                eval.sort_by_key(|f| (f.record.first_seen, f.record.key));
                (train, eval)
            }
        }
    }

    /// Step 1: random flow sampling. Flow identity is the canonical 5-tuple;
    /// non-IP packets are always retained (they carry no flow identity).
    fn sample_flows(&self, packets: Vec<LabeledPacket>) -> Vec<LabeledPacket> {
        if self.config.sampling_rate >= 1.0 {
            return packets;
        }
        let mut rng = SmallRng::seed_from_u64(self.config.seed);
        let mut keep: HashMap<FlowKey, bool> = HashMap::new();
        packets
            .into_iter()
            .filter(|lp| {
                let Ok(parsed) = ParsedPacket::parse(&lp.packet) else {
                    return false;
                };
                match FlowKey::from_packet(&parsed) {
                    None => true,
                    Some(key) => {
                        let (canonical, _) = key.canonical();
                        *keep.entry(canonical).or_insert_with(|| {
                            rng.random_range(0.0..1.0) < self.config.sampling_rate
                        })
                    }
                }
            })
            .collect()
    }

    /// Step 4: assembles labeled flows from a packet slice.
    ///
    /// A flow inherits the attack label (and kind) of its constituent
    /// packets via the canonical 5-tuple; mixed tuples (benign and attack
    /// traffic sharing an exact 5-tuple) label the flow as attack, matching
    /// the labelling practice of the real datasets.
    fn assemble_flows(&self, packets: &[LabeledPacket]) -> Result<Vec<LabeledFlow>> {
        let mut labels: HashMap<FlowKey, Label> = HashMap::new();
        let mut table = FlowTable::new(self.config.flow_config);
        let mut records = Vec::new();
        for (index, lp) in packets.iter().enumerate() {
            let parsed = ParsedPacket::parse(&lp.packet)
                .map_err(|e| CoreError::MalformedPacket { index, detail: e.to_string() })?;
            if let Some(key) = FlowKey::from_packet(&parsed) {
                let (canonical, _) = key.canonical();
                labels
                    .entry(canonical)
                    .and_modify(|existing| {
                        if !existing.is_attack() && lp.label.is_attack() {
                            *existing = lp.label;
                        }
                    })
                    .or_insert(lp.label);
            }
            records.extend(table.observe(&parsed));
        }
        records.extend(table.flush());
        Ok(records
            .into_iter()
            .map(|record| {
                let label = labels.get(&record.key).copied().unwrap_or(Label::Benign);
                let features = FlowFeatures::from_record(&record);
                LabeledFlow { record, features, label }
            })
            .collect())
    }
}

/// Step 2: stable sort by capture timestamp.
fn sort_by_timestamp(mut packets: Vec<LabeledPacket>) -> Vec<LabeledPacket> {
    packets.sort_by_key(|lp| lp.packet.ts);
    packets
}

/// Step 3: splits a timestamp-sorted trace at the leading `fraction` of
/// items (`⌊len · fraction⌋`) into (train/warmup, eval) — the *single*
/// definition of the train/eval split rule. The batch pipeline (packets
/// and parsed views alike) and the streaming engine's warmup split all call
/// this function, which is what keeps the streaming↔batch parity invariant
/// stable under maintenance.
pub fn split_at_fraction<T>(mut items: Vec<T>, fraction: f64) -> (Vec<T>, Vec<T>) {
    let split = ((items.len() as f64) * fraction.clamp(0.0, 1.0)) as usize;
    let rest = items.split_off(split.min(items.len()));
    (items, rest)
}

fn shuffle(flows: &mut [LabeledFlow], rng: &mut SmallRng) {
    use rand::seq::SliceRandom;
    flows.shuffle(rng);
}

#[cfg(test)]
mod tests {
    use super::*;
    use idsbench_net::{MacAddr, PacketBuilder, TcpFlags, Timestamp};
    use std::net::Ipv4Addr;

    fn tcp_packet(src: (u8, u16), dst: (u8, u16), t: f64, label: Label) -> LabeledPacket {
        let p = PacketBuilder::new()
            .ethernet(MacAddr::from_host_id(src.0 as u32), MacAddr::from_host_id(dst.0 as u32))
            .ipv4(Ipv4Addr::new(10, 0, 0, src.0), Ipv4Addr::new(10, 0, 0, dst.0))
            .tcp(src.1, dst.1, TcpFlags::ACK)
            .payload(&[0; 20])
            .build(Timestamp::from_secs_f64(t));
        LabeledPacket::new(p, label)
    }

    fn many_flows(flows: usize, packets_per_flow: usize) -> Vec<LabeledPacket> {
        let mut out = Vec::new();
        for f in 0..flows {
            for p in 0..packets_per_flow {
                out.push(tcp_packet(
                    (1 + (f % 4) as u8, 1000 + f as u16),
                    (20, 80),
                    f as f64 + p as f64 * 0.001,
                    Label::Benign,
                ));
            }
        }
        out
    }

    #[test]
    fn sorting_orders_by_timestamp() {
        let pipeline = Pipeline::new(PipelineConfig::default()).unwrap();
        let mut packets = many_flows(5, 3);
        packets.reverse();
        let input = pipeline.prepare("t", packets).unwrap();
        let all: Vec<&LabeledPacket> =
            input.train_packets.iter().chain(&input.eval_packets).collect();
        for pair in all.windows(2) {
            assert!(pair[0].packet.ts <= pair[1].packet.ts);
        }
    }

    #[test]
    fn sampling_keeps_whole_flows() {
        let config =
            PipelineConfig { sampling_rate: 0.5, train_fraction: 0.0, ..Default::default() };
        let pipeline = Pipeline::new(config).unwrap();
        let input = pipeline.prepare("t", many_flows(100, 4)).unwrap();
        // Every surviving flow must have all 4 packets.
        let mut counts: HashMap<u16, usize> = HashMap::new();
        for lp in &input.eval_packets {
            let parsed = ParsedPacket::parse(&lp.packet).unwrap();
            *counts.entry(parsed.src_port().unwrap()).or_default() += 1;
        }
        assert!(!counts.is_empty());
        assert!(counts.len() < 100, "some flows must be dropped");
        for (port, count) in counts {
            assert_eq!(count, 4, "flow with src port {port} was sampled partially");
        }
    }

    #[test]
    fn sampling_is_deterministic_in_seed() {
        let config = PipelineConfig { sampling_rate: 0.3, ..Default::default() };
        let pipeline = Pipeline::new(config).unwrap();
        let a = pipeline.prepare("t", many_flows(50, 2)).unwrap();
        let b = pipeline.prepare("t", many_flows(50, 2)).unwrap();
        assert_eq!(a.eval_packets.len(), b.eval_packets.len());
        let config2 = PipelineConfig { sampling_rate: 0.3, seed: 99, ..Default::default() };
        let c = Pipeline::new(config2).unwrap().prepare("t", many_flows(50, 2)).unwrap();
        // Different seed virtually always keeps a different subset.
        assert_ne!(a.eval_packets.len() + a.train_packets.len(), 0, "sanity: non-empty");
        let _ = c;
    }

    #[test]
    fn split_fraction_is_respected() {
        let config = PipelineConfig { train_fraction: 0.25, ..Default::default() };
        let pipeline = Pipeline::new(config).unwrap();
        let input = pipeline.prepare("t", many_flows(10, 4)).unwrap();
        assert_eq!(input.train_packets.len(), 10);
        assert_eq!(input.eval_packets.len(), 30);
    }

    #[test]
    fn flows_inherit_attack_labels() {
        let pipeline =
            Pipeline::new(PipelineConfig { train_fraction: 0.0, ..Default::default() }).unwrap();
        let mut packets = many_flows(3, 2);
        packets.push(tcp_packet(
            (9, 6666),
            (20, 80),
            100.0,
            Label::Attack(crate::AttackKind::PortScan),
        ));
        let input = pipeline.prepare("t", packets).unwrap();
        let attacks: Vec<&LabeledFlow> =
            input.eval_flows.iter().filter(|f| f.is_attack()).collect();
        assert_eq!(attacks.len(), 1);
        assert_eq!(attacks[0].label.attack_kind(), Some(crate::AttackKind::PortScan));
        assert_eq!(input.eval_flows.len(), 4);
    }

    #[test]
    fn empty_dataset_is_an_error() {
        let pipeline = Pipeline::new(PipelineConfig::default()).unwrap();
        assert!(matches!(
            pipeline.prepare("empty", Vec::new()),
            Err(CoreError::EmptyDataset { .. })
        ));
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(Pipeline::new(PipelineConfig { sampling_rate: 0.0, ..Default::default() }).is_err());
        assert!(Pipeline::new(PipelineConfig { sampling_rate: 1.5, ..Default::default() }).is_err());
        assert!(
            Pipeline::new(PipelineConfig { train_fraction: 1.0, ..Default::default() }).is_err()
        );
    }

    #[test]
    fn eval_labels_align_with_flows() {
        let pipeline =
            Pipeline::new(PipelineConfig { train_fraction: 0.0, ..Default::default() }).unwrap();
        let input = pipeline.prepare("t", many_flows(4, 2)).unwrap();
        let labels = input.eval_labels(crate::InputFormat::Flows);
        assert_eq!(labels.len(), input.eval_flows.len());
        assert!(labels.iter().all(|&l| !l));
    }
}
