//! Shared detector vocabulary: input formats, labeled flows, verdicts, and
//! the legacy materialized [`DetectorInput`] view.
//!
//! The detector *contract* itself lives in [`crate::event`]: every system
//! implements [`EventDetector`](crate::event::EventDetector) over the
//! parse-once event stream. This module keeps the pieces both the event
//! path and the offline analysis tools share.

use idsbench_flow::{FlowFeatures, FlowRecord};

use crate::label::{Label, LabeledPacket};

/// The input shape a detector consumes — the packets-vs-flows compatibility
/// axis the paper highlights as a major practical obstacle (Section I).
///
/// Under the Event API both shapes travel on one stream: packet detectors
/// score [`Event::Packet`](crate::event::Event::Packet) events, flow
/// detectors score [`Event::FlowEvicted`](crate::event::Event::FlowEvicted)
/// events emitted by the flow table's eviction path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InputFormat {
    /// Scores packet events in timestamp order (Kitsune, HELAD).
    Packets,
    /// Scores flow-eviction events (DNN, Slips).
    Flows,
}

/// A completed flow with its statistical features and ground-truth label.
#[derive(Debug, Clone, PartialEq)]
pub struct LabeledFlow {
    /// The assembled flow.
    pub record: FlowRecord,
    /// CICFlowMeter-style feature vector.
    pub features: FlowFeatures,
    /// Ground truth (attack if any constituent packet was attack traffic).
    pub label: Label,
}

impl LabeledFlow {
    /// Shorthand for `label.is_attack()`.
    pub fn is_attack(&self) -> bool {
        self.label.is_attack()
    }
}

/// Fully materialized preprocessed data: a leading *training* slice and the
/// *evaluation* slice, in both shapes.
///
/// This is the offline analysis view produced by
/// [`Pipeline::prepare`](crate::preprocess::Pipeline::prepare) — useful for
/// feature inspection and ablations that want all flows in hand at once.
/// Evaluation runs do **not** use it: the event drivers replay
/// [`ParsedView`](crate::event::ParsedView)s and deliver flows at eviction
/// time instead of materializing them up front.
#[derive(Debug, Clone)]
pub struct DetectorInput {
    /// Training packets (timestamp order).
    pub train_packets: Vec<LabeledPacket>,
    /// Evaluation packets (timestamp order).
    pub eval_packets: Vec<LabeledPacket>,
    /// Training flows (first-seen order).
    pub train_flows: Vec<LabeledFlow>,
    /// Evaluation flows (first-seen order).
    pub eval_flows: Vec<LabeledFlow>,
}

impl DetectorInput {
    /// Number of evaluation items of the given format.
    pub fn eval_len(&self, format: InputFormat) -> usize {
        match format {
            InputFormat::Packets => self.eval_packets.len(),
            InputFormat::Flows => self.eval_flows.len(),
        }
    }

    /// Ground-truth labels of the evaluation items for the given format.
    pub fn eval_labels(&self, format: InputFormat) -> Vec<bool> {
        match format {
            InputFormat::Packets => {
                self.eval_packets.iter().map(LabeledPacket::is_attack).collect()
            }
            InputFormat::Flows => self.eval_flows.iter().map(LabeledFlow::is_attack).collect(),
        }
    }

    /// Attack kinds of the evaluation items (`None` for benign), aligned
    /// with [`DetectorInput::eval_labels`]. Used for per-family recall
    /// breakdowns.
    pub fn eval_kinds(&self, format: InputFormat) -> Vec<Option<crate::AttackKind>> {
        match format {
            InputFormat::Packets => {
                self.eval_packets.iter().map(|p| p.label.attack_kind()).collect()
            }
            InputFormat::Flows => self.eval_flows.iter().map(|f| f.label.attack_kind()).collect(),
        }
    }
}

/// A binary verdict produced by applying a calibrated threshold to a score.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Verdict {
    /// Scored below the threshold.
    Benign,
    /// Scored at or above the threshold.
    Alert,
}

#[cfg(test)]
mod tests {
    use super::*;
    use idsbench_net::{Packet, Timestamp};

    fn input_with_eval_packets(n: usize) -> DetectorInput {
        DetectorInput {
            train_packets: Vec::new(),
            eval_packets: (0..n)
                .map(|i| {
                    LabeledPacket::new(
                        Packet::new(Timestamp::from_micros(i as u64), vec![0u8; 60 + i]),
                        Label::Benign,
                    )
                })
                .collect(),
            train_flows: Vec::new(),
            eval_flows: Vec::new(),
        }
    }

    #[test]
    fn eval_len_matches_format() {
        let input = input_with_eval_packets(3);
        assert_eq!(input.eval_len(InputFormat::Packets), 3);
        assert_eq!(input.eval_len(InputFormat::Flows), 0);
    }

    #[test]
    fn eval_labels_match_format() {
        let input = input_with_eval_packets(2);
        assert_eq!(input.eval_labels(InputFormat::Packets), vec![false, false]);
        assert_eq!(input.eval_labels(InputFormat::Flows), Vec::<bool>::new());
    }
}
