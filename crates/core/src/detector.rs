use idsbench_flow::{FlowFeatures, FlowRecord};

use crate::label::{Label, LabeledPacket};

/// The input shape a detector consumes — the packets-vs-flows compatibility
/// axis the paper highlights as a major practical obstacle (Section I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InputFormat {
    /// Consumes raw packets in timestamp order (Kitsune, HELAD).
    Packets,
    /// Consumes assembled flow records (DNN, Slips).
    Flows,
}

/// A completed flow with its statistical features and ground-truth label.
#[derive(Debug, Clone, PartialEq)]
pub struct LabeledFlow {
    /// The assembled flow.
    pub record: FlowRecord,
    /// CICFlowMeter-style feature vector.
    pub features: FlowFeatures,
    /// Ground truth (attack if any constituent packet was attack traffic).
    pub label: Label,
}

impl LabeledFlow {
    /// Shorthand for `label.is_attack()`.
    pub fn is_attack(&self) -> bool {
        self.label.is_attack()
    }
}

/// Preprocessed data handed to a detector: a leading *training* slice and
/// the *evaluation* slice it must score.
///
/// Both shapes are always populated, so a detector declares its preference
/// via [`Detector::input_format`] and reads the matching pair. Supervised
/// detectors may read labels from the training slice; reading evaluation
/// labels is the pipeline-integrity violation the score-count check cannot
/// catch, so it is forbidden by convention and exercised in integration
/// tests via label-shuffling.
#[derive(Debug, Clone)]
pub struct DetectorInput {
    /// Training packets (timestamp order).
    pub train_packets: Vec<LabeledPacket>,
    /// Evaluation packets (timestamp order).
    pub eval_packets: Vec<LabeledPacket>,
    /// Training flows (first-seen order).
    pub train_flows: Vec<LabeledFlow>,
    /// Evaluation flows (first-seen order).
    pub eval_flows: Vec<LabeledFlow>,
}

impl DetectorInput {
    /// Number of items a detector must score given its input format.
    pub fn eval_len(&self, format: InputFormat) -> usize {
        match format {
            InputFormat::Packets => self.eval_packets.len(),
            InputFormat::Flows => self.eval_flows.len(),
        }
    }

    /// Ground-truth labels of the evaluation items for the given format.
    pub fn eval_labels(&self, format: InputFormat) -> Vec<bool> {
        match format {
            InputFormat::Packets => {
                self.eval_packets.iter().map(LabeledPacket::is_attack).collect()
            }
            InputFormat::Flows => self.eval_flows.iter().map(LabeledFlow::is_attack).collect(),
        }
    }

    /// Attack kinds of the evaluation items (`None` for benign), aligned
    /// with [`DetectorInput::eval_labels`]. Used for per-family recall
    /// breakdowns.
    pub fn eval_kinds(&self, format: InputFormat) -> Vec<Option<crate::AttackKind>> {
        match format {
            InputFormat::Packets => {
                self.eval_packets.iter().map(|p| p.label.attack_kind()).collect()
            }
            InputFormat::Flows => self.eval_flows.iter().map(|f| f.label.attack_kind()).collect(),
        }
    }
}

/// A binary verdict produced by applying a calibrated threshold to a score.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Verdict {
    /// Scored below the threshold.
    Benign,
    /// Scored at or above the threshold.
    Alert,
}

/// A network intrusion detection system under evaluation.
///
/// The contract mirrors the paper's methodology: the detector is constructed
/// with its out-of-the-box configuration (step 3), trains/calibrates itself
/// on the training slice as its published protocol dictates, and emits one
/// anomaly score per evaluation item. Threshold selection is *not* the
/// detector's job — the pipeline applies a standardized policy (step 4)
/// uniformly across systems.
///
/// The trait is object-safe; the experiment runner works with
/// `Box<dyn Detector>`.
pub trait Detector: Send {
    /// Human-readable system name as used in the paper (e.g. `"Kitsune"`).
    fn name(&self) -> &str;

    /// Which input shape this detector consumes.
    fn input_format(&self) -> InputFormat;

    /// Trains on the training slice and returns one anomaly score per
    /// evaluation item (higher = more anomalous). The returned vector's
    /// length must equal `input.eval_len(self.input_format())`.
    fn score(&mut self, input: &DetectorInput) -> Vec<f64>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use idsbench_net::{Packet, Timestamp};

    /// Scores packets by wire length — a trivially correct detector used to
    /// exercise the trait machinery.
    #[derive(Debug)]
    struct LengthDetector;

    impl Detector for LengthDetector {
        fn name(&self) -> &str {
            "length"
        }

        fn input_format(&self) -> InputFormat {
            InputFormat::Packets
        }

        fn score(&mut self, input: &DetectorInput) -> Vec<f64> {
            input.eval_packets.iter().map(|p| p.packet.wire_len() as f64).collect()
        }
    }

    fn input_with_eval_packets(n: usize) -> DetectorInput {
        DetectorInput {
            train_packets: Vec::new(),
            eval_packets: (0..n)
                .map(|i| {
                    LabeledPacket::new(
                        Packet::new(Timestamp::from_micros(i as u64), vec![0u8; 60 + i]),
                        Label::Benign,
                    )
                })
                .collect(),
            train_flows: Vec::new(),
            eval_flows: Vec::new(),
        }
    }

    #[test]
    fn detector_as_trait_object() {
        let mut detector: Box<dyn Detector> = Box::new(LengthDetector);
        let input = input_with_eval_packets(3);
        let scores = detector.score(&input);
        assert_eq!(scores, vec![60.0, 61.0, 62.0]);
        assert_eq!(detector.name(), "length");
        assert_eq!(input.eval_len(detector.input_format()), 3);
    }

    #[test]
    fn eval_labels_match_format() {
        let input = input_with_eval_packets(2);
        assert_eq!(input.eval_labels(InputFormat::Packets), vec![false, false]);
        assert_eq!(input.eval_labels(InputFormat::Flows), Vec::<bool>::new());
    }
}
