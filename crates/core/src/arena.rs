//! A recycling slab for packet payload buffers.
//!
//! The parse-once data plane allocates exactly one buffer per packet: the
//! frame bytes a [`ParsedView`](crate::ParsedView) carries (everything else
//! on the scoring path is pooled — see the `hot_path_allocs` test). For
//! replayed in-memory scenarios that buffer is created once up front, but a
//! *capture-fed* pipeline (pcap file today, a live ring tomorrow) would
//! mint and drop one `Vec<u8>` per packet, forever. [`PayloadArena`] closes
//! that last hole: capture buffers are drawn from a pool, filled in place
//! ([`bytes::Bytes::refill`]), shipped through the pipeline as ordinary
//! shared [`Bytes`], and pushed back when the stream executor's return lane
//! hands the drained views back to the feeder.
//!
//! Reuse is safe by construction: a buffer is rewritten only while its
//! handle is *unique* (`Arc` count of one). A consumer that keeps a clone
//! of a payload alive simply causes that buffer to fall out of the pool —
//! correctness never depends on the recycler.
//!
//! # Examples
//!
//! ```
//! use idsbench_core::arena::PayloadArena;
//!
//! let mut arena = PayloadArena::new();
//! let (n, payload) = arena
//!     .take_fill(|buf| {
//!         buf.extend_from_slice(b"frame bytes");
//!         Ok::<usize, ()>(buf.len())
//!     })
//!     .unwrap();
//! assert_eq!(n, 11);
//! assert_eq!(&payload[..], b"frame bytes");
//! arena.recycle(payload);
//! assert_eq!(arena.pooled(), 1);
//! // The next take reuses the same backing buffer: zero allocations.
//! let (_, again) = arena.take_fill(|_| Ok::<(), ()>(())).unwrap();
//! assert_eq!(arena.minted(), 1, "second take came from the pool");
//! drop(again);
//! ```

use bytes::Bytes;

/// Default pre-sized capacity of a freshly minted buffer: the standard
/// Ethernet MTU plus headers, so ordinary frames never grow it.
const DEFAULT_CHUNK: usize = 2048;

/// Default pool bound: buffers beyond this are dropped instead of kept,
/// capping idle memory at `max_pooled × chunk` bytes.
const DEFAULT_MAX_POOLED: usize = 4096;

/// A pool of reusable payload buffers (see module docs).
#[derive(Debug)]
pub struct PayloadArena {
    /// Idle buffers, each a unique-handled `Bytes` whose backing vector is
    /// rewritten in place on the next take.
    pool: Vec<Bytes>,
    /// Capacity given to freshly minted buffers.
    chunk: usize,
    /// Upper bound on `pool.len()`.
    max_pooled: usize,
    /// Buffers created because the pool was empty (or every pooled buffer
    /// was still shared).
    minted: u64,
    /// Successful reuses.
    recycled: u64,
}

impl Default for PayloadArena {
    fn default() -> Self {
        PayloadArena::new()
    }
}

impl PayloadArena {
    /// Creates an empty arena with default sizing (2 KiB chunks, up to
    /// 4096 pooled buffers). Allocates nothing until the first take.
    pub fn new() -> Self {
        PayloadArena::with_chunk_size(DEFAULT_CHUNK)
    }

    /// Creates an arena minting buffers of `chunk` bytes capacity.
    pub fn with_chunk_size(chunk: usize) -> Self {
        PayloadArena {
            pool: Vec::new(),
            chunk,
            max_pooled: DEFAULT_MAX_POOLED,
            minted: 0,
            recycled: 0,
        }
    }

    /// Takes a buffer (pooled when possible, freshly minted otherwise),
    /// lets `fill` write the payload into it, and returns `fill`'s value
    /// alongside the filled handle. On a pool hit the whole operation
    /// performs zero heap allocations (provided `fill` stays within the
    /// buffer's capacity).
    ///
    /// # Errors
    ///
    /// Propagates `fill`'s error; the buffer involved returns to the pool.
    pub fn take_fill<T, E>(
        &mut self,
        fill: impl FnOnce(&mut Vec<u8>) -> Result<T, E>,
    ) -> Result<(T, Bytes), E> {
        let mut bytes = loop {
            match self.pool.pop() {
                // A consumer kept a clone alive: this buffer is not ours to
                // rewrite (drop it and keep looking).
                Some(pooled) if !pooled.is_unique() => continue,
                Some(pooled) => {
                    self.recycled += 1;
                    break pooled;
                }
                None => {
                    self.minted += 1;
                    break Bytes::from(Vec::with_capacity(self.chunk));
                }
            }
        };
        let result = bytes.refill(fill).expect("arena buffers are unique by construction");
        match result {
            Ok(value) => Ok((value, bytes)),
            Err(e) => {
                self.recycle(bytes);
                Err(e)
            }
        }
    }

    /// Returns a payload buffer to the pool. Shared handles (a consumer
    /// still holds a clone) and overflow beyond the pool bound are simply
    /// dropped — recycling is an optimisation, never a requirement.
    pub fn recycle(&mut self, bytes: Bytes) {
        if bytes.is_unique() && self.pool.len() < self.max_pooled {
            self.pool.push(bytes);
        }
    }

    /// Buffers currently idle in the pool.
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }

    /// Buffers created so far (pool misses).
    pub fn minted(&self) -> u64 {
        self.minted
    }

    /// Successful buffer reuses so far (pool hits).
    pub fn recycled(&self) -> u64 {
        self.recycled
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_state_reuses_one_buffer() {
        let mut arena = PayloadArena::with_chunk_size(256);
        let mut last_ptr = None;
        for round in 0..100u8 {
            let (len, payload) = arena
                .take_fill(|buf| {
                    buf.extend_from_slice(&[round; 60]);
                    Ok::<usize, ()>(buf.len())
                })
                .unwrap();
            assert_eq!(len, 60);
            assert_eq!(payload[0], round);
            if let Some(ptr) = last_ptr {
                assert_eq!(payload.as_ptr(), ptr, "round {round} did not reuse the buffer");
            }
            last_ptr = Some(payload.as_ptr());
            arena.recycle(payload);
        }
        assert_eq!(arena.minted(), 1);
        assert_eq!(arena.recycled(), 99);
    }

    #[test]
    fn shared_handles_fall_out_of_the_pool() {
        let mut arena = PayloadArena::new();
        let (_, payload) = arena
            .take_fill(|b| {
                b.push(1);
                Ok::<(), ()>(())
            })
            .unwrap();
        let keeper = payload.clone();
        arena.recycle(payload); // shared: dropped, not pooled
        assert_eq!(arena.pooled(), 0);
        assert_eq!(&keeper[..], &[1], "the kept clone is untouched");
        let (_, second) = arena.take_fill(|_| Ok::<(), ()>(())).unwrap();
        assert_eq!(arena.minted(), 2, "a fresh buffer was minted");
        drop(second);
    }

    #[test]
    fn fill_errors_return_the_buffer() {
        let mut arena = PayloadArena::new();
        let err = arena.take_fill(|_| Err::<(), &str>("truncated")).unwrap_err();
        assert_eq!(err, "truncated");
        assert_eq!(arena.pooled(), 1, "errored buffer goes back to the pool");
        let (_, ok) = arena.take_fill(|_| Ok::<(), ()>(())).unwrap();
        assert_eq!(arena.minted(), 1);
        drop(ok);
    }
}
