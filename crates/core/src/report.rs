//! Renderers reproducing the paper's table layouts.
//!
//! [`render_table4`] prints the performance grid in the exact shape of the
//! paper's Table IV: one block per IDS, one row per dataset, an `Average:`
//! row per block, the column-wide maximum of each metric **bolded**, and the
//! best F1 per dataset marked (the paper uses blue text; we use a `†`
//! suffix).

use std::collections::BTreeSet;
use std::fmt::Write as _;

use crate::metrics::Metrics;
use crate::runner::Experiment;

/// One elastic-sharding action taken by a streaming run's autoscaler: the
/// shard pool grew or shrank, and consistent-hash flow ownership was
/// rebalanced accordingly.
///
/// Recorded by the streaming executor (`idsbench-stream`) in its
/// `StreamReport`, so scale behaviour is a first-class evaluation output
/// next to detection quality — the paper's point that the harness itself is
/// part of what is being measured.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleEvent {
    /// Arrival index of the first packet routed under the new ring.
    pub seq: u64,
    /// Traffic-timeline seconds of that packet.
    pub at_secs: f64,
    /// Metrics-window index whose rate triggered the decision.
    pub window: u64,
    /// Shard count before the action.
    pub from_shards: usize,
    /// Shard count after the action.
    pub to_shards: usize,
    /// Windowed event rate (events/sec of traffic time) that fired the
    /// policy.
    pub trigger_pps: f64,
    /// Flow-state entries (open records and/or label-fold entries) whose
    /// ring ownership moved in the rebalance.
    pub migrated_flows: usize,
    /// Wall-clock microseconds the drain + migrate barrier took — the
    /// rebalance latency the `fig_autoscale` bench gates on.
    pub rebalance_micros: u64,
}

impl ScaleEvent {
    /// Whether this event grew the pool.
    pub fn is_scale_up(&self) -> bool {
        self.to_shards > self.from_shards
    }

    /// Whether this event shrank the pool.
    pub fn is_scale_down(&self) -> bool {
        self.to_shards < self.from_shards
    }

    /// Hand-rolled JSON object for this event — the single encoding shared
    /// by the stream report's `scale_events` array and the telemetry
    /// journal, so the two outputs join byte-for-byte. Integral floats
    /// print without a fraction; non-finite values encode as `null`.
    pub fn to_json(&self) -> String {
        use crate::json::num_field;
        let mut out = String::with_capacity(128);
        out.push('{');
        num_field(&mut out, "seq", self.seq as f64);
        out.push(',');
        num_field(&mut out, "at_secs", self.at_secs);
        out.push(',');
        num_field(&mut out, "window", self.window as f64);
        out.push(',');
        num_field(&mut out, "from_shards", self.from_shards as f64);
        out.push(',');
        num_field(&mut out, "to_shards", self.to_shards as f64);
        out.push(',');
        num_field(&mut out, "trigger_pps", self.trigger_pps);
        out.push(',');
        num_field(&mut out, "migrated_flows", self.migrated_flows as f64);
        out.push(',');
        num_field(&mut out, "rebalance_micros", self.rebalance_micros as f64);
        out.push('}');
        out
    }
}

/// Renders the Table IV layout as Markdown (see module docs).
///
/// Experiments must be detector-major ordered, as produced by
/// [`crate::runner::run_grid`]. Returns an empty table for no input.
pub fn render_table4(experiments: &[Experiment]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "| Dataset | Acc. | Prec. | Rec. | F1 |");
    let _ = writeln!(out, "|---|---|---|---|---|");

    // Column-wide maxima (over every row of every block, as in the paper).
    let max = fold_metrics(experiments.iter().map(|e| e.metrics));

    // Best F1 per dataset across detectors.
    let datasets: BTreeSet<&str> = experiments.iter().map(|e| e.dataset.as_str()).collect();
    let best_f1: Vec<(&str, f64)> = datasets
        .iter()
        .map(|&d| {
            let best = experiments
                .iter()
                .filter(|e| e.dataset == d)
                .map(|e| e.metrics.f1)
                .fold(f64::NEG_INFINITY, f64::max);
            (d, best)
        })
        .collect();

    let mut current_detector: Option<&str> = None;
    let mut block: Vec<Metrics> = Vec::new();
    for experiment in experiments {
        if current_detector != Some(experiment.detector.as_str()) {
            if current_detector.is_some() {
                emit_average(&mut out, &block, &max);
                block.clear();
            }
            current_detector = Some(experiment.detector.as_str());
            let _ = writeln!(out, "| **IDS: {}** | | | | |", experiment.detector);
        }
        block.push(experiment.metrics);
        let dataset_best = best_f1
            .iter()
            .find(|(d, _)| *d == experiment.dataset)
            .map(|(_, f)| *f)
            .unwrap_or(f64::NEG_INFINITY);
        let f1_mark = if experiment.metrics.f1 >= dataset_best { " †" } else { "" };
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {}{} |",
            experiment.dataset,
            fmt_cell(experiment.metrics.accuracy, max.accuracy),
            fmt_cell(experiment.metrics.precision, max.precision),
            fmt_cell(experiment.metrics.recall, max.recall),
            fmt_cell(experiment.metrics.f1, max.f1),
            f1_mark,
        );
    }
    if current_detector.is_some() {
        emit_average(&mut out, &block, &max);
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "**Bold**: highest value of all IDSs for the metric column.");
    let _ = writeln!(out, "†: highest F1 score of all IDSs for the dataset.");
    out
}

fn emit_average(out: &mut String, block: &[Metrics], max: &Metrics) {
    let avg = Metrics::mean(block);
    let _ = writeln!(
        out,
        "| *Average:* | {} | {} | {} | {} |",
        fmt_cell(avg.accuracy, max.accuracy),
        fmt_cell(avg.precision, max.precision),
        fmt_cell(avg.recall, max.recall),
        fmt_cell(avg.f1, max.f1),
    );
}

fn fold_metrics(metrics: impl Iterator<Item = Metrics>) -> Metrics {
    metrics.fold(Metrics::default(), |acc, m| Metrics {
        accuracy: acc.accuracy.max(m.accuracy),
        precision: acc.precision.max(m.precision),
        recall: acc.recall.max(m.recall),
        f1: acc.f1.max(m.f1),
    })
}

fn fmt_cell(value: f64, column_max: f64) -> String {
    if value >= column_max && column_max > 0.0 {
        format!("**{value:.4}**")
    } else {
        format!("{value:.4}")
    }
}

/// Renders the per-attack-family recall breakdown as Markdown: one row per
/// family, one column per detector, for a single dataset's experiments.
/// This is the "attack types" axis of the paper's Section V discussion.
pub fn render_family_breakdown(dataset: &str, experiments: &[Experiment]) -> String {
    let rows: Vec<&Experiment> = experiments.iter().filter(|e| e.dataset == dataset).collect();
    let mut out = String::new();
    if rows.is_empty() {
        return out;
    }
    let mut families: Vec<&str> =
        rows.iter().flat_map(|e| e.family_recall.iter().map(|f| f.family.as_str())).collect();
    families.sort_unstable();
    families.dedup();

    let _ = write!(out, "| Family (items) |");
    for e in &rows {
        let _ = write!(out, " {} |", e.detector);
    }
    let _ = writeln!(out);
    let _ = write!(out, "|---|");
    for _ in &rows {
        let _ = write!(out, "---|");
    }
    let _ = writeln!(out);
    for family in families {
        let count = rows
            .iter()
            .find_map(|e| e.family_recall.iter().find(|f| f.family == family).map(|f| f.items()))
            .unwrap_or(0);
        let _ = write!(out, "| {family} ({count}) |");
        for e in &rows {
            match e.family_recall.iter().find(|f| f.family == family) {
                Some(f) => {
                    let recall = f.recall;
                    let _ = write!(out, " {recall:.3} |");
                }
                None => {
                    let _ = write!(out, " – |");
                }
            }
        }
        let _ = writeln!(out);
    }
    out
}

/// Renders experiments as CSV with full diagnostics (one row per cell).
pub fn render_csv(experiments: &[Experiment]) -> String {
    let mut out = String::from(
        "detector,dataset,accuracy,precision,recall,f1,threshold,eval_items,attack_share,auc,fpr,train_seconds,score_seconds\n",
    );
    for e in experiments {
        let _ = writeln!(
            out,
            "{},{},{:.6},{:.6},{:.6},{:.6},{:.6e},{},{:.6},{:.6},{:.6},{:.3},{:.3}",
            e.detector,
            e.dataset,
            e.metrics.accuracy,
            e.metrics.precision,
            e.metrics.recall,
            e.metrics.f1,
            e.threshold,
            e.eval_items,
            e.attack_share,
            e.auc,
            e.false_positive_rate,
            e.train_seconds,
            e.score_seconds,
        );
    }
    out
}

/// Renders a compact fixed-width console table (handy for examples).
pub fn render_console(experiments: &[Experiment]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<12} {:<16} {:>8} {:>8} {:>8} {:>8}",
        "IDS", "Dataset", "Acc.", "Prec.", "Rec.", "F1"
    );
    let _ = writeln!(out, "{}", "-".repeat(66));
    let mut current: Option<&str> = None;
    let mut block: Vec<Metrics> = Vec::new();
    for e in experiments {
        if current != Some(e.detector.as_str()) {
            if !block.is_empty() {
                let avg = Metrics::mean(&block);
                let _ = writeln!(
                    out,
                    "{:<12} {:<16} {:>8.4} {:>8.4} {:>8.4} {:>8.4}",
                    "", "Average:", avg.accuracy, avg.precision, avg.recall, avg.f1
                );
                block.clear();
            }
            current = Some(e.detector.as_str());
        }
        block.push(e.metrics);
        let _ = writeln!(
            out,
            "{:<12} {:<16} {:>8.4} {:>8.4} {:>8.4} {:>8.4}",
            e.detector,
            e.dataset,
            e.metrics.accuracy,
            e.metrics.precision,
            e.metrics.recall,
            e.metrics.f1
        );
    }
    if !block.is_empty() {
        let avg = Metrics::mean(&block);
        let _ = writeln!(
            out,
            "{:<12} {:<16} {:>8.4} {:>8.4} {:>8.4} {:>8.4}",
            "", "Average:", avg.accuracy, avg.precision, avg.recall, avg.f1
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn experiment(detector: &str, dataset: &str, f1: f64) -> Experiment {
        Experiment {
            detector: detector.to_string(),
            dataset: dataset.to_string(),
            metrics: Metrics { accuracy: 0.9, precision: 0.8, recall: 0.7, f1 },
            threshold: 0.5,
            eval_items: 100,
            attack_share: 0.2,
            auc: 0.9,
            false_positive_rate: 0.05,
            train_seconds: 0.08,
            score_seconds: 0.02,
            family_recall: vec![outcome("syn-flood", 0.9, 100)],
        }
    }

    fn outcome(family: &str, recall: f64, packets: usize) -> crate::metrics::FamilyOutcome {
        crate::metrics::FamilyOutcome {
            family: family.to_string(),
            recall,
            alerts: (packets as f64 * recall).round() as usize,
            packets,
            flows: 0,
        }
    }

    #[test]
    fn table4_contains_blocks_and_averages() {
        let experiments = vec![
            experiment("Kitsune", "UNSW-NB15", 0.5),
            experiment("Kitsune", "Mirai", 0.9),
            experiment("DNN", "UNSW-NB15", 0.95),
            experiment("DNN", "Mirai", 0.6),
        ];
        let table = render_table4(&experiments);
        assert!(table.contains("**IDS: Kitsune**"));
        assert!(table.contains("**IDS: DNN**"));
        assert_eq!(table.matches("*Average:*").count(), 2);
        // Best per dataset markers: DNN wins UNSW, Kitsune wins Mirai.
        let lines: Vec<&str> = table.lines().collect();
        let kitsune_mirai = lines.iter().find(|l| l.starts_with("| Mirai")).unwrap();
        assert!(kitsune_mirai.contains('†'));
    }

    #[test]
    fn column_max_is_bolded() {
        let experiments = vec![experiment("A", "d1", 0.2), experiment("B", "d1", 0.9)];
        let table = render_table4(&experiments);
        assert!(table.contains("**0.9000**"));
        // 0.2 must not be bolded.
        assert!(!table.contains("**0.2000**"));
    }

    #[test]
    fn family_breakdown_renders_per_detector_columns() {
        let mut a = experiment("A", "d1", 0.5);
        a.family_recall = vec![outcome("syn-flood", 0.9, 50), outcome("stealth", 0.1, 10)];
        let mut b = experiment("B", "d1", 0.6);
        b.family_recall = vec![outcome("syn-flood", 0.4, 50)];
        let table = render_family_breakdown("d1", &[a, b]);
        assert!(table.contains("| syn-flood (50) | 0.900 | 0.400 |"), "{table}");
        assert!(table.contains("| stealth (10) | 0.100 | – |"), "{table}");
        assert!(render_family_breakdown("unknown", &[]).is_empty());
    }

    #[test]
    fn csv_has_header_and_rows() {
        let experiments = vec![experiment("A", "d1", 0.5)];
        let csv = render_csv(&experiments);
        let mut lines = csv.lines();
        assert!(lines.next().unwrap().starts_with("detector,dataset"));
        assert!(lines.next().unwrap().starts_with("A,d1,"));
    }

    #[test]
    fn console_table_renders_all_rows() {
        let experiments = vec![experiment("A", "d1", 0.5), experiment("A", "d2", 0.6)];
        let text = render_console(&experiments);
        assert!(text.contains("d1"));
        assert!(text.contains("d2"));
        assert!(text.contains("Average:"));
    }

    #[test]
    fn empty_input_renders_cleanly() {
        let table = render_table4(&[]);
        assert!(table.contains("| Dataset |"));
        assert!(render_csv(&[]).starts_with("detector,"));
    }

    #[test]
    fn scale_event_json_is_stable() {
        let event = ScaleEvent {
            seq: 30,
            at_secs: 1.5,
            window: 2,
            from_shards: 1,
            to_shards: 2,
            trigger_pps: 4000.0,
            migrated_flows: 3,
            rebalance_micros: 250,
        };
        assert_eq!(
            event.to_json(),
            "{\"seq\":30,\"at_secs\":1.5,\"window\":2,\"from_shards\":1,\"to_shards\":2,\
             \"trigger_pps\":4000,\"migrated_flows\":3,\"rebalance_micros\":250}"
        );
    }
}
