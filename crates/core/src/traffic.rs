//! The streaming workload contract: [`TrafficModel`] and [`ScenarioScale`].
//!
//! The batch [`Dataset`] trait materializes a whole realisation into a
//! `Vec` — fine for Table IV grids, fatal for million-packet adversarial
//! campaigns. [`TrafficModel`] is the streaming redesign: a seeded model
//! produces its packets through an *iterator*, in non-decreasing timestamp
//! order, so the sharded executor (and the multi-node fabric behind it)
//! can pull traffic on demand with bounded memory. Batch consumers keep
//! working: any `Box<dyn TrafficModel>` is also a [`Dataset`] whose
//! `generate` collects the stream.
//!
//! One contract now serves all four consumers — the batch runner, the
//! stream executor's `ScenarioSource`, the fabric coordinator, and the
//! `idsbench-trafficgen` workload library.

use crate::dataset::{Dataset, DatasetInfo};
use crate::label::LabeledPacket;

/// A seeded, owned stream of labeled packets in timestamp order.
///
/// Implementations own whatever state they need (`'static`), so a stream
/// can be handed to a feeder thread without borrowing its model.
pub type PacketStream = Box<dyn Iterator<Item = LabeledPacket> + Send>;

/// A deterministic, streaming source of labeled traffic.
///
/// The contract:
///
/// * **Deterministic in `seed`** — the same seed yields a bitwise-identical
///   packet stream (payload bytes, timestamps, labels).
/// * **Timestamp-ordered** — packets arrive in non-decreasing `ts` order;
///   consumers never re-sort.
/// * **Streaming** — `stream` must not materialize the full realisation up
///   front; memory stays bounded by the model's *concurrency* (active
///   sessions), not its length. (Legacy [`Dataset`]-shaped scenarios that
///   generate eagerly may satisfy the trait by wrapping their `Vec`; new
///   generators must not.)
pub trait TrafficModel: Send + Sync + std::fmt::Debug {
    /// Dataset metadata (name, characteristics, selection rationale).
    fn info(&self) -> &DatasetInfo;

    /// Opens one seeded realisation as a packet stream.
    fn stream(&self, seed: u64) -> PacketStream;

    /// Collects one seeded realisation into a vector — the bridge to batch
    /// consumers. Prefer [`TrafficModel::stream`] wherever a pull iterator
    /// is usable.
    fn materialize(&self, seed: u64) -> Vec<LabeledPacket> {
        self.stream(seed).collect()
    }
}

/// Any boxed model is a batch [`Dataset`]: `generate` collects the stream.
/// This is what lets the `run_grid` batch driver and the streaming executor
/// consume one registry of scenarios.
impl Dataset for Box<dyn TrafficModel> {
    fn info(&self) -> &DatasetInfo {
        TrafficModel::info(&**self)
    }

    fn generate(&self, seed: u64) -> Vec<LabeledPacket> {
        self.materialize(seed)
    }
}

/// How large a realisation a scenario builder generates.
///
/// Lives in `idsbench-core` (rather than the datasets crate) because the
/// scale knob parameterizes *every* workload builder behind the
/// [`TrafficModel`] registry, not just the Table II scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScenarioScale {
    /// A few thousand packets — unit/integration tests.
    Tiny,
    /// Roughly a quarter of full scale — examples and quick runs.
    Small,
    /// Tens of thousands of packets — the Table IV reproduction.
    Full,
}

impl ScenarioScale {
    /// Multiplier applied to session counts, rates, and device counts.
    pub fn factor(self) -> f64 {
        match self {
            ScenarioScale::Tiny => 0.05,
            ScenarioScale::Small => 0.25,
            ScenarioScale::Full => 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::Label;
    use idsbench_net::{Packet, Timestamp};

    /// A trivially streaming model: `n` benign packets, 1 ms apart, with
    /// the seed folded into the payload so determinism is observable.
    #[derive(Debug)]
    struct Ticks {
        info: DatasetInfo,
        n: usize,
    }

    impl TrafficModel for Ticks {
        fn info(&self) -> &DatasetInfo {
            &self.info
        }

        fn stream(&self, seed: u64) -> PacketStream {
            let n = self.n;
            Box::new((0..n).map(move |i| {
                LabeledPacket::new(
                    Packet::new(
                        Timestamp::from_micros(i as u64 * 1_000),
                        vec![(seed as u8).wrapping_add(i as u8); 60],
                    ),
                    Label::Benign,
                )
            }))
        }
    }

    fn model() -> Box<dyn TrafficModel> {
        Box::new(Ticks { info: DatasetInfo::new("ticks", "", "", 2026), n: 16 })
    }

    #[test]
    fn boxed_model_is_a_dataset() {
        let m = model();
        let d: &dyn Dataset = &m;
        assert_eq!(d.info().name, "ticks");
        assert_eq!(d.generate(7), m.materialize(7));
        assert_eq!(d.generate(7).len(), 16);
    }

    #[test]
    fn stream_matches_materialize_and_is_seed_deterministic() {
        let m = model();
        let streamed: Vec<LabeledPacket> = m.stream(3).collect();
        assert_eq!(streamed, m.materialize(3));
        assert_ne!(m.materialize(3), m.materialize(4));
    }

    #[test]
    fn scale_factors_are_ordered() {
        assert!(ScenarioScale::Tiny.factor() < ScenarioScale::Small.factor());
        assert!(ScenarioScale::Small.factor() < ScenarioScale::Full.factor());
    }
}
