//! Standardized anomaly-threshold calibration (Section IV-A step 4).
//!
//! The paper applies one calibration rule uniformly to every IDS:
//! "identifying the threshold value that maximised the detection rate of
//! anomalous packets while maintaining a tolerable level of false
//! positives." This module implements that rule ([`ThresholdPolicy::
//! DetectionFirst`]) plus the common alternatives used in the ablation
//! benches.

use crate::metrics::ConfusionMatrix;

/// A rule for choosing the alert threshold from scored evaluation output.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum ThresholdPolicy {
    /// The paper's rule: among candidate thresholds whose false-positive
    /// rate does not exceed `max_fpr`, pick the one with the highest
    /// detection rate (recall); ties break toward fewer false positives.
    /// Falls back to the threshold with the lowest FPR if none satisfies
    /// the cap.
    DetectionFirst {
        /// The "tolerable level of false positives".
        max_fpr: f64,
    },
    /// Maximize F1 over all candidate thresholds.
    MaxF1,
    /// A fixed, externally supplied threshold.
    Fixed(f64),
    /// Mean + `k`·std of the *training-phase* scores — the rule shipped in
    /// Kitsune's own examples. The statistics must be supplied by the
    /// detector through the score stream's leading `train_len` items.
    TrainQuantile {
        /// Quantile of training scores used as the threshold (e.g. 0.999).
        quantile: f64,
    },
}

impl Default for ThresholdPolicy {
    /// The paper's rule with a 25% false-positive tolerance — loose enough
    /// to favour detection rate, as the published Table IV rows imply.
    fn default() -> Self {
        ThresholdPolicy::DetectionFirst { max_fpr: 0.25 }
    }
}

impl ThresholdPolicy {
    /// Calibrates a threshold from evaluation scores and ground truth.
    ///
    /// Candidate thresholds are the distinct scores present (plus +∞ for
    /// "never alert"). Returns +∞ for empty input, which yields an
    /// all-benign verdict downstream.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn calibrate(&self, scores: &[f64], labels: &[bool]) -> f64 {
        assert_eq!(scores.len(), labels.len(), "scores/labels length mismatch");
        if scores.is_empty() {
            return f64::INFINITY;
        }
        match *self {
            ThresholdPolicy::Fixed(threshold) => threshold,
            ThresholdPolicy::TrainQuantile { quantile } => quantile_of(scores, quantile),
            ThresholdPolicy::MaxF1 => {
                let mut best = (f64::INFINITY, -1.0);
                for &candidate in candidates(scores).iter() {
                    let f1 = ConfusionMatrix::from_scores(scores, labels, candidate).f1();
                    if f1 > best.1 {
                        best = (candidate, f1);
                    }
                }
                best.0
            }
            ThresholdPolicy::DetectionFirst { max_fpr } => {
                let mut best: Option<(f64, f64, f64)> = None; // (threshold, recall, fpr)
                let mut fallback: Option<(f64, f64)> = None; // (threshold, fpr)
                for &candidate in candidates(scores).iter() {
                    let cm = ConfusionMatrix::from_scores(scores, labels, candidate);
                    let recall = cm.recall();
                    let fpr = cm.false_positive_rate();
                    if fpr <= max_fpr {
                        let better = match best {
                            None => true,
                            Some((_, r, f)) => recall > r || (recall == r && fpr < f),
                        };
                        if better {
                            best = Some((candidate, recall, fpr));
                        }
                    }
                    let lower_fpr = match fallback {
                        None => true,
                        Some((_, f)) => fpr < f,
                    };
                    if lower_fpr {
                        fallback = Some((candidate, fpr));
                    }
                }
                best.map(|(t, _, _)| t).or(fallback.map(|(t, _)| t)).unwrap_or(f64::INFINITY)
            }
        }
    }
}

/// Distinct finite score values, descending, capped to a manageable count by
/// quantile subsampling (calibration cost stays O(n log n) regardless of
/// score cardinality).
fn candidates(scores: &[f64]) -> Vec<f64> {
    let mut sorted: Vec<f64> = scores.iter().copied().filter(|s| s.is_finite()).collect();
    sorted.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
    sorted.dedup();
    const MAX_CANDIDATES: usize = 512;
    let mut kept = if sorted.len() > MAX_CANDIDATES {
        let step = sorted.len() as f64 / MAX_CANDIDATES as f64;
        let mut sampled: Vec<f64> =
            (0..MAX_CANDIDATES).map(|i| sorted[(i as f64 * step) as usize]).collect();
        // Always keep the extremes.
        sampled.push(*sorted.last().expect("non-empty"));
        sampled.dedup();
        sampled
    } else {
        sorted
    };
    // "Never alert" must always be a candidate: a detector that produces one
    // constant score (e.g. a rule-based system that found nothing) must be
    // able to stay silent rather than alert on everything.
    kept.insert(0, f64::INFINITY);
    kept
}

fn quantile_of(scores: &[f64], quantile: f64) -> f64 {
    let mut sorted: Vec<f64> = scores.iter().copied().filter(|s| s.is_finite()).collect();
    if sorted.is_empty() {
        return f64::INFINITY;
    }
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let q = quantile.clamp(0.0, 1.0);
    let index = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[index]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Well-separated scores: attacks around 0.9, benign around 0.1.
    fn separated() -> (Vec<f64>, Vec<bool>) {
        let mut scores = Vec::new();
        let mut labels = Vec::new();
        for i in 0..50 {
            scores.push(0.1 + (i as f64) * 1e-4);
            labels.push(false);
            scores.push(0.9 + (i as f64) * 1e-4);
            labels.push(true);
        }
        (scores, labels)
    }

    #[test]
    fn max_f1_finds_separating_threshold() {
        let (scores, labels) = separated();
        let t = ThresholdPolicy::MaxF1.calibrate(&scores, &labels);
        let cm = ConfusionMatrix::from_scores(&scores, &labels, t);
        assert_eq!(cm.f1(), 1.0);
    }

    #[test]
    fn detection_first_finds_separating_threshold() {
        let (scores, labels) = separated();
        let t = ThresholdPolicy::default().calibrate(&scores, &labels);
        let cm = ConfusionMatrix::from_scores(&scores, &labels, t);
        assert_eq!(cm.recall(), 1.0);
        assert!(cm.false_positive_rate() <= 0.25);
    }

    #[test]
    fn detection_first_respects_fpr_cap() {
        // Scores where catching the last attacks costs huge FPR.
        let mut scores = vec![0.9; 10]; // 10 easy attacks
        let mut labels = vec![true; 10];
        scores.push(0.05); // 1 hard attack below all benign
        labels.push(true);
        scores.extend(vec![0.5; 100]); // benign wall
        labels.extend(vec![false; 100]);
        let t = ThresholdPolicy::DetectionFirst { max_fpr: 0.10 }.calibrate(&scores, &labels);
        let cm = ConfusionMatrix::from_scores(&scores, &labels, t);
        assert!(cm.false_positive_rate() <= 0.10, "fpr = {}", cm.false_positive_rate());
        assert!((cm.recall() - 10.0 / 11.0).abs() < 1e-9, "recall = {}", cm.recall());
    }

    #[test]
    fn detection_first_with_loose_cap_floods_false_positives() {
        // The Kitsune-on-CICIDS2017 phenomenon: overlapping score
        // distributions + detection-first calibration = high recall, terrible
        // precision.
        let mut scores = Vec::new();
        let mut labels = Vec::new();
        for i in 0..400 {
            scores.push((i % 100) as f64); // benign spread over 0..99
            labels.push(false);
        }
        for i in 0..20 {
            scores.push(50.0 + (i % 50) as f64); // attacks inside the benign range
            labels.push(true);
        }
        let t = ThresholdPolicy::DetectionFirst { max_fpr: 0.5 }.calibrate(&scores, &labels);
        let cm = ConfusionMatrix::from_scores(&scores, &labels, t);
        assert!(cm.recall() >= 0.9);
        assert!(cm.precision() < 0.25, "precision = {}", cm.precision());
    }

    #[test]
    fn fixed_policy_is_verbatim() {
        let t = ThresholdPolicy::Fixed(3.25).calibrate(&[1.0, 2.0], &[false, true]);
        assert_eq!(t, 3.25);
    }

    #[test]
    fn train_quantile_tracks_distribution() {
        let scores: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let labels = vec![false; 1000];
        let t = ThresholdPolicy::TrainQuantile { quantile: 0.99 }.calibrate(&scores, &labels);
        assert!((t - 989.0).abs() <= 1.0, "t = {t}");
    }

    #[test]
    fn empty_input_never_alerts() {
        let t = ThresholdPolicy::default().calibrate(&[], &[]);
        assert!(t.is_infinite());
    }

    #[test]
    fn candidate_subsampling_keeps_extremes() {
        let scores: Vec<f64> = (0..10_000).map(|i| i as f64).collect();
        let c = candidates(&scores);
        assert!(c.len() <= 600);
        assert!(c[0].is_infinite());
        assert_eq!(c[1], 9999.0);
        assert_eq!(*c.last().unwrap(), 0.0);
    }

    #[test]
    fn constant_zero_scores_never_alert_under_detection_first() {
        // A rule-based detector that found nothing emits all-zero scores; the
        // calibrated threshold must be "never alert", not "alert everything".
        let scores = vec![0.0; 100];
        let mut labels = vec![false; 100];
        labels[3] = true;
        let t = ThresholdPolicy::default().calibrate(&scores, &labels);
        let cm = ConfusionMatrix::from_scores(&scores, &labels, t);
        assert_eq!(cm.false_positives, 0);
        assert_eq!(cm.recall(), 0.0);
        assert!((cm.accuracy() - 0.99).abs() < 1e-12);
    }

    #[test]
    fn nan_scores_are_ignored_in_candidates() {
        let scores = vec![f64::NAN, 1.0, 2.0];
        let labels = vec![false, false, true];
        let t = ThresholdPolicy::MaxF1.calibrate(&scores, &labels);
        assert!(t.is_finite());
    }
}
