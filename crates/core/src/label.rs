use std::fmt;

use idsbench_net::Packet;
use serde::{Deserialize, Serialize};

/// The attack taxonomy spanning the five evaluated datasets.
///
/// Each variant maps to an attack family present in at least one of the
/// paper's datasets (Table II); generators in `idsbench-datasets` emit
/// traffic labeled with these kinds so per-family breakdowns are possible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[non_exhaustive]
pub enum AttackKind {
    /// TCP SYN flood (BoT-IoT, CICIDS2017, Mirai).
    SynFlood,
    /// UDP flood (BoT-IoT, Mirai).
    UdpFlood,
    /// ICMP echo flood / ping flood (BoT-IoT "DoS-ICMP" category).
    IcmpFlood,
    /// HTTP request flood / application-layer DoS (CICIDS2017).
    HttpFlood,
    /// Vertical port scan against one host (UNSW-NB15 "Reconnaissance",
    /// CICIDS2017 "PortScan").
    PortScan,
    /// Horizontal sweep of one port across a subnet (Mirai, BoT-IoT).
    AddressSweep,
    /// SSH/FTP credential brute force (CICIDS2017, UNSW-NB15).
    BruteForce,
    /// Periodic botnet command-and-control beaconing (Stratosphere, ToN-IoT).
    BotnetC2,
    /// Mirai telnet scanning and loader traffic (Mirai dataset).
    MiraiPropagation,
    /// Bulk data exfiltration to an external host (UNSW-NB15 "Backdoors",
    /// ToN-IoT "injection").
    Exfiltration,
    /// Low-rate protocol fuzzing (UNSW-NB15 "Fuzzers").
    Fuzzing,
    /// Stealthy backdoor/analysis traffic shaped like benign flows
    /// (UNSW-NB15 "Analysis"/"Backdoor").
    Stealth,
    /// Web application attack (CICIDS2017 "Web Attack" family).
    WebAttack,
}

impl AttackKind {
    /// All attack kinds, in declaration order.
    pub const ALL: [AttackKind; 13] = [
        AttackKind::SynFlood,
        AttackKind::UdpFlood,
        AttackKind::IcmpFlood,
        AttackKind::HttpFlood,
        AttackKind::PortScan,
        AttackKind::AddressSweep,
        AttackKind::BruteForce,
        AttackKind::BotnetC2,
        AttackKind::MiraiPropagation,
        AttackKind::Exfiltration,
        AttackKind::Fuzzing,
        AttackKind::Stealth,
        AttackKind::WebAttack,
    ];

    /// Short lowercase name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            AttackKind::SynFlood => "syn-flood",
            AttackKind::UdpFlood => "udp-flood",
            AttackKind::IcmpFlood => "icmp-flood",
            AttackKind::HttpFlood => "http-flood",
            AttackKind::PortScan => "port-scan",
            AttackKind::AddressSweep => "address-sweep",
            AttackKind::BruteForce => "brute-force",
            AttackKind::BotnetC2 => "botnet-c2",
            AttackKind::MiraiPropagation => "mirai-propagation",
            AttackKind::Exfiltration => "exfiltration",
            AttackKind::Fuzzing => "fuzzing",
            AttackKind::Stealth => "stealth",
            AttackKind::WebAttack => "web-attack",
        }
    }

    /// Whether this family is *volumetric* (loud, high packet rate) as
    /// opposed to low-and-slow. Volumetric families are what anomaly
    /// detectors catch most easily (Section V factor 1).
    pub fn is_volumetric(self) -> bool {
        matches!(
            self,
            AttackKind::SynFlood
                | AttackKind::UdpFlood
                | AttackKind::IcmpFlood
                | AttackKind::HttpFlood
                | AttackKind::AddressSweep
        )
    }
}

impl fmt::Display for AttackKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Ground-truth label of a packet or flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Label {
    /// Legitimate traffic.
    Benign,
    /// Attack traffic of the given family.
    Attack(AttackKind),
}

impl Label {
    /// Whether this label marks attack traffic.
    pub fn is_attack(self) -> bool {
        matches!(self, Label::Attack(_))
    }

    /// The attack kind, if any.
    pub fn attack_kind(self) -> Option<AttackKind> {
        match self {
            Label::Benign => None,
            Label::Attack(kind) => Some(kind),
        }
    }
}

impl fmt::Display for Label {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Label::Benign => f.write_str("benign"),
            Label::Attack(kind) => write!(f, "attack:{kind}"),
        }
    }
}

/// A packet with its ground-truth label — the unit every synthetic dataset
/// produces and the replay pipeline consumes.
#[derive(Debug, Clone, PartialEq)]
pub struct LabeledPacket {
    /// The raw packet.
    pub packet: Packet,
    /// Ground truth.
    pub label: Label,
}

impl LabeledPacket {
    /// Creates a labeled packet.
    pub fn new(packet: Packet, label: Label) -> Self {
        LabeledPacket { packet, label }
    }

    /// Shorthand for `label.is_attack()`.
    pub fn is_attack(&self) -> bool {
        self.label.is_attack()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kinds_have_unique_names() {
        let mut names: Vec<&str> = AttackKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), AttackKind::ALL.len());
    }

    #[test]
    fn volumetric_classification() {
        assert!(AttackKind::SynFlood.is_volumetric());
        assert!(!AttackKind::Stealth.is_volumetric());
        assert!(!AttackKind::BotnetC2.is_volumetric());
    }

    #[test]
    fn label_predicates() {
        assert!(!Label::Benign.is_attack());
        assert!(Label::Attack(AttackKind::PortScan).is_attack());
        assert_eq!(Label::Attack(AttackKind::PortScan).attack_kind(), Some(AttackKind::PortScan));
        assert_eq!(Label::Benign.attack_kind(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Label::Benign.to_string(), "benign");
        assert_eq!(Label::Attack(AttackKind::UdpFlood).to_string(), "attack:udp-flood");
    }
}
