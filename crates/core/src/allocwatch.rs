//! A counting global allocator for pinning allocation-free hot paths.
//!
//! The paper's core complaint is that IDSs evaluated offline fall over at
//! deployment rates; one of the quietest ways to fall over is allocator
//! traffic on the per-packet path. [`CountingAllocator`] wraps the system
//! allocator and counts every allocation (and the bytes requested), so a
//! test or bench binary can install it as its `#[global_allocator]` and
//! assert that a scoring loop performs *zero* heap allocations after
//! warmup — the invariant the `hot_path_allocs` integration test pins for
//! Kitsune and HELAD, and the `fig_hotpath` bench reports as
//! bytes-per-packet.
//!
//! # Examples
//!
//! ```ignore
//! use idsbench_core::allocwatch::{allocation_snapshot, CountingAllocator};
//!
//! #[global_allocator]
//! static ALLOC: CountingAllocator = CountingAllocator;
//!
//! let before = allocation_snapshot();
//! hot_loop();
//! let after = allocation_snapshot();
//! assert_eq!(after.allocations - before.allocations, 0);
//! ```
//!
//! (The example is `ignore`d because a doctest must not install a second
//! global allocator into the shared test binary.)

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static ALLOCATED_BYTES: AtomicU64 = AtomicU64::new(0);

/// A drop-in `#[global_allocator]` that counts allocations while
/// delegating every call to [`System`].
///
/// Counting uses relaxed atomics: the counters are monotone totals read
/// between phases of a single-threaded measurement loop, not a
/// synchronization mechanism.
#[derive(Debug, Default, Clone, Copy)]
pub struct CountingAllocator;

// SAFETY: delegates verbatim to `System`, which upholds the `GlobalAlloc`
// contract; the counter updates have no effect on the returned memory.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A grow is fresh allocator traffic on the hot path; count it like
        // an allocation of the new size.
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        ALLOCATED_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

/// Monotone totals since process start, captured by
/// [`allocation_snapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocationSnapshot {
    /// Number of `alloc`/`realloc` calls.
    pub allocations: u64,
    /// Total bytes those calls requested.
    pub bytes: u64,
}

impl AllocationSnapshot {
    /// Allocations between `earlier` and `self`.
    pub fn allocations_since(&self, earlier: &AllocationSnapshot) -> u64 {
        self.allocations - earlier.allocations
    }

    /// Bytes requested between `earlier` and `self`.
    pub fn bytes_since(&self, earlier: &AllocationSnapshot) -> u64 {
        self.bytes - earlier.bytes
    }
}

/// Reads the counters. Meaningful only when [`CountingAllocator`] is
/// installed as the process's `#[global_allocator]`; otherwise both totals
/// stay zero.
pub fn allocation_snapshot() -> AllocationSnapshot {
    AllocationSnapshot {
        allocations: ALLOCATIONS.load(Ordering::Relaxed),
        bytes: ALLOCATED_BYTES.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The unit-test binary does not install the counting allocator, so the
    // only observable behaviour here is snapshot arithmetic.
    #[test]
    fn snapshot_deltas() {
        let earlier = AllocationSnapshot { allocations: 3, bytes: 100 };
        let later = AllocationSnapshot { allocations: 10, bytes: 350 };
        assert_eq!(later.allocations_since(&earlier), 7);
        assert_eq!(later.bytes_since(&earlier), 250);
    }
}
