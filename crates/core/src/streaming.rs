//! Online detection: the [`StreamingDetector`] contract and its batch
//! adapter.
//!
//! The paper's central criticism is that IDS evaluations are batch-shaped
//! while deployments are stream-shaped: a detector in production consumes an
//! unbounded packet sequence one packet at a time, under throughput
//! pressure, with no second pass. [`StreamingDetector`] is that contract —
//! a detector warms up once on a (presumed benign) leading traffic slice,
//! then must emit one anomaly score per packet, immediately, forever.
//!
//! The two shapes interoperate in both directions:
//!
//! * [`Streamed`] lifts any `StreamingDetector` into the batch [`Detector`]
//!   trait, so online systems slot into the existing grid runner unchanged.
//! * An online system that also implements [`Detector`] directly (as Kitsune
//!   does) must produce *identical* scores through both paths — the
//!   `stream_batch_parity` integration test pins that equivalence.

use crate::detector::{Detector, DetectorInput, InputFormat};
use crate::label::LabeledPacket;

/// A network IDS that scores packets online, one at a time.
///
/// The contract mirrors deployment rather than evaluation: `warmup` receives
/// the leading traffic slice exactly once (the detector trains or calibrates
/// itself as its published protocol dictates), after which `score_packet` is
/// called per packet in arrival order and must return an anomaly score
/// (higher = more anomalous) without seeing any future packet.
///
/// Implementations carry mutable state across calls (damped statistics,
/// model weights under online training, flow tables); the sharded executor
/// therefore gives every shard its own instance via [`StreamingFactory`].
pub trait StreamingDetector: Send {
    /// Human-readable system name (e.g. `"Kitsune"`).
    fn name(&self) -> &str;

    /// Consumes the training slice once, before any scoring.
    fn warmup(&mut self, train: &[LabeledPacket]);

    /// Scores one packet in arrival order.
    fn score_packet(&mut self, packet: &LabeledPacket) -> f64;
}

impl StreamingDetector for Box<dyn StreamingDetector> {
    fn name(&self) -> &str {
        self.as_ref().name()
    }

    fn warmup(&mut self, train: &[LabeledPacket]) {
        self.as_mut().warmup(train);
    }

    fn score_packet(&mut self, packet: &LabeledPacket) -> f64 {
        self.as_mut().score_packet(packet)
    }
}

/// A named factory producing fresh [`StreamingDetector`] instances — one per
/// shard, so no state is shared across flow partitions.
pub type StreamingFactory<'a> = Box<dyn Fn() -> Box<dyn StreamingDetector> + Send + Sync + 'a>;

/// Adapter lifting a [`StreamingDetector`] into the batch [`Detector`]
/// contract: warm up on the training packets, then score each evaluation
/// packet in order.
///
/// # Examples
///
/// ```
/// use idsbench_core::streaming::{Streamed, StreamingDetector};
/// use idsbench_core::{Detector, LabeledPacket};
///
/// /// Scores every packet by wire length.
/// #[derive(Debug)]
/// struct Length;
///
/// impl StreamingDetector for Length {
///     fn name(&self) -> &str {
///         "length"
///     }
///     fn warmup(&mut self, _train: &[LabeledPacket]) {}
///     fn score_packet(&mut self, packet: &LabeledPacket) -> f64 {
///         packet.packet.wire_len() as f64
///     }
/// }
///
/// let adapted: Box<dyn Detector> = Box::new(Streamed::new(Length));
/// assert_eq!(adapted.name(), "length");
/// ```
#[derive(Debug)]
pub struct Streamed<D> {
    inner: D,
}

impl<D: StreamingDetector> Streamed<D> {
    /// Wraps an online detector for batch evaluation.
    pub fn new(inner: D) -> Self {
        Streamed { inner }
    }

    /// Returns the wrapped detector.
    pub fn into_inner(self) -> D {
        self.inner
    }
}

impl<D: StreamingDetector> Detector for Streamed<D> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn input_format(&self) -> InputFormat {
        InputFormat::Packets
    }

    fn score(&mut self, input: &DetectorInput) -> Vec<f64> {
        self.inner.warmup(&input.train_packets);
        input.eval_packets.iter().map(|p| self.inner.score_packet(p)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::Label;
    use idsbench_net::{Packet, Timestamp};

    /// Counts warmup packets and scores by position after warmup.
    #[derive(Debug, Default)]
    struct Counting {
        warmed: usize,
        scored: usize,
    }

    impl StreamingDetector for Counting {
        fn name(&self) -> &str {
            "counting"
        }

        fn warmup(&mut self, train: &[LabeledPacket]) {
            self.warmed = train.len();
        }

        fn score_packet(&mut self, _packet: &LabeledPacket) -> f64 {
            self.scored += 1;
            (self.warmed + self.scored) as f64
        }
    }

    fn packets(n: usize) -> Vec<LabeledPacket> {
        (0..n)
            .map(|i| {
                LabeledPacket::new(
                    Packet::new(Timestamp::from_micros(i as u64), vec![0u8; 60]),
                    Label::Benign,
                )
            })
            .collect()
    }

    #[test]
    fn streamed_adapter_replays_in_order() {
        let mut adapted = Streamed::new(Counting::default());
        let input = DetectorInput {
            train_packets: packets(10),
            eval_packets: packets(3),
            train_flows: Vec::new(),
            eval_flows: Vec::new(),
        };
        let scores = adapted.score(&input);
        assert_eq!(scores, vec![11.0, 12.0, 13.0]);
        assert_eq!(adapted.into_inner().warmed, 10);
    }

    #[test]
    fn boxed_streaming_detector_delegates() {
        let mut boxed: Box<dyn StreamingDetector> = Box::new(Counting::default());
        boxed.warmup(&packets(2));
        assert_eq!(boxed.name(), "counting");
        assert_eq!(boxed.score_packet(&packets(1)[0]), 3.0);
    }
}
