use std::fmt;

/// Error type for the evaluation pipeline.
#[derive(Debug)]
#[non_exhaustive]
pub enum CoreError {
    /// A dataset produced no packets (or none survived preprocessing).
    EmptyDataset {
        /// Name of the offending dataset.
        dataset: String,
    },
    /// A detector returned the wrong number of scores for its input.
    ScoreCountMismatch {
        /// Name of the offending detector.
        detector: String,
        /// Items supplied.
        expected: usize,
        /// Scores returned.
        got: usize,
    },
    /// An invalid pipeline configuration value.
    InvalidConfig {
        /// Which parameter.
        what: &'static str,
        /// Description of the violation.
        detail: String,
    },
    /// A packet in the dataset failed to parse.
    MalformedPacket {
        /// Index of the packet within the dataset.
        index: usize,
        /// Parse error message.
        detail: String,
    },
    /// A streaming run failed (packet source error or dead shard worker).
    Stream {
        /// Description of the failure.
        detail: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::EmptyDataset { dataset } => {
                write!(f, "dataset {dataset:?} produced no evaluable items")
            }
            CoreError::ScoreCountMismatch { detector, expected, got } => {
                write!(f, "detector {detector:?} returned {got} scores for {expected} items")
            }
            CoreError::InvalidConfig { what, detail } => {
                write!(f, "invalid {what}: {detail}")
            }
            CoreError::MalformedPacket { index, detail } => {
                write!(f, "malformed packet at index {index}: {detail}")
            }
            CoreError::Stream { detail } => write!(f, "streaming run failed: {detail}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl CoreError {
    /// Convenience constructor for [`CoreError::InvalidConfig`].
    pub(crate) fn invalid(what: &'static str, detail: impl Into<String>) -> Self {
        CoreError::InvalidConfig { what, detail: detail.into() }
    }

    /// Convenience constructor for [`CoreError::Stream`], public so the
    /// streaming engine crate can raise pipeline errors of the same type.
    pub fn stream(detail: impl Into<String>) -> Self {
        CoreError::Stream { detail: detail.into() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let err = CoreError::EmptyDataset { dataset: "unsw".into() };
        assert_eq!(err.to_string(), "dataset \"unsw\" produced no evaluable items");
        let err =
            CoreError::ScoreCountMismatch { detector: "kitsune".into(), expected: 10, got: 9 };
        assert!(err.to_string().contains("9 scores for 10 items"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
