//! The parse-once Event data plane: one detector contract for packets,
//! flows, batch, and stream.
//!
//! The paper's two hardest practical boundaries are the packets-vs-flows
//! input split (Section I) and the batch-vs-deployment split. This module
//! removes both from the detector contract:
//!
//! * **Parse once.** Every packet is decoded exactly once, at the edge of
//!   the pipeline, into a [`ParsedView`] ([`ParsedView::from_packet`] is the
//!   single `ParsedPacket::parse` call site of the data plane — pinned by
//!   the `parse_once` integration test). Flow-key routing, flow assembly,
//!   and detector features all read that one view; no detector re-parses
//!   raw bytes internally.
//! * **One event stream.** The replay delivers a uniform stream of
//!   [`Event`]s: a [`Event::Packet`] per packet in arrival order, and a
//!   [`Event::FlowEvicted`] whenever the flow table emits a completed flow
//!   — eviction timing included, because when a flow is scored is itself a
//!   detection variable (Ficke et al.).
//! * **One contract.** [`EventDetector`] replaces the old
//!   `Detector`/`StreamingDetector` split: `fit` consumes the training
//!   slice once, then `on_event` must score each event of the detector's
//!   [`InputFormat`] immediately, with no second pass. The batch runner
//!   (`runner::evaluate`) and the sharded streaming executor
//!   (`idsbench-stream`) are two drivers of this same contract, and a
//!   single-shard streaming run reproduces batch evaluation bitwise.
//!
//! # Examples
//!
//! A trivial packet detector under the unified contract:
//!
//! ```
//! use idsbench_core::event::{Event, EventDetector, ParsedView, TrainView};
//! use idsbench_core::{InputFormat, Label, LabeledPacket};
//! use idsbench_net::{Packet, Timestamp};
//!
//! /// Scores every packet by wire length.
//! #[derive(Debug)]
//! struct Length;
//!
//! impl EventDetector for Length {
//!     fn name(&self) -> &str {
//!         "length"
//!     }
//!     fn input_format(&self) -> InputFormat {
//!         InputFormat::Packets
//!     }
//!     fn fit(&mut self, _train: &TrainView) {}
//!     fn on_event(&mut self, event: &Event<'_>) -> Option<f64> {
//!         match event {
//!             Event::Packet(view) => Some(view.packet.packet.wire_len() as f64),
//!             Event::FlowEvicted(_) => None,
//!         }
//!     }
//! }
//!
//! let mut detector = Length;
//! detector.fit(&TrainView::default());
//! let view = ParsedView::from_packet(LabeledPacket::new(
//!     Packet::new(Timestamp::ZERO, vec![0u8; 60]),
//!     Label::Benign,
//! ));
//! assert_eq!(detector.on_event(&Event::Packet(&view)), Some(60.0));
//! ```

use idsbench_flow::{FlowFeatures, FlowKey, FlowRecord, FlowTable, FlowTableConfig};
use idsbench_net::fasthash::FastMap;
use idsbench_net::{Duration, ParsedPacket, Timestamp};

use crate::detector::{InputFormat, LabeledFlow};
use crate::label::{Label, LabeledPacket};

/// A labeled packet paired with its one-and-only parsed view.
///
/// Construction ([`ParsedView::from_packet`]) is the data plane's single
/// parse site: the decoded headers and the canonical flow key derived from
/// them ride along with the packet through routing, flow assembly, and
/// detector feature extraction, so nothing downstream ever re-parses the
/// raw bytes.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedView {
    /// The raw packet and its ground-truth label.
    pub packet: LabeledPacket,
    /// The decoded headers, or `None` when the frame is malformed. A
    /// malformed frame still flows through the pipeline (a deployed IDS
    /// must pass it through, not crash); packet detectors score it
    /// neutrally and it carries no flow identity.
    pub parsed: Option<ParsedPacket>,
    /// Canonical (direction-independent) 5-tuple, or `None` for non-IP or
    /// malformed frames. Precomputed here because every driver needs it:
    /// the streaming feeder routes on it and the flow assembler groups by
    /// it.
    pub flow_key: Option<FlowKey>,
}

impl ParsedView {
    /// Parses a labeled packet into its view — **the** `ParsedPacket::parse`
    /// call of the evaluation data plane (exactly one per packet; the
    /// `parse_once` integration test counts).
    pub fn from_packet(packet: LabeledPacket) -> Self {
        let parsed = ParsedPacket::parse(&packet.packet).ok();
        let flow_key = parsed.as_ref().and_then(FlowKey::from_packet).map(|key| key.canonical().0);
        ParsedView { packet, parsed, flow_key }
    }

    /// Ground-truth label of the underlying packet.
    pub fn label(&self) -> Label {
        self.packet.label
    }

    /// Shorthand for `label().is_attack()`.
    pub fn is_attack(&self) -> bool {
        self.packet.is_attack()
    }
}

/// One observable occurrence in the replayed traffic timeline.
///
/// Packet events arrive in timestamp order; flow events are interleaved at
/// the exact moment the flow table evicts the record (TCP close, idle or
/// active timeout, capacity eviction, end-of-stream flush) — the timing a
/// deployed flow-input IDS actually experiences.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event<'a> {
    /// A packet arrived.
    Packet(&'a ParsedView),
    /// The flow table evicted a completed flow.
    FlowEvicted(&'a LabeledFlow),
}

impl Event<'_> {
    /// Ground truth of the packet or flow this event carries.
    pub fn label(&self) -> Label {
        match self {
            Event::Packet(view) => view.label(),
            Event::FlowEvicted(flow) => flow.label,
        }
    }

    /// Which input format this event belongs to.
    pub fn format(&self) -> InputFormat {
        match self {
            Event::Packet(_) => InputFormat::Packets,
            Event::FlowEvicted(_) => InputFormat::Flows,
        }
    }
}

/// The training slice in both shapes, parsed once and shared by every
/// driver: packet views in timestamp order plus the flows the eviction path
/// emitted while replaying them (flush included, so no training packet is
/// silently dropped from the flow view).
///
/// Supervised detectors may read labels here — training labels are the only
/// labels a detector is ever allowed to consume. Evaluation labels never
/// reach a detector: `on_event` hands over traffic, not ground truth.
#[derive(Debug, Clone, Default)]
pub struct TrainView {
    /// Training packets with their parsed views, in timestamp order.
    pub packets: Vec<ParsedView>,
    /// Flows assembled from exactly those packets, in eviction order
    /// (flush-at-end sorted by first-seen time).
    pub flows: Vec<LabeledFlow>,
}

impl TrainView {
    /// Builds the view from already-parsed training packets: replays them
    /// through a fresh [`FlowEventAssembler`] and keeps both shapes.
    pub fn assemble(packets: Vec<ParsedView>, flow_config: FlowTableConfig) -> Self {
        let mut assembler = FlowEventAssembler::new(flow_config);
        let mut flows = Vec::new();
        for view in &packets {
            assembler.observe(view, |flow| flows.push(flow));
        }
        flows.extend(assembler.flush());
        TrainView { packets, flows }
    }
}

/// A network IDS under the unified evaluation contract (see module docs).
///
/// The lifecycle mirrors deployment: `fit` consumes the training slice
/// exactly once (the detector trains or calibrates itself as its published
/// protocol dictates — the paper's out-of-the-box rule), then `on_event` is
/// called for every event in arrival order and must return a score for each
/// event of the detector's [`InputFormat`] immediately, without seeing any
/// future event.
///
/// Implementations carry mutable state across calls (damped statistics,
/// model weights, behavioural profiles); the sharded executor therefore
/// gives every shard its own instance via [`EventFactory`].
///
/// The trait is object-safe; both drivers work with
/// `Box<dyn EventDetector>`.
pub trait EventDetector: Send {
    /// Human-readable system name as used in the paper (e.g. `"Kitsune"`).
    fn name(&self) -> &str;

    /// Which event kind this detector scores. The drivers use this for two
    /// things: they only run the flow-eviction path when the detector
    /// consumes flows, and they verify one score came back per event of
    /// this format.
    fn input_format(&self) -> InputFormat;

    /// Consumes the training slice once, before any scoring.
    fn fit(&mut self, train: &TrainView);

    /// Observes one event. Must return `Some(score)` (higher = more
    /// anomalous) for every event matching [`EventDetector::input_format`]
    /// and `None` for the rest. Packet detectors still receive flow events
    /// only if a driver chooses to deliver them (they are free to ignore
    /// them); flow detectors always receive the packet events too, since
    /// real deployments see the packets their flows are made of.
    fn on_event(&mut self, event: &Event<'_>) -> Option<f64>;

    /// Scores a batch of parsed packets, pushing exactly one score per view
    /// onto `scores` in order. The drivers call this instead of
    /// [`EventDetector::on_event`] when a burst of packet events arrives
    /// together and the detector consumes packets without flow assembly —
    /// the batch-of-rows entry point that lets NN-backed detectors amortize
    /// weight traffic across the burst.
    ///
    /// The contract mirrors scoring the views one at a time in order: the
    /// default implementation does exactly that, and overrides in the
    /// default f64 precision must produce bitwise-identical scores (batch
    /// delivery sits underneath the score-digest contract without its own
    /// pin; `tests/epsilon_parity.rs` covers the f32 mode).
    fn on_packet_batch(
        &mut self,
        views: &mut dyn Iterator<Item = &ParsedView>,
        scores: &mut Vec<f64>,
    ) {
        for view in views {
            if let Some(score) = self.on_event(&Event::Packet(view)) {
                scores.push(score);
            }
        }
    }

    /// Surrenders any private per-flow state this detector keeps for
    /// `key`, removing it locally. The streaming executor calls this when
    /// consistent-hash ownership of the flow moves to another shard, and
    /// delivers the returned state to the new owner's
    /// [`EventDetector::absorb_flow_state`].
    ///
    /// The state is a detector-private byte encoding: the receiving side is
    /// always another instance of the *same* detector, so the format needs
    /// no self-description — but it must be bytes, because ownership moves
    /// can now cross process (and host) boundaries over the fabric wire,
    /// where a `Box<dyn Any>` cannot travel.
    ///
    /// Only state keyed *by this exact flow* belongs here. Entity-keyed
    /// state (per-host profiles, per-channel statistics) is deliberately
    /// shard-local and must not be extracted — it is shared across flows,
    /// so multi-shard partitioning of it is an evaluation variable, not a
    /// bug. The default (no per-flow state) returns `None`.
    fn extract_flow_state(&mut self, _key: &FlowKey) -> Option<Vec<u8>> {
        None
    }

    /// Adopts per-flow state extracted from another instance of the same
    /// detector by [`EventDetector::extract_flow_state`]. The default drops
    /// it.
    fn absorb_flow_state(&mut self, _key: &FlowKey, _state: Vec<u8>) {}

    /// Copies the per-flow state for `key` *without* removing it — the
    /// checkpoint counterpart of [`EventDetector::extract_flow_state`],
    /// used by fault-tolerant executors to snapshot a live shard.
    ///
    /// The default implementation round-trips through extract + absorb,
    /// which is sound for any detector honouring the migration contract
    /// (`absorb ∘ extract` must be the identity — it is exactly what a
    /// shard handoff performs). Detectors may override it with a cheaper
    /// read-only copy.
    fn snapshot_flow_state(&mut self, key: &FlowKey) -> Option<Vec<u8>> {
        let state = self.extract_flow_state(key)?;
        self.absorb_flow_state(key, state.clone());
        Some(state)
    }
}

impl EventDetector for Box<dyn EventDetector> {
    fn name(&self) -> &str {
        self.as_ref().name()
    }

    fn input_format(&self) -> InputFormat {
        self.as_ref().input_format()
    }

    fn fit(&mut self, train: &TrainView) {
        self.as_mut().fit(train);
    }

    fn on_event(&mut self, event: &Event<'_>) -> Option<f64> {
        self.as_mut().on_event(event)
    }

    // Forwarded explicitly: the default body would loop `on_event` on the
    // box and silently bypass the inner detector's batch override.
    fn on_packet_batch(
        &mut self,
        views: &mut dyn Iterator<Item = &ParsedView>,
        scores: &mut Vec<f64>,
    ) {
        self.as_mut().on_packet_batch(views, scores);
    }

    fn extract_flow_state(&mut self, key: &FlowKey) -> Option<Vec<u8>> {
        self.as_mut().extract_flow_state(key)
    }

    fn absorb_flow_state(&mut self, key: &FlowKey, state: Vec<u8>) {
        self.as_mut().absorb_flow_state(key, state);
    }

    fn snapshot_flow_state(&mut self, key: &FlowKey) -> Option<Vec<u8>> {
        self.as_mut().snapshot_flow_state(key)
    }
}

/// One flow's migratable state, in flight from the shard that owned it to
/// the shard the consistent-hash ring now assigns it — the payload of the
/// streaming executor's `FlowMigration` handoff message.
///
/// A migration carries up to three pieces, any of which may be absent:
/// the open [`FlowRecord`] (absent when the flow already evicted and only
/// its label fold persists), the folded ground-truth [`Label`], and the
/// detector's private per-flow state
/// ([`EventDetector::extract_flow_state`]).
#[derive(Debug, Clone, PartialEq)]
pub struct FlowMigration {
    /// Canonical flow key whose ownership moved.
    pub key: FlowKey,
    /// The open flow record, mid-aggregation, if the flow is still live.
    pub record: Option<FlowRecord>,
    /// The label fold accumulated for this key so far.
    pub label: Label,
    /// Traffic time of the last packet that touched the label fold —
    /// carried so the new owner expires the fold on the same clock the old
    /// owner would have ([`FlowEventAssembler`] dead-tuple expiry).
    pub label_seen: Timestamp,
    /// Opaque detector per-flow state, if the detector keeps any
    /// ([`EventDetector::extract_flow_state`]'s private byte encoding).
    pub detector: Option<Vec<u8>>,
}

/// A named factory producing fresh [`EventDetector`] instances — one per
/// grid cell in the batch runner, one per shard in the streaming executor,
/// so no state leaks between datasets or flow partitions.
pub type EventFactory<'a> = Box<dyn Fn() -> Box<dyn EventDetector> + Send + Sync + 'a>;

/// One key's accumulated ground-truth fold plus the traffic time of the
/// last packet that touched it — the unit of the bounded label inventory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct LabelEntry {
    label: Label,
    last_seen: Timestamp,
}

/// Default dead-tuple horizon for the label fold: a tuple silent this long
/// is treated as gone for good, and a later reopen starts a fresh label.
/// Chosen well above the flow-table timeouts so every shipped scenario's
/// scores are unchanged by the bound.
const DEFAULT_LABEL_HORIZON: Duration = Duration::from_secs(600);

/// Minimum label-fold size before the amortized physical purge first runs.
const LABEL_PURGE_MIN: usize = 1024;

/// Turns a parsed packet stream into labeled [`Event::FlowEvicted`] events.
///
/// Owns a [`FlowTable`] plus the label fold: a flow inherits the attack
/// label (and kind) of its constituent packets via the canonical 5-tuple;
/// mixed tuples (benign and attack traffic sharing an exact 5-tuple) label
/// the flow as attack, matching the labelling practice of the real
/// datasets. Both replay drivers — batch and each streaming shard — run one
/// assembler over the packets they own, which is what makes their flow
/// event streams identical for identically-routed traffic.
///
/// # Bounded label fold
///
/// Labels persist beyond flow eviction so a reopened 5-tuple inherits the
/// attack fold — but not forever. A tuple with no traffic for the *label
/// horizon* (default 10 minutes, always at least `idle_timeout +
/// time_wait`) is considered gone for good: a later reopen starts a fresh
/// label, and the entry becomes purgeable. The expiry predicate is pure
/// traffic time on the tuple's own packets, so every run shape — batch,
/// single shard, autoscaled, multi-process — makes the identical label
/// decisions no matter when the physical purge happens to run.
#[derive(Debug)]
pub struct FlowEventAssembler {
    table: FlowTable,
    labels: FastMap<FlowKey, LabelEntry>,
    /// Dead-tuple expiry horizon, clamped to at least `label_floor`.
    label_horizon: Duration,
    /// `idle_timeout + time_wait`: the longest a tuple can sit in the flow
    /// table between packets, hence the shortest sound horizon.
    label_floor: Duration,
    /// Latest packet timestamp observed (the purge/migration clock).
    last_ts: Timestamp,
    /// Next fold size at which the amortized purge fires.
    purge_at: usize,
}

impl FlowEventAssembler {
    /// Creates an assembler with an empty flow table.
    pub fn new(config: FlowTableConfig) -> Self {
        let floor = config.idle_timeout + config.time_wait;
        FlowEventAssembler {
            table: FlowTable::new(config),
            labels: FastMap::new(),
            label_horizon: DEFAULT_LABEL_HORIZON.max(floor),
            label_floor: floor,
            last_ts: Timestamp::ZERO,
            purge_at: LABEL_PURGE_MIN,
        }
    }

    /// Sets the dead-tuple label horizon (see the type docs). Clamped up to
    /// `idle_timeout + time_wait`: anything shorter could expire the label
    /// of a flow that is still sitting in the table, which would let the
    /// purge schedule change scores.
    pub fn with_label_horizon(mut self, horizon: Duration) -> Self {
        self.label_horizon = horizon.max(self.label_floor);
        self
    }

    /// Feeds one parsed view; evicted flows (if any) are handed to `emit`
    /// as labeled flows, in eviction order. Malformed and non-IP packets
    /// are passed over (they carry no flow identity).
    pub fn observe(&mut self, view: &ParsedView, mut emit: impl FnMut(LabeledFlow)) {
        let Some(parsed) = &view.parsed else {
            return;
        };
        let now = parsed.ts;
        // Fold this packet's label — unless the tuple's fold has expired.
        // An expired fold must stay intact through the table sweep below
        // (the sweep may still emit the tuple's *previous* record, which
        // belongs to the old fold) and is replaced afterwards.
        let mut expired_reopen: Option<FlowKey> = None;
        if let Some(key) = view.flow_key {
            match self.labels.get_mut(&key) {
                Some(entry) => {
                    if now.saturating_since(entry.last_seen) > self.label_horizon {
                        expired_reopen = Some(key);
                    } else {
                        if !entry.label.is_attack() && view.packet.label.is_attack() {
                            entry.label = view.packet.label;
                        }
                        entry.last_seen = now;
                    }
                }
                None => {
                    self.labels
                        .insert(key, LabelEntry { label: view.packet.label, last_seen: now });
                }
            }
        }
        let labels = &self.labels;
        self.table.observe_with(parsed, |record| emit(Self::labeled(labels, record)));
        if let Some(key) = expired_reopen {
            self.labels.insert(key, LabelEntry { label: view.packet.label, last_seen: now });
        }
        self.last_ts = now;
        if self.labels.len() >= self.purge_at {
            self.purge_expired();
        }
    }

    /// Emits every flow still open, in first-seen order (end of stream).
    pub fn flush(&mut self) -> Vec<LabeledFlow> {
        let labels = &self.labels;
        self.table.flush().into_iter().map(|record| Self::labeled(labels, record)).collect()
    }

    /// Extracts every flow this assembler no longer owns: each key for
    /// which `owned` returns `false` leaves with its open record (if the
    /// flow is still live) and its accumulated label fold, as a
    /// [`FlowMigration`] with no detector state attached (the caller owns
    /// the detector and fills that field).
    ///
    /// The label fold is the inventory, not the flow table: labels persist
    /// beyond eviction so a reopened 5-tuple inherits the attack fold, and
    /// that persistence must survive an ownership move too — otherwise an
    /// autoscaled run could label a reopened flow differently than a
    /// single-shard run. Migrations are returned sorted by key, so the
    /// handoff is deterministic regardless of map iteration order.
    ///
    /// Expired dead tuples (no open record, silent past the label horizon)
    /// are dropped rather than migrated: any reopen resets their fold
    /// anyway, so shipping them would only re-seed the new owner with
    /// history it is about to discard. Together with the amortized purge
    /// this bounds the scan and the migration volume by recent traffic, not
    /// by everything the shard has ever seen.
    pub fn extract_departing(&mut self, owned: impl Fn(&FlowKey) -> bool) -> Vec<FlowMigration> {
        let mut departing: Vec<FlowKey> =
            self.labels.keys().filter(|key| !owned(key)).copied().collect();
        departing.sort_unstable();
        let now = self.last_ts;
        let mut migrations = Vec::with_capacity(departing.len());
        for key in departing {
            let entry = self.labels.remove(&key).expect("departing key came from the label fold");
            let record = self.table.extract(&key);
            if record.is_none() && now.saturating_since(entry.last_seen) > self.label_horizon {
                continue;
            }
            migrations.push(FlowMigration {
                key,
                record,
                label: entry.label,
                label_seen: entry.last_seen,
                detector: None,
            });
        }
        migrations
    }

    /// Clones the *entire* live state as migrations, leaving this assembler
    /// untouched — the checkpoint counterpart of
    /// [`FlowEventAssembler::extract_departing`]. Open records are copied
    /// (not extracted), label folds stay in place, and the same dead-tuple
    /// rule applies: an expired tuple with no open record is skipped, since
    /// a reopen would reset its fold anyway. Sorted by key.
    ///
    /// Restoring a fresh assembler from the result via
    /// [`FlowEventAssembler::absorb`] plus
    /// [`FlowEventAssembler::restore_clock`] yields a replica that makes
    /// byte-identical decisions on a replay of the donor's packet stream.
    pub fn snapshot_all(&self) -> Vec<FlowMigration> {
        let mut keys: Vec<FlowKey> = self.labels.keys().copied().collect();
        keys.sort_unstable();
        let now = self.last_ts;
        let mut migrations = Vec::with_capacity(keys.len());
        for key in keys {
            let entry = self.labels.get(&key).expect("key came from the label fold");
            let record = self.table.get(&key).cloned();
            if record.is_none() && now.saturating_since(entry.last_seen) > self.label_horizon {
                continue;
            }
            migrations.push(FlowMigration {
                key,
                record,
                label: entry.label,
                label_seen: entry.last_seen,
                detector: None,
            });
        }
        migrations
    }

    /// The assembler's traffic clock: latest packet timestamp observed plus
    /// the flow table's idle-sweep phase. Checkpointed alongside
    /// [`FlowEventAssembler::snapshot_all`] so a recovered replica sweeps at
    /// exactly the packets the donor would have.
    pub fn clock(&self) -> (Timestamp, Timestamp) {
        (self.last_ts, self.table.sweep_clock())
    }

    /// Restores a clock captured by [`FlowEventAssembler::clock`] onto a
    /// fresh assembler, before any replay traffic.
    pub fn restore_clock(&mut self, last_ts: Timestamp, sweep: Timestamp) {
        self.last_ts = last_ts;
        self.table.set_sweep_clock(sweep);
    }

    /// Adopts one migrated flow: the label fold merges (attack wins, the
    /// same rule [`FlowEventAssembler::observe`] applies), the fold clock
    /// keeps the later of the two `label_seen` times, and the open record,
    /// if any, resumes aggregating in this assembler's table.
    pub fn absorb(&mut self, migration: FlowMigration) {
        match self.labels.get_mut(&migration.key) {
            Some(entry) => {
                if !entry.label.is_attack() && migration.label.is_attack() {
                    entry.label = migration.label;
                }
                entry.last_seen = entry.last_seen.max(migration.label_seen);
            }
            None => {
                self.labels.insert(
                    migration.key,
                    LabelEntry { label: migration.label, last_seen: migration.label_seen },
                );
            }
        }
        if let Some(record) = migration.record {
            self.table.absorb(record);
        }
    }

    /// Number of flows currently being tracked.
    pub fn active_flows(&self) -> usize {
        self.table.active_flows()
    }

    /// Number of keys currently held by the label fold (live flows plus
    /// dead tuples still within the label horizon, up to purge slack).
    pub fn label_entries(&self) -> usize {
        self.labels.len()
    }

    /// Physically drops expired dead tuples from the fold. Entries whose
    /// record is still in the flow table are always kept (their eventual
    /// eviction must read the old fold), so purge timing is unobservable:
    /// every read path either finds the entry live or would have reset it.
    fn purge_expired(&mut self) {
        let table = &self.table;
        let horizon = self.label_horizon;
        let now = self.last_ts;
        self.labels.retain(|key, entry| {
            now.saturating_since(entry.last_seen) <= horizon || table.contains(key)
        });
        self.purge_at = (self.labels.len() * 2).max(LABEL_PURGE_MIN);
    }

    fn labeled(labels: &FastMap<FlowKey, LabelEntry>, record: FlowRecord) -> LabeledFlow {
        let label = labels.get(&record.key).map(|entry| entry.label).unwrap_or(Label::Benign);
        let features = FlowFeatures::from_record(&record);
        LabeledFlow { record, features, label }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::AttackKind;
    use idsbench_net::{MacAddr, Packet, PacketBuilder, TcpFlags, Timestamp};
    use std::net::Ipv4Addr;

    fn tcp_view(src: (u8, u16), dst: (u8, u16), t: f64, label: Label) -> ParsedView {
        let p = PacketBuilder::new()
            .ethernet(MacAddr::from_host_id(src.0 as u32), MacAddr::from_host_id(dst.0 as u32))
            .ipv4(Ipv4Addr::new(10, 0, 0, src.0), Ipv4Addr::new(10, 0, 0, dst.0))
            .tcp(src.1, dst.1, TcpFlags::ACK)
            .payload(&[0; 20])
            .build(Timestamp::from_secs_f64(t));
        ParsedView::from_packet(LabeledPacket::new(p, label))
    }

    #[test]
    fn view_precomputes_canonical_flow_key() {
        let forward = tcp_view((1, 40_000), (2, 80), 0.0, Label::Benign);
        let backward = tcp_view((2, 80), (1, 40_000), 0.1, Label::Benign);
        assert!(forward.parsed.is_some());
        assert_eq!(forward.flow_key, backward.flow_key, "both directions share one key");
        assert!(forward.flow_key.is_some());
    }

    #[test]
    fn malformed_frame_yields_keyless_view() {
        let garbage =
            LabeledPacket::new(Packet::new(Timestamp::ZERO, vec![0xff; 7]), Label::Benign);
        let view = ParsedView::from_packet(garbage);
        assert!(view.parsed.is_none());
        assert!(view.flow_key.is_none());
        assert!(!view.is_attack());
    }

    #[test]
    fn event_carries_label_and_format() {
        let view = tcp_view((1, 40_000), (2, 80), 0.0, Label::Attack(AttackKind::PortScan));
        let event = Event::Packet(&view);
        assert!(event.label().is_attack());
        assert_eq!(event.format(), InputFormat::Packets);
    }

    #[test]
    fn assembler_labels_flows_from_constituent_packets() {
        let mut assembler = FlowEventAssembler::new(FlowTableConfig::default());
        let views = [
            tcp_view((1, 40_000), (2, 80), 0.0, Label::Benign),
            tcp_view((2, 80), (1, 40_000), 0.1, Label::Attack(AttackKind::Exfiltration)),
        ];
        for view in &views {
            assembler.observe(view, |_| panic!("nothing should evict yet"));
        }
        let flows = assembler.flush();
        assert_eq!(flows.len(), 1);
        assert_eq!(flows[0].label.attack_kind(), Some(AttackKind::Exfiltration));
        assert_eq!(flows[0].record.total_packets(), 2);
    }

    #[test]
    fn assembler_handoff_migrates_record_and_label_fold() {
        let mut donor = FlowEventAssembler::new(FlowTableConfig::default());
        let mut heir = FlowEventAssembler::new(FlowTableConfig::default());
        // Two flows on the donor; one carries an attack label.
        let moving = [
            tcp_view((1, 40_000), (2, 80), 0.0, Label::Attack(AttackKind::PortScan)),
            tcp_view((2, 80), (1, 40_000), 0.1, Label::Benign),
        ];
        let staying = tcp_view((3, 41_000), (2, 80), 0.05, Label::Benign);
        for view in moving.iter().chain(std::iter::once(&staying)) {
            donor.observe(view, |_| panic!("nothing evicts yet"));
        }
        assert_eq!(donor.active_flows(), 2);

        let moving_key = moving[0].flow_key.unwrap();
        let migrations = donor.extract_departing(|key| *key != moving_key);
        assert_eq!(migrations.len(), 1);
        assert_eq!(migrations[0].key, moving_key);
        assert!(migrations[0].record.is_some(), "open flow travels with its record");
        assert_eq!(donor.active_flows(), 1, "donor keeps only what it still owns");

        for migration in migrations {
            heir.absorb(migration);
        }
        // The flow continues on the heir as if nothing happened.
        heir.observe(&tcp_view((1, 40_000), (2, 80), 0.2, Label::Benign), |_| {
            panic!("nothing evicts yet")
        });
        let flows = heir.flush();
        assert_eq!(flows.len(), 1);
        assert_eq!(flows[0].record.total_packets(), 3, "pre-handoff packets survive");
        assert!(flows[0].label.is_attack(), "label fold survives the handoff");
    }

    #[test]
    fn label_fold_plateaus_under_short_lived_flow_churn() {
        let config = FlowTableConfig {
            idle_timeout: Duration::from_secs(1),
            active_timeout: Duration::from_secs(60),
            time_wait: Duration::from_secs(1),
            max_flows: 4096,
        };
        let mut assembler =
            FlowEventAssembler::new(config).with_label_horizon(Duration::from_secs(4));
        // A long stream of one-packet flows: a fresh source port every
        // packet, ten packets per traffic-second. Before the bound, the
        // fold kept every tuple ever seen and this grew without limit.
        let total = 8_000u32;
        let mut peak = 0usize;
        for i in 0..total {
            let t = f64::from(i) * 0.1;
            let port = 2_000 + (i % 60_000) as u16;
            let view = tcp_view((1, port), (2, 80), t, Label::Benign);
            assembler.observe(&view, |_| {});
            peak = peak.max(assembler.label_entries());
        }
        assert!(
            peak <= 2 * 1024 + 64,
            "label fold failed to plateau: peak {peak} of {total} tuples"
        );
        assert!(assembler.label_entries() < total as usize / 4);
    }

    #[test]
    fn expired_dead_tuple_reopens_with_a_fresh_label() {
        let config = FlowTableConfig {
            idle_timeout: Duration::from_secs(1),
            active_timeout: Duration::from_secs(60),
            time_wait: Duration::from_secs(1),
            max_flows: 4096,
        };
        let mut assembler =
            FlowEventAssembler::new(config).with_label_horizon(Duration::from_secs(4));
        // An attack-labeled flow dies, then the same 5-tuple reopens far
        // past the horizon with benign traffic.
        let mut evicted = Vec::new();
        assembler.observe(
            &tcp_view((1, 40_000), (2, 80), 0.0, Label::Attack(AttackKind::PortScan)),
            |flow| evicted.push(flow),
        );
        assembler.observe(&tcp_view((1, 40_000), (2, 80), 100.0, Label::Benign), |flow| {
            evicted.push(flow)
        });
        // The old record idled out, swept by the reopening packet — and it
        // must still carry the old attack fold.
        assert_eq!(evicted.len(), 1);
        assert!(evicted[0].label.is_attack(), "old segment keeps the old fold");
        // The reopened segment starts fresh: no inherited attack label.
        let flows = assembler.flush();
        assert_eq!(flows.len(), 1);
        assert!(!flows[0].label.is_attack(), "expired fold must not leak into the reopen");

        // Inside the horizon the fold still carries over (unchanged rule).
        let mut assembler =
            FlowEventAssembler::new(config).with_label_horizon(Duration::from_secs(400));
        let mut evicted = Vec::new();
        assembler.observe(
            &tcp_view((1, 40_000), (2, 80), 0.0, Label::Attack(AttackKind::PortScan)),
            |flow| evicted.push(flow),
        );
        assembler.observe(&tcp_view((1, 40_000), (2, 80), 100.0, Label::Benign), |flow| {
            evicted.push(flow)
        });
        let flows = assembler.flush();
        assert_eq!(flows.len(), 1);
        assert!(flows[0].label.is_attack(), "in-horizon reopen inherits the fold");
    }

    #[test]
    fn expired_dead_tuples_are_dropped_from_migration() {
        let config = FlowTableConfig {
            idle_timeout: Duration::from_secs(1),
            active_timeout: Duration::from_secs(60),
            time_wait: Duration::from_secs(1),
            max_flows: 4096,
        };
        let mut donor = FlowEventAssembler::new(config).with_label_horizon(Duration::from_secs(4));
        // One tuple dies early, another stays live until the handoff.
        donor.observe(&tcp_view((1, 40_000), (2, 80), 0.0, Label::Benign), |_| {});
        donor.observe(&tcp_view((3, 41_000), (2, 80), 50.0, Label::Benign), |_| {});
        let migrations = donor.extract_departing(|_| false);
        assert_eq!(migrations.len(), 1, "expired dead tuple must not be shipped");
        assert_eq!(
            migrations[0].key,
            tcp_view((3, 41_000), (2, 80), 0.0, Label::Benign).flow_key.unwrap()
        );
    }

    #[test]
    fn snapshot_restores_a_byte_identical_replica() {
        let config = FlowTableConfig {
            idle_timeout: Duration::from_secs(2),
            active_timeout: Duration::from_secs(60),
            time_wait: Duration::from_secs(1),
            max_flows: 4096,
        };
        let mut donor = FlowEventAssembler::new(config);
        donor.observe(
            &tcp_view((1, 40_000), (2, 80), 0.0, Label::Attack(AttackKind::SynFlood)),
            |_| {},
        );
        donor.observe(&tcp_view((3, 41_000), (2, 80), 0.5, Label::Benign), |_| {});

        let snapshot = donor.snapshot_all();
        assert_eq!(snapshot.len(), 2);
        assert_eq!(donor.active_flows(), 2, "snapshot must not disturb the donor");
        assert_eq!(donor.label_entries(), 2);

        let mut replica = FlowEventAssembler::new(config);
        let (last_ts, sweep) = donor.clock();
        for migration in snapshot {
            replica.absorb(migration);
        }
        replica.restore_clock(last_ts, sweep);

        // Same subsequent traffic → same evictions at the same packets,
        // including sweep-triggered idle evictions, and an identical flush.
        let tail = [
            tcp_view((1, 40_000), (2, 80), 0.9, Label::Benign),
            tcp_view((5, 42_000), (2, 80), 4.0, Label::Benign),
            tcp_view((5, 42_000), (2, 80), 4.5, Label::Benign),
        ];
        let mut donor_evicted = Vec::new();
        let mut replica_evicted = Vec::new();
        for view in &tail {
            donor.observe(view, |flow| donor_evicted.push(flow));
            replica.observe(view, |flow| replica_evicted.push(flow));
        }
        donor_evicted.extend(donor.flush());
        replica_evicted.extend(replica.flush());
        assert!(!donor_evicted.is_empty(), "workload must evict something");
        assert_eq!(donor_evicted, replica_evicted, "replica diverged from the donor");
    }

    #[test]
    fn snapshot_flow_state_default_round_trips() {
        // A detector with per-flow state: the default snapshot must copy
        // without consuming.
        #[derive(Debug, Default)]
        struct Count(std::collections::HashMap<FlowKey, u64>);
        impl EventDetector for Count {
            fn name(&self) -> &str {
                "count"
            }
            fn input_format(&self) -> InputFormat {
                InputFormat::Packets
            }
            fn fit(&mut self, _train: &TrainView) {}
            fn on_event(&mut self, _event: &Event<'_>) -> Option<f64> {
                Some(0.0)
            }
            fn extract_flow_state(&mut self, key: &FlowKey) -> Option<Vec<u8>> {
                self.0.remove(key).map(|c| c.to_le_bytes().to_vec())
            }
            fn absorb_flow_state(&mut self, key: &FlowKey, state: Vec<u8>) {
                if let Ok(bytes) = <[u8; 8]>::try_from(state.as_slice()) {
                    self.0.insert(*key, u64::from_le_bytes(bytes));
                }
            }
        }
        let key = tcp_view((1, 40_000), (2, 80), 0.0, Label::Benign).flow_key.unwrap();
        let mut detector = Count::default();
        detector.0.insert(key, 7);
        let snap = detector.snapshot_flow_state(&key).expect("state exists");
        assert_eq!(snap, 7u64.to_le_bytes().to_vec());
        assert_eq!(detector.0.get(&key), Some(&7), "snapshot must not consume");
        let mut boxed: Box<dyn EventDetector> = Box::new(detector);
        assert!(boxed.snapshot_flow_state(&key).is_some(), "Box forwards the hook");
    }

    #[test]
    fn train_view_assembles_both_shapes() {
        let views = vec![
            tcp_view((1, 40_000), (2, 80), 0.0, Label::Benign),
            tcp_view((3, 41_000), (2, 80), 0.5, Label::Benign),
        ];
        let train = TrainView::assemble(views, FlowTableConfig::default());
        assert_eq!(train.packets.len(), 2);
        assert_eq!(train.flows.len(), 2, "flush must surface open flows");
    }
}
