//! The one hand-rolled JSON formatting vocabulary for the whole workspace.
//!
//! Every report, journal, and fig binary emits JSON by hand (the vendored
//! `serde` is marker-only), and before this module each of them carried its
//! own copy of the same two helpers — with subtly different escaping
//! coverage. These are the canonical versions:
//!
//! * strings escape quotes, backslashes, and **all** control characters
//!   (U+0000–U+001F), so arbitrary detector/source names can't corrupt a
//!   report;
//! * numbers print integral finite values without a fraction (counts stay
//!   counts) and encode non-finite values as `null`, JSON's conventional
//!   stand-in for NaN/infinity.

use std::fmt::Write as _;

/// Appends `value` to `out` with JSON string escaping (no surrounding
/// quotes): `"` and `\` are escaped, newline/carriage-return/tab use their
/// short forms, and every other control character becomes a `\u00xx` escape.
pub fn escape_into(out: &mut String, value: &str) {
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Returns `value` as a quoted, escaped JSON string literal.
pub fn quoted(value: &str) -> String {
    let mut out = String::with_capacity(value.len() + 2);
    out.push('"');
    escape_into(&mut out, value);
    out.push('"');
    out
}

/// Appends a `"key":"value"` member (no trailing comma), escaping both
/// sides.
pub fn str_field(out: &mut String, key: &str, value: &str) {
    out.push('"');
    escape_into(out, key);
    out.push_str("\":\"");
    escape_into(out, value);
    out.push('"');
}

/// Formats a number the report convention's way: integral finite values
/// print without a fraction, non-finite values print as `null`.
pub fn fmt_num(value: f64) -> String {
    let mut out = String::new();
    push_num(&mut out, value);
    out
}

/// Appends a bare JSON number (or `null` for non-finite values) to `out`.
pub fn push_num(out: &mut String, value: f64) {
    if value.is_finite() {
        if value.fract() == 0.0 && value.abs() < 9e15 {
            let _ = write!(out, "{}", value as i64);
        } else {
            let _ = write!(out, "{value}");
        }
    } else {
        out.push_str("null");
    }
}

/// Appends a `"key":number` member (no trailing comma).
pub fn num_field(out: &mut String, key: &str, value: f64) {
    out.push('"');
    escape_into(out, key);
    out.push_str("\":");
    push_num(out, value);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_escape_quotes_backslashes_and_controls() {
        let mut out = String::new();
        str_field(&mut out, "name", "a\"b\\c\nd\re\tf\u{1}g");
        assert_eq!(out, "\"name\":\"a\\\"b\\\\c\\nd\\re\\tf\\u0001g\"");
        // The quoted form matches, including an embedded NUL.
        assert_eq!(quoted("x\u{0}y"), "\"x\\u0000y\"");
        // Keys get the same treatment — a hostile key can't break the object.
        let mut out = String::new();
        num_field(&mut out, "a\"b", 1.0);
        assert_eq!(out, "\"a\\\"b\":1");
    }

    #[test]
    fn numbers_follow_the_report_convention() {
        assert_eq!(fmt_num(3.0), "3");
        assert_eq!(fmt_num(-17.0), "-17");
        assert_eq!(fmt_num(0.5), "0.5");
        assert_eq!(fmt_num(f64::NAN), "null");
        assert_eq!(fmt_num(f64::INFINITY), "null");
        assert_eq!(fmt_num(f64::NEG_INFINITY), "null");
        // Too large to be exactly integral in i64 — keep the float form.
        assert_eq!(fmt_num(1e16), "10000000000000000");
        let mut out = String::new();
        num_field(&mut out, "threshold", 2.25);
        assert_eq!(out, "\"threshold\":2.25");
    }

    #[test]
    fn escaped_output_parses_as_the_original() {
        // Cheap structural check: every quote in the output is escaped, so
        // the literal terminates exactly once.
        let s = quoted("quote:\" backslash:\\ newline:\n");
        assert!(s.starts_with('"') && s.ends_with('"'));
        let interior = &s[1..s.len() - 1];
        let mut chars = interior.chars();
        while let Some(c) = chars.next() {
            assert_ne!(c, '"', "unescaped quote inside literal");
            if c == '\\' {
                chars.next();
            }
        }
    }
}
