//! The experiment runner: the *batch driver* of the Event contract.
//!
//! [`evaluate`] runs the full paper pipeline — generate → parse-once
//! preprocess → `fit` → event replay → calibrate threshold → confusion
//! metrics — by replaying the evaluation slice as an event stream through
//! an [`EventDetector`]. The sharded streaming executor in
//! `idsbench-stream` drives the *same* contract over the same events, which
//! is why a single-shard streaming run reproduces these results bitwise.
//!
//! Each grid cell is independent (fresh detector instance, fresh dataset
//! realisation from the configured seed), so cells run in parallel on
//! crossbeam scoped threads.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;
use crate::detector::InputFormat;
use crate::event::{Event, EventDetector, EventFactory, FlowEventAssembler};
use crate::metrics::{
    auc, family_outcomes, roc_curve, ConfusionMatrix, FamilyCounts, FamilyOutcome, Metrics,
};
use crate::preprocess::{EventInput, Pipeline, PipelineConfig};
use crate::threshold::ThresholdPolicy;
use crate::{AttackKind, CoreError, Result};

/// Configuration for one evaluation run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EvalConfig {
    /// Preprocessing parameters (sampling, split, flow table).
    pub pipeline: PipelineConfig,
    /// Threshold-calibration rule applied uniformly to every detector.
    pub policy: ThresholdPolicy,
    /// Seed handed to [`Dataset::generate`].
    pub dataset_seed: u64,
}

/// The outcome of evaluating one detector on one dataset — one cell of
/// Table IV plus the diagnostics the discussion section draws on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Experiment {
    /// Detector name.
    pub detector: String,
    /// Dataset name.
    pub dataset: String,
    /// The four headline metrics.
    pub metrics: Metrics,
    /// Calibrated alert threshold.
    pub threshold: f64,
    /// Number of scored evaluation events (packets or flows).
    pub eval_items: usize,
    /// Fraction of scored evaluation events that are attacks.
    pub attack_share: f64,
    /// Area under the ROC curve of the raw scores.
    pub auc: f64,
    /// False-positive rate at the calibrated threshold.
    pub false_positive_rate: f64,
    /// Wall-clock seconds spent in `fit` — the one-time training and
    /// calibration cost a deployment pays once.
    pub train_seconds: f64,
    /// Wall-clock seconds spent in `on_event` — the recurring per-event
    /// scoring cost a deployment pays forever. Kept separate from
    /// [`Experiment::train_seconds`] so practicality comparisons do not
    /// launder training time into per-packet cost (or vice versa).
    pub score_seconds: f64,
    /// Per-attack-family outcomes at the calibrated threshold, sorted by
    /// family name. The axis along which the paper explains every
    /// detector's wins and losses (Section V factor 1).
    pub family_recall: Vec<FamilyOutcome>,
}

/// The raw outcome of one event replay, before threshold calibration: one
/// entry per scored event, in delivery order.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredReplay {
    /// Anomaly scores, one per scored event.
    pub scores: Vec<f64>,
    /// Ground truth aligned with `scores`.
    pub labels: Vec<bool>,
    /// Attack kinds aligned with `scores` (`None` for benign).
    pub kinds: Vec<Option<AttackKind>>,
    /// Seconds spent inside `fit`.
    pub train_seconds: f64,
    /// Seconds spent inside `on_event` calls.
    pub score_seconds: f64,
    /// Packet events delivered.
    pub eval_packets: usize,
    /// Flow-eviction events delivered (zero for packet-format detectors,
    /// whose replay skips flow assembly entirely).
    pub eval_flows: usize,
}

/// Fits a detector on the prepared training slice, then replays the
/// evaluation slice as an event stream: one [`Event::Packet`] per parsed
/// view in order and — for flow-format detectors — one
/// [`Event::FlowEvicted`] at each flow-table eviction, with an end-of-
/// stream flush. No packet is parsed here; the views were decoded once in
/// [`Pipeline::prepare_events`].
///
/// # Errors
///
/// Returns [`CoreError::ScoreCountMismatch`] if the detector fails to
/// return exactly one score per event of its declared input format.
pub fn replay(detector: &mut dyn EventDetector, input: &EventInput) -> Result<ScoredReplay> {
    let fit_started = std::time::Instant::now();
    detector.fit(&input.train);
    let train_seconds = fit_started.elapsed().as_secs_f64();

    let format = detector.input_format();
    let mut scores = Vec::new();
    let mut labels = Vec::new();
    let mut kinds = Vec::new();
    let mut score_nanos = 0u128;
    let mut eval_flows = 0usize;

    let mut deliver = |detector: &mut dyn EventDetector, event: Event<'_>| {
        let started = std::time::Instant::now();
        let score = detector.on_event(&event);
        score_nanos += started.elapsed().as_nanos();
        if let Some(score) = score {
            let label = event.label();
            scores.push(score);
            labels.push(label.is_attack());
            kinds.push(label.attack_kind());
        }
    };

    // Flow assembly runs only when the detector consumes flows; packet
    // detectors pay nothing for the shape they ignore.
    let mut assembler =
        matches!(format, InputFormat::Flows).then(|| FlowEventAssembler::new(input.flow_config));
    let mut evicted = Vec::new();
    for view in &input.eval {
        deliver(detector, Event::Packet(view));
        if let Some(assembler) = &mut assembler {
            assembler.observe(view, |flow| evicted.push(flow));
            for flow in evicted.drain(..) {
                eval_flows += 1;
                deliver(detector, Event::FlowEvicted(&flow));
            }
        }
    }
    if let Some(mut assembler) = assembler {
        for flow in assembler.flush() {
            eval_flows += 1;
            deliver(detector, Event::FlowEvicted(&flow));
        }
    }

    let expected = match format {
        InputFormat::Packets => input.eval.len(),
        InputFormat::Flows => eval_flows,
    };
    if scores.len() != expected {
        return Err(CoreError::ScoreCountMismatch {
            detector: detector.name().to_string(),
            expected,
            got: scores.len(),
        });
    }
    Ok(ScoredReplay {
        scores,
        labels,
        kinds,
        train_seconds,
        score_seconds: score_nanos as f64 / 1e9,
        eval_packets: input.eval.len(),
        eval_flows,
    })
}

/// Evaluates one detector on one dataset.
///
/// Runs the full paper pipeline: generate → parse-once preprocess → fit →
/// event replay → calibrate threshold → confusion metrics.
///
/// # Errors
///
/// Propagates preprocessing errors and returns
/// [`CoreError::ScoreCountMismatch`] if the detector skips or double-scores
/// events of its declared format.
pub fn evaluate(
    detector: &mut dyn EventDetector,
    dataset: &dyn Dataset,
    config: &EvalConfig,
) -> Result<Experiment> {
    let packets = dataset.generate(config.dataset_seed);
    let pipeline = Pipeline::new(config.pipeline)?;
    let input = pipeline.prepare_events(&dataset.info().name, packets)?;
    let replayed = replay(detector, &input)?;

    let threshold = config.policy.calibrate(&replayed.scores, &replayed.labels);
    let cm = ConfusionMatrix::from_scores(&replayed.scores, &replayed.labels, threshold);
    let attacks = replayed.labels.iter().filter(|&&l| l).count();

    // Per-family outcomes at the calibrated threshold. Every scored event
    // shares the detector's declared input shape: packet-format detectors
    // score packets, flow-format detectors score flow evictions.
    let is_flow = detector.input_format() == InputFormat::Flows;
    let mut per_family: std::collections::BTreeMap<&'static str, FamilyCounts> =
        std::collections::BTreeMap::new();
    for (score, kind) in replayed.scores.iter().zip(&replayed.kinds) {
        if let Some(kind) = kind {
            per_family.entry(kind.name()).or_default().record(*score >= threshold, is_flow);
        }
    }
    let family_recall = family_outcomes(&per_family);

    let eval_items = replayed.labels.len();
    Ok(Experiment {
        detector: detector.name().to_string(),
        dataset: dataset.info().name.clone(),
        metrics: cm.metrics(),
        threshold,
        eval_items,
        attack_share: if eval_items == 0 { 0.0 } else { attacks as f64 / eval_items as f64 },
        auc: auc(&roc_curve(&replayed.scores, &replayed.labels)),
        false_positive_rate: cm.false_positive_rate(),
        train_seconds: replayed.train_seconds,
        score_seconds: replayed.score_seconds,
        family_recall,
    })
}

/// A named detector factory: the grid builds a fresh instance per cell so
/// no state leaks between datasets (the paper's out-of-the-box rule).
pub type DetectorFactory<'a> = EventFactory<'a>;

/// Evaluates every detector on every dataset, in parallel.
///
/// Results are ordered detector-major (all datasets for the first detector,
/// then the second, …) regardless of completion order, matching Table IV's
/// layout. Each experiment's `detector` field is set to the *registered*
/// factory name, so the same implementation can appear under several
/// configurations (as the ablation benches do).
///
/// # Errors
///
/// Returns the first error any cell produced.
pub fn run_grid(
    detectors: &[(String, DetectorFactory<'_>)],
    datasets: &[&dyn Dataset],
    config: &EvalConfig,
) -> Result<Vec<Experiment>> {
    let cells: Vec<(usize, usize)> =
        (0..detectors.len()).flat_map(|d| (0..datasets.len()).map(move |s| (d, s))).collect();
    let results: Mutex<Vec<(usize, Result<Experiment>)>> = Mutex::new(Vec::new());
    let next: Mutex<usize> = Mutex::new(0);

    let workers =
        std::thread::available_parallelism().map_or(4, |n| n.get()).min(cells.len().max(1));
    crossbeam::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let index = {
                    let mut guard = next.lock();
                    let i = *guard;
                    if i >= cells.len() {
                        return;
                    }
                    *guard += 1;
                    i
                };
                let (d, s) = cells[index];
                let mut detector = (detectors[d].1)();
                let outcome = evaluate(detector.as_mut(), datasets[s], config).map(|mut e| {
                    e.detector = detectors[d].0.clone();
                    e
                });
                results.lock().push((index, outcome));
            });
        }
    })
    .expect("evaluation worker panicked");

    let mut collected = results.into_inner();
    collected.sort_by_key(|(index, _)| *index);
    collected.into_iter().map(|(_, outcome)| outcome).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetInfo;
    use crate::event::TrainView;
    use crate::label::{AttackKind, Label, LabeledPacket};
    use idsbench_net::{MacAddr, PacketBuilder, TcpFlags, Timestamp};
    use std::net::Ipv4Addr;

    /// Benign = small packets, attacks = large packets. An oracle-by-length
    /// dataset that a length-scoring detector classifies perfectly.
    #[derive(Debug)]
    struct ToyDataset {
        info: DatasetInfo,
    }

    impl ToyDataset {
        fn new(name: &str) -> Self {
            ToyDataset { info: DatasetInfo::new(name, "toy", "unit test", 2024) }
        }
    }

    impl Dataset for ToyDataset {
        fn info(&self) -> &DatasetInfo {
            &self.info
        }

        fn generate(&self, seed: u64) -> Vec<LabeledPacket> {
            (0..200)
                .map(|i| {
                    let attack = i % 10 == 0;
                    let payload = if attack { 900 } else { 40 + (seed % 10) as usize };
                    let p = PacketBuilder::new()
                        .ethernet(MacAddr::from_host_id(1), MacAddr::from_host_id(2))
                        .ipv4(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2))
                        .tcp(1000 + (i % 50) as u16, 80, TcpFlags::ACK)
                        .payload_len(payload)
                        .build(Timestamp::from_micros(i * 1000));
                    LabeledPacket::new(
                        p,
                        if attack { Label::Attack(AttackKind::SynFlood) } else { Label::Benign },
                    )
                })
                .collect()
        }
    }

    #[derive(Debug)]
    struct LengthDetector;

    impl EventDetector for LengthDetector {
        fn name(&self) -> &str {
            "length"
        }

        fn input_format(&self) -> InputFormat {
            InputFormat::Packets
        }

        fn fit(&mut self, _train: &TrainView) {}

        fn on_event(&mut self, event: &Event<'_>) -> Option<f64> {
            match event {
                Event::Packet(view) => Some(view.packet.packet.wire_len() as f64),
                Event::FlowEvicted(_) => None,
            }
        }
    }

    /// Scores flow events by forward packet count — exercises the flow
    /// eviction path of the batch driver.
    #[derive(Debug)]
    struct FlowCounter;

    impl EventDetector for FlowCounter {
        fn name(&self) -> &str {
            "flow-counter"
        }

        fn input_format(&self) -> InputFormat {
            InputFormat::Flows
        }

        fn fit(&mut self, _train: &TrainView) {}

        fn on_event(&mut self, event: &Event<'_>) -> Option<f64> {
            match event {
                Event::Packet(_) => None,
                Event::FlowEvicted(flow) => Some(flow.record.total_packets() as f64),
            }
        }
    }

    /// Drops every other packet score — must be caught by the count check.
    #[derive(Debug)]
    struct BrokenDetector {
        seen: usize,
    }

    impl EventDetector for BrokenDetector {
        fn name(&self) -> &str {
            "broken"
        }

        fn input_format(&self) -> InputFormat {
            InputFormat::Packets
        }

        fn fit(&mut self, _train: &TrainView) {}

        fn on_event(&mut self, event: &Event<'_>) -> Option<f64> {
            match event {
                Event::Packet(_) => {
                    self.seen += 1;
                    (self.seen % 2 == 0).then_some(0.0)
                }
                Event::FlowEvicted(_) => None,
            }
        }
    }

    #[test]
    fn oracle_detector_scores_perfectly() {
        let dataset = ToyDataset::new("toy");
        let mut detector = LengthDetector;
        let experiment = evaluate(&mut detector, &dataset, &EvalConfig::default()).unwrap();
        assert_eq!(experiment.metrics.f1, 1.0);
        assert_eq!(experiment.metrics.recall, 1.0);
        assert!((experiment.attack_share - 0.1).abs() < 0.05);
        assert_eq!(experiment.auc, 1.0);
        assert_eq!(experiment.dataset, "toy");
        assert_eq!(experiment.detector, "length");
        assert!(experiment.train_seconds >= 0.0);
        assert!(experiment.score_seconds > 0.0);
    }

    #[test]
    fn flow_detector_scores_eviction_events() {
        let dataset = ToyDataset::new("toy");
        let mut detector = FlowCounter;
        let experiment = evaluate(&mut detector, &dataset, &EvalConfig::default()).unwrap();
        assert!(experiment.eval_items > 0, "flow events must have been delivered");
        // All toy packets share one canonical 5-tuple family per src port;
        // the point here is just that the eviction path produced events.
        assert_eq!(experiment.detector, "flow-counter");
    }

    #[test]
    fn family_recall_tracks_detected_kinds() {
        let dataset = ToyDataset::new("toy");
        let mut detector = LengthDetector;
        let experiment = evaluate(&mut detector, &dataset, &EvalConfig::default()).unwrap();
        // The toy dataset's attacks are all SynFlood; the oracle detector
        // catches all of them.
        assert_eq!(experiment.family_recall.len(), 1);
        let outcome = &experiment.family_recall[0];
        assert_eq!(outcome.family, "syn-flood");
        assert_eq!(outcome.recall, 1.0);
        assert!(outcome.items() > 0);
        assert_eq!(outcome.alerts, outcome.items());
        // LengthDetector is packet-format: every scored item is a packet.
        assert_eq!(outcome.flows, 0);
        assert_eq!(outcome.packets, outcome.items());
    }

    #[test]
    fn mismatched_score_count_is_detected() {
        let dataset = ToyDataset::new("toy");
        let mut detector = BrokenDetector { seen: 0 };
        let err = evaluate(&mut detector, &dataset, &EvalConfig::default()).unwrap_err();
        assert!(matches!(err, CoreError::ScoreCountMismatch { .. }));
    }

    #[test]
    fn grid_runs_all_cells_in_order() {
        let a = ToyDataset::new("alpha");
        let b = ToyDataset::new("beta");
        let datasets: Vec<&dyn Dataset> = vec![&a, &b];
        let detectors: Vec<(String, DetectorFactory)> = vec![
            ("length".into(), Box::new(|| Box::new(LengthDetector) as Box<dyn EventDetector>)),
            ("length2".into(), Box::new(|| Box::new(LengthDetector) as Box<dyn EventDetector>)),
        ];
        let results = run_grid(&detectors, &datasets, &EvalConfig::default()).unwrap();
        assert_eq!(results.len(), 4);
        let order: Vec<(String, String)> =
            results.iter().map(|e| (e.detector.clone(), e.dataset.clone())).collect();
        assert_eq!(order[0], ("length".to_string(), "alpha".to_string()));
        assert_eq!(order[1], ("length".to_string(), "beta".to_string()));
        assert_eq!(order[2], ("length2".to_string(), "alpha".to_string()));
        assert_eq!(order[3], ("length2".to_string(), "beta".to_string()));
    }

    #[test]
    fn grid_propagates_cell_errors() {
        let a = ToyDataset::new("alpha");
        let datasets: Vec<&dyn Dataset> = vec![&a];
        let detectors: Vec<(String, DetectorFactory)> = vec![(
            "broken".into(),
            Box::new(|| Box::new(BrokenDetector { seen: 0 }) as Box<dyn EventDetector>),
        )];
        assert!(run_grid(&detectors, &datasets, &EvalConfig::default()).is_err());
    }

    #[test]
    fn different_seeds_yield_different_realisations() {
        let dataset = ToyDataset::new("toy");
        let mut d1 = LengthDetector;
        let mut d2 = LengthDetector;
        let c1 = EvalConfig { dataset_seed: 1, ..Default::default() };
        let c2 = EvalConfig { dataset_seed: 2, ..Default::default() };
        let e1 = evaluate(&mut d1, &dataset, &c1).unwrap();
        let e2 = evaluate(&mut d2, &dataset, &c2).unwrap();
        // Same structure, same metrics for this toy; thresholds may differ
        // because packet sizes depend on the seed.
        assert_eq!(e1.metrics.f1, e2.metrics.f1);
    }
}
