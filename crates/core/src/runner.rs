//! The experiment runner: evaluates every IDS on every dataset and collects
//! Table IV-shaped results.
//!
//! Each grid cell is independent (fresh detector instance, fresh dataset
//! realisation from the configured seed), so cells run in parallel on
//! crossbeam scoped threads.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::dataset::Dataset;
use crate::detector::Detector;
use crate::metrics::{auc, roc_curve, ConfusionMatrix, Metrics};
use crate::preprocess::{Pipeline, PipelineConfig};
use crate::threshold::ThresholdPolicy;
use crate::{CoreError, Result};

/// Configuration for one evaluation run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EvalConfig {
    /// Preprocessing parameters (sampling, split, flow table).
    pub pipeline: PipelineConfig,
    /// Threshold-calibration rule applied uniformly to every detector.
    pub policy: ThresholdPolicy,
    /// Seed handed to [`Dataset::generate`].
    pub dataset_seed: u64,
}

/// The outcome of evaluating one detector on one dataset — one cell of
/// Table IV plus the diagnostics the discussion section draws on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Experiment {
    /// Detector name.
    pub detector: String,
    /// Dataset name.
    pub dataset: String,
    /// The four headline metrics.
    pub metrics: Metrics,
    /// Calibrated alert threshold.
    pub threshold: f64,
    /// Number of scored evaluation items (packets or flows).
    pub eval_items: usize,
    /// Fraction of evaluation items that are attacks.
    pub attack_share: f64,
    /// Area under the ROC curve of the raw scores.
    pub auc: f64,
    /// False-positive rate at the calibrated threshold.
    pub false_positive_rate: f64,
    /// Wall-clock seconds spent inside the detector.
    pub detector_seconds: f64,
    /// Per-attack-family recall at the calibrated threshold:
    /// `(family name, recall, evaluation items of that family)`, sorted by
    /// family name. The axis along which the paper explains every
    /// detector's wins and losses (Section V factor 1).
    pub family_recall: Vec<(String, f64, usize)>,
}

/// Evaluates one detector on one dataset.
///
/// Runs the full paper pipeline: generate → preprocess → score → calibrate
/// threshold → confusion metrics.
///
/// # Errors
///
/// Propagates preprocessing errors and returns
/// [`CoreError::ScoreCountMismatch`] if the detector mis-sizes its output.
pub fn evaluate(
    detector: &mut dyn Detector,
    dataset: &dyn Dataset,
    config: &EvalConfig,
) -> Result<Experiment> {
    let packets = dataset.generate(config.dataset_seed);
    let pipeline = Pipeline::new(config.pipeline)?;
    let input = pipeline.prepare(&dataset.info().name, packets)?;

    let format = detector.input_format();
    let expected = input.eval_len(format);
    let started = std::time::Instant::now();
    let scores = detector.score(&input);
    let detector_seconds = started.elapsed().as_secs_f64();
    if scores.len() != expected {
        return Err(CoreError::ScoreCountMismatch {
            detector: detector.name().to_string(),
            expected,
            got: scores.len(),
        });
    }

    let labels = input.eval_labels(format);
    let threshold = config.policy.calibrate(&scores, &labels);
    let cm = ConfusionMatrix::from_scores(&scores, &labels, threshold);
    let attacks = labels.iter().filter(|&&l| l).count();

    // Per-family recall at the calibrated threshold.
    let kinds = input.eval_kinds(format);
    let mut per_family: std::collections::BTreeMap<&'static str, (usize, usize)> =
        std::collections::BTreeMap::new();
    for (score, kind) in scores.iter().zip(&kinds) {
        if let Some(kind) = kind {
            let entry = per_family.entry(kind.name()).or_default();
            entry.1 += 1;
            if *score >= threshold {
                entry.0 += 1;
            }
        }
    }
    let family_recall: Vec<(String, f64, usize)> = per_family
        .into_iter()
        .map(|(name, (hit, total))| (name.to_string(), hit as f64 / total.max(1) as f64, total))
        .collect();

    Ok(Experiment {
        detector: detector.name().to_string(),
        dataset: dataset.info().name.clone(),
        metrics: cm.metrics(),
        threshold,
        eval_items: labels.len(),
        attack_share: if labels.is_empty() { 0.0 } else { attacks as f64 / labels.len() as f64 },
        auc: auc(&roc_curve(&scores, &labels)),
        false_positive_rate: cm.false_positive_rate(),
        detector_seconds,
        family_recall,
    })
}

/// A named detector factory: the grid builds a fresh instance per cell so
/// no state leaks between datasets (the paper's out-of-the-box rule).
pub type DetectorFactory<'a> = Box<dyn Fn() -> Box<dyn Detector> + Send + Sync + 'a>;

/// Evaluates every detector on every dataset, in parallel.
///
/// Results are ordered detector-major (all datasets for the first detector,
/// then the second, …) regardless of completion order, matching Table IV's
/// layout. Each experiment's `detector` field is set to the *registered*
/// factory name, so the same implementation can appear under several
/// configurations (as the ablation benches do).
///
/// # Errors
///
/// Returns the first error any cell produced.
pub fn run_grid(
    detectors: &[(String, DetectorFactory<'_>)],
    datasets: &[&dyn Dataset],
    config: &EvalConfig,
) -> Result<Vec<Experiment>> {
    let cells: Vec<(usize, usize)> =
        (0..detectors.len()).flat_map(|d| (0..datasets.len()).map(move |s| (d, s))).collect();
    let results: Mutex<Vec<(usize, Result<Experiment>)>> = Mutex::new(Vec::new());
    let next: Mutex<usize> = Mutex::new(0);

    let workers =
        std::thread::available_parallelism().map_or(4, |n| n.get()).min(cells.len().max(1));
    crossbeam::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|_| loop {
                let index = {
                    let mut guard = next.lock();
                    let i = *guard;
                    if i >= cells.len() {
                        return;
                    }
                    *guard += 1;
                    i
                };
                let (d, s) = cells[index];
                let mut detector = (detectors[d].1)();
                let outcome = evaluate(detector.as_mut(), datasets[s], config).map(|mut e| {
                    e.detector = detectors[d].0.clone();
                    e
                });
                results.lock().push((index, outcome));
            });
        }
    })
    .expect("evaluation worker panicked");

    let mut collected = results.into_inner();
    collected.sort_by_key(|(index, _)| *index);
    collected.into_iter().map(|(_, outcome)| outcome).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetInfo;
    use crate::detector::{DetectorInput, InputFormat};
    use crate::label::{AttackKind, Label, LabeledPacket};
    use idsbench_net::{MacAddr, PacketBuilder, TcpFlags, Timestamp};
    use std::net::Ipv4Addr;

    /// Benign = small packets, attacks = large packets. An oracle-by-length
    /// dataset that a length-scoring detector classifies perfectly.
    #[derive(Debug)]
    struct ToyDataset {
        info: DatasetInfo,
    }

    impl ToyDataset {
        fn new(name: &str) -> Self {
            ToyDataset { info: DatasetInfo::new(name, "toy", "unit test", 2024) }
        }
    }

    impl Dataset for ToyDataset {
        fn info(&self) -> &DatasetInfo {
            &self.info
        }

        fn generate(&self, seed: u64) -> Vec<LabeledPacket> {
            (0..200)
                .map(|i| {
                    let attack = i % 10 == 0;
                    let payload = if attack { 900 } else { 40 + (seed % 10) as usize };
                    let p = PacketBuilder::new()
                        .ethernet(MacAddr::from_host_id(1), MacAddr::from_host_id(2))
                        .ipv4(Ipv4Addr::new(10, 0, 0, 1), Ipv4Addr::new(10, 0, 0, 2))
                        .tcp(1000 + (i % 50) as u16, 80, TcpFlags::ACK)
                        .payload_len(payload)
                        .build(Timestamp::from_micros(i * 1000));
                    LabeledPacket::new(
                        p,
                        if attack { Label::Attack(AttackKind::SynFlood) } else { Label::Benign },
                    )
                })
                .collect()
        }
    }

    #[derive(Debug)]
    struct LengthDetector;

    impl Detector for LengthDetector {
        fn name(&self) -> &str {
            "length"
        }

        fn input_format(&self) -> InputFormat {
            InputFormat::Packets
        }

        fn score(&mut self, input: &DetectorInput) -> Vec<f64> {
            input.eval_packets.iter().map(|p| p.packet.wire_len() as f64).collect()
        }
    }

    #[derive(Debug)]
    struct BrokenDetector;

    impl Detector for BrokenDetector {
        fn name(&self) -> &str {
            "broken"
        }

        fn input_format(&self) -> InputFormat {
            InputFormat::Packets
        }

        fn score(&mut self, _input: &DetectorInput) -> Vec<f64> {
            vec![0.0] // wrong length
        }
    }

    #[test]
    fn oracle_detector_scores_perfectly() {
        let dataset = ToyDataset::new("toy");
        let mut detector = LengthDetector;
        let experiment = evaluate(&mut detector, &dataset, &EvalConfig::default()).unwrap();
        assert_eq!(experiment.metrics.f1, 1.0);
        assert_eq!(experiment.metrics.recall, 1.0);
        assert!((experiment.attack_share - 0.1).abs() < 0.05);
        assert_eq!(experiment.auc, 1.0);
        assert_eq!(experiment.dataset, "toy");
        assert_eq!(experiment.detector, "length");
    }

    #[test]
    fn family_recall_tracks_detected_kinds() {
        let dataset = ToyDataset::new("toy");
        let mut detector = LengthDetector;
        let experiment = evaluate(&mut detector, &dataset, &EvalConfig::default()).unwrap();
        // The toy dataset's attacks are all SynFlood; the oracle detector
        // catches all of them.
        assert_eq!(experiment.family_recall.len(), 1);
        let (family, recall, count) = &experiment.family_recall[0];
        assert_eq!(family, "syn-flood");
        assert_eq!(*recall, 1.0);
        assert!(*count > 0);
    }

    #[test]
    fn mismatched_score_count_is_detected() {
        let dataset = ToyDataset::new("toy");
        let mut detector = BrokenDetector;
        let err = evaluate(&mut detector, &dataset, &EvalConfig::default()).unwrap_err();
        assert!(matches!(err, CoreError::ScoreCountMismatch { .. }));
    }

    #[test]
    fn grid_runs_all_cells_in_order() {
        let a = ToyDataset::new("alpha");
        let b = ToyDataset::new("beta");
        let datasets: Vec<&dyn Dataset> = vec![&a, &b];
        let detectors: Vec<(String, DetectorFactory)> = vec![
            ("length".into(), Box::new(|| Box::new(LengthDetector) as Box<dyn Detector>)),
            ("length2".into(), Box::new(|| Box::new(LengthDetector) as Box<dyn Detector>)),
        ];
        let results = run_grid(&detectors, &datasets, &EvalConfig::default()).unwrap();
        assert_eq!(results.len(), 4);
        let order: Vec<(String, String)> =
            results.iter().map(|e| (e.detector.clone(), e.dataset.clone())).collect();
        assert_eq!(order[0], ("length".to_string(), "alpha".to_string()));
        assert_eq!(order[1], ("length".to_string(), "beta".to_string()));
        assert_eq!(order[2], ("length2".to_string(), "alpha".to_string()));
        assert_eq!(order[3], ("length2".to_string(), "beta".to_string()));
    }

    #[test]
    fn grid_propagates_cell_errors() {
        let a = ToyDataset::new("alpha");
        let datasets: Vec<&dyn Dataset> = vec![&a];
        let detectors: Vec<(String, DetectorFactory)> =
            vec![("broken".into(), Box::new(|| Box::new(BrokenDetector) as Box<dyn Detector>))];
        assert!(run_grid(&detectors, &datasets, &EvalConfig::default()).is_err());
    }

    #[test]
    fn different_seeds_yield_different_realisations() {
        let dataset = ToyDataset::new("toy");
        let mut d1 = LengthDetector;
        let mut d2 = LengthDetector;
        let c1 = EvalConfig { dataset_seed: 1, ..Default::default() };
        let c2 = EvalConfig { dataset_seed: 2, ..Default::default() };
        let e1 = evaluate(&mut d1, &dataset, &c1).unwrap();
        let e2 = evaluate(&mut d2, &dataset, &c2).unwrap();
        // Same structure, same metrics for this toy; thresholds may differ
        // because packet sizes depend on the seed.
        assert_eq!(e1.metrics.f1, e2.metrics.f1);
    }
}
