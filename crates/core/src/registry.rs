//! The paper's survey tables as data.
//!
//! Table I (IDSs investigated with inclusion/exclusion outcomes), Table II
//! (datasets used), and Table III (datasets examined but excluded) are part
//! of the paper's contribution — they document *why* only four of fifteen
//! systems could be evaluated at all. This module carries them as typed
//! records with Markdown renderers so the bench harness can regenerate each
//! table verbatim.

use std::fmt::Write as _;

use serde::{Deserialize, Serialize};

use crate::dataset::DatasetInfo;

/// Where an IDS came from (Table I "Source" column).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum IdsSource {
    /// Peer-reviewed venue (conference or journal name).
    Academic(String),
    /// Public repository without an attached paper.
    Repository,
}

/// Why an IDS was excluded, or confirmation it was used (Table I last
/// column).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum UsabilityOutcome {
    /// Selected and evaluated in the study.
    UsedInPaper,
    /// Excluded with the recorded reason.
    Excluded(String),
}

/// One row of Table I.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IdsEntry {
    /// System name as printed in the paper.
    pub name: String,
    /// Publication/release year.
    pub year: u16,
    /// Dataset(s) the original work evaluated on.
    pub dataset: String,
    /// Source venue or repository.
    pub source: IdsSource,
    /// Usability outcome.
    pub outcome: UsabilityOutcome,
}

impl IdsEntry {
    /// Whether this system made it into the evaluation.
    pub fn included(&self) -> bool {
        self.outcome == UsabilityOutcome::UsedInPaper
    }
}

fn entry(
    name: &str,
    year: u16,
    dataset: &str,
    source: IdsSource,
    outcome: UsabilityOutcome,
) -> IdsEntry {
    IdsEntry { name: name.into(), year, dataset: dataset.into(), source, outcome }
}

/// Table I: every NIDS the study investigated, with the recorded usability
/// outcome.
pub fn investigated_ids() -> Vec<IdsEntry> {
    use IdsSource::{Academic, Repository};
    use UsabilityOutcome::{Excluded, UsedInPaper};
    vec![
        entry("Deep Neural Network (DNN)", 2018, "KDDCup-'99'", Academic("Conference: ICCCNT".into()), UsedInPaper),
        entry("Kitsune", 2018, "Custom IoT Dataset", Academic("Conference: NDSS".into()), UsedInPaper),
        entry("HELAD", 2020, "CICIDS2017", Academic("Journal: MDPI Informatics".into()), UsedInPaper),
        entry(
            "Multiclass Classification",
            2020,
            "ASNM Datasets",
            Academic("Conference: DSAA".into()),
            Excluded("Vague dependencies in provided repository, \"ValueError on converting string to complex in ASNM-TUN.py\"".into()),
        ),
        entry("ARTEMIS", 2021, "Custom Dataset", Academic("Conference: LATINCOM".into()), Excluded("Code error".into())),
        entry(
            "Dense-Attention-LSTM, DAL",
            2021,
            "UNSW-NB15",
            Academic("Conference: IWCMC".into()),
            Excluded("Dependency errors".into()),
        ),
        entry(
            "I-SiamIDS",
            2021,
            "CICIDS, NSL-KDD",
            Academic("Journal: Applied Intelligence".into()),
            Excluded("Type error".into()),
        ),
        entry("SecureTea", 2021, "N/A", Repository, Excluded("Dependency errors".into())),
        entry(
            "AutoML",
            2022,
            "CICIDS2017, IoTID20",
            Academic("Journal: Engineering Applications of Artificial Intelligence".into()),
            Excluded("IDS code not provided".into()),
        ),
        entry(
            "Deep Belief Networks NIDS",
            2022,
            "CICIDS2017",
            Academic("Conference: SciSec".into()),
            Excluded("Invalidated by dependency errors in provided repository: \"Tensors found on two or more devices\"".into()),
        ),
        entry(
            "RIDS",
            2022,
            "Custom Dataset",
            Academic("Conference: GLOBECOM".into()),
            Excluded("Provided Out of memory".into()),
        ),
        entry("StratosphereIPS (Slips)", 2022, "N/A", Repository, UsedInPaper),
        entry(
            "IDS-ML",
            2022,
            "CICIDS2017",
            Academic("Journal: Software Impacts".into()),
            Excluded("Runtime errors".into()),
        ),
        entry(
            "xNIDS",
            2023,
            "Mirai, CICDoS2017, NSL-KDD",
            Academic("Conference: USENIX Security".into()),
            Excluded("Did not propose a directly usable NIDS, so was not appropriate.".into()),
        ),
        entry("Suricata", 2023, "N/A", Repository, Excluded("Unable to verify any use of ML".into())),
    ]
}

/// Table II: the five datasets used for evaluation.
pub fn selected_datasets() -> Vec<DatasetInfo> {
    vec![
        DatasetInfo::new(
            "CICIDS2017",
            "Includes traffic from various devices and operating systems. Labelled with 80 features over 5 days.",
            "Comprehensive range of attacks; ideal for evaluating modern IDSs due to diversity and extensive feature set.",
            2017,
        ),
        DatasetInfo::new(
            "UNSW-NB15",
            "Generated by ACCS with 49 features and 9 attack types over 2 days.",
            "Represents a wide spectrum of contemporary attack types, providing a broad base for IDS effectiveness testing.",
            2015,
        ),
        DatasetInfo::new(
            "Stratosphere IoT CTU",
            "Focuses on IoT network traffic, with realistic threat and behaviour representation.",
            "Essential for understanding IDS effectiveness in IoT environments due to its focus on realistic IoT-specific threats.",
            2020,
        ),
        DatasetInfo::new(
            "Mirai (Kitsune)",
            "Data specific to Mirai botnet attacks, used with the Kitsune IDS.",
            "Demonstrates significant Mirai threat in IoT, allowing for practical assessment of IDS capabilities against IoT botnets.",
            2018,
        ),
        DatasetInfo::new(
            "BoT-IoT & ToN-IoT",
            "Encompasses legitimate and emulated IoT network traffic.",
            "Offers a balanced view of IDS performance in IoT settings, serving as a robust alternative to the Kitsune dataset.",
            2021,
        ),
    ]
}

/// Table III: datasets examined but excluded, with the recorded reasons.
pub fn excluded_datasets() -> Vec<DatasetInfo> {
    vec![
        DatasetInfo::new(
            "KDD-Cup & NSL-KDD",
            "Historically significant but outdated, lacking pcap files.",
            "Not representative of current network behaviours; incompatible with selected IDSs due to lack of pcap files.",
            1999,
        ),
        DatasetInfo::new(
            "CAIDA",
            "Limited attack diversity and lacks full network data, unlabelled.",
            "Unable to train auto-encoders on the dataset due to lack of labelled results.",
            2019,
        ),
        DatasetInfo::new(
            "CIDDS",
            "Designed for anomaly-based network security.",
            "Not widely used in literature, suggesting potential limitations for analysis.",
            2017,
        ),
        DatasetInfo::new(
            "ISCX2012",
            "Older dataset without features.",
            "Due to lack of features, other datasets were determined to be more suitable.",
            2012,
        ),
        DatasetInfo::new(
            "CICIDS2019",
            "Modern DDoS Dataset containing a variety of DDoS attack types.",
            "Strong modern DDoS dataset, but was not chosen due to the specific nature of attacks when compared to more general datasets used.",
            2019,
        ),
        DatasetInfo::new(
            "Kyoto",
            "Realistic, unsimulated dataset derived from diverse honeypots.",
            "Offers a different perspective to generated datasets, but not highly cited.",
            2011,
        ),
        DatasetInfo::new(
            "LBNL",
            "Heavy anonymisation and absence of payload data.",
            "Limits the depth of analysis for IDSs, making it less favourable for in-depth IDS evaluation.",
            2005,
        ),
        DatasetInfo::new(
            "CICIDS2018",
            "Diverse traffic and heavy volume without specific pcaps.",
            "Only available as 250gb file, data wrangling complexity and volume make processing unwieldy.",
            2018,
        ),
        DatasetInfo::new(
            "ASNM Datasets",
            "NIDS anomaly-based datasets developed for machine learning.",
            "Attack diversity is limited and not as well-cited as many other options.",
            2020,
        ),
        DatasetInfo::new(
            "IoTID",
            "Newer IoT Dataset that aimed to target new IoT intrusion methods.",
            "Narrow dataset that is not as popular as the other chosen IoT datasets.",
            2020,
        ),
        DatasetInfo::new(
            "CICDOS2017",
            "DoS Dataset generated by CIC based on the ISCX dataset.",
            "Narrow dataset without attack diversity of CIC dataset from the same year.",
            2017,
        ),
    ]
}

/// Renders Table I as Markdown.
pub fn render_table1() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "| NIDS | Year | Dataset | Source | Usability/Issues |");
    let _ = writeln!(out, "|---|---|---|---|---|");
    for e in investigated_ids() {
        let source = match &e.source {
            IdsSource::Academic(venue) => venue.clone(),
            IdsSource::Repository => "GitHub".to_string(),
        };
        let outcome = match &e.outcome {
            UsabilityOutcome::UsedInPaper => "Used in Paper".to_string(),
            UsabilityOutcome::Excluded(reason) => reason.clone(),
        };
        let _ =
            writeln!(out, "| {} | {} | {} | {} | {} |", e.name, e.year, e.dataset, source, outcome);
    }
    out
}

/// Renders Table II (datasets used) as Markdown.
pub fn render_table2() -> String {
    render_dataset_table(&selected_datasets(), "Relevance and Reason for Selection")
}

/// Renders Table III (datasets excluded) as Markdown.
pub fn render_table3() -> String {
    render_dataset_table(&excluded_datasets(), "Relevance and Reason for Exclusion")
}

fn render_dataset_table(rows: &[DatasetInfo], last_column: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "| Dataset | Characteristics | {last_column} |");
    let _ = writeln!(out, "|---|---|---|");
    for d in rows {
        let _ = writeln!(out, "| {} | {} | {} |", d.name, d.characteristics, d.relevance);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_15_systems_4_included() {
        let entries = investigated_ids();
        assert_eq!(entries.len(), 15);
        let included: Vec<&IdsEntry> = entries.iter().filter(|e| e.included()).collect();
        assert_eq!(included.len(), 4);
        let names: Vec<&str> = included.iter().map(|e| e.name.as_str()).collect();
        assert!(names.contains(&"Kitsune"));
        assert!(names.contains(&"HELAD"));
        assert!(names.contains(&"Deep Neural Network (DNN)"));
        assert!(names.contains(&"StratosphereIPS (Slips)"));
    }

    #[test]
    fn table2_has_5_rows_table3_has_11() {
        assert_eq!(selected_datasets().len(), 5);
        // The paper's Table III merges KDD-Cup & NSL-KDD into one row, and
        // BoT-IoT & ToN-IoT appear merged in Table II — so 11 exclusion rows.
        assert_eq!(excluded_datasets().len(), 11);
    }

    #[test]
    fn renderers_emit_markdown_tables() {
        for table in [render_table1(), render_table2(), render_table3()] {
            let mut lines = table.lines();
            assert!(lines.next().unwrap().starts_with('|'));
            assert!(lines.next().unwrap().starts_with("|---"));
            assert!(lines.next().is_some());
        }
    }

    #[test]
    fn excluded_reasons_are_recorded() {
        let entries = investigated_ids();
        let suricata = entries.iter().find(|e| e.name == "Suricata").unwrap();
        assert!(matches!(&suricata.outcome, UsabilityOutcome::Excluded(r) if r.contains("ML")));
    }
}
