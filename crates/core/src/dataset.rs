use serde::{Deserialize, Serialize};

use crate::label::LabeledPacket;

/// Metadata describing a dataset, mirroring the columns of the paper's
/// Tables II and III.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatasetInfo {
    /// Canonical short name (e.g. `"UNSW-NB15"`).
    pub name: String,
    /// Characteristics column from Table II/III.
    pub characteristics: String,
    /// Relevance / reason for selection (or exclusion) column.
    pub relevance: String,
    /// Year of publication of the real dataset this scenario models.
    pub year: u16,
}

impl DatasetInfo {
    /// Creates dataset metadata.
    pub fn new(
        name: impl Into<String>,
        characteristics: impl Into<String>,
        relevance: impl Into<String>,
        year: u16,
    ) -> Self {
        DatasetInfo {
            name: name.into(),
            characteristics: characteristics.into(),
            relevance: relevance.into(),
            year,
        }
    }
}

/// A source of labeled traffic for the evaluation pipeline.
///
/// Implementations must be deterministic in `seed`: the same seed yields the
/// same packet stream, which is what makes every experiment in this
/// workspace reproducible. Packets should be emitted roughly in timestamp
/// order; the preprocessing pipeline re-sorts (Section IV-A step 2) exactly
/// as the paper does after sampling.
pub trait Dataset: Send + Sync {
    /// Dataset metadata (name, characteristics, selection rationale).
    fn info(&self) -> &DatasetInfo;

    /// Generates the full labeled packet stream for this dataset.
    fn generate(&self, seed: u64) -> Vec<LabeledPacket>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::Label;
    use idsbench_net::{Packet, Timestamp};

    /// A minimal in-memory dataset used by pipeline unit tests.
    #[derive(Debug)]
    struct Fixed {
        info: DatasetInfo,
    }

    impl Dataset for Fixed {
        fn info(&self) -> &DatasetInfo {
            &self.info
        }

        fn generate(&self, seed: u64) -> Vec<LabeledPacket> {
            (0..10)
                .map(|i| {
                    LabeledPacket::new(
                        Packet::new(Timestamp::from_micros(seed + i), vec![0u8; 60]),
                        Label::Benign,
                    )
                })
                .collect()
        }
    }

    #[test]
    fn trait_object_usable() {
        let dataset: Box<dyn Dataset> =
            Box::new(Fixed { info: DatasetInfo::new("fixed", "ten packets", "unit test", 2024) });
        assert_eq!(dataset.info().name, "fixed");
        assert_eq!(dataset.generate(5).len(), 10);
        // Determinism in seed.
        assert_eq!(dataset.generate(7)[0].packet.ts, dataset.generate(7)[0].packet.ts);
    }
}
