//! Property-based tests on metric and calibration identities: confusion
//! arithmetic, ROC invariants, threshold-policy contracts.

use idsbench_core::metrics::{auc, pr_curve, roc_curve, ConfusionMatrix, Metrics};
use idsbench_core::threshold::ThresholdPolicy;
use proptest::prelude::*;

fn scored_population() -> impl Strategy<Value = (Vec<f64>, Vec<bool>)> {
    proptest::collection::vec((0.0f64..1.0, any::<bool>()), 2..300)
        .prop_map(|pairs| pairs.into_iter().unzip())
}

proptest! {
    /// Confusion matrix totals and derived metrics are internally
    /// consistent at any threshold.
    #[test]
    fn confusion_identities((scores, labels) in scored_population(), threshold in 0.0f64..1.0) {
        let cm = ConfusionMatrix::from_scores(&scores, &labels, threshold);
        prop_assert_eq!(cm.total() as usize, scores.len());
        let positives = labels.iter().filter(|&&l| l).count() as u64;
        prop_assert_eq!(cm.true_positives + cm.false_negatives, positives);
        prop_assert_eq!(cm.false_positives + cm.true_negatives, cm.total() - positives);
        let m = cm.metrics();
        for v in [m.accuracy, m.precision, m.recall, m.f1] {
            prop_assert!((0.0..=1.0).contains(&v));
        }
        // F1 is bounded by min and max of precision/recall.
        if m.precision > 0.0 && m.recall > 0.0 {
            prop_assert!(m.f1 <= m.precision.max(m.recall) + 1e-12);
            prop_assert!(m.f1 >= m.precision.min(m.recall) - 1e-12);
        }
    }

    /// Lowering the threshold never lowers recall and never lowers FPR's
    /// complement (monotonicity of thresholding).
    #[test]
    fn thresholding_is_monotone((scores, labels) in scored_population(), a in 0.0f64..1.0, b in 0.0f64..1.0) {
        let (low, high) = if a <= b { (a, b) } else { (b, a) };
        let cm_low = ConfusionMatrix::from_scores(&scores, &labels, low);
        let cm_high = ConfusionMatrix::from_scores(&scores, &labels, high);
        prop_assert!(cm_low.recall() >= cm_high.recall());
        prop_assert!(cm_low.false_positive_rate() >= cm_high.false_positive_rate());
    }

    /// AUC is within [0, 1] and invariant under any strictly monotone score
    /// transform.
    #[test]
    fn auc_is_rank_statistic((scores, labels) in scored_population()) {
        let a1 = auc(&roc_curve(&scores, &labels));
        prop_assert!((0.0..=1.0 + 1e-9).contains(&a1));
        let transformed: Vec<f64> = scores.iter().map(|s| (s * 3.0).exp()).collect();
        let a2 = auc(&roc_curve(&transformed, &labels));
        prop_assert!((a1 - a2).abs() < 1e-9, "auc must be rank-invariant: {a1} vs {a2}");
    }

    /// PR curve points are valid probabilities and recall is non-decreasing.
    #[test]
    fn pr_curve_invariants((scores, labels) in scored_population()) {
        let curve = pr_curve(&scores, &labels);
        for pair in curve.windows(2) {
            prop_assert!(pair[1].x >= pair[0].x, "recall must be non-decreasing");
        }
        for point in &curve {
            prop_assert!((0.0..=1.0).contains(&point.x));
            prop_assert!((0.0..=1.0).contains(&point.y));
        }
    }

    /// DetectionFirst always respects its FPR cap when any candidate
    /// satisfies it (and +inf always does).
    #[test]
    fn detection_first_respects_cap((scores, labels) in scored_population(), cap in 0.0f64..0.8) {
        let t = ThresholdPolicy::DetectionFirst { max_fpr: cap }.calibrate(&scores, &labels);
        let cm = ConfusionMatrix::from_scores(&scores, &labels, t);
        prop_assert!(
            cm.false_positive_rate() <= cap + 1e-12,
            "fpr {} exceeds cap {cap}",
            cm.false_positive_rate()
        );
    }

    /// MaxF1's chosen threshold really does maximize F1 over the candidate
    /// grid (verified against an exhaustive scan of observed scores).
    #[test]
    fn max_f1_is_maximal((scores, labels) in scored_population()) {
        let t = ThresholdPolicy::MaxF1.calibrate(&scores, &labels);
        let chosen = ConfusionMatrix::from_scores(&scores, &labels, t).f1();
        // Exhaustive scan only valid when under the calibration's candidate
        // subsampling limit.
        if scores.len() <= 256 {
            for &candidate in &scores {
                let f1 = ConfusionMatrix::from_scores(&scores, &labels, candidate).f1();
                prop_assert!(chosen >= f1 - 1e-12, "candidate {candidate} has f1 {f1} > chosen {chosen}");
            }
        }
    }

    /// Metrics::mean is the arithmetic mean, element-wise.
    #[test]
    fn metrics_mean_is_elementwise(values in proptest::collection::vec(0.0f64..1.0, 4..40)) {
        let rows: Vec<Metrics> = values
            .chunks(4)
            .filter(|c| c.len() == 4)
            .map(|c| Metrics { accuracy: c[0], precision: c[1], recall: c[2], f1: c[3] })
            .collect();
        let mean = Metrics::mean(&rows);
        let expect = |f: fn(&Metrics) -> f64| rows.iter().map(f).sum::<f64>() / rows.len() as f64;
        prop_assert!((mean.accuracy - expect(|m| m.accuracy)).abs() < 1e-12);
        prop_assert!((mean.f1 - expect(|m| m.f1)).abs() < 1e-12);
    }
}
