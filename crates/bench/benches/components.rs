//! Criterion micro/macro benchmarks for the substrates on the evaluation
//! hot path: packet parsing, pcap I/O, flow assembly, AfterImage feature
//! extraction, KitNET training/execution, and scenario generation.
//!
//! ```text
//! cargo bench -p idsbench-bench
//! ```

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use idsbench_core::Dataset;
use idsbench_datasets::{scenarios, ScenarioScale};
use idsbench_flow::{AfterImage, AfterImageConfig, FlowTable, FlowTableConfig};
use idsbench_kitsune::kitnet::{KitNet, KitNetConfig};
use idsbench_net::{pcap, Packet, ParsedPacket};

/// A realistic packet workload: one Tiny UNSW realisation (~2-3k packets of
/// mixed enterprise traffic).
fn workload() -> Vec<Packet> {
    scenarios::unsw_nb15(ScenarioScale::Tiny).generate(42).into_iter().map(|lp| lp.packet).collect()
}

fn bench_parsing(c: &mut Criterion) {
    let packets = workload();
    let mut group = c.benchmark_group("net");
    group.throughput(Throughput::Elements(packets.len() as u64));
    group.bench_function("parse_packets", |b| {
        b.iter(|| {
            let mut payload = 0usize;
            for packet in &packets {
                payload += ParsedPacket::parse(packet).map(|p| p.payload_len).unwrap_or(0);
            }
            payload
        })
    });
    group.finish();
}

fn bench_pcap(c: &mut Criterion) {
    let packets = workload();
    let image = pcap::write_all(&packets).unwrap();
    let mut group = c.benchmark_group("pcap");
    group.throughput(Throughput::Bytes(image.len() as u64));
    group.bench_function("write", |b| b.iter(|| pcap::write_all(&packets).unwrap().len()));
    group.bench_function("read", |b| b.iter(|| pcap::read_all(&image).unwrap().len()));
    group.finish();
}

fn bench_flow_table(c: &mut Criterion) {
    let parsed: Vec<ParsedPacket> =
        workload().iter().map(|p| ParsedPacket::parse(p).unwrap()).collect();
    let mut group = c.benchmark_group("flow");
    group.throughput(Throughput::Elements(parsed.len() as u64));
    group.bench_function("table_observe", |b| {
        b.iter_batched(
            || FlowTable::new(FlowTableConfig::default()),
            |mut table| {
                let mut emitted = 0usize;
                for packet in &parsed {
                    emitted += table.observe(packet).len();
                }
                emitted + table.flush().len()
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_afterimage(c: &mut Criterion) {
    let parsed: Vec<ParsedPacket> =
        workload().iter().map(|p| ParsedPacket::parse(p).unwrap()).collect();
    let mut group = c.benchmark_group("afterimage");
    group.throughput(Throughput::Elements(parsed.len() as u64));
    group.bench_function("extract_100_features", |b| {
        b.iter_batched(
            || AfterImage::new(AfterImageConfig::default()),
            |mut extractor| {
                let mut acc = 0.0;
                for packet in &parsed {
                    acc += extractor.update(packet)[0];
                }
                acc
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_kitnet(c: &mut Criterion) {
    // Pre-extract a feature stream once.
    let parsed: Vec<ParsedPacket> =
        workload().iter().map(|p| ParsedPacket::parse(p).unwrap()).collect();
    let mut extractor = AfterImage::new(AfterImageConfig::default());
    let features: Vec<Vec<f64>> = parsed.iter().map(|p| extractor.update(p)).collect();
    let clusters: Vec<Vec<usize>> =
        (0..100).collect::<Vec<_>>().chunks(10).map(<[usize]>::to_vec).collect();

    let mut group = c.benchmark_group("kitnet");
    group.throughput(Throughput::Elements(features.len() as u64));
    group.bench_function("train", |b| {
        b.iter_batched(
            || KitNet::new(clusters.clone(), 100, KitNetConfig::default()),
            |mut net| {
                let mut acc = 0.0;
                for f in &features {
                    acc += net.train(f);
                }
                acc
            },
            BatchSize::SmallInput,
        )
    });
    group.bench_function("execute", |b| {
        let mut net = KitNet::new(clusters.clone(), 100, KitNetConfig::default());
        for f in &features {
            net.train(f);
        }
        b.iter(|| {
            let mut net = net.clone();
            let mut acc = 0.0;
            for f in &features {
                acc += net.execute(f);
            }
            acc
        })
    });
    group.finish();
}

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("datasets");
    group.bench_function("generate_unsw_tiny", |b| {
        let scenario = scenarios::unsw_nb15(ScenarioScale::Tiny);
        b.iter(|| scenario.generate(7).len())
    });
    group.bench_function("generate_bot_iot_tiny", |b| {
        let scenario = scenarios::bot_iot(ScenarioScale::Tiny);
        b.iter(|| scenario.generate(7).len())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_parsing, bench_pcap, bench_flow_table, bench_afterimage, bench_kitnet, bench_generation
}
criterion_main!(benches);
