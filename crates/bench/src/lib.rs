//! Shared harness code for the paper-table regeneration binaries.
//!
//! Provides the standard detector roster (the four systems of Table IV with
//! their out-of-the-box configurations), the paper's published Table IV
//! numbers for side-by-side comparison, and small CLI helpers shared by the
//! `table*`/`fig_*` binaries.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

use idsbench_core::runner::DetectorFactory;
use idsbench_core::EventDetector;
use idsbench_core::TrafficModel;
use idsbench_datasets::ScenarioScale;
use idsbench_dnn::{Dnn, DnnConfig};
use idsbench_helad::{Helad, HeladConfig};
use idsbench_kitsune::{Kitsune, KitsuneConfig};
use idsbench_nn::Precision;
use idsbench_slips::Slips;

/// The four evaluated systems, in Table IV's block order, with out-of-the-
/// box configurations.
pub fn standard_detectors() -> Vec<(String, DetectorFactory<'static>)> {
    detectors_with_precision(Precision::F64Bitwise)
}

/// The standard roster at a chosen inference precision. `F64Bitwise` keeps
/// the Table IV names; `F32Wide` suffixes the NN-backed systems with
/// `+f32` so baseline files never confuse the two modes. Slips has no
/// neural network — its row carries the same name and the same bitwise
/// scores in both modes.
pub fn detectors_with_precision(precision: Precision) -> Vec<(String, DetectorFactory<'static>)> {
    let suffix = match precision {
        Precision::F64Bitwise => "",
        Precision::F32Wide => "+f32",
    };
    vec![
        (
            format!("Kitsune{suffix}"),
            Box::new(move || {
                Box::new(Kitsune::new(KitsuneConfig { precision, ..Default::default() }))
                    as Box<dyn EventDetector>
            }) as DetectorFactory,
        ),
        (
            format!("HELAD{suffix}"),
            Box::new(move || {
                Box::new(Helad::new(HeladConfig { precision, ..Default::default() }))
                    as Box<dyn EventDetector>
            }),
        ),
        (
            format!("DNN{suffix}"),
            Box::new(move || {
                Box::new(Dnn::new(DnnConfig { precision, ..Default::default() }))
                    as Box<dyn EventDetector>
            }),
        ),
        ("Slips".to_string(), Box::new(|| Box::new(Slips::default()) as Box<dyn EventDetector>)),
    ]
}

/// The five dataset scenarios in Table IV's row order, drawn from the
/// `idsbench-trafficgen` registry (its `Legacy` tier) as streaming
/// [`TrafficModel`]s. Any boxed model is also a batch
/// [`Dataset`](idsbench_core::Dataset), so `run_grid` call sites keep
/// working with `&scenario as &dyn Dataset`.
pub fn standard_scenarios(scale: ScenarioScale) -> Vec<Box<dyn TrafficModel>> {
    idsbench_trafficgen::table4_models(scale)
}

/// One cell of the paper's published Table IV.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperCell {
    /// IDS name.
    pub detector: &'static str,
    /// Dataset name (this workspace's scenario naming).
    pub dataset: &'static str,
    /// Published accuracy.
    pub accuracy: f64,
    /// Published precision.
    pub precision: f64,
    /// Published recall.
    pub recall: f64,
    /// Published F1.
    pub f1: f64,
}

const fn cell(
    detector: &'static str,
    dataset: &'static str,
    accuracy: f64,
    precision: f64,
    recall: f64,
    f1: f64,
) -> PaperCell {
    PaperCell { detector, dataset, accuracy, precision, recall, f1 }
}

/// The paper's Table IV, verbatim.
pub const PAPER_TABLE4: [PaperCell; 20] = [
    cell("Kitsune", "UNSW-NB15", 0.6954, 0.0221, 0.2136, 0.0401),
    cell("Kitsune", "BoT IoT", 0.9923, 0.8153, 0.8609, 0.8375),
    cell("Kitsune", "CICIDS2017", 0.5540, 0.0109, 0.9753, 0.0216),
    cell("Kitsune", "Stratosphere", 0.9921, 0.9981, 0.9027, 0.9480),
    cell("Kitsune", "Mirai", 0.8902, 0.9999, 0.8788, 0.9354),
    cell("HELAD", "UNSW-NB15", 0.9717, 0.0201, 0.0107, 0.0140),
    cell("HELAD", "BoT IoT", 0.9793, 0.6916, 0.9011, 0.7826),
    cell("HELAD", "CICIDS2017", 0.6437, 0.9682, 0.3706, 0.5360),
    cell("HELAD", "Stratosphere", 0.9846, 0.9805, 1.0000, 0.9902),
    cell("HELAD", "Mirai", 0.8898, 0.9939, 0.8786, 0.9327),
    cell("DNN", "UNSW-NB15", 0.9820, 0.9820, 1.0000, 0.9910),
    cell("DNN", "BoT IoT", 0.9770, 0.9770, 1.0000, 0.9884),
    cell("DNN", "CICIDS2017", 0.9800, 0.9800, 1.0000, 0.9899),
    cell("DNN", "Stratosphere", 0.2110, 0.2110, 1.0000, 0.3485),
    cell("DNN", "Mirai", 0.9060, 0.9060, 1.0000, 0.9507),
    cell("Slips", "UNSW-NB15", 0.8735, 0.0000, 0.0000, 0.0000),
    cell("Slips", "BoT IoT", 0.0018, 0.0000, 0.0000, 0.0000),
    cell("Slips", "CICIDS2017", 0.9370, 0.0037, 0.0447, 0.0068),
    cell("Slips", "Stratosphere", 0.6745, 0.8809, 0.4739, 0.6163),
    cell("Slips", "Mirai", 0.8040, 0.1243, 0.0159, 0.0282),
];

/// Looks up a paper cell by detector and dataset name.
pub fn paper_cell(detector: &str, dataset: &str) -> Option<&'static PaperCell> {
    PAPER_TABLE4.iter().find(|c| c.detector == detector && c.dataset == dataset)
}

pub mod workload {
    //! Synthetic bursty operational traffic — the one generator behind the
    //! `fig_autoscale` bench and the autoscale parity tests, so the CI
    //! workload and the pinned-invariant workload cannot silently diverge.

    use idsbench_core::{AttackKind, Label, LabeledPacket};
    use idsbench_net::{MacAddr, PacketBuilder, TcpFlags, Timestamp};
    use std::net::Ipv4Addr;

    fn packet(
        src: (u8, u16),
        dst: (u8, u16),
        flags: TcpFlags,
        t_micros: u64,
        label: Label,
        payload: usize,
    ) -> LabeledPacket {
        let p = PacketBuilder::new()
            .ethernet(MacAddr::from_host_id(src.0 as u32), MacAddr::from_host_id(dst.0 as u32))
            .ipv4(Ipv4Addr::new(10, 0, 0, src.0), Ipv4Addr::new(10, 0, 0, dst.0))
            .tcp(src.1, dst.1, flags)
            .payload_len(payload)
            .build(Timestamp::from_micros(t_micros));
        LabeledPacket::new(p, label)
    }

    /// Appends one complete six-packet TCP session (handshake, payload,
    /// orderly close) starting at `t0_micros`, client `host:port` against
    /// the fixed server `10.0.0.200:80`.
    pub fn tcp_session(
        host: u8,
        port: u16,
        t0_micros: u64,
        label: Label,
        payload: usize,
        out: &mut Vec<LabeledPacket>,
    ) {
        let (client, server) = ((host, port), (200u8, 80u16));
        out.push(packet(client, server, TcpFlags::SYN, t0_micros, label, 0));
        out.push(packet(server, client, TcpFlags::SYN | TcpFlags::ACK, t0_micros + 100, label, 0));
        out.push(packet(client, server, TcpFlags::ACK, t0_micros + 200, label, payload));
        out.push(packet(client, server, TcpFlags::FIN | TcpFlags::ACK, t0_micros + 300, label, 0));
        out.push(packet(server, client, TcpFlags::FIN | TcpFlags::ACK, t0_micros + 400, label, 0));
        out.push(packet(client, server, TcpFlags::ACK, t0_micros + 500, label, 0));
    }

    /// Phased bursty trace, StealthCup-style: one traffic-second per
    /// phase, `is_burst(phase)` choosing between `quiet_sessions` benign
    /// sessions and `burst_sessions` sessions (half of them SYN-flood
    /// labelled, with large payloads). Every session rides a 5-tuple of
    /// its own — flow identity stays sharding-independent — and `seed`
    /// rotates the port space so different seeds exercise different ring
    /// placements. Packets come out in timestamp order.
    pub fn bursty_trace(
        phases: u64,
        quiet_sessions: u64,
        burst_sessions: u64,
        seed: u64,
        is_burst: impl Fn(u64) -> bool,
    ) -> Vec<LabeledPacket> {
        let mut packets = Vec::new();
        for phase in 0..phases {
            let burst = is_burst(phase);
            let sessions = if burst { burst_sessions } else { quiet_sessions };
            for s in 0..sessions {
                let host = (s % 23) as u8 + 1;
                let port = (seed % 1000) as u16 + 2000 + (phase * 1511 + s) as u16 % 60_000;
                let t0 = phase * 1_000_000 + s * (1_000_000 / sessions).max(1);
                let label = if burst && s % 2 == 0 {
                    Label::Attack(AttackKind::SynFlood)
                } else {
                    Label::Benign
                };
                tcp_session(host, port, t0, label, if burst { 600 } else { 64 }, &mut packets);
            }
        }
        packets.sort_by_key(|lp| lp.packet.ts);
        packets
    }
}

/// Parses `--scale tiny|small|full` from CLI args (default `small`).
pub fn scale_from_args(args: &[String]) -> ScenarioScale {
    match args.iter().position(|a| a == "--scale").and_then(|i| args.get(i + 1)).map(String::as_str)
    {
        Some("tiny") => ScenarioScale::Tiny,
        Some("full") => ScenarioScale::Full,
        _ => ScenarioScale::Small,
    }
}

/// Parses `--seed N` from CLI args (default 42).
pub fn seed_from_args(args: &[String]) -> u64 {
    args.iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_matches_table_iv_order() {
        let names: Vec<String> = standard_detectors().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["Kitsune", "HELAD", "DNN", "Slips"]);
    }

    #[test]
    fn wide_roster_suffixes_nn_systems() {
        let names: Vec<String> =
            detectors_with_precision(Precision::F32Wide).into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["Kitsune+f32", "HELAD+f32", "DNN+f32", "Slips"]);
    }

    #[test]
    fn paper_table_is_complete() {
        assert_eq!(PAPER_TABLE4.len(), 20);
        for detector in ["Kitsune", "HELAD", "DNN", "Slips"] {
            for dataset in ["UNSW-NB15", "BoT IoT", "CICIDS2017", "Stratosphere", "Mirai"] {
                assert!(paper_cell(detector, dataset).is_some(), "{detector}/{dataset}");
            }
        }
    }

    #[test]
    fn paper_averages_match_published() {
        // The paper reports DNN's average F1 as 0.8537 — the highest.
        let dnn_f1: f64 =
            PAPER_TABLE4.iter().filter(|c| c.detector == "DNN").map(|c| c.f1).sum::<f64>() / 5.0;
        assert!((dnn_f1 - 0.8537).abs() < 1e-3, "dnn avg f1 = {dnn_f1}");
    }

    #[test]
    fn arg_parsing() {
        let args =
            vec!["--scale".to_string(), "full".to_string(), "--seed".to_string(), "7".to_string()];
        assert_eq!(scale_from_args(&args), ScenarioScale::Full);
        assert_eq!(seed_from_args(&args), 7);
        assert_eq!(scale_from_args(&[]), ScenarioScale::Small);
        assert_eq!(seed_from_args(&[]), 42);
    }
}
