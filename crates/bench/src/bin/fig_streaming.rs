//! Streaming scaling figure: packets/sec of the sharded online replay
//! engine at shard counts {1, 2, 4, 8}, with detection quality alongside so
//! regressions in either dimension are visible in one artifact.
//!
//! ```text
//! cargo run --release -p idsbench-bench --bin fig_streaming -- --scale small
//! ```
//!
//! Emits one machine-readable line to stdout, prefixed `BENCH `, holding a
//! JSON object with every per-(scenario, shards) run report; a human-
//! readable table goes to stderr. Throughput scales with *available
//! hardware*: on a single-core host the 4-shard run degrades gracefully to
//! ~1× (the `parallelism` field records what the host offered, so results
//! stay interpretable).
//!
//! With `--telemetry` every run carries one shared `idsbench-telemetry`
//! runtime (counters, per-shard stage latencies, journal) and the final
//! snapshot is written to `TELEMETRY_streaming.json`.

use idsbench_bench::{scale_from_args, seed_from_args};
use idsbench_core::EventDetector;
use idsbench_datasets::{scenarios, Scenario};
use idsbench_kitsune::Kitsune;
use idsbench_stream::{run_stream_with_telemetry, ScenarioSource, StreamConfig, StreamReport};
use idsbench_telemetry::Telemetry;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const WARMUP_FRACTION: f64 = 0.3;

fn kitsune() -> Box<dyn EventDetector> {
    Box::new(Kitsune::default())
}

fn stream_once(
    scenario: &Scenario,
    seed: u64,
    shards: usize,
    telemetry: Option<&Telemetry>,
) -> StreamReport {
    let (warmup, source) = ScenarioSource::new(scenario, seed).split_warmup(WARMUP_FRACTION);
    let config = StreamConfig { shards, ..Default::default() };
    run_stream_with_telemetry(&kitsune, &warmup, source, &config, telemetry)
        .expect("streaming run")
        .report
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = scale_from_args(&args);
    let seed = seed_from_args(&args);
    let telemetry = args.iter().any(|a| a == "--telemetry").then(Telemetry::default);
    let parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());

    eprintln!("scenario,shards,packets,packets_per_sec,p50_us,p99_us,f1,auc");
    let mut reports = Vec::new();
    for scenario in [scenarios::mirai(scale), scenarios::stratosphere_iot(scale)] {
        let mut baseline_pps = 0.0;
        for shards in SHARD_COUNTS {
            let report = stream_once(&scenario, seed, shards, telemetry.as_ref());
            eprintln!(
                "{},{},{},{:.0},{:.1},{:.1},{:.4},{:.4}",
                report.source,
                shards,
                report.eval_packets,
                report.throughput.packets_per_sec,
                report.throughput.p50_latency_us,
                report.throughput.p99_latency_us,
                report.metrics.f1,
                report.auc,
            );
            if shards == 1 {
                baseline_pps = report.throughput.packets_per_sec;
            } else if shards == 4 && baseline_pps > 0.0 {
                eprintln!(
                    "# {}: 4-shard speedup {:.2}x over 1 shard ({parallelism} cores available)",
                    report.source,
                    report.throughput.packets_per_sec / baseline_pps,
                );
            }
            reports.push(report);
        }
    }

    let scale_name = match scale {
        idsbench_datasets::ScenarioScale::Tiny => "tiny",
        idsbench_datasets::ScenarioScale::Small => "small",
        idsbench_datasets::ScenarioScale::Full => "full",
    };
    let results: Vec<String> = reports.iter().map(StreamReport::to_json).collect();
    let shard_counts = SHARD_COUNTS.iter().map(usize::to_string).collect::<Vec<_>>().join(",");
    println!(
        "BENCH {{\"bench\":\"fig_streaming\",\"scale\":\"{scale_name}\",\"seed\":{seed},\
         \"parallelism\":{parallelism},\"shard_counts\":[{shard_counts}],\"results\":[{}]}}",
        results.join(","),
    );

    if let Some(telemetry) = &telemetry {
        if let Err(e) =
            std::fs::write("TELEMETRY_streaming.json", format!("{}\n", telemetry.json_snapshot()))
        {
            eprintln!("# failed to write TELEMETRY_streaming.json: {e}");
        } else {
            eprintln!("# telemetry snapshot written to TELEMETRY_streaming.json");
        }
    }
}
