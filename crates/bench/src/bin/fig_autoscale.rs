//! Elastic-sharding figure: shard count and event rate over the traffic
//! timeline of a bursty replay, with every autoscale action's rebalance
//! latency — the evidence that the engine grows under attack bursts and
//! shrinks back in the quiet, without losing score parity (the parity
//! itself is pinned by `tests/stream_batch_parity.rs`).
//!
//! ```text
//! cargo run --release -p idsbench-bench --bin fig_autoscale -- --scale tiny --require-scaling
//! cargo run --release -p idsbench-bench --bin fig_autoscale -- --scale small \
//!     --baseline BENCH_autoscale.json   # CI rebalance-latency gate
//! ```
//!
//! The workload alternates quiet benign phases with attack bursts (one
//! traffic-second each, complete TCP sessions on unique 5-tuples), pulled
//! through a [`BoundedSource`] the way a live deployment decouples capture
//! from scoring. Slips — flow-format, so every rebalance migrates real
//! flow-table records and label folds — scores the stream while the
//! autoscaler moves the pool between 1 and 4 shards on the windowed event
//! rate.
//!
//! With `--require-scaling` the run exits non-zero unless at least one
//! scale-up *and* one scale-down fired — the CI smoke gate. With
//! `--baseline <path>` it additionally compares mean rebalance latency
//! against the committed `BENCH_autoscale.json` and exits non-zero past
//! 3× the baseline (generous: the latency is a wall-clock drain barrier,
//! machine-relative and noisy; the gate catches order-of-magnitude
//! regressions such as an accidental full-state migration, not jitter).
//!
//! The run always carries an `idsbench-telemetry` runtime, and the timeline
//! output is journal-backed and structured: one JSON line per metrics
//! window on stdout, followed by one JSON line per journal event (scale
//! actions, flow migrations, feeder stalls, suppressed threshold
//! crossings). Pass `--verbose` for the old human-readable stderr timeline.
//! With `--telemetry` the run additionally serves the live exposition
//! endpoint on a loopback port, scrapes itself (`/metrics` must expose
//! per-shard `score` stage p99s, the JSON snapshot must journal at least
//! one scale event — exit non-zero otherwise), and writes the final
//! snapshot to `TELEMETRY_autoscale.json`.
//!
//! One `BENCH `-prefixed JSON line goes to stdout and the same object is
//! written to `BENCH_autoscale.json` in the working directory.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use idsbench_bench::{scale_from_args, seed_from_args, workload};
use idsbench_core::{EventDetector, ScaleEvent};
use idsbench_datasets::ScenarioScale;
use idsbench_net::Timestamp;
use idsbench_slips::Slips;
use idsbench_stream::{
    run_stream_with_telemetry, AutoscalePolicy, BoundedSource, StreamConfig, StreamReport,
    VecSource,
};
use idsbench_telemetry::{Telemetry, TelemetrySink};

/// Tolerated mean-rebalance-latency growth against the `--baseline` file.
const LATENCY_TOLERANCE: f64 = 3.0;

/// Phase counts and per-phase session counts per scale.
struct Workload {
    phases: u64,
    quiet_sessions: u64,
    burst_sessions: u64,
}

impl Workload {
    fn for_scale(scale: ScenarioScale) -> Self {
        match scale {
            ScenarioScale::Tiny => Workload { phases: 10, quiet_sessions: 8, burst_sessions: 120 },
            ScenarioScale::Small => {
                Workload { phases: 20, quiet_sessions: 20, burst_sessions: 400 }
            }
            ScenarioScale::Full => {
                Workload { phases: 60, quiet_sessions: 40, burst_sessions: 1200 }
            }
        }
    }

    /// Multi-stage attack bursts: three burst seconds, then two quiet ones
    /// — long enough that a reactive (completed-window) policy scales up
    /// while the burst is still running, then steps back down in the lull.
    fn is_burst(phase: u64) -> bool {
        matches!(phase % 5, 1..=3)
    }

    /// Events per traffic-second in a burst phase (six packets a session).
    fn burst_pps(&self) -> f64 {
        (self.burst_sessions * 6) as f64
    }

    fn quiet_pps(&self) -> f64 {
        (self.quiet_sessions * 6) as f64
    }
}

/// Reconstructs the shard count in force at the end of each metrics window.
fn shards_after_window(report: &StreamReport, window: u64) -> usize {
    let mut shards = report.shards as isize;
    for event in &report.scale_events {
        if event.window <= window {
            shards += event.to_shards as isize - event.from_shards as isize;
        }
    }
    shards.max(1) as usize
}

/// Pulls one numeric field out of a committed `BENCH_autoscale.json`.
fn parse_field(json: &str, field: &str) -> Option<f64> {
    let tag = format!("\"{field}\":");
    let at = json.find(&tag)?;
    let tail = &json[at + tag.len()..];
    let num: String =
        tail.chars().take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-').collect();
    num.parse().ok()
}

/// One plain HTTP/1.0 GET against the exposition endpoint; returns the body.
fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect to exposition endpoint");
    write!(stream, "GET {path} HTTP/1.0\r\nHost: localhost\r\n\r\n").expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    match response.find("\r\n\r\n") {
        Some(at) => response[at + 4..].to_string(),
        None => response,
    }
}

/// Self-scrapes the live endpoint and checks the acceptance shape: the
/// Prometheus text must carry per-shard `score` stage p99s and the JSON
/// snapshot must journal at least one scale event. Returns the failures.
fn validate_exposition(addr: std::net::SocketAddr) -> Vec<String> {
    let mut failures = Vec::new();
    let metrics = http_get(addr, "/metrics");
    if !metrics
        .contains("idsbench_stage_latency_nanos{stage=\"score\",shard=\"0\",quantile=\"0.99\"}")
    {
        failures.push("scrape of /metrics lacks a per-shard score-stage p99".to_string());
    }
    if !metrics.contains("idsbench_packets_total") {
        failures.push("scrape of /metrics lacks the packets counter".to_string());
    }
    let snapshot = http_get(addr, "/snapshot");
    if !snapshot.contains("\"type\":\"scale\"") {
        failures.push("JSON snapshot journals no scale event".to_string());
    }
    failures
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = scale_from_args(&args);
    let seed = seed_from_args(&args);
    let baseline_path =
        args.iter().position(|a| a == "--baseline").and_then(|i| args.get(i + 1)).cloned();
    let require_scaling = args.iter().any(|a| a == "--require-scaling");
    let verbose = args.iter().any(|a| a == "--verbose");
    let serve_telemetry = args.iter().any(|a| a == "--telemetry");

    let plan = Workload::for_scale(scale);
    let policy = AutoscalePolicy {
        min_shards: 1,
        max_shards: 4,
        scale_up_pps: plan.burst_pps() / 2.0,
        scale_down_pps: plan.quiet_pps() * 2.0,
        cooldown_windows: 0,
        vnodes: 32,
        ..Default::default()
    };
    let config =
        StreamConfig { shards: 1, window_secs: 1.0, autoscale: Some(policy), ..Default::default() };

    let trace = workload::bursty_trace(
        plan.phases,
        plan.quiet_sessions,
        plan.burst_sessions,
        seed,
        Workload::is_burst,
    );
    // Warmup on the first quiet+burst pair so Slips sees both classes.
    let split = trace.partition_point(|lp| lp.packet.ts < Timestamp::from_micros(2_000_000));
    let (warmup, eval) = trace.split_at(split);
    let source = BoundedSource::spawn(VecSource::new("bursty-tcp", eval.to_vec()), 256);
    let telemetry = Arc::new(Telemetry::default());
    let run = run_stream_with_telemetry(
        &|| Box::new(Slips::default()) as Box<dyn EventDetector>,
        warmup,
        source,
        &config,
        Some(telemetry.as_ref()),
    )
    .expect("autoscaled streaming run");
    let report = &run.report;
    let journal = telemetry.journal().snapshot();

    // Journal-backed structured timeline: one JSON line per metrics window,
    // then one per journal event (scale actions, migrations, stalls,
    // suppressed threshold crossings), in journal order.
    for window in &report.windows {
        println!(
            "{{\"type\":\"window\",\"window\":{},\"start_secs\":{},\"events\":{},\
             \"events_per_sec\":{},\"shards\":{}}}",
            window.index,
            window.start_secs,
            window.packets,
            window.packets as f64 / config.window_secs,
            shards_after_window(report, window.index),
        );
    }
    for event in &journal.events {
        println!("{}", event.to_json());
    }
    if verbose {
        eprintln!("window,start_secs,events,events_per_sec,shards");
        for window in &report.windows {
            eprintln!(
                "{},{:.0},{},{:.0},{}",
                window.index,
                window.start_secs,
                window.packets,
                window.packets as f64 / config.window_secs,
                shards_after_window(report, window.index),
            );
        }
    }
    let ups = report.scale_events.iter().filter(|e| e.is_scale_up()).count();
    let downs = report.scale_events.iter().filter(|e| e.is_scale_down()).count();
    let migrated: usize = report.scale_events.iter().map(|e| e.migrated_flows).sum();
    let mean_rebalance = if report.scale_events.is_empty() {
        0.0
    } else {
        report.scale_events.iter().map(|e| e.rebalance_micros as f64).sum::<f64>()
            / report.scale_events.len() as f64
    };
    let max_rebalance = report.scale_events.iter().map(|e| e.rebalance_micros).max().unwrap_or(0);
    if verbose {
        for ScaleEvent {
            at_secs, from_shards, to_shards, migrated_flows, rebalance_micros, ..
        } in &report.scale_events
        {
            eprintln!(
                "# t={at_secs:.2}s {from_shards}->{to_shards} shards, \
                 {migrated_flows} flows migrated in {rebalance_micros}us"
            );
        }
        let stalls: usize = report.shard_stats.iter().map(|s| s.stalls).sum();
        eprintln!(
            "# {ups} scale-ups, {downs} scale-downs, {migrated} flows migrated, \
             mean rebalance {mean_rebalance:.0}us, peak pool {} shards, \
             {stalls} feeder stalls, {} journal events ({} dropped)",
            report.scale_events.iter().map(|e| e.to_shards).max().unwrap_or(report.shards),
            journal.pushed,
            journal.dropped,
        );
    }

    let scale_name = match scale {
        ScenarioScale::Tiny => "tiny",
        ScenarioScale::Small => "small",
        ScenarioScale::Full => "full",
    };
    let json = format!(
        "{{\"bench\":\"fig_autoscale\",\"scale\":\"{scale_name}\",\"seed\":{seed},\
         \"policy\":{{\"min_shards\":{},\"max_shards\":{},\"scale_up_pps\":{},\
         \"scale_down_pps\":{},\"vnodes\":{}}},\
         \"summary\":{{\"scale_ups\":{ups},\"scale_downs\":{downs},\
         \"migrated_flows\":{migrated},\"mean_rebalance_micros\":{mean_rebalance:.1},\
         \"max_rebalance_micros\":{max_rebalance}}},\"report\":{}}}",
        policy.min_shards,
        policy.max_shards,
        policy.scale_up_pps,
        policy.scale_down_pps,
        policy.vnodes,
        report.to_json(),
    );
    if let Err(e) = std::fs::write("BENCH_autoscale.json", format!("{json}\n")) {
        eprintln!("# failed to write BENCH_autoscale.json: {e}");
    }
    println!("BENCH {json}");

    if serve_telemetry {
        let sink = TelemetrySink::serve(Arc::clone(&telemetry), "127.0.0.1:0")
            .expect("bind exposition endpoint");
        let addr = sink.local_addr().expect("exposition endpoint address");
        eprintln!("# telemetry exposition live at http://{addr}/metrics");
        let failures = validate_exposition(addr);
        sink.stop();
        if let Err(e) =
            std::fs::write("TELEMETRY_autoscale.json", format!("{}\n", telemetry.json_snapshot()))
        {
            eprintln!("# failed to write TELEMETRY_autoscale.json: {e}");
        }
        if failures.is_empty() {
            eprintln!("# telemetry self-scrape passed");
        } else {
            for failure in &failures {
                eprintln!("# TELEMETRY GATE FAILED: {failure}");
            }
            std::process::exit(1);
        }
    }

    if require_scaling && (ups == 0 || downs == 0) {
        eprintln!(
            "# GATE FAILED: expected >=1 scale-up and >=1 scale-down, got {ups} up / {downs} down"
        );
        std::process::exit(1);
    }
    if let Some(path) = baseline_path {
        let baseline = match std::fs::read_to_string(&path) {
            Ok(contents) => contents,
            Err(e) => {
                eprintln!("# cannot read baseline {path}: {e}");
                std::process::exit(2);
            }
        };
        let base_mean = parse_field(&baseline, "mean_rebalance_micros").unwrap_or(0.0);
        // A sub-millisecond baseline is below measurement noise; gate from
        // a 1ms floor so tiny baselines don't produce spurious failures.
        let ceiling = base_mean.max(1_000.0) * LATENCY_TOLERANCE;
        if mean_rebalance > ceiling {
            eprintln!(
                "# REGRESSION: mean rebalance {mean_rebalance:.0}us exceeds {ceiling:.0}us \
                 ({LATENCY_TOLERANCE}x baseline {base_mean:.0}us from {path})"
            );
            std::process::exit(1);
        }
        eprintln!("# rebalance-latency gate passed ({path})");
    }
}
