//! Multi-core throughput figure: packets/sec of the stream executor at
//! fixed shard pools of 1, 2, 4, and 8, for every detector at both
//! inference precisions — the headline table of the README's Performance
//! section.
//!
//! ```text
//! cargo run --release -p idsbench-bench --bin fig_multicore -- --scale tiny
//! cargo run --release -p idsbench-bench --bin fig_multicore -- --scale tiny \
//!     --shards 1,2 --baseline BENCH_multicore.json   # CI smoke + gate
//! ```
//!
//! The workload is the shared bursty TCP trace (`workload::bursty_trace`,
//! the same generator behind `fig_autoscale` and the autoscale parity
//! tests). Each cell is one fixed-pool `run_stream` over the evaluation
//! slice: the feeder routes by flow hash, every shard owns an independent
//! detector instance, and the reported packets/sec is the executor's
//! wall-clock throughput with training excluded. The NN-backed systems
//! appear twice — bitwise-f64 default and `+f32` wide-lane mode (which
//! also rides the `ShardLoop` batch entry point) — Slips once, since it
//! has no neural network.
//!
//! `host_cores` is recorded in the JSON. On a single-core host shard
//! scaling measures scheduling overhead rather than parallel speedup, so
//! the `--require-scaling` gate (Kitsune at 4 shards must reach 1.5× its
//! 1-shard rate) is enforced only when the host has at least 4 cores; on
//! smaller hosts the run prints and records a waiver note instead — the
//! documented 1-core fallback.
//!
//! With `--baseline <path>` the run compares each `detector@shards` cell
//! against a previously committed `BENCH_multicore.json` and exits
//! non-zero on a >25% packets/sec regression for any cell present in
//! both.
//!
//! One `BENCH `-prefixed JSON line goes to stdout and the same object is
//! written to `BENCH_multicore.json`; a human-readable table goes to
//! stderr.

use idsbench_bench::{scale_from_args, seed_from_args, workload};
use idsbench_core::EventDetector;
use idsbench_datasets::ScenarioScale;
use idsbench_dnn::{Dnn, DnnConfig};
use idsbench_helad::{Helad, HeladConfig};
use idsbench_kitsune::{Kitsune, KitsuneConfig};
use idsbench_net::Timestamp;
use idsbench_nn::Precision;
use idsbench_slips::Slips;
use idsbench_stream::{run_stream, StreamConfig, VecSource};

/// Maximum tolerated packets/sec drop against the `--baseline` file.
const REGRESSION_TOLERANCE: f64 = 0.25;

/// Required 4-shard/1-shard speedup for Kitsune under `--require-scaling`
/// (enforced only on hosts with >= 4 cores).
const SCALING_FLOOR: f64 = 1.5;

/// The headline roster: every system at f64, the NN-backed ones again at
/// f32. `(row name, base system, precision)`.
const VARIANTS: [(&str, &str, Precision); 7] = [
    ("Kitsune", "Kitsune", Precision::F64Bitwise),
    ("Kitsune+f32", "Kitsune", Precision::F32Wide),
    ("HELAD", "HELAD", Precision::F64Bitwise),
    ("HELAD+f32", "HELAD", Precision::F32Wide),
    ("DNN", "DNN", Precision::F64Bitwise),
    ("DNN+f32", "DNN", Precision::F32Wide),
    ("Slips", "Slips", Precision::F64Bitwise),
];

fn build(base: &str, precision: Precision) -> Box<dyn EventDetector> {
    match base {
        "Kitsune" => Box::new(Kitsune::new(KitsuneConfig { precision, ..Default::default() })),
        "HELAD" => Box::new(Helad::new(HeladConfig { precision, ..Default::default() })),
        "DNN" => Box::new(Dnn::new(DnnConfig { precision, ..Default::default() })),
        "Slips" => Box::new(Slips::default()),
        other => unreachable!("unknown detector {other}"),
    }
}

/// One measured cell of the table.
struct Cell {
    detector: String,
    precision: &'static str,
    shards: usize,
    packets: usize,
    packets_per_sec: f64,
    p99_latency_us: f64,
    speedup_vs_1: f64,
}

impl Cell {
    fn key(&self) -> String {
        format!("{}@{}", self.detector, self.shards)
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"key\":{},\"detector\":{},\"precision\":\"{}\",\"shards\":{},\
             \"packets\":{},\"packets_per_sec\":{:.1},\"p99_latency_us\":{:.2},\
             \"speedup_vs_1shard\":{:.3}}}",
            idsbench_core::json::quoted(&self.key()),
            idsbench_core::json::quoted(&self.detector),
            self.precision,
            self.shards,
            self.packets,
            self.packets_per_sec,
            self.p99_latency_us,
            self.speedup_vs_1,
        )
    }

    fn print_csv(&self) {
        eprintln!(
            "{},{},{},{},{:.0},{:.2},{:.3}",
            self.detector,
            self.precision,
            self.shards,
            self.packets,
            self.packets_per_sec,
            self.p99_latency_us,
            self.speedup_vs_1,
        );
    }
}

/// Parses `--shards 1,2,4,8` (default exactly that).
fn shards_from_args(args: &[String]) -> Vec<usize> {
    args.iter()
        .position(|a| a == "--shards")
        .and_then(|i| args.get(i + 1))
        .map(|list| list.split(',').filter_map(|s| s.trim().parse().ok()).collect())
        .filter(|counts: &Vec<usize>| !counts.is_empty())
        .unwrap_or_else(|| vec![1, 2, 4, 8])
}

/// Extracts `(key, packets_per_sec)` pairs from a committed
/// `BENCH_multicore.json` (hand-rolled scan; no JSON parser dependency).
fn parse_baseline(json: &str) -> Vec<(String, f64)> {
    let mut rows = Vec::new();
    let mut rest = json;
    while let Some(at) = rest.find("\"key\":\"") {
        rest = &rest[at + "\"key\":\"".len()..];
        let Some(key_end) = rest.find('"') else { break };
        let key = rest[..key_end].to_string();
        let Some(pps_at) = rest.find("\"packets_per_sec\":") else { break };
        let tail = &rest[pps_at + "\"packets_per_sec\":".len()..];
        let num: String =
            tail.chars().take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-').collect();
        if let Ok(pps) = num.parse::<f64>() {
            rows.push((key, pps));
        }
        rest = tail;
    }
    rows
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = scale_from_args(&args);
    let seed = seed_from_args(&args);
    let shard_counts = shards_from_args(&args);
    let baseline_path =
        args.iter().position(|a| a == "--baseline").and_then(|i| args.get(i + 1)).cloned();
    let require_scaling = args.iter().any(|a| a == "--require-scaling");
    let host_cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    // Same phased trace family as fig_autoscale, scaled down: throughput
    // cells need steady load, not scale-up drama, so every phase bursts.
    let (phases, sessions) = match scale {
        ScenarioScale::Tiny => (6, 60),
        ScenarioScale::Small => (10, 200),
        ScenarioScale::Full => (30, 600),
    };
    let trace = workload::bursty_trace(phases, sessions, sessions, seed, |_| true);
    // Warmup on the first traffic-second; the rest is the measured stream.
    let split = trace.partition_point(|lp| lp.packet.ts < Timestamp::from_micros(1_000_000));
    let (warmup, eval) = trace.split_at(split);

    eprintln!("detector,precision,shards,packets,packets_per_sec,p99_latency_us,speedup_vs_1shard");
    let mut cells: Vec<Cell> = Vec::new();
    for (name, base, precision) in VARIANTS {
        let mut single_shard_pps = None;
        for &shards in &shard_counts {
            let config = StreamConfig { shards, ..Default::default() };
            let factory = move || build(base, precision);
            let run =
                run_stream(&factory, warmup, VecSource::new("bursty-tcp", eval.to_vec()), &config)
                    .expect("fixed-pool streaming run");
            let report = run.report;
            let pps = report.throughput.packets_per_sec;
            if shards == 1 {
                single_shard_pps = Some(pps);
            }
            let cell = Cell {
                detector: name.to_string(),
                precision: precision.label(),
                shards,
                packets: report.eval_packets,
                packets_per_sec: pps,
                p99_latency_us: report.throughput.p99_latency_us,
                speedup_vs_1: single_shard_pps.map_or(1.0, |base_pps| pps / base_pps.max(1e-12)),
            };
            cell.print_csv();
            cells.push(cell);
        }
    }

    let scale_name = match scale {
        ScenarioScale::Tiny => "tiny",
        ScenarioScale::Small => "small",
        ScenarioScale::Full => "full",
    };
    let scaling_waived = host_cores < 4;
    let note = if scaling_waived {
        format!(
            "host has {host_cores} core(s): shard scaling measures scheduling overhead, \
             not parallel speedup; the {SCALING_FLOOR}x scaling gate is waived"
        )
    } else {
        String::new()
    };
    let shard_list: Vec<String> = shard_counts.iter().map(|s| s.to_string()).collect();
    let results: Vec<String> = cells.iter().map(Cell::to_json).collect();
    let json = format!(
        "{{\"bench\":\"fig_multicore\",\"scale\":\"{scale_name}\",\"seed\":{seed},\
         \"host_cores\":{host_cores},\"shard_counts\":[{}],\"note\":{},\
         \"results\":[{}]}}",
        shard_list.join(","),
        idsbench_core::json::quoted(&note),
        results.join(","),
    );
    if let Err(e) = std::fs::write("BENCH_multicore.json", format!("{json}\n")) {
        eprintln!("# failed to write BENCH_multicore.json: {e}");
    }
    println!("BENCH {json}");

    if require_scaling {
        if scaling_waived {
            eprintln!("# scaling gate waived: {note}");
        } else {
            let pps_at = |shards: usize| {
                cells
                    .iter()
                    .find(|c| c.detector == "Kitsune" && c.shards == shards)
                    .map(|c| c.packets_per_sec)
            };
            match (pps_at(1), pps_at(4)) {
                (Some(one), Some(four)) if four >= SCALING_FLOOR * one => {
                    eprintln!("# scaling gate passed: Kitsune {:.2}x at 4 shards", four / one);
                }
                (Some(one), Some(four)) => {
                    eprintln!(
                        "# GATE FAILED: Kitsune at 4 shards is {four:.0} pps, \
                         {:.2}x its 1-shard {one:.0} (floor {SCALING_FLOOR}x)",
                        four / one
                    );
                    std::process::exit(1);
                }
                _ => {
                    eprintln!("# GATE FAILED: --require-scaling needs shard counts 1 and 4");
                    std::process::exit(1);
                }
            }
        }
    }
    if let Some(path) = baseline_path {
        let baseline_json = match std::fs::read_to_string(&path) {
            Ok(contents) => contents,
            Err(e) => {
                eprintln!("# cannot read baseline {path}: {e}");
                std::process::exit(2);
            }
        };
        let baseline = parse_baseline(&baseline_json);
        let mut failures = Vec::new();
        for cell in &cells {
            let key = cell.key();
            let Some((_, base)) = baseline.iter().find(|(k, _)| *k == key) else {
                continue; // a new cell has no baseline yet
            };
            let floor = base * (1.0 - REGRESSION_TOLERANCE);
            if cell.packets_per_sec < floor {
                failures.push(format!(
                    "{key}: {:.0} packets/sec is a >{:.0}% regression vs baseline {base:.0} \
                     (floor {floor:.0})",
                    cell.packets_per_sec,
                    REGRESSION_TOLERANCE * 100.0,
                ));
            }
        }
        if failures.is_empty() {
            eprintln!("# baseline gate passed ({path})");
        } else {
            for failure in &failures {
                eprintln!("# REGRESSION {failure}");
            }
            std::process::exit(1);
        }
    }
}
