//! Per-attack-family recall breakdown: which families each IDS actually
//! catches on each dataset — the mechanism behind every Table IV cell
//! (Section V factor 1: volumetric families are caught, low-and-slow
//! families are missed).
//!
//! ```text
//! cargo run --release -p idsbench-bench --bin fig_families -- --scale small
//! ```

use idsbench_bench::{scale_from_args, seed_from_args, standard_detectors, standard_scenarios};
use idsbench_core::report::render_family_breakdown;
use idsbench_core::runner::{run_grid, EvalConfig};
use idsbench_core::Dataset;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = scale_from_args(&args);
    let seed = seed_from_args(&args);

    let scenarios = standard_scenarios(scale);
    let datasets: Vec<&dyn Dataset> = scenarios.iter().map(|s| s as &dyn Dataset).collect();
    let detectors = standard_detectors();
    let config = EvalConfig { dataset_seed: seed, ..Default::default() };
    let experiments = run_grid(&detectors, &datasets, &config).expect("grid");

    for scenario in &scenarios {
        let name = &scenario.info().name;
        println!("## {name} — per-family recall at the calibrated threshold\n");
        println!("{}", render_family_breakdown(name, &experiments));
    }
}
