//! Multi-node fabric figure: the bursty autoscale scenario stretched across
//! real worker *processes*, with score parity against the single-process
//! run as the headline number.
//!
//! ```text
//! cargo run --release -p idsbench-bench --bin fig_multinode -- --scale tiny --require-parity
//! ```
//!
//! The binary is its own worker: invoked as `fig_multinode --worker
//! <endpoint>` it dials in and runs the `idsbench-fabric` worker loop with
//! the standard detector roster. The parent run:
//!
//! 1. Scores the bursty trace single-process (`run_stream`, one shard) —
//!    the parity baseline.
//! 2. Binds a TCP listener on an ephemeral loopback port, spawns two worker
//!    processes of itself, and drives the same trace through
//!    `run_fabric` under the `fig_autoscale` policy (1..=4 shards). The
//!    pool must scale up, migrate flow state across the process boundary
//!    (`fabric_cross_peer_migrations_total` > 0), and reproduce the exact
//!    sorted score multiset.
//! 3. Repeats over a Unix domain socket with a fixed two-shard pool and a
//!    mid-stream [`DrainPlan`] decommissioning worker 1 — the drained
//!    worker's flows must all survive the migration barrier (parity again).
//!
//! Slips scores the stream: flow-format, so every rebalance moves real
//! flow-table records and the per-flow score multiset is partition-
//! invariant — any lost or double-counted flow breaks parity.
//!
//! With `--require-parity` any failed check exits non-zero (the CI gate).
//! One `BENCH `-prefixed JSON line goes to stdout and the same object is
//! written to `BENCH_multinode.json`; the final telemetry snapshot (fabric
//! frame/byte/migration counters, per-peer rebalance RTTs) lands in
//! `TELEMETRY_multinode.json`.

use std::process::{Child, Command, Stdio};
use std::sync::Arc;

use idsbench_bench::{scale_from_args, seed_from_args, standard_detectors, workload};
use idsbench_core::{EventDetector, LabeledPacket};
use idsbench_datasets::ScenarioScale;
use idsbench_fabric::{run_fabric, run_worker, DrainPlan, Endpoint, FabricConfig, FabricListener};
use idsbench_net::Timestamp;
use idsbench_slips::Slips;
use idsbench_stream::{
    run_stream, AutoscalePolicy, BoundedSource, StreamConfig, StreamRun, VecSource,
};
use idsbench_telemetry::Telemetry;

/// Phase counts and per-phase session counts per scale (mirrors
/// `fig_autoscale` so the two figures describe the same traffic).
struct Workload {
    phases: u64,
    quiet_sessions: u64,
    burst_sessions: u64,
}

impl Workload {
    fn for_scale(scale: ScenarioScale) -> Self {
        match scale {
            ScenarioScale::Tiny => Workload { phases: 10, quiet_sessions: 8, burst_sessions: 120 },
            ScenarioScale::Small => {
                Workload { phases: 20, quiet_sessions: 20, burst_sessions: 400 }
            }
            ScenarioScale::Full => {
                Workload { phases: 60, quiet_sessions: 40, burst_sessions: 1200 }
            }
        }
    }

    fn is_burst(phase: u64) -> bool {
        matches!(phase % 5, 1..=3)
    }

    fn burst_pps(&self) -> f64 {
        (self.burst_sessions * 6) as f64
    }

    fn quiet_pps(&self) -> f64 {
        (self.quiet_sessions * 6) as f64
    }
}

/// Worker-process entry: resolve detectors from the standard roster and run
/// the fabric worker loop until the coordinator says `Finish`.
fn worker_main(endpoint: &str) -> ! {
    let endpoint = Endpoint::parse(endpoint).unwrap_or_else(|e| {
        eprintln!("# worker: bad endpoint: {e}");
        std::process::exit(2);
    });
    let roster = standard_detectors();
    let resolve = |name: &str| -> Option<Box<dyn EventDetector>> {
        roster.iter().find(|(n, _)| n == name).map(|(_, factory)| factory())
    };
    match run_worker(&endpoint, &resolve, None) {
        Ok(()) => std::process::exit(0),
        Err(e) => {
            eprintln!("# worker failed: {e}");
            std::process::exit(1);
        }
    }
}

/// Re-invokes this binary as `--worker <endpoint>`, `count` times.
fn spawn_workers(endpoint: &Endpoint, count: usize) -> Vec<Child> {
    let exe = std::env::current_exe().expect("current executable path");
    (0..count)
        .map(|_| {
            Command::new(&exe)
                .arg("--worker")
                .arg(endpoint.to_string())
                .stdout(Stdio::null())
                .spawn()
                .expect("spawn worker process")
        })
        .collect()
}

/// Runs the coordinator against `workers` freshly spawned worker processes
/// and reaps them, failing loudly if any exited non-zero.
fn fabric_run(
    bind: &Endpoint,
    packets: &[LabeledPacket],
    warmup: &[LabeledPacket],
    config: &StreamConfig,
    fabric: &FabricConfig,
    telemetry: &Telemetry,
    failures: &mut Vec<String>,
) -> Option<StreamRun> {
    let listener = match FabricListener::bind(bind) {
        Ok(listener) => listener,
        Err(e) => {
            failures.push(format!("bind {bind}: {e}"));
            return None;
        }
    };
    let endpoint = listener.local_endpoint().expect("listener endpoint");
    let mut children = spawn_workers(&endpoint, fabric.workers);
    let source = BoundedSource::spawn(VecSource::new("bursty-tcp", packets.to_vec()), 256);
    let run = run_fabric("Slips", warmup, source, config, fabric, listener, Some(telemetry));
    for (index, child) in children.iter_mut().enumerate() {
        match child.wait() {
            Ok(status) if status.success() => {}
            Ok(status) => failures.push(format!("worker {index} exited {status}")),
            Err(e) => failures.push(format!("worker {index} unreaped: {e}")),
        }
    }
    match run {
        Ok(run) => Some(run),
        Err(e) => {
            failures.push(format!("coordinator over {bind}: {e}"));
            None
        }
    }
}

fn sorted(mut scores: Vec<f64>) -> Vec<f64> {
    scores.sort_by(f64::total_cmp);
    scores
}

/// Sorted-multiset parity plus merged-metrics equality against the
/// single-process baseline.
fn check_parity(tag: &str, single: &StreamRun, fabric: &StreamRun, failures: &mut Vec<String>) {
    if sorted(single.scores.clone()) != sorted(fabric.scores.clone()) {
        failures.push(format!(
            "{tag}: score multiset diverged ({} single vs {} fabric scores)",
            single.scores.len(),
            fabric.scores.len()
        ));
    }
    if single.report.metrics != fabric.report.metrics {
        failures.push(format!("{tag}: merged metrics diverged"));
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(at) = args.iter().position(|a| a == "--worker") {
        let endpoint = args.get(at + 1).cloned().unwrap_or_else(|| {
            eprintln!("# usage: fig_multinode --worker <endpoint>");
            std::process::exit(2);
        });
        worker_main(&endpoint);
    }
    let scale = scale_from_args(&args);
    let seed = seed_from_args(&args);
    let require_parity = args.iter().any(|a| a == "--require-parity");

    let plan = Workload::for_scale(scale);
    let policy = AutoscalePolicy {
        min_shards: 1,
        max_shards: 4,
        scale_up_pps: plan.burst_pps() / 2.0,
        scale_down_pps: plan.quiet_pps() * 2.0,
        cooldown_windows: 0,
        vnodes: 32,
        ..Default::default()
    };
    let trace = workload::bursty_trace(
        plan.phases,
        plan.quiet_sessions,
        plan.burst_sessions,
        seed,
        Workload::is_burst,
    );
    // Warmup on the first quiet+burst pair so Slips sees both classes.
    let split = trace.partition_point(|lp| lp.packet.ts < Timestamp::from_micros(2_000_000));
    let (warmup, eval) = trace.split_at(split);
    let mut failures: Vec<String> = Vec::new();

    // 1. Single-process parity baseline: one shard, same window.
    let single = run_stream(
        &|| Box::new(Slips::default()) as Box<dyn EventDetector>,
        warmup,
        BoundedSource::spawn(VecSource::new("bursty-tcp", eval.to_vec()), 256),
        &StreamConfig { window_secs: 1.0, ..Default::default() },
    )
    .expect("single-process baseline run");

    // 2. TCP fabric under autoscale: two worker processes, 1..=4 shards.
    let telemetry = Arc::new(Telemetry::default());
    let tcp_config =
        StreamConfig { shards: 1, window_secs: 1.0, autoscale: Some(policy), ..Default::default() };
    let tcp = fabric_run(
        &Endpoint::parse("tcp://127.0.0.1:0").expect("tcp endpoint"),
        eval,
        warmup,
        &tcp_config,
        &FabricConfig { workers: 2, ..Default::default() },
        &telemetry,
        &mut failures,
    );
    let cross_peer = telemetry.counter("fabric_cross_peer_migrations_total").get();
    let (mut ups, mut downs, mut migrated) = (0usize, 0usize, 0usize);
    if let Some(tcp) = &tcp {
        check_parity("tcp", &single, tcp, &mut failures);
        ups = tcp.report.scale_events.iter().filter(|e| e.is_scale_up()).count();
        downs = tcp.report.scale_events.iter().filter(|e| e.is_scale_down()).count();
        migrated = tcp.report.scale_events.iter().map(|e| e.migrated_flows).sum();
        if ups == 0 {
            failures.push("tcp: autoscaler never scaled up under the burst".to_string());
        }
        if cross_peer == 0 {
            failures.push(
                "tcp: no flow state crossed the process boundary \
                 (fabric_cross_peer_migrations_total == 0)"
                    .to_string(),
            );
        }
    }

    // 3. UDS fabric with a fixed two-shard pool and a mid-stream drain of
    //    worker 1 — the decommission-without-loss path.
    let mut drains = 0usize;
    let mut drain_migrated = 0usize;
    #[cfg(unix)]
    let uds = {
        let path =
            std::env::temp_dir().join(format!("idsbench-multinode-{}.sock", std::process::id()));
        let uds = fabric_run(
            &Endpoint::Uds(path),
            eval,
            warmup,
            &StreamConfig { shards: 2, window_secs: 1.0, ..Default::default() },
            &FabricConfig {
                workers: 2,
                drain: Some(DrainPlan { peer: 1, at_seq: eval.len() as u64 / 2 }),
                ..Default::default()
            },
            &telemetry,
            &mut failures,
        );
        if let Some(uds) = &uds {
            check_parity("uds", &single, uds, &mut failures);
            let drain_events: Vec<_> =
                uds.report.scale_events.iter().filter(|e| e.trigger_pps == 0.0).collect();
            drains = drain_events.len();
            drain_migrated = drain_events.iter().map(|e| e.migrated_flows).sum();
            if drains == 0 {
                failures.push("uds: drain plan retired no shards".to_string());
            }
            if drain_migrated == 0 {
                failures.push("uds: drained worker surrendered no flow state".to_string());
            }
        }
        uds
    };
    #[cfg(not(unix))]
    let uds: Option<StreamRun> = None;

    let frames = telemetry.counter("fabric_frames_total").get();
    let bytes = telemetry.counter("fabric_bytes_total").get();
    let reconnects = telemetry.counter("fabric_reconnects_total").get();

    let scale_name = match scale {
        ScenarioScale::Tiny => "tiny",
        ScenarioScale::Small => "small",
        ScenarioScale::Full => "full",
    };
    let tcp_parity = tcp.is_some() && !failures.iter().any(|f| f.starts_with("tcp"));
    let uds_parity = uds.is_some() && !failures.iter().any(|f| f.starts_with("uds"));
    let json = format!(
        "{{\"bench\":\"fig_multinode\",\"scale\":\"{scale_name}\",\"seed\":{seed},\
         \"workers\":2,\"detector\":\"Slips\",\
         \"policy\":{{\"min_shards\":1,\"max_shards\":4,\"scale_up_pps\":{},\
         \"scale_down_pps\":{},\"vnodes\":32}},\
         \"fabric\":{{\"frames\":{frames},\"bytes\":{bytes},\"reconnects\":{reconnects},\
         \"cross_peer_migrations\":{cross_peer}}},\
         \"summary\":{{\"tcp_parity\":{tcp_parity},\"uds_parity\":{uds_parity},\
         \"scale_ups\":{ups},\"scale_downs\":{downs},\"migrated_flows\":{migrated},\
         \"drain_events\":{drains},\"drain_migrated_flows\":{drain_migrated}}},\
         \"report\":{}}}",
        plan.burst_pps() / 2.0,
        plan.quiet_pps() * 2.0,
        match &tcp {
            Some(run) => run.report.to_json(),
            None => "null".to_string(),
        },
    );
    if let Err(e) = std::fs::write("BENCH_multinode.json", format!("{json}\n")) {
        eprintln!("# failed to write BENCH_multinode.json: {e}");
    }
    println!("BENCH {json}");
    if let Err(e) =
        std::fs::write("TELEMETRY_multinode.json", format!("{}\n", telemetry.json_snapshot()))
    {
        eprintln!("# failed to write TELEMETRY_multinode.json: {e}");
    }

    if failures.is_empty() {
        eprintln!(
            "# multinode parity holds: {} scores over tcp+uds, {cross_peer} cross-peer \
             migrations, {drains} drain retirements",
            single.scores.len()
        );
    } else {
        for failure in &failures {
            eprintln!("# PARITY GATE FAILED: {failure}");
        }
        if require_parity {
            std::process::exit(1);
        }
    }
}
