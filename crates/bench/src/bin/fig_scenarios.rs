//! Expectations-versus-reality on the adversarial workload library: every
//! native `idsbench-trafficgen` scenario (benign mix, floods, scans,
//! staged campaigns) streamed through all four Table IV detectors, with
//! per-attack-family recall per cell — the matrix the paper's Section V
//! argument predicts (volumetric families caught, spoofed floods blinding
//! per-profile systems, low-and-slow campaigns slipping under thresholds).
//!
//! ```text
//! cargo run --release -p idsbench-bench --bin fig_scenarios -- --scale tiny --require-separation
//! ```
//!
//! Each scenario runs as a *stream*: the generator is never materialised —
//! a [`ScenarioSource`] pulls the lazy model, the leading attack-free span
//! (`spec.warmup_secs` traffic seconds) trains/calibrates the detector, and
//! the rest is scored under the engine's default calibrated threshold so
//! results stay comparable with `table4`/`fig_families`.
//!
//! With `--require-separation` the run exits non-zero unless at least one
//! attack family separates the detectors (maximum minus minimum recall
//! above 0.25 in some scenario) — the CI smoke gate that the matrix still
//! *discriminates*; a workload on which every IDS scores alike measures
//! nothing.
//!
//! One `BENCH `-prefixed JSON line goes to stdout and the same object is
//! written to `BENCH_scenarios.json` in the working directory.

use idsbench_bench::{scale_from_args, seed_from_args, standard_detectors};
use idsbench_core::json::{num_field, str_field};
use idsbench_core::metrics::FamilyOutcome;
use idsbench_datasets::ScenarioScale;
use idsbench_stream::{run_stream, ScenarioSource, StreamConfig};
use idsbench_trafficgen::{registry, ScenarioSpec, Tier};

/// Smallest max-minus-min recall on some family, in some scenario, that
/// counts as detector separation for the `--require-separation` gate.
const SEPARATION_SPREAD: f64 = 0.25;

/// One detector's outcome on one scenario.
struct Cell {
    detector: String,
    threshold: f64,
    eval_packets: usize,
    families: Vec<FamilyOutcome>,
}

fn run_cell(
    spec: &ScenarioSpec,
    detector: &str,
    factory: &(dyn Fn() -> Box<dyn idsbench_core::EventDetector> + Sync),
    scale: ScenarioScale,
    seed: u64,
) -> Cell {
    let model = spec.build(scale);
    let (warmup, source) =
        ScenarioSource::new(model.as_ref(), seed).split_warmup_secs(spec.warmup_secs);
    let run = run_stream(factory, &warmup, source, &StreamConfig::default())
        .unwrap_or_else(|e| panic!("{}/{detector}: {e}", spec.name));
    Cell {
        detector: detector.to_string(),
        threshold: run.report.threshold,
        eval_packets: run.report.eval_packets,
        families: run.report.family_recall,
    }
}

/// Greatest max-minus-min recall across detectors on any family.
fn max_family_spread(cells: &[Cell]) -> (f64, String) {
    let mut best = (0.0f64, String::new());
    let families: std::collections::BTreeSet<&str> =
        cells.iter().flat_map(|c| c.families.iter().map(|f| f.family.as_str())).collect();
    for family in families {
        let recalls: Vec<f64> = cells
            .iter()
            .filter_map(|c| c.families.iter().find(|f| f.family == family).map(|f| f.recall))
            .collect();
        if recalls.len() < 2 {
            continue;
        }
        let spread = recalls.iter().cloned().fold(f64::MIN, f64::max)
            - recalls.iter().cloned().fold(f64::MAX, f64::min);
        if spread > best.0 {
            best = (spread, family.to_string());
        }
    }
    best
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = scale_from_args(&args);
    let seed = seed_from_args(&args);
    let require_separation = args.iter().any(|a| a == "--require-separation");
    let scale_name = match scale {
        ScenarioScale::Tiny => "tiny",
        ScenarioScale::Small => "small",
        ScenarioScale::Full => "full",
    };

    let detectors = standard_detectors();
    let native: Vec<ScenarioSpec> =
        registry().into_iter().filter(|s| s.tier != Tier::Legacy).collect();

    let mut separated = false;
    let mut scenario_json = Vec::new();
    for spec in &native {
        eprintln!("## {} ({}) — {}", spec.name, spec.tier.name(), spec.summary);
        let cells: Vec<Cell> = detectors
            .iter()
            .map(|(name, factory)| run_cell(spec, name, factory.as_ref(), scale, seed))
            .collect();
        for cell in &cells {
            let rows: Vec<String> =
                cell.families.iter().map(|f| format!("{}={:.3}", f.family, f.recall)).collect();
            eprintln!(
                "  {:<10} thr={:.4} eval={}  {}",
                cell.detector,
                cell.threshold,
                cell.eval_packets,
                if rows.is_empty() { "(benign only)".to_string() } else { rows.join("  ") }
            );
        }
        let (spread, family) = max_family_spread(&cells);
        if spread > SEPARATION_SPREAD {
            separated = true;
            eprintln!("  separation: {family} spread {spread:.3}");
        }

        let mut obj = String::new();
        obj.push('{');
        str_field(&mut obj, "scenario", spec.name);
        obj.push(',');
        str_field(&mut obj, "tier", spec.tier.name());
        obj.push(',');
        num_field(&mut obj, "warmup_secs", spec.warmup_secs);
        obj.push(',');
        obj.push_str("\"detectors\":[");
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                obj.push(',');
            }
            obj.push('{');
            str_field(&mut obj, "detector", &cell.detector);
            obj.push(',');
            num_field(&mut obj, "threshold", cell.threshold);
            obj.push(',');
            num_field(&mut obj, "eval_packets", cell.eval_packets as f64);
            obj.push(',');
            obj.push_str("\"families\":[");
            for (j, f) in cell.families.iter().enumerate() {
                if j > 0 {
                    obj.push(',');
                }
                obj.push_str(&f.to_json());
            }
            obj.push_str("]}");
        }
        obj.push_str("]}");
        scenario_json.push(obj);
    }

    let json = format!(
        "{{\"bench\":\"fig_scenarios\",\"scale\":\"{scale_name}\",\"seed\":{seed},\
         \"scenarios\":[{}]}}",
        scenario_json.join(",")
    );
    println!("BENCH {json}");
    std::fs::write("BENCH_scenarios.json", format!("{json}\n"))
        .expect("write BENCH_scenarios.json");

    if require_separation && !separated {
        eprintln!(
            "--require-separation: no family spread above {SEPARATION_SPREAD} in any scenario"
        );
        std::process::exit(1);
    }
}
