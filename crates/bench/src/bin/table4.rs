//! Regenerates the paper's Table IV: performance of the four IDSs across
//! the five datasets, printed in the paper's layout plus a side-by-side
//! paper-vs-measured comparison.
//!
//! ```text
//! cargo run --release -p idsbench-bench --bin table4 -- --scale full --seed 42
//! ```

use idsbench_bench::{
    paper_cell, scale_from_args, seed_from_args, standard_detectors, standard_scenarios,
};
use idsbench_core::runner::{run_grid, EvalConfig};
use idsbench_core::{report, Dataset};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = scale_from_args(&args);
    let seed = seed_from_args(&args);

    let scenarios = standard_scenarios(scale);
    let datasets: Vec<&dyn Dataset> = scenarios.iter().map(|s| s as &dyn Dataset).collect();
    let detectors = standard_detectors();
    let config = EvalConfig { dataset_seed: seed, ..Default::default() };

    eprintln!(
        "running {} × {} grid at {scale:?} scale (seed {seed})…",
        detectors.len(),
        datasets.len()
    );
    let started = std::time::Instant::now();
    let experiments = run_grid(&detectors, &datasets, &config).expect("grid evaluation failed");
    eprintln!("grid completed in {:.1}s", started.elapsed().as_secs_f64());

    println!("## Table IV — performance results for tested IDSs and datasets (measured)\n");
    println!("{}", report::render_table4(&experiments));

    println!("\n## Paper vs measured (F1 per cell)\n");
    println!("| IDS | Dataset | F1 (paper) | F1 (measured) | Acc (paper) | Acc (measured) |");
    println!("|---|---|---|---|---|---|");
    for experiment in &experiments {
        if let Some(paper) = paper_cell(&experiment.detector, &experiment.dataset) {
            println!(
                "| {} | {} | {:.4} | {:.4} | {:.4} | {:.4} |",
                experiment.detector,
                experiment.dataset,
                paper.f1,
                experiment.metrics.f1,
                paper.accuracy,
                experiment.metrics.accuracy,
            );
        }
    }

    println!("\n## Diagnostics (CSV)\n");
    println!("{}", report::render_csv(&experiments));
}
