//! Hot-path figure: packets/sec and allocator traffic of the steady-state
//! scoring loop, for all four evaluated systems on one fixed scenario.
//!
//! ```text
//! cargo run --release -p idsbench-bench --bin fig_hotpath -- --scale small
//! ```
//!
//! The binary installs a counting global allocator, fits each system on the
//! scenario's training slice, replays the first half of the evaluation
//! slice as warmup (maps fill, scratch buffers reach steady-state
//! capacity), then measures wall-clock time and allocator traffic over the
//! second half — the deployment regime where Kitsune and HELAD must
//! allocate nothing per packet (`tests/hot_path_allocs.rs` pins exactly
//! that; this figure tracks it as a trajectory).
//!
//! One `BENCH `-prefixed JSON line goes to stdout and the same object is
//! written to `BENCH_hotpath.json` in the working directory (the repo root
//! in CI, uploaded as an artifact); a human-readable table goes to stderr.

use std::time::Instant;

use idsbench_bench::{scale_from_args, seed_from_args, standard_detectors};
use idsbench_core::allocwatch::{allocation_snapshot, CountingAllocator};
use idsbench_core::{
    Dataset, Event, EventDetector, FlowEventAssembler, InputFormat, ParsedView, TrainView,
};
use idsbench_datasets::scenarios;
use idsbench_flow::FlowTableConfig;

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// One detector's hot-path measurement.
struct HotPathRow {
    detector: String,
    packets: usize,
    events_scored: usize,
    packets_per_sec: f64,
    allocs_per_packet: f64,
    bytes_per_packet: f64,
}

impl HotPathRow {
    fn to_json(&self) -> String {
        format!(
            "{{\"detector\":\"{}\",\"packets\":{},\"events_scored\":{},\
             \"packets_per_sec\":{:.1},\"allocs_per_packet\":{:.4},\
             \"bytes_per_packet\":{:.1}}}",
            self.detector,
            self.packets,
            self.events_scored,
            self.packets_per_sec,
            self.allocs_per_packet,
            self.bytes_per_packet,
        )
    }
}

/// Replays `views` through the detector (packet events, plus flow
/// evictions for flow-format detectors); returns scored-event count.
fn replay_views(
    detector: &mut dyn EventDetector,
    assembler: &mut Option<FlowEventAssembler>,
    evicted: &mut Vec<idsbench_core::LabeledFlow>,
    views: &[ParsedView],
) -> usize {
    let mut scored = 0usize;
    for view in views {
        if detector.on_event(&Event::Packet(view)).is_some() {
            scored += 1;
        }
        if let Some(assembler) = assembler {
            assembler.observe(view, |flow| evicted.push(flow));
            for flow in evicted.drain(..) {
                if detector.on_event(&Event::FlowEvicted(&flow)).is_some() {
                    scored += 1;
                }
            }
        }
    }
    scored
}

fn measure(
    name: &str,
    detector: &mut dyn EventDetector,
    train: &TrainView,
    eval: &[ParsedView],
) -> HotPathRow {
    detector.fit(train);
    let mut assembler = matches!(detector.input_format(), InputFormat::Flows)
        .then(|| FlowEventAssembler::new(FlowTableConfig::default()));
    let mut evicted = Vec::new();

    // Warmup: first half of the evaluation slice off the clock.
    let split = eval.len() / 2;
    replay_views(detector, &mut assembler, &mut evicted, &eval[..split]);

    // Measured steady state: second half.
    let measured = &eval[split..];
    let before = allocation_snapshot();
    let clock = Instant::now();
    let scored = replay_views(detector, &mut assembler, &mut evicted, measured);
    let seconds = clock.elapsed().as_secs_f64();
    let after = allocation_snapshot();

    let packets = measured.len();
    HotPathRow {
        detector: name.to_string(),
        packets,
        events_scored: scored,
        packets_per_sec: packets as f64 / seconds.max(1e-12),
        allocs_per_packet: after.allocations_since(&before) as f64 / packets.max(1) as f64,
        bytes_per_packet: after.bytes_since(&before) as f64 / packets.max(1) as f64,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = scale_from_args(&args);
    let seed = seed_from_args(&args);

    // One fixed scenario so the trajectory stays comparable PR over PR.
    let scenario = scenarios::stratosphere_iot(scale);
    let packets = scenario.generate(seed);
    let split = packets.len() * 3 / 10;
    let mut views: Vec<ParsedView> = packets.into_iter().map(ParsedView::from_packet).collect();
    let eval = views.split_off(split);
    let train = TrainView::assemble(views, FlowTableConfig::default());

    eprintln!("detector,packets,events_scored,packets_per_sec,allocs_per_packet,bytes_per_packet");
    let mut rows = Vec::new();
    for (name, factory) in standard_detectors() {
        let mut detector = factory();
        let row = measure(&name, detector.as_mut(), &train, &eval);
        eprintln!(
            "{},{},{},{:.0},{:.4},{:.1}",
            row.detector,
            row.packets,
            row.events_scored,
            row.packets_per_sec,
            row.allocs_per_packet,
            row.bytes_per_packet,
        );
        rows.push(row);
    }

    let scale_name = match scale {
        idsbench_datasets::ScenarioScale::Tiny => "tiny",
        idsbench_datasets::ScenarioScale::Small => "small",
        idsbench_datasets::ScenarioScale::Full => "full",
    };
    let results: Vec<String> = rows.iter().map(HotPathRow::to_json).collect();
    let json = format!(
        "{{\"bench\":\"fig_hotpath\",\"scale\":\"{scale_name}\",\"seed\":{seed},\
         \"scenario\":\"{}\",\"results\":[{}]}}",
        scenario.info().name,
        results.join(","),
    );
    if let Err(e) = std::fs::write("BENCH_hotpath.json", format!("{json}\n")) {
        eprintln!("# failed to write BENCH_hotpath.json: {e}");
    }
    println!("BENCH {json}");
}
