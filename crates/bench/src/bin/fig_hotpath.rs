//! Hot-path figure: packets/sec and allocator traffic of the steady-state
//! scoring loop, for all four evaluated systems on one fixed scenario —
//! plus the feeder transport path (pooled pcap capture → parse) and the
//! raw matmul microkernel rate.
//!
//! ```text
//! cargo run --release -p idsbench-bench --bin fig_hotpath -- --scale small
//! cargo run --release -p idsbench-bench --bin fig_hotpath -- --scale small \
//!     --baseline /tmp/hotpath_baseline.json   # CI regression gate
//! ```
//!
//! The binary installs a counting global allocator, fits each system on the
//! scenario's training slice, replays the first half of the evaluation
//! slice as warmup (maps fill, scratch buffers reach steady-state
//! capacity), then measures wall-clock time and allocator traffic over the
//! second half — the deployment regime where the detectors must allocate
//! nothing per packet (`tests/hot_path_allocs.rs` pins exactly that; this
//! figure tracks it as a trajectory). The `Transport` row replays the same
//! packets through a `PcapSource` whose `PayloadArena` recycles capture
//! buffers the way the stream executor's return lane does, measuring the
//! feeder's own per-packet cost (read + pooled buffer + parse).
//!
//! The NN-backed systems are additionally re-measured in wide-lane f32
//! mode (rows named `<detector>+f32`), the packet-format ones through the
//! `on_packet_batch` entry point so weight traffic amortizes across the
//! burst; the raw kernel rate is reported per precision
//! (`kernel_gflops`, `kernel_gflops_f32`) plus their ratio
//! (`kernel_speedup_f32`).
//!
//! With `--baseline <path>` the run additionally compares its packets/sec
//! against a previously committed `BENCH_hotpath.json` and exits non-zero
//! on a >25% regression for any row present in both — the CI gate that
//! keeps the trajectory monotone.
//!
//! With `--telemetry` the run re-measures each detector with an
//! `idsbench-telemetry` inference probe attached (rows named
//! `<detector>+telemetry`; a committed baseline never sees them), gates
//! the instrumented packets/sec within 5% of an *adjacent* plain
//! re-measurement (best pair of three absorbs scheduler noise and
//! host-speed drift within the run), and writes the final snapshot to
//! `TELEMETRY_hotpath.json`.
//!
//! One `BENCH `-prefixed JSON line goes to stdout and the same object is
//! written to `BENCH_hotpath.json` in the working directory (the repo root
//! in CI, uploaded as an artifact); a human-readable table goes to stderr.

use std::time::Instant;

use idsbench_bench::{
    detectors_with_precision, scale_from_args, seed_from_args, standard_detectors,
};
use idsbench_core::allocwatch::{allocation_snapshot, CountingAllocator};
use idsbench_core::{
    Dataset, Event, EventDetector, FlowEventAssembler, InputFormat, LabeledPacket, ParsedView,
    TrainView,
};
use idsbench_datasets::scenarios;
use idsbench_flow::FlowTableConfig;
use idsbench_net::pcap::{PcapReader, PcapWriter};
use idsbench_nn::wide::matmul_f32_into;
use idsbench_nn::{Matrix, MatrixF32, Precision};
use idsbench_stream::{PacketSource, PcapSource};
use idsbench_telemetry::{Stage, Telemetry};

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// Maximum tolerated packets/sec drop against the `--baseline` file.
const REGRESSION_TOLERANCE: f64 = 0.25;

/// Maximum tolerated packets/sec drop of an instrumented row against the
/// same run's plain row (`--telemetry` mode).
const TELEMETRY_OVERHEAD_TOLERANCE: f64 = 0.05;

/// One row's hot-path measurement (a detector or the transport path).
struct HotPathRow {
    detector: String,
    packets: usize,
    events_scored: usize,
    packets_per_sec: f64,
    allocs_per_packet: f64,
    bytes_per_packet: f64,
}

impl HotPathRow {
    fn to_json(&self) -> String {
        format!(
            "{{\"detector\":{},\"packets\":{},\"events_scored\":{},\
             \"packets_per_sec\":{:.1},\"allocs_per_packet\":{:.4},\
             \"bytes_per_packet\":{:.1}}}",
            idsbench_core::json::quoted(&self.detector),
            self.packets,
            self.events_scored,
            self.packets_per_sec,
            self.allocs_per_packet,
            self.bytes_per_packet,
        )
    }

    fn print_csv(&self) {
        eprintln!(
            "{},{},{},{:.0},{:.4},{:.1}",
            self.detector,
            self.packets,
            self.events_scored,
            self.packets_per_sec,
            self.allocs_per_packet,
            self.bytes_per_packet,
        );
    }
}

/// Replays `views` through the detector (packet events, plus flow
/// evictions for flow-format detectors); returns scored-event count.
fn replay_views(
    detector: &mut dyn EventDetector,
    assembler: &mut Option<FlowEventAssembler>,
    evicted: &mut Vec<idsbench_core::LabeledFlow>,
    views: &[ParsedView],
) -> usize {
    let mut scored = 0usize;
    for view in views {
        if detector.on_event(&Event::Packet(view)).is_some() {
            scored += 1;
        }
        if let Some(assembler) = assembler {
            assembler.observe(view, |flow| evicted.push(flow));
            for flow in evicted.drain(..) {
                if detector.on_event(&Event::FlowEvicted(&flow)).is_some() {
                    scored += 1;
                }
            }
        }
    }
    scored
}

/// Batch size for the wide-lane rows: big enough to amortize weight
/// traffic across packets, small enough to stay cache-resident.
const BATCH_ROWS: usize = 256;

/// Replays `views` through `on_packet_batch` in fixed-size bursts — the
/// entry point the stream executor's batch lane uses — so converted
/// weights are walked once per burst instead of once per packet. Only
/// packet-format detectors come through here; flow-format scores ride
/// flow evictions, which have no batch lane.
fn replay_views_batched(detector: &mut dyn EventDetector, views: &[ParsedView]) -> usize {
    let mut scores = Vec::with_capacity(BATCH_ROWS);
    let mut scored = 0usize;
    for chunk in views.chunks(BATCH_ROWS) {
        scores.clear();
        detector.on_packet_batch(&mut chunk.iter(), &mut scores);
        scored += scores.len();
    }
    scored
}

/// `measure` for the batch-of-rows path: same warmup/measure split, but
/// both halves replay through `on_packet_batch`.
fn measure_batched(
    name: &str,
    detector: &mut dyn EventDetector,
    train: &TrainView,
    eval: &[ParsedView],
) -> HotPathRow {
    detector.fit(train);
    let split = eval.len() / 2;
    replay_views_batched(detector, &eval[..split]);

    let measured = &eval[split..];
    let before = allocation_snapshot();
    let clock = Instant::now();
    let scored = replay_views_batched(detector, measured);
    let seconds = clock.elapsed().as_secs_f64();
    let after = allocation_snapshot();

    let packets = measured.len();
    HotPathRow {
        detector: name.to_string(),
        packets,
        events_scored: scored,
        packets_per_sec: packets as f64 / seconds.max(1e-12),
        allocs_per_packet: after.allocations_since(&before) as f64 / packets.max(1) as f64,
        bytes_per_packet: after.bytes_since(&before) as f64 / packets.max(1) as f64,
    }
}

fn measure(
    name: &str,
    detector: &mut dyn EventDetector,
    train: &TrainView,
    eval: &[ParsedView],
) -> HotPathRow {
    detector.fit(train);
    let mut assembler = matches!(detector.input_format(), InputFormat::Flows)
        .then(|| FlowEventAssembler::new(FlowTableConfig::default()));
    let mut evicted = Vec::new();

    // Warmup: first half of the evaluation slice off the clock.
    let split = eval.len() / 2;
    replay_views(detector, &mut assembler, &mut evicted, &eval[..split]);

    // Measured steady state: second half.
    let measured = &eval[split..];
    let before = allocation_snapshot();
    let clock = Instant::now();
    let scored = replay_views(detector, &mut assembler, &mut evicted, measured);
    let seconds = clock.elapsed().as_secs_f64();
    let after = allocation_snapshot();

    let packets = measured.len();
    HotPathRow {
        detector: name.to_string(),
        packets,
        events_scored: scored,
        packets_per_sec: packets as f64 / seconds.max(1e-12),
        allocs_per_packet: after.allocations_since(&before) as f64 / packets.max(1) as f64,
        bytes_per_packet: after.bytes_since(&before) as f64 / packets.max(1) as f64,
    }
}

/// The feeder transport path: replay the evaluation packets from an
/// in-memory pcap capture through a `PcapSource` (pooled payload buffers)
/// and the pipeline's single parse site, recycling each consumed view the
/// way the stream executor's return lane does. Steady state must mint no
/// `Vec<u8>` per packet.
fn measure_transport(packets: &[LabeledPacket]) -> HotPathRow {
    let mut image = Vec::new();
    {
        let mut writer = PcapWriter::new(&mut image).expect("pcap header");
        for lp in packets {
            writer.write_packet(&lp.packet).expect("pcap record");
        }
    }

    let measured_from = packets.len() / 2;
    let reader = PcapReader::new(std::io::Cursor::new(&image[..])).expect("pcap image");
    let mut source = PcapSource::benign("transport", reader);
    let mut count = 0usize;
    let mut before = allocation_snapshot();
    let mut clock = Instant::now();
    while let Some(packet) = source.next_packet().expect("pcap replay") {
        if count == measured_from {
            // Warmup ends here: the arena pool and parse scratch are at
            // steady state.
            before = allocation_snapshot();
            clock = Instant::now();
        }
        let view = ParsedView::from_packet(packet);
        std::hint::black_box(&view);
        // What the executor's return lane does with a drained batch.
        source.recycle_packet(view.packet.packet);
        count += 1;
    }
    let seconds = clock.elapsed().as_secs_f64();
    let after = allocation_snapshot();
    let measured = count.saturating_sub(measured_from);
    let (allocs, bytes) = (after.allocations_since(&before), after.bytes_since(&before));

    HotPathRow {
        detector: "Transport".to_string(),
        packets: measured,
        events_scored: 0,
        packets_per_sec: measured as f64 / seconds.max(1e-12),
        allocs_per_packet: allocs as f64 / measured.max(1) as f64,
        bytes_per_packet: bytes as f64 / measured.max(1) as f64,
    }
}

/// Raw microkernel rate: the HELAD-shaped row-vector product (1×100 times
/// 100×50) through `Matrix::matmul_into`, reported as GFLOP/s.
fn measure_kernel_gflops() -> f64 {
    let a = Matrix::xavier(1, 100, 7);
    let b = Matrix::xavier(100, 50, 8);
    let mut out = Matrix::default();
    a.matmul_into(&b, &mut out); // warm the scratch
    let rounds = 200_000u64;
    let clock = Instant::now();
    let mut acc = 0.0;
    for _ in 0..rounds {
        a.matmul_into(&b, &mut out);
        acc += out.get(0, 0);
    }
    let seconds = clock.elapsed().as_secs_f64();
    std::hint::black_box(acc);
    let flops = 2.0 * 100.0 * 50.0 * rounds as f64;
    flops / seconds.max(1e-12) / 1e9
}

/// The same HELAD-shaped product through the f32 wide kernel
/// (`matmul_f32_into`, 8-lane chunked), reported as GFLOP/s — the
/// f32/f64 ratio in the JSON is this over `measure_kernel_gflops`.
fn measure_kernel_gflops_f32() -> f64 {
    let a = MatrixF32::from_f64(&Matrix::xavier(1, 100, 7));
    let b = MatrixF32::from_f64(&Matrix::xavier(100, 50, 8));
    let mut out = MatrixF32::zeros(1, 50);
    matmul_f32_into(&a, &b, &mut out); // warm the scratch
    let rounds = 200_000u64;
    let clock = Instant::now();
    let mut acc = 0.0f32;
    for _ in 0..rounds {
        matmul_f32_into(&a, &b, &mut out);
        acc += out.row(0)[0];
    }
    let seconds = clock.elapsed().as_secs_f64();
    std::hint::black_box(acc);
    let flops = 2.0 * 100.0 * 50.0 * rounds as f64;
    flops / seconds.max(1e-12) / 1e9
}

/// Builds one detector with a sampled inference probe attached, labelled
/// per shard-less `infer` stage so the four systems land in distinct
/// histograms (`shard` encodes the detector's row index here).
fn instrumented(name: &str, row: usize, telemetry: &Telemetry) -> Box<dyn EventDetector> {
    let probe = telemetry.span(Stage::Infer, Some(row));
    match name {
        "Kitsune" => {
            let mut detector = idsbench_kitsune::Kitsune::default();
            detector.attach_inference_probe(probe);
            Box::new(detector)
        }
        "HELAD" => {
            let mut detector = idsbench_helad::Helad::default();
            detector.attach_inference_probe(probe);
            Box::new(detector)
        }
        "DNN" => {
            let mut detector = idsbench_dnn::Dnn::default();
            detector.attach_inference_probe(probe);
            Box::new(detector)
        }
        "Slips" => {
            let mut detector = idsbench_slips::Slips::default();
            detector.attach_inference_probe(probe);
            Box::new(detector)
        }
        other => unreachable!("unknown detector {other}"),
    }
}

/// Extracts `(detector, packets_per_sec)` pairs from a `BENCH_hotpath.json`
/// object (hand-rolled scan; the workspace has no JSON parser dependency).
fn parse_baseline(json: &str) -> Vec<(String, f64)> {
    let mut rows = Vec::new();
    let mut rest = json;
    while let Some(at) = rest.find("\"detector\":\"") {
        rest = &rest[at + "\"detector\":\"".len()..];
        let Some(name_end) = rest.find('"') else { break };
        let name = rest[..name_end].to_string();
        let Some(pps_at) = rest.find("\"packets_per_sec\":") else { break };
        let tail = &rest[pps_at + "\"packets_per_sec\":".len()..];
        let num: String =
            tail.chars().take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-').collect();
        if let Ok(pps) = num.parse::<f64>() {
            rows.push((name, pps));
        }
        rest = tail;
    }
    rows
}

/// Compares this run against the baseline file; returns the failing rows.
fn regressions(rows: &[HotPathRow], baseline: &[(String, f64)]) -> Vec<String> {
    let mut failures = Vec::new();
    for row in rows {
        let Some((_, base)) = baseline.iter().find(|(name, _)| *name == row.detector) else {
            continue; // a new row has no baseline yet
        };
        let floor = base * (1.0 - REGRESSION_TOLERANCE);
        if row.packets_per_sec < floor {
            failures.push(format!(
                "{}: {:.0} packets/sec is a >{:.0}% regression vs baseline {:.0} (floor {:.0})",
                row.detector,
                row.packets_per_sec,
                REGRESSION_TOLERANCE * 100.0,
                base,
                floor,
            ));
        }
    }
    failures
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = scale_from_args(&args);
    let seed = seed_from_args(&args);
    let baseline_path =
        args.iter().position(|a| a == "--baseline").and_then(|i| args.get(i + 1)).cloned();
    let with_telemetry = args.iter().any(|a| a == "--telemetry");

    // One fixed scenario so the trajectory stays comparable PR over PR.
    let scenario = scenarios::stratosphere_iot(scale);
    let packets = scenario.generate(seed);
    let split = packets.len() * 3 / 10;
    let eval_packets: Vec<LabeledPacket> = packets[split..].to_vec();
    let mut views: Vec<ParsedView> = packets.into_iter().map(ParsedView::from_packet).collect();
    let eval = views.split_off(split);
    let train = TrainView::assemble(views, FlowTableConfig::default());

    eprintln!("detector,packets,events_scored,packets_per_sec,allocs_per_packet,bytes_per_packet");
    let mut rows = Vec::new();
    for (name, factory) in standard_detectors() {
        let mut detector = factory();
        let row = measure(&name, detector.as_mut(), &train, &eval);
        row.print_csv();
        rows.push(row);
    }
    // Wide-lane rows: the NN-backed systems re-measured in f32 mode, the
    // packet-format ones through the batch entry point (the stream
    // executor's batch lane). Distinct `+f32` names keep these rows
    // separate from the bitwise-f64 baselines in committed JSON.
    for (name, factory) in detectors_with_precision(Precision::F32Wide) {
        if !name.ends_with("+f32") {
            continue; // Slips has no NN; its scores are identical either way
        }
        let mut detector = factory();
        let row = if detector.input_format() == InputFormat::Packets {
            measure_batched(&name, detector.as_mut(), &train, &eval)
        } else {
            measure(&name, detector.as_mut(), &train, &eval)
        };
        row.print_csv();
        rows.push(row);
    }

    let transport = measure_transport(&eval_packets);
    transport.print_csv();
    rows.push(transport);

    // `--telemetry`: re-measure each system with an inference probe
    // attached and gate the overhead. Each instrumented measurement is
    // paired with an *adjacent* plain re-measurement and gated on that
    // pair's ratio: host speed drifts over a run (frequency ramps, noisy
    // neighbours), so comparing against the top-of-run row conflates probe
    // cost with drift. Best pair of three keeps a 5% bar meaningful on a
    // loaded runner — the claim under test (sampled probes are nearly
    // free) is about the code, not the host.
    let mut telemetry_failures = Vec::new();
    if with_telemetry {
        let telemetry = Telemetry::default();
        for (index, (name, factory)) in standard_detectors().iter().enumerate() {
            let label = format!("{name}+telemetry");
            let mut best: Option<(f64, f64, HotPathRow)> = None;
            for attempt in 0..3 {
                let mut plain = factory();
                let plain_pps = measure(name, plain.as_mut(), &train, &eval).packets_per_sec;
                let mut detector = instrumented(name, index, &telemetry);
                let row = measure(&label, detector.as_mut(), &train, &eval);
                let ratio = row.packets_per_sec / plain_pps.max(1e-12);
                if best.as_ref().map_or(true, |(b, _, _)| ratio > *b) {
                    best = Some((ratio, plain_pps, row));
                }
                let (best_ratio, _, _) = best.as_ref().expect("just set");
                if *best_ratio >= 1.0 - TELEMETRY_OVERHEAD_TOLERANCE {
                    break;
                }
                eprintln!("# {label}: ratio {best_ratio:.3} below bar on attempt {attempt}");
            }
            let (ratio, plain_pps, row) = best.expect("at least one attempt");
            if ratio < 1.0 - TELEMETRY_OVERHEAD_TOLERANCE {
                telemetry_failures.push(format!(
                    "{label}: {:.0} packets/sec is a >{:.0}% overhead vs adjacent plain {:.0}",
                    row.packets_per_sec,
                    TELEMETRY_OVERHEAD_TOLERANCE * 100.0,
                    plain_pps,
                ));
            }
            row.print_csv();
            rows.push(row);
        }
        if let Err(e) =
            std::fs::write("TELEMETRY_hotpath.json", format!("{}\n", telemetry.json_snapshot()))
        {
            eprintln!("# failed to write TELEMETRY_hotpath.json: {e}");
        }
    }

    let kernel_gflops = measure_kernel_gflops();
    let kernel_gflops_f32 = measure_kernel_gflops_f32();
    let kernel_speedup_f32 = kernel_gflops_f32 / kernel_gflops.max(1e-12);
    eprintln!("# kernel_gflops (1x100 · 100x50 row-vector matmul): {kernel_gflops:.2}");
    eprintln!(
        "# kernel_gflops_f32 (same shape, 8-lane wide kernel): {kernel_gflops_f32:.2} \
         ({kernel_speedup_f32:.2}x f64)"
    );

    let scale_name = match scale {
        idsbench_datasets::ScenarioScale::Tiny => "tiny",
        idsbench_datasets::ScenarioScale::Small => "small",
        idsbench_datasets::ScenarioScale::Full => "full",
    };
    let results: Vec<String> = rows.iter().map(HotPathRow::to_json).collect();
    let json = format!(
        "{{\"bench\":\"fig_hotpath\",\"scale\":\"{scale_name}\",\"seed\":{seed},\
         \"scenario\":\"{}\",\"kernel_gflops\":{kernel_gflops:.2},\
         \"kernel_gflops_f32\":{kernel_gflops_f32:.2},\
         \"kernel_speedup_f32\":{kernel_speedup_f32:.2},\"results\":[{}]}}",
        scenario.info().name,
        results.join(","),
    );
    if let Err(e) = std::fs::write("BENCH_hotpath.json", format!("{json}\n")) {
        eprintln!("# failed to write BENCH_hotpath.json: {e}");
    }
    println!("BENCH {json}");

    if let Some(path) = baseline_path {
        let baseline_json = match std::fs::read_to_string(&path) {
            Ok(contents) => contents,
            Err(e) => {
                eprintln!("# cannot read baseline {path}: {e}");
                std::process::exit(2);
            }
        };
        let failures = regressions(&rows, &parse_baseline(&baseline_json));
        if failures.is_empty() {
            eprintln!("# baseline gate passed ({path})");
        } else {
            for failure in &failures {
                eprintln!("# REGRESSION {failure}");
            }
            std::process::exit(1);
        }
    }
    if telemetry_failures.is_empty() {
        if with_telemetry {
            eprintln!("# telemetry overhead gate passed (<=5% on every row)");
        }
    } else {
        for failure in &telemetry_failures {
            eprintln!("# TELEMETRY OVERHEAD {failure}");
        }
        std::process::exit(1);
    }
}
