//! Regenerates the paper's Table III: datasets considered but not used.
//!
//! ```text
//! cargo run -p idsbench-bench --bin table3
//! ```

use idsbench_core::registry;

fn main() {
    println!("## Table III — datasets considered but not used for evaluation\n");
    println!("{}", registry::render_table3());
}
