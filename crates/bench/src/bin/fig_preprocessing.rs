//! Preprocessing-impact ablation (Section V factor 5): the supervised DNN
//! with and without min-max feature scaling and class rebalancing, plus the
//! original study's classical-ML baselines under the standard pipeline.
//!
//! ```text
//! cargo run --release -p idsbench-bench --bin fig_preprocessing -- --scale small
//! ```

use idsbench_bench::{scale_from_args, seed_from_args, standard_scenarios};
use idsbench_core::runner::{evaluate, EvalConfig};
use idsbench_core::EventDetector;
use idsbench_dnn::baselines::{DecisionTree, KNearest, LogisticRegression, NaiveBayes};
use idsbench_dnn::{Dnn, DnnConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = scale_from_args(&args);
    let seed = seed_from_args(&args);
    let config = EvalConfig { dataset_seed: seed, ..Default::default() };

    println!("variant,dataset,accuracy,precision,recall,f1,auc");
    for scenario in standard_scenarios(scale) {
        let variants: Vec<(&str, Box<dyn EventDetector>)> = vec![
            ("dnn", Box::new(Dnn::default())),
            (
                "dnn-no-normalize",
                Box::new(Dnn::new(DnnConfig { normalize: false, ..Default::default() })),
            ),
            (
                "dnn-no-rebalance",
                Box::new(Dnn::new(DnnConfig { rebalance: false, ..Default::default() })),
            ),
            ("logreg", Box::new(LogisticRegression::default())),
            ("naive-bayes", Box::new(NaiveBayes::default())),
            ("decision-tree", Box::new(DecisionTree::default())),
            ("knn", Box::new(KNearest::default())),
        ];
        for (label, mut detector) in variants {
            let e = evaluate(detector.as_mut(), &scenario, &config).expect("evaluate");
            println!(
                "{},{},{:.4},{:.4},{:.4},{:.4},{:.4}",
                label,
                e.dataset,
                e.metrics.accuracy,
                e.metrics.precision,
                e.metrics.recall,
                e.metrics.f1,
                e.auc
            );
        }
    }
}
