//! Benign-baseline ablation (Section V factor 6 / VI-B-2): the leading-
//! slice anomaly detectors on the Stratosphere scenario with a clean benign
//! prefix versus the same site with the infection active from t = 0.
//!
//! ```text
//! cargo run --release -p idsbench-bench --bin fig_baseline -- --scale small
//! ```

use idsbench_bench::{scale_from_args, seed_from_args};
use idsbench_core::runner::{evaluate, EvalConfig};
use idsbench_core::EventDetector;
use idsbench_datasets::scenarios;
use idsbench_helad::Helad;
use idsbench_kitsune::Kitsune;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = scale_from_args(&args);
    let seed = seed_from_args(&args);
    let config = EvalConfig { dataset_seed: seed, ..Default::default() };

    println!("detector,baseline,accuracy,precision,recall,f1,auc");
    for (label, scenario) in [
        ("clean-prefix", scenarios::stratosphere_iot(scale)),
        ("contaminated", scenarios::stratosphere_iot_contaminated(scale)),
    ] {
        let detectors: Vec<Box<dyn EventDetector>> =
            vec![Box::new(Kitsune::default()), Box::new(Helad::default())];
        for mut detector in detectors {
            let e = evaluate(detector.as_mut(), &scenario, &config).expect("evaluate");
            println!(
                "{},{},{:.4},{:.4},{:.4},{:.4},{:.4}",
                e.detector,
                label,
                e.metrics.accuracy,
                e.metrics.precision,
                e.metrics.recall,
                e.metrics.f1,
                e.auc
            );
        }
    }
    eprintln!(
        "\nExpected shape: both detectors lose most of their F1 when the clean prefix is removed."
    );
}
