//! Sampling ablation (Section IV-A step 1): Table IV metrics as the random
//! flow-sampling rate drops from 100% to 10%. Emits CSV, one row per
//! (IDS, dataset, rate).
//!
//! ```text
//! cargo run --release -p idsbench-bench --bin fig_sampling -- --scale small
//! ```

use idsbench_bench::{scale_from_args, seed_from_args, standard_detectors, standard_scenarios};
use idsbench_core::runner::{run_grid, EvalConfig};
use idsbench_core::Dataset;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = scale_from_args(&args);
    let seed = seed_from_args(&args);

    println!("sampling_rate,detector,dataset,accuracy,precision,recall,f1,eval_items");
    for rate in [1.0, 0.5, 0.25, 0.1] {
        let scenarios = standard_scenarios(scale);
        let datasets: Vec<&dyn Dataset> = scenarios.iter().map(|s| s as &dyn Dataset).collect();
        let detectors = standard_detectors();
        let mut config = EvalConfig { dataset_seed: seed, ..Default::default() };
        config.pipeline.sampling_rate = rate;
        let experiments = run_grid(&detectors, &datasets, &config).expect("grid");
        for e in experiments {
            println!(
                "{:.2},{},{},{:.4},{:.4},{:.4},{:.4},{}",
                rate,
                e.detector,
                e.dataset,
                e.metrics.accuracy,
                e.metrics.precision,
                e.metrics.recall,
                e.metrics.f1,
                e.eval_items
            );
        }
    }
}
