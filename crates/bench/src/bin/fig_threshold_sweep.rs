//! Threshold-sensitivity figure (Section IV-A step 4): how each IDS's
//! reported metrics move as the calibration rule's false-positive tolerance
//! sweeps from strict to lax. Emits CSV series, one row per
//! (IDS, dataset, fpr-cap).
//!
//! ```text
//! cargo run --release -p idsbench-bench --bin fig_threshold_sweep -- --scale small
//! ```

use idsbench_bench::{scale_from_args, seed_from_args, standard_detectors, standard_scenarios};
use idsbench_core::metrics::ConfusionMatrix;
use idsbench_core::preprocess::{Pipeline, PipelineConfig};
use idsbench_core::runner::replay;
use idsbench_core::threshold::ThresholdPolicy;
use idsbench_core::Dataset;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = scale_from_args(&args);
    let seed = seed_from_args(&args);
    let caps = [0.01, 0.05, 0.10, 0.25, 0.50];

    println!("detector,dataset,max_fpr,threshold,accuracy,precision,recall,f1");
    for scenario in standard_scenarios(scale) {
        let packets = scenario.generate(seed);
        let pipeline = Pipeline::new(PipelineConfig::default()).expect("valid config");
        let input = pipeline.prepare_events(&scenario.info().name, packets).expect("preprocess");
        for (name, factory) in standard_detectors() {
            let mut detector = factory();
            // One event replay per detector; every cap recalibrates the same
            // score stream.
            let replayed = replay(detector.as_mut(), &input).expect("replay");
            let (scores, labels) = (&replayed.scores, &replayed.labels);
            for cap in caps {
                let policy = ThresholdPolicy::DetectionFirst { max_fpr: cap };
                let threshold = policy.calibrate(scores, labels);
                let m = ConfusionMatrix::from_scores(scores, labels, threshold).metrics();
                println!(
                    "{},{},{:.2},{:.6e},{:.4},{:.4},{:.4},{:.4}",
                    name,
                    scenario.info().name,
                    cap,
                    threshold,
                    m.accuracy,
                    m.precision,
                    m.recall,
                    m.f1
                );
            }
        }
    }
}
