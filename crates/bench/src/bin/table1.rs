//! Regenerates the paper's Table I: NIDSs investigated, with inclusion/
//! exclusion outcomes.
//!
//! ```text
//! cargo run -p idsbench-bench --bin table1
//! ```

use idsbench_core::registry;

fn main() {
    println!("## Table I — IDSs investigated\n");
    println!("{}", registry::render_table1());
    let included = registry::investigated_ids().iter().filter(|e| e.included()).count();
    println!(
        "\n{included} of {} investigated systems were usable out of the box.",
        registry::investigated_ids().len()
    );
}
