//! Chaos figure: worker processes are killed and corrupted mid-stream under
//! a seeded, deterministic fault plan, and the fabric's epoch-checkpoint
//! recovery must reproduce the crash-free score multiset exactly.
//!
//! ```text
//! cargo run --release -p idsbench-bench --bin fig_faults -- --scale tiny --require-recovery
//! ```
//!
//! The binary is its own worker: invoked as `fig_faults --worker <endpoint>
//! [--faults <spec>]` it dials in and runs the fabric worker loop, with an
//! optional [`FaultPlan`] armed on its transport. The parent run:
//!
//! 1. Scores the bursty trace single-process — the crash-free baseline.
//! 2. **kill**: two worker processes under the autoscale policy (1..=4
//!    shards); the first worker's transport is armed with `kill-at-seq`
//!    ~45% through the eval stream, so it dies mid-burst while the pool is
//!    scaled up. The coordinator must classify the death, re-home the dead
//!    peer's flows from the last epoch checkpoint onto the survivor, replay
//!    the retained batches, and finish with sorted-multiset score parity —
//!    zero lost flows, zero duplicate outcome fragments.
//! 3. **corrupt**: a fixed two-shard pool where one worker corrupts a reply
//!    frame mid-stream. The decoder must reject the frame (never decode
//!    garbage), the peer is classified dead, and recovery again holds
//!    parity.
//!
//! Slips scores the stream: flow-format, so re-homed flow records carry
//! real per-flow state and any loss or double-count breaks the multiset.
//!
//! With `--require-recovery` any failed check — no observed peer death, no
//! re-homed flows, no replayed batches, duplicate fragments, or broken
//! parity — exits non-zero (the CI chaos gate). One `BENCH `-prefixed JSON
//! line goes to stdout and `BENCH_faults.json`; the kill scenario's
//! telemetry snapshot (recovery counters, `recover` stage latency) lands in
//! `TELEMETRY_faults.json`.

use std::process::{Child, Command, Stdio};
use std::sync::Arc;

use idsbench_bench::{scale_from_args, seed_from_args, standard_detectors, workload};
use idsbench_core::{EventDetector, LabeledPacket};
use idsbench_datasets::ScenarioScale;
use idsbench_fabric::{
    run_fabric, run_worker_with_faults, Endpoint, FabricConfig, FabricListener, FaultPlan,
    RecoveryConfig,
};
use idsbench_net::Timestamp;
use idsbench_slips::Slips;
use idsbench_stream::{
    run_stream, AutoscalePolicy, BoundedSource, StreamConfig, StreamRun, VecSource,
};
use idsbench_telemetry::Telemetry;

/// Mirrors `fig_multinode` so the chaos figure stresses the same traffic.
struct Workload {
    phases: u64,
    quiet_sessions: u64,
    burst_sessions: u64,
}

impl Workload {
    fn for_scale(scale: ScenarioScale) -> Self {
        match scale {
            ScenarioScale::Tiny => Workload { phases: 10, quiet_sessions: 8, burst_sessions: 120 },
            ScenarioScale::Small => {
                Workload { phases: 20, quiet_sessions: 20, burst_sessions: 400 }
            }
            ScenarioScale::Full => {
                Workload { phases: 60, quiet_sessions: 40, burst_sessions: 1200 }
            }
        }
    }

    fn is_burst(phase: u64) -> bool {
        matches!(phase % 5, 1..=3)
    }

    fn burst_pps(&self) -> f64 {
        (self.burst_sessions * 6) as f64
    }

    fn quiet_pps(&self) -> f64 {
        (self.quiet_sessions * 6) as f64
    }
}

/// Worker-process entry. A worker with an armed fault plan is *expected* to
/// die mid-run, so its protocol error is a success for the harness; a clean
/// worker failing is a real failure.
fn worker_main(endpoint: &str, faults: Option<&str>) -> ! {
    let endpoint = Endpoint::parse(endpoint).unwrap_or_else(|e| {
        eprintln!("# worker: bad endpoint: {e}");
        std::process::exit(2);
    });
    let plan = faults.map(|spec| {
        FaultPlan::parse(spec).unwrap_or_else(|e| {
            eprintln!("# worker: bad fault spec {spec:?}: {e}");
            std::process::exit(2);
        })
    });
    let armed = plan.is_some();
    let roster = standard_detectors();
    let resolve = |name: &str| -> Option<Box<dyn EventDetector>> {
        roster.iter().find(|(n, _)| n == name).map(|(_, factory)| factory())
    };
    match run_worker_with_faults(&endpoint, &resolve, None, plan) {
        Ok(()) => std::process::exit(0),
        Err(e) if armed => {
            eprintln!("# worker: planned fault fired: {e}");
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("# worker failed: {e}");
            std::process::exit(1);
        }
    }
}

/// Spawns `count` worker processes; the first gets the fault plan. A short
/// stagger pins accept order so the faulted process is always peer 0 — the
/// peer that hosts shard 0 and therefore always sees batches, which makes
/// `kill-at-seq` fire deterministically even when the pool is at one shard.
fn spawn_workers(endpoint: &Endpoint, count: usize, faults: &str) -> Vec<Child> {
    let exe = std::env::current_exe().expect("current executable path");
    (0..count)
        .map(|index| {
            let mut cmd = Command::new(&exe);
            cmd.arg("--worker").arg(endpoint.to_string()).stdout(Stdio::null());
            if index == 0 {
                cmd.arg("--faults").arg(faults);
            }
            let child = cmd.spawn().expect("spawn worker process");
            if index == 0 {
                std::thread::sleep(std::time::Duration::from_millis(200));
            }
            child
        })
        .collect()
}

/// Runs the coordinator against `workers` processes, worker 0 armed with
/// `faults`, and reaps every child (faulted exits are tolerated by design —
/// `worker_main` already folds a planned death into exit 0).
#[allow(clippy::too_many_arguments)]
fn fabric_run(
    tag: &str,
    packets: &[LabeledPacket],
    warmup: &[LabeledPacket],
    config: &StreamConfig,
    fabric: &FabricConfig,
    faults: &str,
    telemetry: &Telemetry,
    failures: &mut Vec<String>,
) -> Option<StreamRun> {
    let bind = Endpoint::parse("tcp://127.0.0.1:0").expect("tcp endpoint");
    let listener = match FabricListener::bind(&bind) {
        Ok(listener) => listener,
        Err(e) => {
            failures.push(format!("{tag}: bind {bind}: {e}"));
            return None;
        }
    };
    let endpoint = listener.local_endpoint().expect("listener endpoint");
    let total = fabric.workers + fabric.recovery.map_or(0, |r| r.standby_workers);
    let mut children = spawn_workers(&endpoint, total, faults);
    let source = BoundedSource::spawn(VecSource::new("bursty-tcp", packets.to_vec()), 256);
    let run = run_fabric("Slips", warmup, source, config, fabric, listener, Some(telemetry));
    for (index, child) in children.iter_mut().enumerate() {
        match child.wait() {
            Ok(status) if status.success() => {}
            Ok(status) => failures.push(format!("{tag}: worker {index} exited {status}")),
            Err(e) => failures.push(format!("{tag}: worker {index} unreaped: {e}")),
        }
    }
    match run {
        Ok(run) => Some(run),
        Err(e) => {
            failures.push(format!("{tag}: coordinator: {e}"));
            None
        }
    }
}

fn sorted(mut scores: Vec<f64>) -> Vec<f64> {
    scores.sort_by(f64::total_cmp);
    scores
}

fn check_parity(tag: &str, single: &StreamRun, fabric: &StreamRun, failures: &mut Vec<String>) {
    if sorted(single.scores.clone()) != sorted(fabric.scores.clone()) {
        failures.push(format!(
            "{tag}: score multiset diverged across the crash ({} single vs {} fabric scores)",
            single.scores.len(),
            fabric.scores.len()
        ));
    }
    if single.report.metrics != fabric.report.metrics {
        failures.push(format!("{tag}: merged metrics diverged across the crash"));
    }
}

/// Recovery counters for one scenario, read back from its telemetry.
struct RecoveryStats {
    deaths: u64,
    rehomed: u64,
    replayed: u64,
    duplicates: u64,
    recovery_micros: u64,
}

impl RecoveryStats {
    fn read(telemetry: &Telemetry) -> Self {
        RecoveryStats {
            deaths: telemetry.counter("fabric_peer_failures_total").get(),
            rehomed: telemetry.counter("fabric_flows_rehomed_total").get(),
            replayed: telemetry.counter("fabric_replayed_batches_total").get(),
            duplicates: telemetry.counter("fabric_duplicate_fragments_total").get(),
            recovery_micros: telemetry.counter("fabric_recovery_micros_total").get(),
        }
    }

    /// The chaos gate: a death must have been observed and survived with
    /// state intact, and replay dedup must have produced zero duplicates.
    fn require(&self, tag: &str, expect_replay: bool, failures: &mut Vec<String>) {
        if self.deaths == 0 {
            failures.push(format!("{tag}: no peer death observed — the fault never fired"));
        }
        if self.rehomed == 0 {
            failures.push(format!("{tag}: recovery re-homed no flow state"));
        }
        if expect_replay && self.replayed == 0 {
            failures.push(format!("{tag}: recovery replayed no batches"));
        }
        if self.duplicates != 0 {
            failures.push(format!(
                "{tag}: {} duplicate outcome fragments survived dedup",
                self.duplicates
            ));
        }
    }

    fn json(&self) -> String {
        format!(
            "{{\"peer_failures\":{},\"flows_rehomed\":{},\"replayed_batches\":{},\
             \"duplicate_fragments\":{},\"recovery_micros\":{}}}",
            self.deaths, self.rehomed, self.replayed, self.duplicates, self.recovery_micros
        )
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(at) = args.iter().position(|a| a == "--worker") {
        let endpoint = args.get(at + 1).cloned().unwrap_or_else(|| {
            eprintln!("# usage: fig_faults --worker <endpoint> [--faults <spec>]");
            std::process::exit(2);
        });
        let faults = args
            .iter()
            .position(|a| a == "--faults")
            .and_then(|at| args.get(at + 1))
            .map(String::as_str);
        worker_main(&endpoint, faults);
    }
    let scale = scale_from_args(&args);
    let seed = seed_from_args(&args);
    let require_recovery = args.iter().any(|a| a == "--require-recovery");

    let plan = Workload::for_scale(scale);
    let policy = AutoscalePolicy {
        min_shards: 1,
        max_shards: 4,
        scale_up_pps: plan.burst_pps() / 2.0,
        scale_down_pps: plan.quiet_pps() * 2.0,
        cooldown_windows: 0,
        vnodes: 32,
        ..Default::default()
    };
    let trace = workload::bursty_trace(
        plan.phases,
        plan.quiet_sessions,
        plan.burst_sessions,
        seed,
        Workload::is_burst,
    );
    let split = trace.partition_point(|lp| lp.packet.ts < Timestamp::from_micros(2_000_000));
    let (warmup, eval) = trace.split_at(split);
    let mut failures: Vec<String> = Vec::new();

    // 1. Crash-free single-process baseline: one shard, same window.
    let single = run_stream(
        &|| Box::new(Slips::default()) as Box<dyn EventDetector>,
        warmup,
        BoundedSource::spawn(VecSource::new("bursty-tcp", eval.to_vec()), 256),
        &StreamConfig { window_secs: 1.0, ..Default::default() },
    )
    .expect("single-process baseline run");

    // 2. kill: a worker process dies mid-burst while the pool is scaled up;
    //    tight epochs so the kill lands well past a committed checkpoint.
    let recovery = RecoveryConfig { checkpoint_frames: 16, ..Default::default() };
    let kill_at = eval.len() as u64 * 45 / 100;
    let kill_telemetry = Arc::new(Telemetry::default());
    let kill_run = fabric_run(
        "kill",
        eval,
        warmup,
        &StreamConfig {
            shards: 1,
            window_secs: 1.0,
            autoscale: Some(policy),
            ..Default::default()
        },
        &FabricConfig { workers: 2, recovery: Some(recovery), ..Default::default() },
        &format!("seed={seed},kill-at-seq={kill_at}"),
        &kill_telemetry,
        &mut failures,
    );
    let kill_stats = RecoveryStats::read(&kill_telemetry);
    let mut ups = 0usize;
    if let Some(run) = &kill_run {
        check_parity("kill", &single, run, &mut failures);
        ups = run.report.scale_events.iter().filter(|e| e.is_scale_up()).count();
        if ups == 0 {
            failures.push("kill: autoscaler never scaled up under the burst".to_string());
        }
    }
    kill_stats.require("kill", true, &mut failures);

    // 3. corrupt: a fixed two-shard pool where one worker's 4th reply frame
    //    (its second checkpoint, mid-stream) is corrupted; the decoder must
    //    reject it and recovery holds parity.
    let corrupt_telemetry = Arc::new(Telemetry::default());
    let corrupt_run = fabric_run(
        "corrupt",
        eval,
        warmup,
        &StreamConfig { shards: 2, window_secs: 1.0, ..Default::default() },
        &FabricConfig { workers: 2, recovery: Some(recovery), ..Default::default() },
        &format!("seed={seed},corrupt-send=3"),
        &corrupt_telemetry,
        &mut failures,
    );
    let corrupt_stats = RecoveryStats::read(&corrupt_telemetry);
    if let Some(run) = &corrupt_run {
        check_parity("corrupt", &single, run, &mut failures);
    }
    corrupt_stats.require("corrupt", false, &mut failures);

    let scale_name = match scale {
        ScenarioScale::Tiny => "tiny",
        ScenarioScale::Small => "small",
        ScenarioScale::Full => "full",
    };
    let kill_parity = kill_run.is_some() && !failures.iter().any(|f| f.starts_with("kill"));
    let corrupt_parity =
        corrupt_run.is_some() && !failures.iter().any(|f| f.starts_with("corrupt"));
    let json = format!(
        "{{\"bench\":\"fig_faults\",\"scale\":\"{scale_name}\",\"seed\":{seed},\
         \"workers\":2,\"detector\":\"Slips\",\"checkpoint_frames\":{},\
         \"kill\":{{\"at_seq\":{kill_at},\"parity\":{kill_parity},\"scale_ups\":{ups},\
         \"recovery\":{}}},\
         \"corrupt\":{{\"send_frame\":3,\"parity\":{corrupt_parity},\"recovery\":{}}},\
         \"report\":{}}}",
        recovery.checkpoint_frames,
        kill_stats.json(),
        corrupt_stats.json(),
        match &kill_run {
            Some(run) => run.report.to_json(),
            None => "null".to_string(),
        },
    );
    if let Err(e) = std::fs::write("BENCH_faults.json", format!("{json}\n")) {
        eprintln!("# failed to write BENCH_faults.json: {e}");
    }
    println!("BENCH {json}");
    if let Err(e) =
        std::fs::write("TELEMETRY_faults.json", format!("{}\n", kill_telemetry.json_snapshot()))
    {
        eprintln!("# failed to write TELEMETRY_faults.json: {e}");
    }

    if failures.is_empty() {
        eprintln!(
            "# chaos parity holds: {} scores; kill re-homed {} flows and replayed {} batches \
             in {}us, corrupt re-homed {} flows, 0 duplicate fragments",
            single.scores.len(),
            kill_stats.rehomed,
            kill_stats.replayed,
            kill_stats.recovery_micros,
            corrupt_stats.rehomed,
        );
    } else {
        for failure in &failures {
            eprintln!("# RECOVERY GATE FAILED: {failure}");
        }
        if require_recovery {
            std::process::exit(1);
        }
    }
}
