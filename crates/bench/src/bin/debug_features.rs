//! Diagnostic: per-feature class means on a scenario's flows, to find which
//! features separate (or leak) a given attack family. Not part of the paper
//! reproduction; kept for calibration work.

use idsbench_core::preprocess::{Pipeline, PipelineConfig};
use idsbench_core::{AttackKind, Dataset};
use idsbench_datasets::{scenarios, ScenarioScale};
use idsbench_flow::FLOW_FEATURE_NAMES;

fn main() {
    let scenario = scenarios::stratosphere_iot(ScenarioScale::Small);
    let packets = scenario.generate(42);
    let pipeline = Pipeline::new(PipelineConfig::default()).unwrap();
    let input = pipeline.prepare("strat", packets).unwrap();

    let mut sums: Vec<(f64, f64, f64)> = vec![(0.0, 0.0, 0.0); FLOW_FEATURE_NAMES.len()];
    let (mut n_c2, mut n_tel, mut n_other) = (0.0, 0.0, 0.0);
    for flow in input.train_flows.iter().chain(&input.eval_flows) {
        let is_c2 = flow.label.attack_kind() == Some(AttackKind::BotnetC2);
        let is_telemetry = !flow.is_attack() && flow.record.initiator_key().dst_port == 1883;
        if is_c2 {
            n_c2 += 1.0;
        } else if is_telemetry {
            n_tel += 1.0;
        } else {
            n_other += 1.0;
            continue;
        }
        for (i, v) in flow.features.as_slice().iter().enumerate() {
            if is_c2 {
                sums[i].0 += v;
            } else {
                sums[i].1 += v;
            }
        }
    }
    println!("c2 flows: {n_c2}, telemetry flows: {n_tel}, other: {n_other}");
    println!("{:<26} {:>14} {:>14} {:>10}", "feature", "c2 mean", "telemetry mean", "ratio");
    for (i, name) in FLOW_FEATURE_NAMES.iter().enumerate() {
        let c2 = sums[i].0 / f64::max(n_c2, 1.0);
        let tel = sums[i].1 / f64::max(n_tel, 1.0);
        let ratio = if tel.abs() > 1e-12 { c2 / tel } else { f64::NAN };
        if !(0.8..1.25).contains(&ratio) {
            println!("{:<26} {:>14.5} {:>14.5} {:>10.3}", name, c2, tel, ratio);
        }
    }
}
