//! Regenerates the paper's Table II: datasets used for evaluation.
//!
//! ```text
//! cargo run -p idsbench-bench --bin table2
//! ```

use idsbench_core::registry;

fn main() {
    println!("## Table II — datasets used for evaluation\n");
    println!("{}", registry::render_table2());
}
